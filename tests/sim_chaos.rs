//! The chaos matrix: the paper's case-study choreographies executed
//! end-to-end over [`SimTransport`] under a matrix of hostile seeded
//! schedules — latency jitter, drops (with retransmission),
//! duplication, and partitions — asserting that every run completes
//! with the *same* result a quiet network produces. This is the
//! portability claim (§2.1) under test: deadlock-freedom and
//! knowledge-of-choice must survive adverse networks, not just
//! well-behaved ones.
//!
//! The **byzantine axis** extends the matrix with adversarial fault
//! modes — selective silence, always-on frame corruption, an
//! equivocating participant, and (for the lottery) a commitment
//! cheater — run against the *hardened* protocols. There the assertion
//! flips: every endpoint must resolve (no hangs), and either complete
//! with a verified-consistent result or return a `Misbehavior` naming
//! exactly the injected culprit — never a silently wrong value.
//!
//! Seeds are taken from `CHORUS_SIM_SEED_BASE` (decimal, default
//! `49374`), so the nightly CI job can sweep fresh schedules while PR
//! runs stay reproducible. When a seed fails, the full per-link
//! delivery schedule is written to `target/sim-traces/` and the panic
//! names the seed: re-run locally with
//! `CHORUS_SIM_SEED_BASE=<base> cargo test --test sim_chaos` to replay
//! bit-for-bit.

use chorus_repro::core::{ChoreographyLocation as _, Endpoint, LocationSet};
use chorus_repro::mpc::field::FLOTTERY;
use chorus_repro::mpc::Circuit;
use chorus_repro::patterns::Misbehavior;
use chorus_repro::protocols::gmw::Gmw;
use chorus_repro::protocols::hardened::{ConfigChange, HardenedGmw, HardenedLottery};
use chorus_repro::protocols::kvs_backup::{KvsCensus, ReplicatedKvs, Servers};
use chorus_repro::protocols::lottery::Lottery;
use chorus_repro::protocols::roles::{
    Analyst, Backup1, Backup2, Client, Primary, C1, C2, C3, P1, P2, P3, S1, S2, S3,
};
use chorus_repro::protocols::store::{Request, Response, SharedStore};
use chorus_repro::transport::{Corruption, Equivocator, FaultPlan, Silence, SimNet, SimTransport};
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::panic::AssertUnwindSafe;

/// Distinct seeds per protocol; the three matrices are disjoint, so one
/// full run covers `3 × PER_PROTOCOL ≥ 100` distinct fault plans.
const PER_PROTOCOL: u64 = 48;

fn seed_base() -> u64 {
    std::env::var("CHORUS_SIM_SEED_BASE").ok().and_then(|s| s.parse().ok()).unwrap_or(49374)
}

/// Runs `body` and, if it panics, writes the net's full schedule to
/// `target/sim-traces/<protocol>-seed-<seed>.log` before re-panicking
/// with the seed in the message — everything CI needs for a local
/// replay.
fn with_schedule_dump<L: LocationSet>(
    protocol: &str,
    seed: u64,
    net: &SimNet<L>,
    body: impl FnOnce(),
) {
    if let Err(payload) = std::panic::catch_unwind(AssertUnwindSafe(body)) {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        let dir = std::path::Path::new("target").join("sim-traces");
        std::fs::create_dir_all(&dir).ok();
        let path = dir.join(format!("{protocol}-seed-{seed}.log"));
        std::fs::write(&path, net.schedule_dump()).ok();
        // The per-protocol matrices are offset from the base, so name
        // the exact env value that replays this seed locally.
        let base = seed - seed_offset(protocol);
        panic!(
            "{protocol} failed under fault-plan seed {seed}: {message}\n\
             schedule dumped to {} — replay with \
             CHORUS_SIM_SEED_BASE={base} cargo test --test sim_chaos",
            path.display()
        );
    }
}

/// Where each protocol's matrix starts relative to the seed base; keep
/// in sync with the `*_survives_the_seed_matrix` tests so the replay
/// instructions in failure messages stay accurate.
fn seed_offset(protocol: &str) -> u64 {
    match protocol {
        "gmw" => 1_000,
        "lottery" => 2_000,
        "hardened_gmw" => 3_000,
        "hardened_lottery" => 4_000,
        "config_change" => 5_000,
        _ => 0,
    }
}

// ---------------------------------------------------------------------
// kvs_backup: client + primary + two backups, with state-corruption
// fault injection *inside* the choreography on top of the network
// faults underneath it.
// ---------------------------------------------------------------------

type Backups = chorus_repro::core::LocationSet!(Backup1, Backup2);
type KvsSystem = KvsCensus<Backups>;

fn run_kvs_backup(net: &SimNet<KvsSystem>) {
    let mut servers = Vec::new();
    macro_rules! server {
        ($ty:ty, $corrupt:expr) => {{
            let net = net.clone();
            servers.push(std::thread::spawn(move || {
                let endpoint = Endpoint::new(SimTransport::new(<$ty>::new(), net));
                let session = endpoint.session();
                let store = SharedStore::new();
                if $corrupt {
                    store.corrupt_next_put();
                }
                let outcome = session.epp_and_run(ReplicatedKvs::<Backups, _, _, _> {
                    request: session.remote(Client),
                    states: session.local_faceted(store.clone()),
                    phantom: PhantomData,
                });
                (session.unwrap(outcome.resynched), store.snapshot())
            }));
        }};
    }
    server!(Primary, false);
    server!(Backup1, true);
    server!(Backup2, false);

    let client_net = net.clone();
    let client = std::thread::spawn(move || {
        let endpoint = Endpoint::new(SimTransport::new(Client, client_net));
        let session = endpoint.session();
        let outcome = session.epp_and_run(ReplicatedKvs::<Backups, _, _, _> {
            request: session.local(Request::Put("k".into(), "v".into())),
            states: session.remote_faceted(<Servers<Backups>>::new()),
            phantom: PhantomData,
        });
        session.unwrap(outcome.response)
    });

    assert_eq!(client.join().unwrap(), Response::NotFound);
    let results: Vec<_> = servers.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(results.iter().all(|(resynched, _)| *resynched), "every server saw the resynch");
    let reference = &results[0].1;
    assert!(results.iter().all(|(_, snapshot)| snapshot == reference), "replicas converged");
    assert_eq!(reference.get("k").map(String::as_str), Some("v"));
}

#[test]
fn kvs_backup_survives_the_seed_matrix() {
    let base = seed_base();
    for seed in base..base + PER_PROTOCOL {
        let net = SimNet::<KvsSystem>::new(FaultPlan::chaos(seed));
        with_schedule_dump("kvs_backup", seed, &net, || run_kvs_backup(&net));
    }
}

/// The schedule of a full multi-threaded protocol run is reproducible:
/// each link has a single sending thread, so per-link frame order — and
/// with it every seeded fault decision — is independent of OS
/// scheduling.
#[test]
fn kvs_backup_schedule_is_deterministic_across_runs() {
    let seed = seed_base() ^ 0xD57;
    let dump = |_: u32| {
        let net = SimNet::<KvsSystem>::new(FaultPlan::chaos(seed));
        run_kvs_backup(&net);
        net.schedule_dump()
    };
    assert_eq!(dump(0), dump(1), "same seed, same multi-threaded run, same schedule");
}

// ---------------------------------------------------------------------
// gmw: three-party secure computation of majority(a, b, c).
// ---------------------------------------------------------------------

type Parties = chorus_repro::core::LocationSet!(P1, P2, P3);

fn run_gmw(net: &SimNet<Parties>) {
    let circuit = std::sync::Arc::new(
        Circuit::input("P1", 0)
            .and(Circuit::input("P2", 0))
            .xor(Circuit::input("P1", 0).and(Circuit::input("P3", 0)))
            .xor(Circuit::input("P2", 0).and(Circuit::input("P3", 0))),
    );
    let mut handles = Vec::new();
    macro_rules! party {
        ($ty:ty, $input:expr) => {{
            let net = net.clone();
            let circuit = std::sync::Arc::clone(&circuit);
            handles.push(std::thread::spawn(move || {
                let endpoint = Endpoint::new(SimTransport::new(<$ty>::new(), net));
                let session = endpoint.session();
                session.epp_and_run(Gmw::<Parties, _, _> {
                    circuit: &circuit,
                    inputs: &session.local_faceted(vec![$input]),
                    phantom: PhantomData,
                })
            }));
        }};
    }
    party!(P1, true);
    party!(P2, true);
    party!(P3, false);
    let results: Vec<bool> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(results, vec![true, true, true], "majority(t, t, f) = t at every party");
}

#[test]
fn gmw_survives_the_seed_matrix() {
    let base = seed_base() + 1_000;
    for seed in base..base + PER_PROTOCOL {
        let net = SimNet::<Parties>::new(FaultPlan::chaos(seed));
        with_schedule_dump("gmw", seed, &net, || run_gmw(&net));
    }
}

// ---------------------------------------------------------------------
// lottery: three clients, two servers, one analyst; commit-then-open
// fairness on top of a network that reorders the opens.
// ---------------------------------------------------------------------

type Clients = chorus_repro::core::LocationSet!(C1, C2, C3);
type LotteryServers = chorus_repro::core::LocationSet!(S1, S2);
type LotteryCensus = chorus_repro::core::LocationSet!(Analyst, C1, C2, C3, S1, S2);

fn run_lottery(net: &SimNet<LotteryCensus>) {
    const SECRETS: [u64; 3] = [1001, 2002, 3003];
    let mut handles = Vec::new();

    macro_rules! client {
        ($ty:ty, $secret:expr) => {{
            let net = net.clone();
            handles.push(std::thread::spawn(move || {
                let endpoint = Endpoint::new(SimTransport::new(<$ty>::default(), net));
                let session = endpoint.session();
                let _ = session.epp_and_run(Lottery::<
                    Clients,
                    LotteryServers,
                    LotteryCensus,
                    _,
                    _,
                    _,
                    _,
                    _,
                    _,
                    _,
                > {
                    secrets: &session.local_faceted(FLOTTERY::new($secret)),
                    tau: 300,
                    cheaters: &session.remote_faceted(LotteryServers::new()),
                    phantom: PhantomData,
                });
            }));
        }};
    }
    macro_rules! server {
        ($ty:ty) => {{
            let net = net.clone();
            handles.push(std::thread::spawn(move || {
                let endpoint = Endpoint::new(SimTransport::new(<$ty>::default(), net));
                let session = endpoint.session();
                let _ = session.epp_and_run(Lottery::<
                    Clients,
                    LotteryServers,
                    LotteryCensus,
                    _,
                    _,
                    _,
                    _,
                    _,
                    _,
                    _,
                > {
                    secrets: &session.remote_faceted(Clients::new()),
                    tau: 300,
                    cheaters: &session.local_faceted(false),
                    phantom: PhantomData,
                });
            }));
        }};
    }

    client!(C1, SECRETS[0]);
    client!(C2, SECRETS[1]);
    client!(C3, SECRETS[2]);
    server!(S1);
    server!(S2);

    let analyst_net = net.clone();
    let analyst = std::thread::spawn(move || {
        let endpoint = Endpoint::new(SimTransport::new(Analyst, analyst_net));
        let session = endpoint.session();
        let out = session.epp_and_run(Lottery::<
            Clients,
            LotteryServers,
            LotteryCensus,
            _,
            _,
            _,
            _,
            _,
            _,
            _,
        > {
            secrets: &session.remote_faceted(Clients::new()),
            tau: 300,
            cheaters: &session.remote_faceted(LotteryServers::new()),
            phantom: PhantomData,
        });
        session.unwrap(out)
    });

    for h in handles {
        h.join().unwrap();
    }
    let value = analyst.join().unwrap().expect("honest servers, so the lottery must not abort");
    assert!(
        SECRETS.contains(&value),
        "the analyst must reconstruct one of the client secrets, got {value}"
    );
}

#[test]
fn lottery_survives_the_seed_matrix() {
    let base = seed_base() + 2_000;
    for seed in base..base + PER_PROTOCOL {
        let net = SimNet::<LotteryCensus>::new(FaultPlan::chaos(seed));
        with_schedule_dump("lottery", seed, &net, || run_lottery(&net));
    }
}

// ---------------------------------------------------------------------
// The byzantine axis: hardened protocols under adversarial fault modes.
// Each seed deterministically derives a fault mode plus a culprit and a
// victim among the pattern-protected roles; the assertions then demand
// the *exact* injected culprit back (or a clean, correct completion on
// the clean seeds) — at every endpoint, with no hangs.
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Adversary {
    /// One-directional link silence: the culprit's frames to the victim
    /// never arrive.
    Silence,
    /// Always-on link corruption: every culprit→victim frame has one
    /// payload bit flipped.
    Corruption,
    /// The culprit equivocates: frames it sends the victim are tampered
    /// with, while everyone else hears the honest story.
    Equivocation,
    /// Lottery only: the culprit server opens a value it never
    /// committed to.
    Cheat,
    /// No fault — the hardened protocol must complete with the correct,
    /// verified result.
    Clean,
}

#[derive(Clone, Copy, Debug)]
struct Injection {
    mode: Adversary,
    culprit: &'static str,
    victim: &'static str,
}

/// Derives the seed's injection over three `roles`: the culprit cycles
/// fastest, then the victim (one of the two others), then the mode.
fn injection(seed: u64, roles: [&'static str; 3], modes: &[Adversary]) -> Injection {
    let ci = (seed % 3) as usize;
    let vi = (ci + 1 + ((seed / 3) % 2) as usize) % 3;
    Injection {
        mode: modes[((seed / 6) as usize) % modes.len()],
        culprit: roles[ci],
        victim: roles[vi],
    }
}

fn adversarial_plan(seed: u64, inj: &Injection) -> FaultPlan {
    let plan = FaultPlan::ideal().with_seed(seed);
    match inj.mode {
        Adversary::Silence => plan.with_silence(Silence::link(inj.culprit, inj.victim)),
        Adversary::Corruption => {
            plan.with_corruption(Corruption::link(inj.culprit, inj.victim, 1.0))
        }
        _ => plan,
    }
}

/// The victims `me` equivocates against — empty (a transparent
/// pass-through) unless this seed makes `me` the equivocator. Wrapping
/// *every* endpoint keeps the transport type uniform across the matrix.
fn equivocation_victims(inj: &Injection, me: &'static str) -> Vec<&'static str> {
    if inj.mode == Adversary::Equivocation && inj.culprit == me {
        vec![inj.victim]
    } else {
        Vec::new()
    }
}

// ---------------------------------------------------------------------
// hardened_gmw: majority(t, t, f) with preflight link probing and
// commit-reveal output verification; faults target the party links.
// ---------------------------------------------------------------------

fn run_hardened_gmw(seed: u64, net: &SimNet<Parties>, inj: Injection) {
    let circuit = std::sync::Arc::new(
        Circuit::input("P1", 0)
            .and(Circuit::input("P2", 0))
            .xor(Circuit::input("P1", 0).and(Circuit::input("P3", 0)))
            .xor(Circuit::input("P2", 0).and(Circuit::input("P3", 0))),
    );
    let mut handles = Vec::new();
    macro_rules! party {
        ($ty:ty, $input:expr) => {{
            let net = net.clone();
            let circuit = std::sync::Arc::clone(&circuit);
            let victims = equivocation_victims(&inj, <$ty>::NAME);
            handles.push(std::thread::spawn(move || {
                let endpoint = Endpoint::new(Equivocator::new(
                    SimTransport::new(<$ty>::new(), net),
                    seed,
                    victims,
                ));
                let session = endpoint.session();
                let out = session.epp_and_run(HardenedGmw::<Parties, _, _> {
                    circuit: &circuit,
                    inputs: &session.local_faceted(vec![$input]),
                    epoch: seed,
                    phantom: PhantomData,
                });
                (<$ty>::NAME, session.unwrap_faceted(out))
            }));
        }};
    }
    party!(P1, true);
    party!(P2, true);
    party!(P3, false);
    let results: Vec<(&str, Result<bool, Misbehavior>)> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();
    for (name, result) in results {
        match inj.mode {
            Adversary::Clean => {
                assert_eq!(result, Ok(true), "{name}: majority(t, t, f) under a clean net")
            }
            _ => {
                let m = match result {
                    Ok(got) => {
                        panic!("{name} accepted {got} despite {inj:?} — silent wrong result")
                    }
                    Err(m) => m,
                };
                assert_eq!(
                    m.culprit, inj.culprit,
                    "{name} must name the injected culprit under {inj:?}, got {m}"
                );
            }
        }
    }
}

#[test]
fn hardened_gmw_names_the_culprit_across_the_byzantine_matrix() {
    let base = seed_base() + seed_offset("hardened_gmw");
    let modes =
        [Adversary::Silence, Adversary::Corruption, Adversary::Equivocation, Adversary::Clean];
    for seed in base..base + PER_PROTOCOL {
        let inj = injection(seed, ["P1", "P2", "P3"], &modes);
        let net = SimNet::<Parties>::new(adversarial_plan(seed, &inj));
        with_schedule_dump("hardened_gmw", seed, &net, || run_hardened_gmw(seed, &net, inj));
    }
}

// ---------------------------------------------------------------------
// hardened_lottery: three clients, three servers (an honest majority
// among the conclave), one analyst; faults target the server↔server
// links the patterns protect, plus the in-protocol commitment cheat.
// ---------------------------------------------------------------------

type HardenedServers = chorus_repro::core::LocationSet!(S1, S2, S3);
type HardenedLotteryCensus = chorus_repro::core::LocationSet!(Analyst, C1, C2, C3, S1, S2, S3);

fn run_hardened_lottery(seed: u64, net: &SimNet<HardenedLotteryCensus>, inj: Injection) {
    const SECRETS: [u64; 3] = [1001, 2002, 3003];
    let mut handles = Vec::new();

    macro_rules! node {
        ($ty:ty, $secrets:expr, $cheaters:expr) => {{
            let net = net.clone();
            let victims = equivocation_victims(&inj, <$ty>::NAME);
            handles.push(std::thread::spawn(move || {
                let endpoint = Endpoint::new(Equivocator::new(
                    SimTransport::new(<$ty>::default(), net),
                    seed,
                    victims,
                ));
                let session = endpoint.session();
                let _ = session.epp_and_run(HardenedLottery::<
                    Clients,
                    HardenedServers,
                    HardenedLotteryCensus,
                    _,
                    _,
                    _,
                    _,
                    _,
                    _,
                    _,
                > {
                    secrets: &$secrets(&session),
                    tau: 300,
                    epoch: seed,
                    cheaters: &$cheaters(&session),
                    phantom: PhantomData,
                });
            }));
        }};
    }

    macro_rules! client {
        ($ty:ty, $secret:expr) => {
            node!(
                $ty,
                |s: &chorus_repro::core::Session<_, $ty, _>| s
                    .local_faceted(FLOTTERY::new($secret)),
                |s: &chorus_repro::core::Session<_, $ty, _>| s
                    .remote_faceted(HardenedServers::new())
            )
        };
    }
    macro_rules! server {
        ($ty:ty) => {
            node!(
                $ty,
                |s: &chorus_repro::core::Session<_, $ty, _>| s.remote_faceted(Clients::new()),
                |s: &chorus_repro::core::Session<_, $ty, _>| s
                    .local_faceted(inj.mode == Adversary::Cheat && inj.culprit == <$ty>::NAME)
            )
        };
    }

    client!(C1, SECRETS[0]);
    client!(C2, SECRETS[1]);
    client!(C3, SECRETS[2]);
    server!(S1);
    server!(S2);
    server!(S3);

    let analyst_net = net.clone();
    let analyst = std::thread::spawn(move || {
        let endpoint = Endpoint::new(SimTransport::new(Analyst, analyst_net));
        let session = endpoint.session();
        let out = session.epp_and_run(HardenedLottery::<
            Clients,
            HardenedServers,
            HardenedLotteryCensus,
            _,
            _,
            _,
            _,
            _,
            _,
            _,
        > {
            secrets: &session.remote_faceted(Clients::new()),
            tau: 300,
            epoch: seed,
            cheaters: &session.remote_faceted(HardenedServers::new()),
            phantom: PhantomData,
        });
        session.unwrap(out)
    });

    // Every endpoint resolves — a hang would park a thread forever and
    // the watchdog turns that into a panic instead.
    for h in handles {
        h.join().unwrap();
    }
    let verdict = analyst.join().unwrap();
    match inj.mode {
        Adversary::Clean => {
            let value = verdict.expect("a clean net must pay out");
            assert!(SECRETS.contains(&value), "payout {value} is not a client secret");
        }
        _ => {
            let m = match verdict {
                Ok(got) => {
                    panic!("analyst accepted {got} despite {inj:?} — silent wrong result")
                }
                Err(m) => m,
            };
            assert_eq!(
                m.culprit, inj.culprit,
                "the analyst must name the injected culprit under {inj:?}, got {m}"
            );
        }
    }
}

#[test]
fn hardened_lottery_names_the_culprit_across_the_byzantine_matrix() {
    let base = seed_base() + seed_offset("hardened_lottery");
    let modes = [
        Adversary::Silence,
        Adversary::Corruption,
        Adversary::Equivocation,
        Adversary::Cheat,
        Adversary::Clean,
    ];
    for seed in base..base + PER_PROTOCOL {
        let inj = injection(seed, ["S1", "S2", "S3"], &modes);
        let net = SimNet::<HardenedLotteryCensus>::new(adversarial_plan(seed, &inj));
        with_schedule_dump("hardened_lottery", seed, &net, || {
            run_hardened_lottery(seed, &net, inj)
        });
    }
}

// ---------------------------------------------------------------------
// config_change: a deterministic ProposeAck round (no randomness at
// all), the replay-determinism canary. ProposeAck's traffic is a star
// around the proposer P1, so faults on the P2↔P3 chord are invisible
// and those seeds must *commit* — tolerance, not detection.
// ---------------------------------------------------------------------

fn run_config_change(
    seed: u64,
    net: &SimNet<Parties>,
    inj: Injection,
) -> BTreeMap<&'static str, Result<u64, Misbehavior>> {
    let mut handles = Vec::new();
    macro_rules! party {
        ($ty:ty, $version:expr) => {{
            let net = net.clone();
            let victims = equivocation_victims(&inj, <$ty>::NAME);
            handles.push(std::thread::spawn(move || {
                let endpoint = Endpoint::new(Equivocator::new(
                    SimTransport::new(<$ty>::new(), net),
                    seed,
                    victims,
                ));
                let session = endpoint.session();
                let version = $version;
                let out = session.epp_and_run(ConfigChange::<P1, Parties, _, _, _> {
                    new_version: &version(&session),
                    current_version: 3,
                    epoch: seed,
                    quorum: 3,
                    phantom: PhantomData,
                });
                (<$ty>::NAME, session.unwrap_faceted(out))
            }));
        }};
    }
    party!(P1, |s: &chorus_repro::core::Session<_, P1, _>| s.local(4u64));
    party!(P2, |s: &chorus_repro::core::Session<_, P2, _>| s.remote(P1));
    party!(P3, |s: &chorus_repro::core::Session<_, P3, _>| s.remote(P1));
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

fn assert_config_change_outcome(
    inj: Injection,
    results: &BTreeMap<&'static str, Result<u64, Misbehavior>>,
) {
    // Only the proposer's links carry traffic: a fault must involve P1
    // to be observable at all.
    let observable = inj.mode != Adversary::Clean && (inj.culprit == "P1" || inj.victim == "P1");
    for (name, result) in results {
        if observable {
            let m = match result {
                Ok(got) => {
                    panic!("{name} committed {got} despite {inj:?} — silent wrong result")
                }
                Err(m) => m,
            };
            assert_eq!(
                m.culprit, inj.culprit,
                "{name} must name the injected culprit under {inj:?}, got {m}"
            );
        } else {
            assert_eq!(
                result.as_ref().ok(),
                Some(&4),
                "{name} must commit under {inj:?} (fault off the proposer star)"
            );
        }
    }
}

#[test]
fn config_change_names_the_culprit_across_the_byzantine_matrix() {
    let base = seed_base() + seed_offset("config_change");
    let modes =
        [Adversary::Silence, Adversary::Corruption, Adversary::Equivocation, Adversary::Clean];
    for seed in base..base + PER_PROTOCOL {
        let inj = injection(seed, ["P1", "P2", "P3"], &modes);
        let net = SimNet::<Parties>::new(adversarial_plan(seed, &inj));
        with_schedule_dump("config_change", seed, &net, || {
            let results = run_config_change(seed, &net, inj);
            assert_config_change_outcome(inj, &results);
        });
    }
}

/// The adversarial modes keep the replay guarantee: the same seed
/// replays the same schedule — fault decisions included — and the same
/// per-party verdicts, even with the fault plan corrupting frames.
#[test]
fn byzantine_schedule_and_verdict_are_deterministic_across_runs() {
    let seed = seed_base() + seed_offset("config_change") + 777;
    let inj = Injection { mode: Adversary::Corruption, culprit: "P1", victim: "P2" };
    let run = |_: u32| {
        let net = SimNet::<Parties>::new(adversarial_plan(seed, &inj));
        let results = run_config_change(seed, &net, inj);
        assert_config_change_outcome(inj, &results);
        (net.schedule_dump(), results)
    };
    assert_eq!(run(0), run(1), "same seed, same adversarial schedule, same verdicts");
}
