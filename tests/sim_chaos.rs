//! The chaos matrix: the paper's case-study choreographies executed
//! end-to-end over [`SimTransport`] under a matrix of hostile seeded
//! schedules — latency jitter, drops (with retransmission),
//! duplication, and partitions — asserting that every run completes
//! with the *same* result a quiet network produces. This is the
//! portability claim (§2.1) under test: deadlock-freedom and
//! knowledge-of-choice must survive adverse networks, not just
//! well-behaved ones.
//!
//! Seeds are taken from `CHORUS_SIM_SEED_BASE` (decimal, default
//! `49374`), so the nightly CI job can sweep fresh schedules while PR
//! runs stay reproducible. When a seed fails, the full per-link
//! delivery schedule is written to `target/sim-traces/` and the panic
//! names the seed: re-run locally with
//! `CHORUS_SIM_SEED_BASE=<base> cargo test --test sim_chaos` to replay
//! bit-for-bit.

use chorus_repro::core::{ChoreographyLocation as _, Endpoint, LocationSet};
use chorus_repro::mpc::field::FLOTTERY;
use chorus_repro::mpc::Circuit;
use chorus_repro::protocols::gmw::Gmw;
use chorus_repro::protocols::kvs_backup::{KvsCensus, ReplicatedKvs, Servers};
use chorus_repro::protocols::lottery::Lottery;
use chorus_repro::protocols::roles::{
    Analyst, Backup1, Backup2, Client, Primary, C1, C2, C3, P1, P2, P3, S1, S2,
};
use chorus_repro::protocols::store::{Request, Response, SharedStore};
use chorus_repro::transport::{FaultPlan, SimNet, SimTransport};
use std::marker::PhantomData;
use std::panic::AssertUnwindSafe;

/// Distinct seeds per protocol; the three matrices are disjoint, so one
/// full run covers `3 × PER_PROTOCOL ≥ 100` distinct fault plans.
const PER_PROTOCOL: u64 = 48;

fn seed_base() -> u64 {
    std::env::var("CHORUS_SIM_SEED_BASE").ok().and_then(|s| s.parse().ok()).unwrap_or(49374)
}

/// Runs `body` and, if it panics, writes the net's full schedule to
/// `target/sim-traces/<protocol>-seed-<seed>.log` before re-panicking
/// with the seed in the message — everything CI needs for a local
/// replay.
fn with_schedule_dump<L: LocationSet>(
    protocol: &str,
    seed: u64,
    net: &SimNet<L>,
    body: impl FnOnce(),
) {
    if let Err(payload) = std::panic::catch_unwind(AssertUnwindSafe(body)) {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        let dir = std::path::Path::new("target").join("sim-traces");
        std::fs::create_dir_all(&dir).ok();
        let path = dir.join(format!("{protocol}-seed-{seed}.log"));
        std::fs::write(&path, net.schedule_dump()).ok();
        // The per-protocol matrices are offset from the base, so name
        // the exact env value that replays this seed locally.
        let base = seed - seed_offset(protocol);
        panic!(
            "{protocol} failed under fault-plan seed {seed}: {message}\n\
             schedule dumped to {} — replay with \
             CHORUS_SIM_SEED_BASE={base} cargo test --test sim_chaos",
            path.display()
        );
    }
}

/// Where each protocol's matrix starts relative to the seed base; keep
/// in sync with the `*_survives_the_seed_matrix` tests so the replay
/// instructions in failure messages stay accurate.
fn seed_offset(protocol: &str) -> u64 {
    match protocol {
        "gmw" => 1_000,
        "lottery" => 2_000,
        _ => 0,
    }
}

// ---------------------------------------------------------------------
// kvs_backup: client + primary + two backups, with state-corruption
// fault injection *inside* the choreography on top of the network
// faults underneath it.
// ---------------------------------------------------------------------

type Backups = chorus_repro::core::LocationSet!(Backup1, Backup2);
type KvsSystem = KvsCensus<Backups>;

fn run_kvs_backup(net: &SimNet<KvsSystem>) {
    let mut servers = Vec::new();
    macro_rules! server {
        ($ty:ty, $corrupt:expr) => {{
            let net = net.clone();
            servers.push(std::thread::spawn(move || {
                let endpoint = Endpoint::new(SimTransport::new(<$ty>::new(), net));
                let session = endpoint.session();
                let store = SharedStore::new();
                if $corrupt {
                    store.corrupt_next_put();
                }
                let outcome = session.epp_and_run(ReplicatedKvs::<Backups, _, _, _> {
                    request: session.remote(Client),
                    states: session.local_faceted(store.clone()),
                    phantom: PhantomData,
                });
                (session.unwrap(outcome.resynched), store.snapshot())
            }));
        }};
    }
    server!(Primary, false);
    server!(Backup1, true);
    server!(Backup2, false);

    let client_net = net.clone();
    let client = std::thread::spawn(move || {
        let endpoint = Endpoint::new(SimTransport::new(Client, client_net));
        let session = endpoint.session();
        let outcome = session.epp_and_run(ReplicatedKvs::<Backups, _, _, _> {
            request: session.local(Request::Put("k".into(), "v".into())),
            states: session.remote_faceted(<Servers<Backups>>::new()),
            phantom: PhantomData,
        });
        session.unwrap(outcome.response)
    });

    assert_eq!(client.join().unwrap(), Response::NotFound);
    let results: Vec<_> = servers.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(results.iter().all(|(resynched, _)| *resynched), "every server saw the resynch");
    let reference = &results[0].1;
    assert!(results.iter().all(|(_, snapshot)| snapshot == reference), "replicas converged");
    assert_eq!(reference.get("k").map(String::as_str), Some("v"));
}

#[test]
fn kvs_backup_survives_the_seed_matrix() {
    let base = seed_base();
    for seed in base..base + PER_PROTOCOL {
        let net = SimNet::<KvsSystem>::new(FaultPlan::chaos(seed));
        with_schedule_dump("kvs_backup", seed, &net, || run_kvs_backup(&net));
    }
}

/// The schedule of a full multi-threaded protocol run is reproducible:
/// each link has a single sending thread, so per-link frame order — and
/// with it every seeded fault decision — is independent of OS
/// scheduling.
#[test]
fn kvs_backup_schedule_is_deterministic_across_runs() {
    let seed = seed_base() ^ 0xD57;
    let dump = |_: u32| {
        let net = SimNet::<KvsSystem>::new(FaultPlan::chaos(seed));
        run_kvs_backup(&net);
        net.schedule_dump()
    };
    assert_eq!(dump(0), dump(1), "same seed, same multi-threaded run, same schedule");
}

// ---------------------------------------------------------------------
// gmw: three-party secure computation of majority(a, b, c).
// ---------------------------------------------------------------------

type Parties = chorus_repro::core::LocationSet!(P1, P2, P3);

fn run_gmw(net: &SimNet<Parties>) {
    let circuit = std::sync::Arc::new(
        Circuit::input("P1", 0)
            .and(Circuit::input("P2", 0))
            .xor(Circuit::input("P1", 0).and(Circuit::input("P3", 0)))
            .xor(Circuit::input("P2", 0).and(Circuit::input("P3", 0))),
    );
    let mut handles = Vec::new();
    macro_rules! party {
        ($ty:ty, $input:expr) => {{
            let net = net.clone();
            let circuit = std::sync::Arc::clone(&circuit);
            handles.push(std::thread::spawn(move || {
                let endpoint = Endpoint::new(SimTransport::new(<$ty>::new(), net));
                let session = endpoint.session();
                session.epp_and_run(Gmw::<Parties, _, _> {
                    circuit: &circuit,
                    inputs: &session.local_faceted(vec![$input]),
                    phantom: PhantomData,
                })
            }));
        }};
    }
    party!(P1, true);
    party!(P2, true);
    party!(P3, false);
    let results: Vec<bool> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(results, vec![true, true, true], "majority(t, t, f) = t at every party");
}

#[test]
fn gmw_survives_the_seed_matrix() {
    let base = seed_base() + 1_000;
    for seed in base..base + PER_PROTOCOL {
        let net = SimNet::<Parties>::new(FaultPlan::chaos(seed));
        with_schedule_dump("gmw", seed, &net, || run_gmw(&net));
    }
}

// ---------------------------------------------------------------------
// lottery: three clients, two servers, one analyst; commit-then-open
// fairness on top of a network that reorders the opens.
// ---------------------------------------------------------------------

type Clients = chorus_repro::core::LocationSet!(C1, C2, C3);
type LotteryServers = chorus_repro::core::LocationSet!(S1, S2);
type LotteryCensus = chorus_repro::core::LocationSet!(Analyst, C1, C2, C3, S1, S2);

fn run_lottery(net: &SimNet<LotteryCensus>) {
    const SECRETS: [u64; 3] = [1001, 2002, 3003];
    let mut handles = Vec::new();

    macro_rules! client {
        ($ty:ty, $secret:expr) => {{
            let net = net.clone();
            handles.push(std::thread::spawn(move || {
                let endpoint = Endpoint::new(SimTransport::new(<$ty>::default(), net));
                let session = endpoint.session();
                let _ = session.epp_and_run(Lottery::<
                    Clients,
                    LotteryServers,
                    LotteryCensus,
                    _,
                    _,
                    _,
                    _,
                    _,
                    _,
                    _,
                > {
                    secrets: &session.local_faceted(FLOTTERY::new($secret)),
                    tau: 300,
                    cheaters: &session.remote_faceted(LotteryServers::new()),
                    phantom: PhantomData,
                });
            }));
        }};
    }
    macro_rules! server {
        ($ty:ty) => {{
            let net = net.clone();
            handles.push(std::thread::spawn(move || {
                let endpoint = Endpoint::new(SimTransport::new(<$ty>::default(), net));
                let session = endpoint.session();
                let _ = session.epp_and_run(Lottery::<
                    Clients,
                    LotteryServers,
                    LotteryCensus,
                    _,
                    _,
                    _,
                    _,
                    _,
                    _,
                    _,
                > {
                    secrets: &session.remote_faceted(Clients::new()),
                    tau: 300,
                    cheaters: &session.local_faceted(false),
                    phantom: PhantomData,
                });
            }));
        }};
    }

    client!(C1, SECRETS[0]);
    client!(C2, SECRETS[1]);
    client!(C3, SECRETS[2]);
    server!(S1);
    server!(S2);

    let analyst_net = net.clone();
    let analyst = std::thread::spawn(move || {
        let endpoint = Endpoint::new(SimTransport::new(Analyst, analyst_net));
        let session = endpoint.session();
        let out = session.epp_and_run(Lottery::<
            Clients,
            LotteryServers,
            LotteryCensus,
            _,
            _,
            _,
            _,
            _,
            _,
            _,
        > {
            secrets: &session.remote_faceted(Clients::new()),
            tau: 300,
            cheaters: &session.remote_faceted(LotteryServers::new()),
            phantom: PhantomData,
        });
        session.unwrap(out)
    });

    for h in handles {
        h.join().unwrap();
    }
    let value = analyst.join().unwrap().expect("honest servers, so the lottery must not abort");
    assert!(
        SECRETS.contains(&value),
        "the analyst must reconstruct one of the client secrets, got {value}"
    );
}

#[test]
fn lottery_survives_the_seed_matrix() {
    let base = seed_base() + 2_000;
    for seed in base..base + PER_PROTOCOL {
        let net = SimNet::<LotteryCensus>::new(FaultPlan::chaos(seed));
        with_schedule_dump("lottery", seed, &net, || run_lottery(&net));
    }
}
