//! Cross-validation between the practical library (`chorus-core`) and
//! the formal model (`chorus-lambda`): the same choreographic program —
//! a multicast followed by a conclaved branch — is expressed in both and
//! must agree on who ends up knowing what.

use chorus_repro::core::{
    ChoreoOp, Choreography, Located, LocationSet as _, MultiplyLocated, Runner,
};
use chorus_repro::lambda::local::LValue;
use chorus_repro::lambda::network::{Network, Outcome};
use chorus_repro::lambda::parties;
use chorus_repro::lambda::semantics::eval;
use chorus_repro::lambda::syntax::{Expr, Value};
use chorus_repro::lambda::typing::{type_of, Env};
use chorus_repro::lambda::Party;

chorus_repro::core::locations! { A, B, C }
type Census = chorus_repro::core::LocationSet!(A, B, C);
type Pair = chorus_repro::core::LocationSet!(B, C);

/// Library version: A multicasts a boolean to {B, C}; B and C branch on
/// it in a conclave and produce a label.
struct LibraryVersion {
    flag: Located<bool, A>,
}

impl Choreography<MultiplyLocated<u8, Pair>> for LibraryVersion {
    type L = Census;
    fn run(self, op: &impl ChoreoOp<Self::L>) -> MultiplyLocated<u8, Pair> {
        let shared: MultiplyLocated<bool, Pair> = op.multicast(A, Pair::new(), &self.flag);
        op.conclave(Branch { shared }).flatten()
    }
}

struct Branch {
    shared: MultiplyLocated<bool, Pair>,
}

impl Choreography<MultiplyLocated<u8, Pair>> for Branch {
    type L = Pair;
    fn run(self, op: &impl ChoreoOp<Self::L>) -> MultiplyLocated<u8, Pair> {
        let flag = op.naked(self.shared);
        let label = if flag { 1u8 } else { 0u8 };
        let at_b = op.locally(B, move |_| label);
        op.multicast(B, Pair::new(), &at_b)
    }
}

/// The λC version of the same program:
/// `case_{1,2} (com_{0;{1,2}} flag@{0}) of Inl _ ⇒ true@{1,2} ; Inr _ ⇒ false@{1,2}`
/// — the label is a boolean owned by {1,2}, so the chosen branch is
/// visible in the final values (and both branches share one type, as
/// TCase requires).
fn lambda_version(flag: bool) -> Expr {
    let flag_value =
        if flag { Value::bool_true(parties![0]) } else { Value::bool_false(parties![0]) };
    let multicast = Expr::app(
        Expr::val(Value::Com { from: Party(0), to: parties![1, 2] }),
        Expr::val(flag_value),
    );
    Expr::case(
        parties![1, 2],
        multicast,
        "t",
        Expr::val(Value::bool_true(parties![1, 2])),
        "f",
        Expr::val(Value::bool_false(parties![1, 2])),
    )
}

#[test]
fn library_and_model_agree_on_knowledge_of_choice() {
    for flag in [true, false] {
        // Library.
        let runner: Runner<Census> = Runner::new();
        let label = runner.unwrap_located(runner.run(LibraryVersion { flag: runner.local(flag) }));
        assert_eq!(label, u8::from(flag));

        // Model: type-check, evaluate centrally, then run the projected
        // network and compare.
        let expr = lambda_version(flag);
        let census = parties![0, 1, 2];
        type_of(&census, &Env::new(), &expr).expect("the model program is well-typed");
        let central = eval(&expr, 10_000).expect("terminates");

        let mut network = Network::project_all(&expr);
        let Outcome::Finished(values) = network.run(10_000) else {
            panic!("model network did not finish for flag={flag}");
        };
        // B and C take the branch that matches the library's label.
        let expected = if flag { LValue::inl(LValue::Unit) } else { LValue::inr(LValue::Unit) };
        assert_eq!(values[&Party(1)], expected);
        assert_eq!(values[&Party(2)], expected);
        // A does not participate in the branch: its residual is ⊥,
        // exactly the paper's "skip" for outsiders.
        assert_eq!(values[&Party(0)], LValue::Bottom);
        // And the central value agrees with the network's.
        let central_owners = match central {
            Value::Inl(inner) => {
                assert!(flag);
                match *inner {
                    Value::Unit(ps) => ps,
                    other => panic!("unexpected payload {other}"),
                }
            }
            Value::Inr(inner) => {
                assert!(!flag);
                match *inner {
                    Value::Unit(ps) => ps,
                    other => panic!("unexpected payload {other}"),
                }
            }
            other => panic!("unexpected central value {other}"),
        };
        assert_eq!(central_owners, parties![1, 2]);
    }
}

#[test]
fn facade_reexports_are_usable() {
    // Compile-time check that every façade path resolves and basic
    // functionality is reachable through it.
    let bytes = chorus_repro::wire::to_bytes(&42u32).unwrap();
    assert_eq!(chorus_repro::wire::from_bytes::<u32>(&bytes).unwrap(), 42);
    assert_eq!(chorus_repro::mpc::Sha256::digest(b"abc").len(), 32);
    let digest = chorus_repro::mpc::Sha256::to_hex(&chorus_repro::mpc::Sha256::digest(b""));
    assert!(digest.starts_with("e3b0c442"));
}
