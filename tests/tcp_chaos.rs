//! The TCP chaos matrix: the paper's case-study choreographies executed
//! over **real sockets** with the connections killed underneath them.
//!
//! Where `sim_chaos` stresses delivery *schedules* on a simulated
//! network, this suite stresses the operating system's byte streams: a
//! seeded [`FaultyTcp`] proxy sits on every directed edge and, on a
//! reproducible per-seed schedule, hard-kills established connections
//! mid-frame, delays accepts, and blackholes one direction (a half-dead
//! link: the socket stays open, bytes stop arriving). The resilient
//! link layer must reconnect, resume from the receiver's cursor, and
//! replay the unacked tail — every session completing with the **same
//! per-edge message/byte metrics a fault-free run produces**, because
//! retransmission lives entirely below the session layer.
//!
//! Seeds come from `CHORUS_TCP_SEED_BASE` (decimal, default `49374`) so
//! CI can sweep fresh schedules while PR runs stay reproducible. When a
//! seed fails, the proxy's full per-connection fault schedule is
//! written to `target/tcp-chaos/` and the panic names the seed: replay
//! with `CHORUS_TCP_SEED_BASE=<base> cargo test --test tcp_chaos`.

use chorus_repro::core::{Endpoint, LocationSet as _, SessionRuntime};
use chorus_repro::mpc::field::FLOTTERY;
use chorus_repro::mpc::Circuit;
use chorus_repro::protocols::gmw::Gmw;
use chorus_repro::protocols::kvs_backup::{KvsCensus, ReplicatedKvs, Servers};
use chorus_repro::protocols::kvs_simple::{PooledKvsClient, PooledKvsServer, SimpleKvsCensus};
use chorus_repro::protocols::lottery::Lottery;
use chorus_repro::protocols::roles::{
    Analyst, Backup1, Backup2, Client, Primary, C1, C2, C3, P1, P2, P3, S1, S2,
};
use chorus_repro::protocols::store::{Request, Response, SharedStore};
use chorus_repro::transport::{
    FaultyPlan, FaultyTcp, MetricsSnapshot, TcpConfigBuilder, TcpTransport, TransportMetrics,
};
use std::marker::PhantomData;
use std::net::SocketAddr;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::Duration;

/// Seeds per protocol; the three matrices are disjoint.
const PER_PROTOCOL: u64 = 24;

/// Fast link tuning so fault detection and reconnection happen at test
/// speed: heartbeat 50ms ⇒ a half-dead link is torn down after 150ms,
/// and reconnect backoff starts at 2ms.
const HEARTBEAT: Duration = Duration::from_millis(50);
const RETRY_BASE: Duration = Duration::from_millis(2);

fn seed_base() -> u64 {
    std::env::var("CHORUS_TCP_SEED_BASE").ok().and_then(|s| s.parse().ok()).unwrap_or(49374)
}

/// Hands out loopback listener ports from a process-wide monotonic
/// counter, probing each candidate before use.
///
/// Probe-then-rebind against `:0` (what `free_local_addrs` does) has a
/// window in which a concurrently running test — or one of this suite's
/// own `FaultyTcp` proxies binding `:0` — can be handed the just-probed
/// port by the kernel; with hundreds of binds per run that race fires,
/// one endpoint dies at bind, and its peers starve. The counter keeps
/// every port this process hands out unique, the range sits below the
/// kernel's ephemeral window (so `:0` binds can never be assigned into
/// it), and the probe skips ports some other process happens to own.
/// The process-id offset spreads concurrently running test binaries
/// across the range.
fn chaos_addrs(n: usize) -> Vec<SocketAddr> {
    use std::sync::atomic::{AtomicU16, Ordering};
    use std::sync::OnceLock;
    static NEXT_PORT: OnceLock<AtomicU16> = OnceLock::new();
    let next =
        NEXT_PORT.get_or_init(|| AtomicU16::new(21000 + (std::process::id() % 400) as u16 * 20));
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let port = next.fetch_add(1, Ordering::Relaxed);
        if !(21000..32768).contains(&port) {
            next.store(21000, Ordering::Relaxed);
            continue;
        }
        let addr = SocketAddr::from(([127, 0, 0, 1], port));
        if std::net::TcpListener::bind(addr).is_ok() {
            out.push(addr);
        }
    }
    out
}

/// Route resolver for one run: either transparent (the clean baseline)
/// or through a seeded [`FaultyTcp`] proxy per directed edge.
struct Router {
    proxy: Option<FaultyTcp>,
}

impl Router {
    fn clean() -> Self {
        Router { proxy: None }
    }

    fn chaotic(seed: u64) -> Self {
        Router { proxy: Some(FaultyTcp::new(FaultyPlan::chaos(seed))) }
    }

    fn route(&self, edge: &str, real: SocketAddr) -> SocketAddr {
        match &self.proxy {
            Some(proxy) => proxy.route(edge, real).expect("proxy listener must bind"),
            None => real,
        }
    }

    /// Proxied connections beyond one per routed edge — i.e. the
    /// reconnects the chaos actually forced.
    fn reconnections(&self) -> u64 {
        self.proxy
            .as_ref()
            .map_or(0, |p| (p.connection_count() as u64).saturating_sub(p.edge_count() as u64))
    }
}

/// Builds the `TcpConfig` the location `$me` uses: its own entry is its
/// real address (the listener bind), every peer's entry is routed
/// through the run's proxy for the `me->peer` edge — so each direction
/// of each link gets its own independent fault schedule.
macro_rules! cfg_for {
    ($census:ty, $me:ident, $router:expr, $addr_of:expr, [$($loc:ident),+ $(,)?]) => {{
        let me = stringify!($me);
        let mut builder =
            TcpConfigBuilder::new().heartbeat(HEARTBEAT).retry_base(RETRY_BASE);
        $(
            let name = stringify!($loc);
            let real = $addr_of(name);
            let addr =
                if name == me { real } else { $router.route(&format!("{me}->{name}"), real) };
            builder = builder.location($loc, addr);
        )+
        builder.build::<$census>().unwrap()
    }};
}

/// Runs `body` and, if it panics, writes the proxy's fault schedule to
/// `target/tcp-chaos/<protocol>-seed-<seed>.log` before re-panicking
/// with the seed and replay instructions.
fn with_scenario_dump(protocol: &str, seed: u64, router: &Router, body: impl FnOnce()) {
    if let Err(payload) = std::panic::catch_unwind(AssertUnwindSafe(body)) {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        let dump = router.proxy.as_ref().map_or_else(
            || "(clean run: no proxy, no schedule)".to_string(),
            FaultyTcp::scenario_dump,
        );
        let dir = std::path::Path::new("target").join("tcp-chaos");
        std::fs::create_dir_all(&dir).ok();
        let path = dir.join(format!("{protocol}-seed-{seed}.log"));
        std::fs::write(&path, dump).ok();
        let base = seed - seed_offset(protocol);
        panic!(
            "{protocol} failed under FaultyTcp seed {seed}: {message}\n\
             fault schedule dumped to {} — replay with \
             CHORUS_TCP_SEED_BASE={base} cargo test --test tcp_chaos",
            path.display()
        );
    }
}

/// Where each protocol's matrix starts relative to the seed base.
fn seed_offset(protocol: &str) -> u64 {
    match protocol {
        "gmw" => 1_000,
        "lottery" => 2_000,
        "pooled_kvs" => 9_000,
        _ => 0,
    }
}

/// One protocol's full matrix: a clean (un-proxied) baseline run pins
/// the per-edge metrics, then every seed must reproduce them exactly
/// through the chaos — delivered frames are invariant because
/// retransmission never reaches the session layer. Returns the total
/// forced reconnections, which the caller asserts is non-zero: a matrix
/// that never killed a live connection tested nothing.
fn run_matrix(protocol: &str, run: impl Fn(&Router) -> MetricsSnapshot) -> u64 {
    let baseline = run(&Router::clean());
    assert!(!baseline.is_empty(), "{protocol}: the clean run must produce traffic");
    let base = seed_base() + seed_offset(protocol);
    let mut reconnections = 0;
    for seed in base..base + PER_PROTOCOL {
        let router = Router::chaotic(seed);
        with_scenario_dump(protocol, seed, &router, || {
            let under_chaos = run(&router);
            assert_eq!(
                under_chaos, baseline,
                "{protocol} seed {seed}: per-edge delivered-frame metrics must be \
                 byte-identical to the fault-free run"
            );
        });
        reconnections += router.reconnections();
    }
    reconnections
}

// ---------------------------------------------------------------------
// kvs_backup: client + primary + two backups over four real listeners,
// with in-protocol state corruption on top of the socket chaos.
// ---------------------------------------------------------------------

type Backups = chorus_repro::core::LocationSet!(Backup1, Backup2);
type Census = KvsCensus<Backups>;

fn run_kvs_backup(router: &Router) -> MetricsSnapshot {
    let addrs = chaos_addrs(4);
    let addr_of = |name: &str| match name {
        "Client" => addrs[0],
        "Primary" => addrs[1],
        "Backup1" => addrs[2],
        "Backup2" => addrs[3],
        _ => unreachable!("unknown location {name}"),
    };
    let metrics = Arc::new(TransportMetrics::new());

    let mut servers = Vec::new();
    macro_rules! server {
        ($ty:ident, $corrupt:expr) => {{
            let cfg = cfg_for!(Census, $ty, router, addr_of, [Client, Primary, Backup1, Backup2]);
            let metrics = Arc::clone(&metrics);
            servers.push(std::thread::spawn(move || {
                let endpoint = Endpoint::builder($ty)
                    .transport(TcpTransport::bind($ty, cfg).unwrap())
                    .layer(metrics)
                    .build();
                let session = endpoint.session();
                let store = SharedStore::new();
                if $corrupt {
                    store.corrupt_next_put();
                }
                let outcome = session.epp_and_run(ReplicatedKvs::<Backups, _, _, _> {
                    request: session.remote(Client),
                    states: session.local_faceted(store.clone()),
                    phantom: PhantomData,
                });
                (session.unwrap(outcome.resynched), store.snapshot())
            }));
        }};
    }
    server!(Primary, false);
    server!(Backup1, true);
    server!(Backup2, false);

    let cfg = cfg_for!(Census, Client, router, addr_of, [Client, Primary, Backup1, Backup2]);
    let client_metrics = Arc::clone(&metrics);
    let client = std::thread::spawn(move || {
        let endpoint = Endpoint::builder(Client)
            .transport(TcpTransport::bind(Client, cfg).unwrap())
            .layer(client_metrics)
            .build();
        let session = endpoint.session();
        let outcome = session.epp_and_run(ReplicatedKvs::<Backups, _, _, _> {
            request: session.local(Request::Put("k".into(), "v".into())),
            states: session.remote_faceted(<Servers<Backups>>::new()),
            phantom: PhantomData,
        });
        session.unwrap(outcome.response)
    });

    assert_eq!(client.join().unwrap(), Response::NotFound);
    let results: Vec<_> = servers.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(results.iter().all(|(resynched, _)| *resynched), "every server saw the resynch");
    let reference = &results[0].1;
    assert!(results.iter().all(|(_, snapshot)| snapshot == reference), "replicas converged");
    assert_eq!(reference.get("k").map(String::as_str), Some("v"));
    metrics.snapshot()
}

#[test]
fn kvs_backup_survives_real_socket_chaos() {
    let reconnections = run_matrix("kvs_backup", run_kvs_backup);
    assert!(
        reconnections > 0,
        "the kvs matrix must actually kill live connections and force reconnects"
    );
}

// ---------------------------------------------------------------------
// gmw: three-party secure computation of majority(t, t, f); the OT and
// share traffic is the densest of the three, so kill thresholds fire
// repeatedly mid-protocol.
// ---------------------------------------------------------------------

type Parties = chorus_repro::core::LocationSet!(P1, P2, P3);

fn run_gmw(router: &Router) -> MetricsSnapshot {
    let addrs = chaos_addrs(3);
    let addr_of = |name: &str| match name {
        "P1" => addrs[0],
        "P2" => addrs[1],
        "P3" => addrs[2],
        _ => unreachable!("unknown location {name}"),
    };
    let circuit = Arc::new(
        Circuit::input("P1", 0)
            .and(Circuit::input("P2", 0))
            .xor(Circuit::input("P1", 0).and(Circuit::input("P3", 0)))
            .xor(Circuit::input("P2", 0).and(Circuit::input("P3", 0))),
    );
    let metrics = Arc::new(TransportMetrics::new());
    let mut handles = Vec::new();
    macro_rules! party {
        ($ty:ident, $input:expr) => {{
            let cfg = cfg_for!(Parties, $ty, router, addr_of, [P1, P2, P3]);
            let circuit = Arc::clone(&circuit);
            let metrics = Arc::clone(&metrics);
            handles.push(std::thread::spawn(move || {
                let endpoint = Endpoint::builder($ty)
                    .transport(TcpTransport::bind($ty, cfg).unwrap())
                    .layer(metrics)
                    .build();
                let session = endpoint.session();
                session.epp_and_run(Gmw::<Parties, _, _> {
                    circuit: &circuit,
                    inputs: &session.local_faceted(vec![$input]),
                    phantom: PhantomData,
                })
            }));
        }};
    }
    party!(P1, true);
    party!(P2, true);
    party!(P3, false);
    let results: Vec<bool> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(results, vec![true, true, true], "majority(t, t, f) = t at every party");
    metrics.snapshot()
}

#[test]
fn gmw_survives_real_socket_chaos() {
    let reconnections = run_matrix("gmw", run_gmw);
    assert!(
        reconnections > 0,
        "the gmw matrix must actually kill live connections and force reconnects"
    );
}

// ---------------------------------------------------------------------
// lottery: three clients, two servers, one analyst — six listeners,
// commit-then-open fairness with the opens crossing dying sockets.
// ---------------------------------------------------------------------

type Clients = chorus_repro::core::LocationSet!(C1, C2, C3);
type LotteryServers = chorus_repro::core::LocationSet!(S1, S2);
type LotteryCensus = chorus_repro::core::LocationSet!(Analyst, C1, C2, C3, S1, S2);

fn run_lottery(router: &Router) -> MetricsSnapshot {
    const SECRETS: [u64; 3] = [1001, 2002, 3003];
    let addrs = chaos_addrs(6);
    let addr_of = |name: &str| match name {
        "Analyst" => addrs[0],
        "C1" => addrs[1],
        "C2" => addrs[2],
        "C3" => addrs[3],
        "S1" => addrs[4],
        "S2" => addrs[5],
        _ => unreachable!("unknown location {name}"),
    };
    let metrics = Arc::new(TransportMetrics::new());
    let mut handles = Vec::new();

    macro_rules! node {
        ($ty:ident, $secrets:expr, $cheaters:expr) => {{
            let cfg = cfg_for!(LotteryCensus, $ty, router, addr_of, [Analyst, C1, C2, C3, S1, S2]);
            let metrics = Arc::clone(&metrics);
            handles.push(std::thread::spawn(move || {
                let endpoint = Endpoint::builder($ty)
                    .transport(TcpTransport::bind($ty, cfg).unwrap())
                    .layer(metrics)
                    .build();
                let session = endpoint.session();
                let _ = session.epp_and_run(Lottery::<
                    Clients,
                    LotteryServers,
                    LotteryCensus,
                    _,
                    _,
                    _,
                    _,
                    _,
                    _,
                    _,
                > {
                    secrets: &$secrets(&session),
                    tau: 300,
                    cheaters: &$cheaters(&session),
                    phantom: PhantomData,
                });
            }));
        }};
    }
    macro_rules! client {
        ($ty:ident, $secret:expr) => {
            node!(
                $ty,
                |s: &chorus_repro::core::Session<_, $ty, _>| s
                    .local_faceted(FLOTTERY::new($secret)),
                |s: &chorus_repro::core::Session<_, $ty, _>| s
                    .remote_faceted(LotteryServers::new())
            )
        };
    }
    macro_rules! server {
        ($ty:ident) => {
            node!(
                $ty,
                |s: &chorus_repro::core::Session<_, $ty, _>| s.remote_faceted(Clients::new()),
                |s: &chorus_repro::core::Session<_, $ty, _>| s.local_faceted(false)
            )
        };
    }

    client!(C1, SECRETS[0]);
    client!(C2, SECRETS[1]);
    client!(C3, SECRETS[2]);
    server!(S1);
    server!(S2);

    let cfg = cfg_for!(LotteryCensus, Analyst, router, addr_of, [Analyst, C1, C2, C3, S1, S2]);
    let analyst_metrics = Arc::clone(&metrics);
    let analyst = std::thread::spawn(move || {
        let endpoint = Endpoint::builder(Analyst)
            .transport(TcpTransport::bind(Analyst, cfg).unwrap())
            .layer(analyst_metrics)
            .build();
        let session = endpoint.session();
        let out = session.epp_and_run(Lottery::<
            Clients,
            LotteryServers,
            LotteryCensus,
            _,
            _,
            _,
            _,
            _,
            _,
            _,
        > {
            secrets: &session.remote_faceted(Clients::new()),
            tau: 300,
            cheaters: &session.remote_faceted(LotteryServers::new()),
            phantom: PhantomData,
        });
        session.unwrap(out)
    });

    for h in handles {
        h.join().unwrap();
    }
    let value = analyst.join().unwrap().expect("honest servers, so the lottery must not abort");
    assert!(
        SECRETS.contains(&value),
        "the analyst must reconstruct one of the client secrets, got {value}"
    );
    metrics.snapshot()
}

#[test]
fn lottery_survives_real_socket_chaos() {
    let reconnections = run_matrix("lottery", run_lottery);
    assert!(
        reconnections > 0,
        "the lottery matrix must actually kill live connections and force reconnects"
    );
}

// ---------------------------------------------------------------------
// The pooled session runtime over real sockets under chaos: many
// concurrent sessions multiplexed on ONE link pair whose connections
// keep dying. The waker-driven receive path and the link layer's
// replay must compose — no session hangs, every answer is right.
// ---------------------------------------------------------------------

#[test]
fn pooled_sessions_survive_real_socket_chaos() {
    const SESSIONS: u64 = 64;
    let seed = seed_base() + seed_offset("pooled_kvs");
    let router = Router::chaotic(seed);
    let addrs = chaos_addrs(2);
    let addr_of = |name: &str| match name {
        "Client" => addrs[0],
        "Primary" => addrs[1],
        _ => unreachable!("unknown location {name}"),
    };
    let client_cfg = cfg_for!(SimpleKvsCensus, Client, router, addr_of, [Client, Primary]);
    let server_cfg = cfg_for!(SimpleKvsCensus, Primary, router, addr_of, [Client, Primary]);
    with_scenario_dump("pooled_kvs", seed, &router, || {
        let client = Arc::new(Endpoint::new(TcpTransport::bind(Client, client_cfg).unwrap()));
        let server = Arc::new(Endpoint::new(TcpTransport::bind(Primary, server_cfg).unwrap()));
        let runtime = SessionRuntime::new(4);
        let store = SharedStore::new();
        let servers: Vec<_> = (0..SESSIONS)
            .map(|id| runtime.spawn(&server, id, PooledKvsServer::new(store.clone())))
            .collect();
        let clients: Vec<_> = (0..SESSIONS)
            .map(|id| {
                runtime.spawn(
                    &client,
                    id,
                    PooledKvsClient::new(Request::Put(format!("k{id}"), format!("v{id}"))),
                )
            })
            .collect();
        for (id, handle) in clients.into_iter().enumerate() {
            assert_eq!(handle.join().unwrap(), Response::NotFound, "client {id}");
        }
        for handle in servers {
            handle.join().unwrap();
        }
        assert_eq!(store.get("k0"), Response::Found("v0".into()));
        assert_eq!(
            store.get(&format!("k{}", SESSIONS - 1)),
            Response::Found(format!("v{}", SESSIONS - 1))
        );
    });
}
