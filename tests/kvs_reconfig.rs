//! The KVS reconfiguration chaos matrix: a mixed `Get`/`Put` workload
//! driven through every reconfiguration kind — join, leave, shard
//! split, shard migration, and crash-recovery — over `SimTransport`
//! chaos schedules with an *extra* partition window injected to span
//! the reconfiguration itself. Every client operation must either
//! succeed consistently with the in-driver per-key model or fail with a
//! typed stale-epoch/unavailable error — never a hang, never a silently
//! wrong read — and the whole run is deterministic per seed.
//!
//! Seeds come from `CHORUS_SIM_SEED_BASE` (decimal, default `49374`),
//! matching `sim_chaos`. On failure the full per-link schedule is
//! dumped to `target/sim-traces/kvs-<op>-seed-<seed>.log` and the panic
//! names the replaying env value.

use chorus_repro::kvs::cluster::{SimCluster, Universe};
use chorus_repro::kvs::data_plane::KvsError;
use chorus_repro::transport::{FaultPlan, Partition, SimNet};

/// Seeds per reconfiguration kind; five kinds × this many seeds, plus
/// the partition axis baked into every plan.
const PER_OP: u64 = 8;

/// This suite's offset in the shared seed space (sim_chaos uses
/// 1_000..5_000).
const SEED_OFFSET: u64 = 6_000;

fn seed_base() -> u64 {
    std::env::var("CHORUS_SIM_SEED_BASE").ok().and_then(|s| s.parse().ok()).unwrap_or(49374)
}

/// Runs `body` and, if it panics, dumps the cluster net's schedule to
/// `target/sim-traces/` and re-panics naming the seed — same contract
/// as `sim_chaos::with_schedule_dump`.
fn with_cluster_dump(op: &str, seed: u64, net: &SimNet<Universe>, body: impl FnOnce()) {
    if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body)) {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        let dir = std::path::Path::new("target").join("sim-traces");
        std::fs::create_dir_all(&dir).ok();
        let path = dir.join(format!("kvs-{op}-seed-{seed}.log"));
        std::fs::write(&path, net.schedule_dump()).ok();
        panic!(
            "kvs {op} failed under fault-plan seed {seed}: {message}\n\
             schedule dumped to {} — replay with \
             CHORUS_SIM_SEED_BASE={} cargo test --test kvs_reconfig",
            path.display(),
            seed - SEED_OFFSET,
        );
    }
}

/// The hostile plan for one run: a seeded chaos schedule (latency
/// jitter, drops with retransmission, duplication, maybe its own early
/// partition) plus a second, wide partition window timed to overlap the
/// reconfiguration sessions mid-scenario.
fn hostile_plan(seed: u64) -> FaultPlan {
    let start = 16 + seed % 24;
    FaultPlan::chaos(seed).with_partition(Partition::everywhere(start, start + 48))
}

/// One mixed workload round; every success is model-checked inside
/// `put`/`get`, every failure must be a typed error.
fn workload(cluster: &mut SimCluster, round: u64, keys: u64) {
    for i in 0..keys {
        let key = format!("key-{i}");
        match cluster.put(&key, &format!("r{round}-{i}")) {
            Ok(_) => {}
            Err(KvsError::StaleEpoch { .. } | KvsError::Frozen | KvsError::Unavailable { .. }) => {}
        }
        match cluster.get(&key) {
            Ok(_) => {}
            Err(KvsError::StaleEpoch { .. } | KvsError::Frozen | KvsError::Unavailable { .. }) => {}
        }
    }
}

/// Drives one full scenario for a reconfiguration kind under one seed.
/// Returns the model's checked-op count (for the determinism pin).
fn run_scenario(op: &str, seed: u64) -> u64 {
    let census: &[&str] =
        if op == "join" { &["N1", "N2", "N3"] } else { &["N1", "N2", "N3", "N4"] };
    let mut cluster = SimCluster::new(hostile_plan(seed), census, 4);
    cluster.set_chunk(8);
    let net = cluster.net().clone();
    let body = || {
        let cluster = &mut cluster;
        workload(cluster, 0, 8);
        match op {
            "join" => {
                assert!(cluster.join("N4"), "join must commit on a healing network");
            }
            "leave" => {
                assert!(cluster.leave("N4"), "leave must commit on a healing network");
            }
            "split" => {
                let victim = cluster.config().shard_of("key-0").id;
                assert!(cluster.split_shard(victim), "split must commit");
            }
            "migrate" => {
                let target = cluster.config().shards[0].id;
                assert!(cluster.migrate_shard(target, &["N2", "N3", "N4"]), "migrate commits");
            }
            "recover" => {
                cluster.crash("N2");
                workload(cluster, 1, 8);
                let recovered = cluster.recover("N2");
                assert!(recovered > 0, "recovery must pull entries from survivors");
            }
            other => panic!("unknown op {other}"),
        }
        workload(cluster, 2, 8);
        // Every committed key must still read consistently (the model
        // check runs inside `get`).
        for i in 0..8 {
            let _ = cluster.get(&format!("key-{i}"));
        }
    };
    with_cluster_dump(op, seed, &net, body);
    cluster.model.checked()
}

fn sweep(op: &str, lane: u64) {
    let base = seed_base() + SEED_OFFSET + lane * 100;
    for i in 0..PER_OP {
        run_scenario(op, base + i);
    }
}

#[test]
fn join_survives_the_seed_matrix() {
    sweep("join", 0);
}

#[test]
fn leave_survives_the_seed_matrix() {
    sweep("leave", 1);
}

#[test]
fn split_survives_the_seed_matrix() {
    sweep("split", 2);
}

#[test]
fn migrate_survives_the_seed_matrix() {
    sweep("migrate", 3);
}

#[test]
fn recover_survives_the_seed_matrix() {
    sweep("recover", 4);
}

/// The determinism pin: the same seed must produce the same run —
/// checked-op count for the driver and, more strictly, identical
/// per-link delivery schedules for the net.
#[test]
fn runs_are_deterministic_per_seed() {
    let seed = seed_base() + SEED_OFFSET + 999;
    let trace = |_| {
        let mut cluster = SimCluster::new(hostile_plan(seed), &["N1", "N2", "N3"], 4);
        cluster.set_chunk(8);
        workload(&mut cluster, 0, 8);
        assert!(cluster.join("N4"));
        workload(&mut cluster, 1, 8);
        (cluster.model.checked(), cluster.net().schedule_dump())
    };
    let (checked_a, dump_a) = trace(0);
    let (checked_b, dump_b) = trace(1);
    assert_eq!(checked_a, checked_b, "driver took a different path on the same seed");
    assert_eq!(dump_a, dump_b, "net delivered a different schedule on the same seed");
}
