//! Cross-crate integration tests: the case-study choreographies
//! executed as real distributed systems (threads + TCP sockets or
//! channels), exercised through the facade crate.

use chorus_repro::core::{ChoreographyLocation as _, Endpoint, LocationSet as _};
use chorus_repro::mpc::Circuit;
use chorus_repro::protocols::gmw::Gmw;
use chorus_repro::protocols::kvs_backup::{KvsCensus, ReplicatedKvs, Servers};
use chorus_repro::protocols::roles::{Backup1, Backup2, Client, Primary, P1, P2, P3};
use chorus_repro::protocols::store::{Request, Response, SharedStore};
use chorus_repro::transport::{
    free_local_addrs, LocalTransport, LocalTransportChannel, TcpConfigBuilder, TcpTransport,
};
use std::marker::PhantomData;

type Backups = chorus_repro::core::LocationSet!(Backup1, Backup2);
type Census = KvsCensus<Backups>;

#[test]
fn replicated_kvs_over_tcp_with_fault_injection() {
    let addrs = free_local_addrs(4).unwrap();
    let config = TcpConfigBuilder::new()
        .location(Client, addrs[0])
        .location(Primary, addrs[1])
        .location(Backup1, addrs[2])
        .location(Backup2, addrs[3])
        .build::<Census>()
        .unwrap();

    let mut servers = Vec::new();
    macro_rules! server {
        ($ty:ty, $corrupt:expr) => {{
            let cfg = config.clone();
            servers.push(std::thread::spawn(move || {
                let endpoint = Endpoint::new(TcpTransport::bind(<$ty>::new(), cfg).unwrap());
                let session = endpoint.session();
                let store = SharedStore::new();
                if $corrupt {
                    store.corrupt_next_put();
                }
                let outcome = session.epp_and_run(ReplicatedKvs::<Backups, _, _, _> {
                    request: session.remote(Client),
                    states: session.local_faceted(store.clone()),
                    phantom: PhantomData,
                });
                (session.unwrap(outcome.resynched), store.snapshot())
            }));
        }};
    }
    server!(Primary, false);
    server!(Backup1, true);
    server!(Backup2, false);

    let cfg = config;
    let client = std::thread::spawn(move || {
        let endpoint = Endpoint::new(TcpTransport::bind(Client, cfg).unwrap());
        let session = endpoint.session();
        let outcome = session.epp_and_run(ReplicatedKvs::<Backups, _, _, _> {
            request: session.local(Request::Put("k".into(), "v".into())),
            states: session.remote_faceted(<Servers<Backups>>::new()),
            phantom: PhantomData,
        });
        session.unwrap(outcome.response)
    });

    assert_eq!(client.join().unwrap(), Response::NotFound);
    let results: Vec<_> = servers.into_iter().map(|h| h.join().unwrap()).collect();
    // Every server saw the resynch and all replicas converged.
    assert!(results.iter().all(|(resynched, _)| *resynched));
    let reference = &results[0].1;
    assert!(results.iter().all(|(_, snapshot)| snapshot == reference));
    assert_eq!(reference.get("k").map(String::as_str), Some("v"));
}

#[test]
fn gmw_three_parties_over_tcp() {
    type Parties = chorus_repro::core::LocationSet!(P1, P2, P3);
    let addrs = free_local_addrs(3).unwrap();
    let config = TcpConfigBuilder::new()
        .location(P1, addrs[0])
        .location(P2, addrs[1])
        .location(P3, addrs[2])
        .build::<Parties>()
        .unwrap();

    // majority(a,b,c) over private inputs (true, true, false) = true
    let circuit = std::sync::Arc::new(
        Circuit::input("P1", 0)
            .and(Circuit::input("P2", 0))
            .xor(Circuit::input("P1", 0).and(Circuit::input("P3", 0)))
            .xor(Circuit::input("P2", 0).and(Circuit::input("P3", 0))),
    );

    let mut handles = Vec::new();
    macro_rules! party {
        ($ty:ty, $input:expr) => {{
            let cfg = config.clone();
            let circuit = std::sync::Arc::clone(&circuit);
            handles.push(std::thread::spawn(move || {
                let endpoint = Endpoint::new(TcpTransport::bind(<$ty>::new(), cfg).unwrap());
                let session = endpoint.session();
                session.epp_and_run(Gmw::<Parties, _, _> {
                    circuit: &circuit,
                    inputs: &session.local_faceted(vec![$input]),
                    phantom: PhantomData,
                })
            }));
        }};
    }
    party!(P1, true);
    party!(P2, true);
    party!(P3, false);

    let results: Vec<bool> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(results, vec![true, true, true]);
}

#[test]
fn kvs_gather_choreography_over_channels() {
    use chorus_repro::protocols::kvs_gather::{Kvs, KvsCensus, Request, Store};
    use chorus_repro::protocols::store::KeyValueStore as _;

    type GatherCensus = KvsCensus<Backups>;
    let channel = LocalTransportChannel::<GatherCensus>::new();

    let mut handles = Vec::new();
    macro_rules! backup {
        ($ty:ty) => {{
            let c = channel.clone();
            handles.push(std::thread::spawn(move || {
                let endpoint = Endpoint::new(LocalTransport::new(<$ty>::new(), c));
                let session = endpoint.session();
                let store = Store::default();
                let _ = session.epp_and_run(Kvs::<Backups, _, _, _, _> {
                    request: session.remote(Client),
                    backup_stores: &session.local_faceted::<Store, Backups, _>(store.clone()),
                    server_store: &session.remote(Primary),
                    phantom: PhantomData,
                });
                store.get("x")
            }));
        }};
    }
    backup!(Backup1);
    backup!(Backup2);

    // The primary (cannot use the macro: it owns `server_store`).
    let c = channel.clone();
    let primary = std::thread::spawn(move || {
        let endpoint = Endpoint::new(LocalTransport::new(Primary, c));
        let session = endpoint.session();
        let store = Store::default();
        let _ = session.epp_and_run(Kvs::<Backups, _, _, _, _> {
            request: session.remote(Client),
            backup_stores: &session.remote_faceted(Backups::new()),
            server_store: &session.local(store.clone()),
            phantom: PhantomData,
        });
        store.get("x")
    });

    let endpoint = Endpoint::new(LocalTransport::new(Client, channel));
    let session = endpoint.session();
    let out = session.epp_and_run(Kvs::<Backups, _, _, _, _> {
        request: session.local(Request::Put("x".into(), 9)),
        backup_stores: &session.remote_faceted(Backups::new()),
        server_store: &session.remote(Primary),
        phantom: PhantomData,
    });
    assert_eq!(session.unwrap(out), 0, "put succeeds");

    assert_eq!(primary.join().unwrap(), Some(9));
    for h in handles {
        assert_eq!(h.join().unwrap(), Some(9), "backups hold the written value");
    }
}
