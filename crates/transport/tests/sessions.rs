//! The tentpole guarantee, stress-tested: one transport pair sustains
//! many **concurrent** choreography sessions with correct,
//! non-interleaved results.
//!
//! Before session multiplexing, two choreographies sharing a transport
//! would interleave frames and corrupt each other; these tests run
//! N ≥ 8 simultaneous `SimpleKvs` sessions over one shared
//! `LocalTransport` pair and one shared `TcpTransport` pair, assert
//! every session's result, and check the shared metrics layer saw
//! exactly N× the single-run message count.

use chorus_core::Endpoint;
use chorus_protocols::kvs_simple::SimpleKvs;
use chorus_protocols::roles::{Client, Primary};
use chorus_protocols::store::{Request, Response, SharedStore};
use chorus_transport::{
    free_local_addrs, LocalTransport, LocalTransportChannel, TcpConfigBuilder, TcpTransport,
    TransportMetrics,
};
use std::sync::Arc;

type Census = chorus_core::LocationSet!(Client, Primary);

const SESSIONS: u64 = 12;

/// One `SimpleKvs` run sends exactly 2 messages: the request
/// (client → primary) and the response (primary → client).
const MESSAGES_PER_RUN: u64 = 2;

/// Runs `SESSIONS` concurrent `SimpleKvs` gets over the two endpoints,
/// with per-session keys, asserting every session observes its own
/// key's value.
fn run_concurrent_sessions<TC, TP>(
    client_endpoint: Arc<Endpoint<Census, Client, TC>>,
    primary_endpoint: Arc<Endpoint<Census, Primary, TP>>,
) where
    TC: chorus_core::SessionTransport<Census, Client> + Send + Sync + 'static,
    TP: chorus_core::SessionTransport<Census, Primary> + Send + Sync + 'static,
{
    let store = SharedStore::new();
    for id in 0..SESSIONS {
        store.put(&format!("key-{id}"), &format!("value-{id}"));
    }

    let mut handles = Vec::new();
    for id in 0..SESSIONS {
        let endpoint = Arc::clone(&primary_endpoint);
        let store = store.clone();
        handles.push(std::thread::spawn(move || {
            let session = endpoint.session_with_id(id);
            session.epp_and_run(SimpleKvs {
                request: session.remote(Client),
                state: session.local(store),
            });
        }));
        let endpoint = Arc::clone(&client_endpoint);
        handles.push(std::thread::spawn(move || {
            let session = endpoint.session_with_id(id);
            let out = session.epp_and_run(SimpleKvs {
                request: session.local(Request::Get(format!("key-{id}"))),
                state: session.remote(Primary),
            });
            assert_eq!(
                session.unwrap(out),
                Response::Found(format!("value-{id}")),
                "session {id} must see its own key, uncorrupted by its neighbors"
            );
        }));
    }
    for handle in handles {
        handle.join().expect("session thread");
    }
}

#[test]
fn concurrent_sessions_share_one_local_transport_pair() {
    let channel = LocalTransportChannel::<Census>::new();
    let metrics = Arc::new(TransportMetrics::new());
    let client_endpoint = Arc::new(
        Endpoint::builder(Client)
            .transport(LocalTransport::new(Client, channel.clone()))
            .layer(Arc::clone(&metrics))
            .build(),
    );
    let primary_endpoint = Arc::new(
        Endpoint::builder(Primary)
            .transport(LocalTransport::new(Primary, channel))
            .layer(Arc::clone(&metrics))
            .build(),
    );

    run_concurrent_sessions(client_endpoint, primary_endpoint);

    // The shared metrics layer saw exactly N concurrent runs.
    assert_eq!(metrics.total_messages(), SESSIONS * MESSAGES_PER_RUN);
    assert_eq!(metrics.messages_to("Client"), SESSIONS);
    assert_eq!(metrics.messages_to("Primary"), SESSIONS);
}

#[test]
fn concurrent_sessions_share_one_tcp_transport_pair() {
    let addrs = free_local_addrs(2).unwrap();
    let config = TcpConfigBuilder::new()
        .location(Client, addrs[0])
        .location(Primary, addrs[1])
        .build::<Census>()
        .unwrap();

    let metrics = Arc::new(TransportMetrics::new());
    let client_endpoint = Arc::new(
        Endpoint::builder(Client)
            .transport(TcpTransport::bind(Client, config.clone()).unwrap())
            .layer(Arc::clone(&metrics))
            .build(),
    );
    let primary_endpoint = Arc::new(
        Endpoint::builder(Primary)
            .transport(TcpTransport::bind(Primary, config).unwrap())
            .layer(Arc::clone(&metrics))
            .build(),
    );

    run_concurrent_sessions(client_endpoint, primary_endpoint);

    assert_eq!(metrics.total_messages(), SESSIONS * MESSAGES_PER_RUN);
    assert_eq!(metrics.messages_to("Client"), SESSIONS);
    assert_eq!(metrics.messages_to("Primary"), SESSIONS);
}

/// Sequential sessions over one endpoint pair reuse the same links; the
/// per-session sequence numbers restart and everything stays correct.
#[test]
fn many_sequential_sessions_reuse_one_endpoint_pair() {
    let channel = LocalTransportChannel::<Census>::new();
    let client_endpoint = Endpoint::new(LocalTransport::new(Client, channel.clone()));
    let primary_endpoint = Endpoint::new(LocalTransport::new(Primary, channel));

    let store = SharedStore::new();
    store.put("k", "v");

    for round in 0..20u64 {
        let store = store.clone();
        std::thread::scope(|scope| {
            let primary_session = primary_endpoint.session_with_id(round);
            let client_session = client_endpoint.session_with_id(round);
            scope.spawn(move || {
                primary_session.epp_and_run(SimpleKvs {
                    request: primary_session.remote(Client),
                    state: primary_session.local(store),
                });
            });
            let out = client_session.epp_and_run(SimpleKvs {
                request: client_session.local(Request::Get("k".into())),
                state: client_session.remote(Primary),
            });
            assert_eq!(client_session.unwrap(out), Response::Found("v".into()));
        });
    }
}
