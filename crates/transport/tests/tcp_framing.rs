//! TCP framing robustness: the reader must reassemble frames
//! identically no matter how the sender's bytes are sliced across
//! `write` calls.
//!
//! A real peer coalesces small frames into one write and splits large
//! ones into two slices (the zero-copy path from the wire-path PR), but
//! the *network* owes us nothing: TCP may deliver any byte-level
//! segmentation. These tests connect a raw socket, perform the
//! handshake, and drip envelope frames through chunk sizes
//! N ∈ {1, 2, 7, 4096}, asserting the demultiplexed frames match what a
//! single contiguous write produces.

use chorus_core::SessionTransport as _;
use chorus_transport::{free_local_addrs, TcpConfigBuilder, TcpTransport};
use chorus_wire::Envelope;
use std::io::Write;
use std::net::TcpStream;

chorus_core::locations! { N0, N1 }
type Duo = chorus_core::LocationSet!(N0, N1);

/// Payloads sized to straddle every chunk boundary in the matrix,
/// including empty and one crossing the 4096 chunk size.
fn test_frames() -> Vec<Envelope> {
    vec![
        Envelope::new(1, 0, b"".to_vec()),
        Envelope::new(1, 1, b"short".to_vec()),
        Envelope::new(2, 0, (0..=255u8).collect::<Vec<u8>>()),
        Envelope::new(1, 2, vec![0xA5; 5000]),
    ]
}

/// Encodes `frame` exactly as `TcpTransport` puts it on the wire: a
/// `u32` little-endian outer length, then the link-frame data header
/// (tag + per-link sequence), then the envelope bytes.
fn wire_bytes(link_seq: u64, frame: &Envelope) -> Vec<u8> {
    let inner = frame.encode();
    let mut out = ((chorus_wire::DATA_HEADER_LEN + inner.len()) as u32).to_le_bytes().to_vec();
    out.extend_from_slice(&chorus_wire::data_header(link_seq));
    out.extend_from_slice(&inner);
    out
}

/// Binds a receiver for `N1`, connects a raw socket posing as `N0`, and
/// returns both.
fn receiver_and_raw_sender() -> (TcpTransport<Duo, N1>, TcpStream) {
    let addrs = free_local_addrs(2).unwrap();
    let config = TcpConfigBuilder::new()
        .location(N0, addrs[0])
        .location(N1, addrs[1])
        .build::<Duo>()
        .unwrap();
    // The listener is bound before `bind` returns, so a single connect
    // suffices (the OS backlog holds it until the acceptor thread runs).
    let receiver = TcpTransport::bind(N1, config).unwrap();
    let mut stream = TcpStream::connect(addrs[1]).unwrap();
    stream.set_nodelay(true).unwrap();
    // Handshake: a length-prefixed frame carrying the link mode byte
    // (0 = plain, so the receiver sends no resume cursor or acks this
    // raw socket would never read) and the sender's name.
    let hello = [&[0u8][..], b"N0"].concat();
    stream.write_all(&(hello.len() as u32).to_le_bytes()).unwrap();
    stream.write_all(&hello).unwrap();
    stream.flush().unwrap();
    (receiver, stream)
}

/// Writes `bytes` in `chunk`-sized slices, flushing after every slice
/// so each becomes its own TCP segment (as far as loopback allows).
fn write_chunked(stream: &mut TcpStream, bytes: &[u8], chunk: usize) {
    for piece in bytes.chunks(chunk) {
        stream.write_all(piece).unwrap();
        stream.flush().unwrap();
    }
}

#[test]
fn chunked_writes_reassemble_identically_to_a_single_write() {
    // The reference: every frame delivered from one contiguous write.
    let reference: Vec<Envelope> = {
        let (receiver, mut stream) = receiver_and_raw_sender();
        let mut all = Vec::new();
        for (seq, frame) in test_frames().iter().enumerate() {
            all.extend_from_slice(&wire_bytes(seq as u64, frame));
        }
        stream.write_all(&all).unwrap();
        stream.flush().unwrap();
        test_frames().iter().map(|f| receiver.receive_frame(f.session, "N0").unwrap()).collect()
    };
    assert_eq!(reference, test_frames(), "single-write delivery is the baseline");

    for chunk in [1usize, 2, 7, 4096] {
        let (receiver, mut stream) = receiver_and_raw_sender();
        for (seq, frame) in test_frames().iter().enumerate() {
            write_chunked(&mut stream, &wire_bytes(seq as u64, frame), chunk);
        }
        let got: Vec<Envelope> = test_frames()
            .iter()
            .map(|f| receiver.receive_frame(f.session, "N0").unwrap())
            .collect();
        assert_eq!(
            got, reference,
            "chunk size {chunk}: reassembly must match the single-write delivery"
        );
    }
}

#[test]
fn chunk_boundaries_inside_the_length_prefix_are_harmless() {
    // One frame whose 4-byte outer length, 20-byte header, and payload
    // all straddle 3-byte chunks — every prefix field gets split.
    let (receiver, mut stream) = receiver_and_raw_sender();
    let frame = Envelope::new(7, 0, b"boundary-crossing payload".to_vec());
    write_chunked(&mut stream, &wire_bytes(0, &frame), 3);
    assert_eq!(receiver.receive_frame(7, "N0").unwrap(), frame);
}

#[test]
fn large_payloads_cross_the_two_slice_send_path_intact() {
    // > 16 KiB payloads leave a real sender as two write slices (header
    // buffer + uncopied payload); whatever segmentation TCP applies,
    // the peer must reassemble the exact bytes. 64 KiB + 3 keeps the
    // length odd relative to every buffer size involved.
    let addrs = free_local_addrs(2).unwrap();
    let config = TcpConfigBuilder::new()
        .location(N0, addrs[0])
        .location(N1, addrs[1])
        .build::<Duo>()
        .unwrap();
    let receiver = TcpTransport::bind(N1, config.clone()).unwrap();
    let sender = TcpTransport::bind(N0, config).unwrap();

    let payload: Vec<u8> = (0..65_539u32).map(|i| (i % 251) as u8).collect();
    let frame = Envelope::new(3, 0, payload.clone());
    sender.send_frame("N1", frame.clone()).unwrap();
    // A small frame behind the large one catches any residue the
    // two-slice path might leave in the stream.
    let chaser = Envelope::new(3, 1, b"chaser".to_vec());
    sender.send_frame("N1", chaser.clone()).unwrap();

    let got = receiver.receive_frame(3, "N0").unwrap();
    assert_eq!(got.payload, payload.as_slice());
    assert_eq!(got, frame);
    assert_eq!(receiver.receive_frame(3, "N0").unwrap(), chaser);
}

#[test]
fn a_large_frame_dripped_byte_wise_still_reassembles() {
    // The reader's pooled-scratch path under the most adversarial
    // segmentation: a 20 KiB frame arriving in 4096-byte chunks, then
    // the same frame arriving byte-by-byte on a fresh connection.
    let payload: Vec<u8> = (0..20_480u32).map(|i| (i.wrapping_mul(31) % 256) as u8).collect();
    let frame = Envelope::new(9, 0, payload);

    for chunk in [4096usize, 1] {
        let (receiver, mut stream) = receiver_and_raw_sender();
        write_chunked(&mut stream, &wire_bytes(0, &frame), chunk);
        assert_eq!(
            receiver.receive_frame(9, "N0").unwrap(),
            frame,
            "chunk size {chunk} corrupted a large frame"
        );
    }
}
