//! Census polymorphism, distributed: one gather choreography instantiated
//! at two census sizes over real channels, with message accounting
//! confirming the n-messages-to-recipient shape.

use chorus_core::{
    ChoreoOp, Choreography, Endpoint, Located, LocationSet, LocationSetFoldable, Member,
    MultiplyLocated, Quire, Subset,
};
use chorus_transport::{LocalTransport, LocalTransportChannel, TransportMetrics};
use std::marker::PhantomData;
use std::sync::Arc;

chorus_core::locations! { Boss, W1, W2, W3 }
type Census = chorus_core::LocationSet!(Boss, W1, W2, W3);

/// Workers announce their name lengths; the boss sums them. Generic over
/// the worker set.
struct Tally<Workers, WSub, WFold, BossIdx> {
    phantom: PhantomData<(Workers, WSub, WFold, BossIdx)>,
}

impl<Workers, WSub, WFold, BossIdx> Choreography<Located<u32, Boss>>
    for Tally<Workers, WSub, WFold, BossIdx>
where
    Workers: LocationSet + Subset<Census, WSub> + LocationSetFoldable<Census, Workers, WFold>,
    Boss: Member<Census, BossIdx>,
{
    type L = Census;
    fn run(self, op: &impl ChoreoOp<Self::L>) -> Located<u32, Boss> {
        let facets = op.parallel_named(Workers::new(), |name| name.len() as u32);
        let gathered: MultiplyLocated<Quire<u32, Workers>, chorus_core::LocationSet!(Boss)> =
            op.gather(Workers::new(), <chorus_core::LocationSet!(Boss)>::new(), &facets);
        op.locally(Boss, |un| {
            un.unwrap_ref::<Quire<u32, Workers>, chorus_core::LocationSet!(Boss), chorus_core::Here>(
                &gathered,
            )
            .values()
            .sum()
        })
    }
}

fn run_tally<Workers, WSub, WFold, BossIdx>() -> (u32, Arc<TransportMetrics>)
where
    Workers: LocationSet + Subset<Census, WSub> + LocationSetFoldable<Census, Workers, WFold>,
    Boss: Member<Census, BossIdx>,
    Tally<Workers, WSub, WFold, BossIdx>: Send + 'static,
{
    let channel = LocalTransportChannel::<Census>::new();
    let metrics = Arc::new(TransportMetrics::new());
    let mut handles = Vec::new();

    macro_rules! worker {
        ($ty:ty) => {{
            let c = channel.clone();
            let m = Arc::clone(&metrics);
            handles.push(std::thread::spawn(move || {
                let endpoint = Endpoint::builder(<$ty>::default())
                    .transport(LocalTransport::new(<$ty>::default(), c))
                    .layer(m)
                    .build();
                let session = endpoint.session();
                let _ = session
                    .epp_and_run(Tally::<Workers, WSub, WFold, BossIdx> { phantom: PhantomData });
            }));
        }};
    }
    worker!(W1);
    worker!(W2);
    worker!(W3);

    let endpoint = Endpoint::builder(Boss)
        .transport(LocalTransport::new(Boss, channel))
        .layer(Arc::clone(&metrics))
        .build();
    let session = endpoint.session();
    let out = session.epp_and_run(Tally::<Workers, WSub, WFold, BossIdx> { phantom: PhantomData });
    for h in handles {
        h.join().unwrap();
    }
    let sum = session.unwrap::<u32, chorus_core::LocationSet!(Boss), chorus_core::Here>(out);
    (sum, metrics)
}

#[test]
fn one_choreography_two_census_sizes() {
    // Two workers.
    let (sum, metrics) = run_tally::<chorus_core::LocationSet!(W1, W2), _, _, _>();
    assert_eq!(sum, 4);
    assert_eq!(metrics.messages_to("Boss"), 2, "one gather message per worker");

    // Three workers — same choreography type, larger census.
    let (sum, metrics) = run_tally::<chorus_core::LocationSet!(W1, W2, W3), _, _, _>();
    assert_eq!(sum, 6);
    assert_eq!(metrics.messages_to("Boss"), 3);
    // Workers never message each other in this protocol.
    for w in ["W1", "W2", "W3"] {
        assert_eq!(metrics.messages_to(w), 0);
    }
}
