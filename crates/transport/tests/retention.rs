//! Retention-bound regression tests for the resilient TCP link.
//!
//! These tests speak the raw wire protocol from a hand-rolled peer so
//! they can put the link into states a healthy [`TcpTransport`] never
//! volunteers: a peer that receives but never acknowledges (retention
//! grows without bound unless the watermark parks the sender), and a
//! peer that dies for good while a sender is parked (the park must
//! surface [`TransportError::RetentionExceeded`], not hang). The third
//! test pins the batch-boundary ack: a burst that ends between ack
//! cadence points must still drain the sender's retention tail promptly
//! instead of waiting for a heartbeat.

use chorus_core::{Transport, TransportError};
use chorus_transport::{free_local_addrs, TcpConfigBuilder, TcpTransport};
use chorus_wire::{ControlFrame, LinkFrame};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

chorus_core::locations! { Alice, Bob }
type System = chorus_core::LocationSet!(Alice, Bob);

/// Reads one outer length-prefixed frame (blocking).
fn read_frame(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut body)?;
    Ok(body)
}

/// Writes one outer length-prefixed frame.
fn write_frame(stream: &mut TcpStream, body: &[u8]) -> std::io::Result<()> {
    stream.write_all(&(body.len() as u32).to_le_bytes())?;
    stream.write_all(body)
}

/// A fake resilient receiver: accepts one connection, answers the
/// hello with `Resume { next: 0 }`, then counts every data frame it
/// reads into `data_seen` — and never acks on its own. The write half
/// of the socket is handed back so the test decides when (or whether)
/// acknowledgements flow.
fn fake_peer(listener: TcpListener, data_seen: Arc<AtomicU64>) -> TcpStream {
    let (mut stream, _) = listener.accept().expect("sender never connected");
    read_frame(&mut stream).expect("no hello frame");
    write_frame(&mut stream, &ControlFrame::Resume { next: 0 }.encode())
        .expect("resume write failed");
    let write_half = stream.try_clone().expect("socket clone failed");
    std::thread::spawn(move || {
        while let Ok(body) = read_frame(&mut stream) {
            if matches!(LinkFrame::decode(&body), Ok(LinkFrame::Data { .. })) {
                data_seen.fetch_add(1, Ordering::SeqCst);
            }
        }
    });
    write_half
}

/// The watermark must park a sender whose peer stops acking — bounded
/// retention instead of unbounded queue growth — and an ack must wake
/// the parked sender so the stream finishes.
#[test]
fn dead_peer_cannot_oom_a_sender() {
    const LIMIT: usize = 2048;
    const MESSAGES: u64 = 120;
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let bob_addr = listener.local_addr().unwrap();
    let addrs = free_local_addrs(1).unwrap();
    let cfg = TcpConfigBuilder::new()
        .location(Alice, addrs[0])
        .location(Bob, bob_addr)
        // Heartbeats play no part here; park purely on the watermark.
        .heartbeat(Duration::from_secs(60))
        .retain_max(LIMIT)
        .build::<System>()
        .unwrap();
    let data_seen = Arc::new(AtomicU64::new(0));
    let peer = {
        let data_seen = Arc::clone(&data_seen);
        std::thread::spawn(move || fake_peer(listener, data_seen))
    };
    let alice = TcpTransport::<System, _>::bind(Alice, cfg).unwrap();
    let alice = Arc::new(alice);
    let sender = {
        let alice = Arc::clone(&alice);
        std::thread::spawn(move || {
            for i in 0..MESSAGES {
                alice.send("Bob", &[0x5a; 64]).map_err(|e| (i, e)).unwrap();
            }
        })
    };
    let mut write_half = peer.join().unwrap();

    // Phase 1: no acks flow. Retention must climb to the watermark and
    // stop there — never past it — while the sender parks.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_frames, bytes) = alice.retention("Bob");
        assert!(bytes <= LIMIT, "retention {bytes} burst past the {LIMIT}-byte watermark");
        // 64-byte payload + 33 bytes of framing = 97 wire bytes; once
        // another frame no longer fits, the sender is parked.
        if bytes + 97 > LIMIT {
            break;
        }
        assert!(Instant::now() < deadline, "sender never reached the watermark ({bytes} bytes)");
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(!sender.is_finished(), "sender should be parked at the watermark, not done");

    // Phase 2: start acking what actually arrived. Each prune must wake
    // the parked sender, so the whole stream completes.
    let deadline = Instant::now() + Duration::from_secs(10);
    while !sender.is_finished() {
        assert!(Instant::now() < deadline, "acks failed to wake the parked sender");
        let next = data_seen.load(Ordering::SeqCst);
        write_frame(&mut write_half, &ControlFrame::Ack { next }.encode()).unwrap();
        let (_, bytes) = alice.retention("Bob");
        assert!(bytes <= LIMIT, "retention {bytes} burst past the watermark mid-drain");
        std::thread::sleep(Duration::from_millis(5));
    }
    sender.join().unwrap();

    // Final ack covers the tail; retention accounting returns to zero.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        write_frame(
            &mut write_half,
            &ControlFrame::Ack { next: data_seen.load(Ordering::SeqCst) }.encode(),
        )
        .unwrap();
        let (frames, bytes) = alice.retention("Bob");
        if frames == 0 && bytes == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "retention tail never drained: {frames} frames");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A sender parked on the watermark whose link then dies for good must
/// get the typed [`TransportError::RetentionExceeded`] — naming the
/// edge and the watermark — not hang until the watchdog.
#[test]
fn parked_sender_surfaces_retention_exceeded_when_the_link_dies() {
    const LIMIT: usize = 1024;
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let bob_addr = listener.local_addr().unwrap();
    let addrs = free_local_addrs(1).unwrap();
    let cfg = TcpConfigBuilder::new()
        .location(Alice, addrs[0])
        .location(Bob, bob_addr)
        // Fast failure detection: the ack reader sees the socket die,
        // and the reconnect budget burns out in a few milliseconds.
        .heartbeat(Duration::from_millis(50))
        .retry_limit(3)
        .retry_base(Duration::from_millis(2))
        .retain_max(LIMIT)
        .build::<System>()
        .unwrap();
    let data_seen = Arc::new(AtomicU64::new(0));
    let peer = {
        let data_seen = Arc::clone(&data_seen);
        std::thread::spawn(move || fake_peer(listener, data_seen))
    };
    let alice = TcpTransport::<System, _>::bind(Alice, cfg).unwrap();
    let alice = Arc::new(alice);
    let sender = {
        let alice = Arc::clone(&alice);
        std::thread::spawn(move || {
            for _ in 0..64u32 {
                alice.send("Bob", &[0x5a; 64])?;
            }
            Ok::<(), TransportError>(())
        })
    };
    let write_half = peer.join().unwrap();

    // Wait until the sender is parked at the watermark.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, bytes) = alice.retention("Bob");
        if bytes + 97 > LIMIT {
            break;
        }
        assert!(Instant::now() < deadline, "sender never reached the watermark");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Kill the peer for good: both socket halves gone, listener closed,
    // nothing left to reconnect to.
    write_half.shutdown(std::net::Shutdown::Both).ok();
    drop(write_half);

    let err =
        sender.join().unwrap().expect_err("a parked sender on a dead link must error, not finish");
    match err {
        TransportError::RetentionExceeded { edge, retained_bytes, limit } => {
            assert_eq!(edge, "Alice->Bob");
            assert_eq!(limit, LIMIT);
            assert!(retained_bytes <= LIMIT, "accounted {retained_bytes} past the watermark");
            assert!(retained_bytes > 0, "the retained tail is what the error reports");
        }
        other => panic!("expected RetentionExceeded, got: {other}"),
    }
}

/// Regression for the ack-stall bug: a burst whose final frames land
/// *between* ack-cadence points must still be pruned promptly (the
/// receiver acks at the batch drain boundary and again on its idle
/// tick), not sit in the sender's retention queue until a heartbeat.
#[test]
fn retention_drains_after_a_final_partial_batch() {
    let addrs = free_local_addrs(2).unwrap();
    let cfg = TcpConfigBuilder::new()
        .location(Alice, addrs[0])
        .location(Bob, addrs[1])
        // Heartbeats far beyond the test horizon: if pruning needed a
        // heartbeat, this test would time out.
        .heartbeat(Duration::from_secs(60))
        .build::<System>()
        .unwrap();
    let a_cfg = cfg.clone();
    let b_cfg = cfg;
    let _bob = TcpTransport::<System, _>::bind(Bob, b_cfg).unwrap();
    let alice = TcpTransport::<System, _>::bind(Alice, a_cfg).unwrap();
    // ACK_EVERY is 16; 19 frames leave a 3-frame tail past the last
    // cadence point. Bob's application never receives — draining is
    // entirely the link layer's job.
    for i in 0..19u32 {
        alice.send("Bob", &i.to_le_bytes()).unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (frames, bytes) = alice.retention("Bob");
        if frames == 0 && bytes == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "retention tail stalled past the ack cadence: {frames} frames, {bytes} bytes"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}
