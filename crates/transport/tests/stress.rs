//! Stress and robustness tests for the transports: large payloads, many
//! messages, many peers, and error paths.

use chorus_core::{Transport as _, TransportError};
use chorus_transport::{
    free_local_addrs, LocalTransport, LocalTransportChannel, TcpConfigBuilder, TcpTransport,
};

chorus_core::locations! { N0, N1, N2, N3 }
type Net = chorus_core::LocationSet!(N0, N1, N2, N3);
type Duo = chorus_core::LocationSet!(N0, N1);

#[test]
fn tcp_carries_large_payloads() {
    let addrs = free_local_addrs(2).unwrap();
    let config = TcpConfigBuilder::new()
        .location(N0, addrs[0])
        .location(N1, addrs[1])
        .build::<Duo>()
        .unwrap();

    let payload: Vec<u8> = (0..2_000_000u32).map(|i| (i % 251) as u8).collect();
    let expected = payload.clone();

    let cfg = config.clone();
    let receiver = std::thread::spawn(move || {
        let t = TcpTransport::bind(N1, cfg).unwrap();
        t.receive("N0").unwrap()
    });
    let sender = TcpTransport::bind(N0, config).unwrap();
    sender.send("N1", &payload).unwrap();
    assert_eq!(receiver.join().unwrap(), expected);
}

#[test]
fn tcp_interleaves_many_messages_in_order() {
    let addrs = free_local_addrs(2).unwrap();
    let config = TcpConfigBuilder::new()
        .location(N0, addrs[0])
        .location(N1, addrs[1])
        .build::<Duo>()
        .unwrap();

    const N: u32 = 500;
    let cfg = config.clone();
    let receiver = std::thread::spawn(move || {
        let t = TcpTransport::bind(N1, cfg).unwrap();
        for i in 0..N {
            let msg = t.receive("N0").unwrap();
            assert_eq!(msg, i.to_le_bytes().to_vec(), "message {i} out of order");
            t.send("N0", &msg).unwrap();
        }
    });
    let sender = TcpTransport::bind(N0, config).unwrap();
    for i in 0..N {
        sender.send("N1", &i.to_le_bytes()).unwrap();
        assert_eq!(sender.receive("N1").unwrap(), i.to_le_bytes().to_vec());
    }
    receiver.join().unwrap();
}

#[test]
fn channel_fabric_supports_all_pairs_concurrently() {
    let channel = LocalTransportChannel::<Net>::new();
    let mut handles = Vec::new();

    macro_rules! node {
        ($ty:ty, $peers:expr) => {{
            let c = channel.clone();
            handles.push(std::thread::spawn(move || {
                let t = LocalTransport::new(<$ty>::default(), c);
                let peers: &[&str] = $peers;
                // Send a greeting to every peer, then collect one from each.
                for p in peers {
                    t.send(p, format!("hi-{p}").as_bytes()).unwrap();
                }
                let mut got = Vec::new();
                for p in peers {
                    got.push(String::from_utf8(t.receive(p).unwrap()).unwrap());
                }
                got
            }));
        }};
    }

    node!(N0, &["N1", "N2", "N3"]);
    node!(N1, &["N0", "N2", "N3"]);
    node!(N2, &["N0", "N1", "N3"]);
    node!(N3, &["N0", "N1", "N2"]);

    for h in handles {
        let got = h.join().unwrap();
        assert_eq!(got.len(), 3);
        // Every received message names the *receiver*.
        for msg in got {
            assert!(msg.starts_with("hi-N"), "unexpected {msg}");
        }
    }
}

#[test]
fn tcp_rejects_unknown_peers_without_blocking() {
    let addrs = free_local_addrs(2).unwrap();
    let config = TcpConfigBuilder::new()
        .location(N0, addrs[0])
        .location(N1, addrs[1])
        .build::<Duo>()
        .unwrap();
    let t = TcpTransport::bind(N0, config).unwrap();
    assert!(matches!(t.send("Nobody", b"x"), Err(TransportError::UnknownLocation(_))));
    assert!(matches!(t.receive("Nobody"), Err(TransportError::UnknownLocation(_))));
}

#[test]
fn transport_error_display_names_the_peer() {
    let err = TransportError::ConnectionClosed { peer: "N9".to_string() };
    assert!(err.to_string().contains("N9"));
    let err = TransportError::UnknownLocation("N7".to_string());
    assert!(err.to_string().contains("N7"));
}
