//! End-to-end projection tests: the same choreography runs centralized,
//! over in-process channels, and over TCP sockets, producing identical
//! results — the paper's portability claim (§2.1).

use chorus_core::{
    ChoreoOp, Choreography, Endpoint, Faceted, Located, LocationSet, MultiplyLocated, Quire, Runner,
};
use chorus_transport::{
    free_local_addrs, LocalTransport, LocalTransportChannel, TcpConfigBuilder, TcpTransport,
    TransportMetrics,
};
use std::sync::Arc;

chorus_core::locations! { Client, Primary, Backup }

type Census = chorus_core::LocationSet!(Client, Primary, Backup);
type Servers = chorus_core::LocationSet!(Primary, Backup);

/// Client sends a number; servers replicate it; each server doubles it;
/// client gets the primary's copy plus the sum of everyone's copies.
struct Replicate {
    input: Located<u64, Client>,
}

impl Choreography<Located<u64, Client>> for Replicate {
    type L = Census;

    fn run(self, op: &impl ChoreoOp<Self::L>) -> Located<u64, Client> {
        let at_primary = op.comm(Client, Primary, &self.input);
        let shared: MultiplyLocated<u64, Servers> =
            op.multicast(Primary, Servers::new(), &at_primary);
        let doubled: MultiplyLocated<u64, Servers> = op.conclave(Double { shared }).flatten();
        // Redistribute the replicated value as facets so `gather` has
        // per-party data to collect.
        let facets: Faceted<u64, Servers> = op.conclave(AsFacets { value: doubled }).flatten();
        let gathered: MultiplyLocated<Quire<u64, Servers>, chorus_core::LocationSet!(Client)> =
            op.gather(Servers::new(), <chorus_core::LocationSet!(Client)>::new(), &facets);
        op.locally(Client, |un| un.unwrap_ref(&gathered).values().sum())
    }
}

struct Double {
    shared: MultiplyLocated<u64, Servers>,
}

impl Choreography<MultiplyLocated<u64, Servers>> for Double {
    type L = Servers;
    fn run(self, op: &impl ChoreoOp<Self::L>) -> MultiplyLocated<u64, Servers> {
        let v = op.naked(self.shared);
        let at_primary = op.locally(Primary, move |_| v * 2);
        op.multicast(Primary, Servers::new(), &at_primary)
    }
}

struct AsFacets {
    value: MultiplyLocated<u64, Servers>,
}

impl Choreography<Faceted<u64, Servers>> for AsFacets {
    type L = Servers;
    fn run(self, op: &impl ChoreoOp<Self::L>) -> Faceted<u64, Servers> {
        let v = op.naked(self.value);
        op.parallel(Servers::new(), move || v)
    }
}

const INPUT: u64 = 21;
const EXPECTED: u64 = 84; // two servers, each holding 21*2

#[test]
fn centralized_runner_computes_the_protocol() {
    let runner: Runner<Census> = Runner::new();
    let out = runner.run(Replicate { input: runner.local(INPUT) });
    assert_eq!(runner.unwrap_located(out), EXPECTED);
}

#[test]
fn local_transport_projection_agrees_with_runner() {
    let channel = LocalTransportChannel::<Census>::new();

    let c = channel.clone();
    let client = std::thread::spawn(move || {
        let endpoint = Endpoint::new(LocalTransport::new(Client, c));
        let session = endpoint.session();
        let out = session.epp_and_run(Replicate { input: session.local(INPUT) });
        session.unwrap(out)
    });
    let c = channel.clone();
    let primary = std::thread::spawn(move || {
        let endpoint = Endpoint::new(LocalTransport::new(Primary, c));
        let session = endpoint.session();
        session.epp_and_run(Replicate { input: session.remote(Client) });
    });
    let c = channel;
    let backup = std::thread::spawn(move || {
        let endpoint = Endpoint::new(LocalTransport::new(Backup, c));
        let session = endpoint.session();
        session.epp_and_run(Replicate { input: session.remote(Client) });
    });

    assert_eq!(client.join().unwrap(), EXPECTED);
    primary.join().unwrap();
    backup.join().unwrap();
}

#[test]
fn tcp_transport_projection_agrees_with_runner() {
    let addrs = free_local_addrs(3).unwrap();
    let config = TcpConfigBuilder::new()
        .location(Client, addrs[0])
        .location(Primary, addrs[1])
        .location(Backup, addrs[2])
        .build::<Census>()
        .unwrap();

    let cfg = config.clone();
    let client = std::thread::spawn(move || {
        let endpoint = Endpoint::new(TcpTransport::bind(Client, cfg).unwrap());
        let session = endpoint.session();
        let out = session.epp_and_run(Replicate { input: session.local(INPUT) });
        session.unwrap(out)
    });
    let cfg = config.clone();
    let primary = std::thread::spawn(move || {
        let endpoint = Endpoint::new(TcpTransport::bind(Primary, cfg).unwrap());
        let session = endpoint.session();
        session.epp_and_run(Replicate { input: session.remote(Client) });
    });
    let cfg = config;
    let backup = std::thread::spawn(move || {
        let endpoint = Endpoint::new(TcpTransport::bind(Backup, cfg).unwrap());
        let session = endpoint.session();
        session.epp_and_run(Replicate { input: session.remote(Client) });
    });

    assert_eq!(client.join().unwrap(), EXPECTED);
    primary.join().unwrap();
    backup.join().unwrap();
}

/// The deprecated `Projector` shim must keep old call sites compiling
/// and producing the same results, now as a single-session endpoint.
#[test]
#[allow(deprecated)]
fn deprecated_projector_shim_still_projects() {
    use chorus_core::Projector;

    let channel = LocalTransportChannel::<Census>::new();

    let c = channel.clone();
    let client = std::thread::spawn(move || {
        let transport = LocalTransport::new(Client, c);
        let projector = Projector::new(Client, &transport);
        let out = projector.epp_and_run(Replicate { input: projector.local(INPUT) });
        projector.unwrap(out)
    });
    let c = channel.clone();
    let primary = std::thread::spawn(move || {
        let transport = LocalTransport::new(Primary, c);
        let projector = Projector::new(Primary, &transport);
        projector.epp_and_run(Replicate { input: projector.remote(Client) });
    });
    let c = channel;
    let backup = std::thread::spawn(move || {
        let transport = LocalTransport::new(Backup, c);
        let projector = Projector::new(Backup, &transport);
        projector.epp_and_run(Replicate { input: projector.remote(Client) });
    });

    assert_eq!(client.join().unwrap(), EXPECTED);
    primary.join().unwrap();
    backup.join().unwrap();
}

#[test]
fn conclaves_send_nothing_to_outsiders() {
    // The paper's headline efficiency claim (§3.2): the client receives no
    // traffic from the servers' internal conclave work.
    let channel = LocalTransportChannel::<Census>::new();
    let metrics = Arc::new(TransportMetrics::new());

    let mut handles = Vec::new();
    {
        let c = channel.clone();
        let m = Arc::clone(&metrics);
        handles.push(std::thread::spawn(move || {
            let endpoint = Endpoint::builder(Client)
                .transport(LocalTransport::new(Client, c))
                .layer(m)
                .build();
            let session = endpoint.session();
            let out = session.epp_and_run(Replicate { input: session.local(INPUT) });
            assert_eq!(session.unwrap(out), EXPECTED);
        }));
    }
    {
        let c = channel.clone();
        let m = Arc::clone(&metrics);
        handles.push(std::thread::spawn(move || {
            let endpoint = Endpoint::builder(Primary)
                .transport(LocalTransport::new(Primary, c))
                .layer(m)
                .build();
            let session = endpoint.session();
            session.epp_and_run(Replicate { input: session.remote(Client) });
        }));
    }
    {
        let c = channel;
        let m = Arc::clone(&metrics);
        handles.push(std::thread::spawn(move || {
            let endpoint = Endpoint::builder(Backup)
                .transport(LocalTransport::new(Backup, c))
                .layer(m)
                .build();
            let session = endpoint.session();
            session.epp_and_run(Replicate { input: session.remote(Client) });
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // Client → Primary: 1 (request). Primary → Backup: replication +
    // conclave-internal multicasts. Client receives ONLY the gathered
    // responses (one per server), nothing from the Double conclave.
    let to_client = metrics.messages_to("Client");
    assert_eq!(to_client, 2, "client must receive exactly the two gathered responses");
    assert_eq!(metrics.messages_from("Client"), 1);
}
