//! The transport conformance battery: generic test bodies asserting the
//! [`SessionTransport`] contract, instantiated per transport by the
//! `conformance_suite!` macro in `main.rs`.
//!
//! Every body is **event-driven** — no sleeps, no spin thresholds — so
//! the suite behaves identically on a 1-core CI runner and a laptop:
//! sends are buffered by the transport under test, and receives block
//! until the transport delivers or reports an error.

use chorus_core::park::WaitQueue;
use chorus_core::{Endpoint, MailboxWaker, SessionTransport, TransportError};
use chorus_transport::TransportMetrics;
use chorus_wire::Envelope;
use std::sync::Arc;

chorus_core::locations! { Alice, Bob }

/// The two-party census every conformance instance runs over.
pub type System = chorus_core::LocationSet!(Alice, Bob);

/// Shorthand for the bounds a conformance transport pair must satisfy.
pub trait AliceTransport: SessionTransport<System, Alice> + Send + Sync + 'static {}
impl<T: SessionTransport<System, Alice> + Send + Sync + 'static> AliceTransport for T {}
/// Bob's half of the pair.
pub trait BobTransport: SessionTransport<System, Bob> + Send + Sync + 'static {}
impl<T: SessionTransport<System, Bob> + Send + Sync + 'static> BobTransport for T {}

fn frame(session: u64, seq: u64, payload: &[u8]) -> Envelope {
    Envelope::new(session, seq, payload.to_vec())
}

/// A waker that flips a shared flag and wakes whoever parked on it —
/// the same shape the pooled runtime's re-enqueue waker has.
fn gate_waker(gate: &Arc<WaitQueue<bool>>) -> MailboxWaker {
    let gate = Arc::clone(gate);
    Arc::new(move || {
        *gate.lock() = true;
        gate.notify_all();
    })
}

/// Receives one frame through the *non-blocking* path only:
/// `try_receive_frame` plus waker registration, parking this thread on a
/// local gate between attempts. Event-driven — no sleeps, no spinning —
/// so it works identically whether the transport delivers synchronously
/// (local, sim) or after real socket latency (TCP). This is exactly the
/// poll/register/park protocol the pooled session runtime drives.
fn recv_eventually(
    bob: &impl BobTransport,
    session: u64,
    from: &str,
) -> Result<Envelope, TransportError> {
    loop {
        if let Some(envelope) = bob.try_receive_frame(session, from)? {
            return Ok(envelope);
        }
        let gate = Arc::new(WaitQueue::new(false));
        if bob.register_waker(session, from, gate_waker(&gate))? {
            // Already ready: a frame (or an error) slipped in between
            // the failed try and the registration — re-poll.
            continue;
        }
        let mut fired = gate.lock();
        while !*fired {
            fired = gate.wait(fired);
        }
    }
}

/// Within one session, frames from one sender arrive in exactly the
/// order they were offered — the λN FIFO guarantee (§4.1).
pub fn per_sender_fifo(alice: impl AliceTransport, bob: impl BobTransport) {
    for i in 0..24u64 {
        alice.send_frame("Bob", frame(9, i, &i.to_le_bytes())).unwrap();
    }
    // The opposite direction shares no state with the first.
    for i in 0..24u64 {
        bob.send_frame("Alice", frame(9, i, &(1000 + i).to_le_bytes())).unwrap();
    }
    for i in 0..24u64 {
        assert_eq!(
            bob.receive_frame(9, "Alice").unwrap().payload,
            i.to_le_bytes().as_slice(),
            "frame {i} out of order at Bob"
        );
        assert_eq!(
            alice.receive_frame(9, "Bob").unwrap().payload,
            (1000 + i).to_le_bytes().as_slice(),
            "frame {i} out of order at Alice"
        );
    }
}

/// Sessions multiplexed on one link deliver independently: draining one
/// session's mailbox out of arrival order never disturbs another's
/// FIFO.
pub fn cross_session_interleaving(alice: impl AliceTransport, bob: impl BobTransport) {
    const SESSIONS: u64 = 4;
    const FRAMES: u64 = 6;
    // Interleave the sessions frame-by-frame on the wire.
    for seq in 0..FRAMES {
        for session in 0..SESSIONS {
            let tag = format!("s{session}-f{seq}");
            alice.send_frame("Bob", frame(session, seq, tag.as_bytes())).unwrap();
        }
    }
    // Read the sessions in reverse, each to completion: every stream
    // must be intact regardless of drain order.
    for session in (0..SESSIONS).rev() {
        for seq in 0..FRAMES {
            let got = bob.receive_frame(session, "Alice").unwrap();
            assert_eq!(got.seq, seq);
            assert_eq!(
                got.payload,
                format!("s{session}-f{seq}").as_bytes(),
                "session {session} corrupted by its neighbors"
            );
        }
    }
}

/// Per-(session, sender) FIFO must hold across *batch* boundaries: the
/// sender offers session-major bursts sized exactly to the resilient
/// link's ack cadence (16 frames), so consecutive bursts land in
/// different wire batches and the final burst ends on a cadence
/// boundary — the shapes the batched data plane flushes, acks, and
/// prunes around. Every session's stream must still come out in
/// exactly its offered order, whatever the drain order.
pub fn fifo_across_batch_boundaries(alice: impl AliceTransport, bob: impl BobTransport) {
    const SESSIONS: u64 = 3;
    const BURST: u64 = 16;
    const ROUNDS: u64 = 5;
    for round in 0..ROUNDS {
        for session in 0..SESSIONS {
            for slot in 0..BURST {
                let seq = round * BURST + slot;
                let tag = format!("s{session}-r{round}-f{seq}");
                alice.send_frame("Bob", frame(session, seq, tag.as_bytes())).unwrap();
            }
        }
    }
    // Drain whole sessions in reverse id order, one via the blocking
    // path and the rest via the poll/park path, so batch delivery is
    // exercised under both receive protocols.
    for session in (0..SESSIONS).rev() {
        for seq in 0..ROUNDS * BURST {
            let got = if session == 0 {
                bob.receive_frame(session, "Alice").unwrap()
            } else {
                recv_eventually(&bob, session, "Alice").unwrap()
            };
            assert_eq!(got.seq, seq, "session {session} broke FIFO across a batch boundary");
            let round = seq / BURST;
            assert_eq!(
                got.payload,
                format!("s{session}-r{round}-f{seq}").as_bytes(),
                "session {session} delivered the wrong frame at seq {seq}"
            );
        }
    }
}

/// A sequence gap within a session is a protocol violation the receiver
/// must detect and report, not silently reorder around.
pub fn sequence_gap_detected(alice: impl AliceTransport, bob: impl BobTransport) {
    alice.send_frame("Bob", frame(1, 0, b"ok")).unwrap();
    alice.send_frame("Bob", frame(1, 2, b"gap")).unwrap();
    assert_eq!(bob.receive_frame(1, "Alice").unwrap().payload, b"ok");
    let err = bob.receive_frame(1, "Alice").unwrap_err();
    assert!(
        matches!(err, TransportError::Protocol(_)),
        "a sequence gap must surface as a protocol error, got {err:?}"
    );
}

/// Once a link is poisoned by a violation, *valid* frames sent
/// afterwards — in any session — are withheld, so every session behind
/// the link observes the failure instead of a silently resumed stream.
pub fn poisoned_link_withholds(alice: impl AliceTransport, bob: impl BobTransport) {
    alice.send_frame("Bob", frame(1, 0, b"ok")).unwrap();
    // Poison the link with a sequence gap in session 1...
    alice.send_frame("Bob", frame(1, 2, b"gap")).unwrap();
    // ...then send a perfectly valid frame in session 2.
    alice.send_frame("Bob", frame(2, 0, b"late")).unwrap();
    assert_eq!(bob.receive_frame(1, "Alice").unwrap().payload, b"ok");
    let err = bob.receive_frame(2, "Alice").unwrap_err();
    assert!(
        matches!(err, TransportError::Protocol(_)),
        "a frame sent after the poison must be withheld, got {err:?}"
    );
}

/// An empty mailbox reports `Ok(None)` — merely-empty is not an error —
/// and traffic in *other* sessions leaves it empty.
pub fn try_receive_on_empty_mailbox_is_none(alice: impl AliceTransport, bob: impl BobTransport) {
    assert!(
        matches!(bob.try_receive_frame(1, "Alice"), Ok(None)),
        "nothing was sent; the mailbox is merely empty"
    );
    // A frame in a *different* session must not surface in this one.
    alice.send_frame("Bob", frame(2, 0, b"other-session")).unwrap();
    assert!(matches!(bob.try_receive_frame(1, "Alice"), Ok(None)));
    assert_eq!(recv_eventually(&bob, 2, "Alice").unwrap().payload, b"other-session");
}

/// A waker registered on an empty mailbox fires when a frame is
/// deposited, and the frame is then deliverable through the
/// non-blocking path.
pub fn waker_fires_on_deposit(alice: impl AliceTransport, bob: impl BobTransport) {
    let gate = Arc::new(WaitQueue::new(false));
    let parked = !bob.register_waker(7, "Alice", gate_waker(&gate)).unwrap();
    assert!(parked, "nothing was sent; the waker must park");
    alice.send_frame("Bob", frame(7, 0, b"wake")).unwrap();
    // Wait for the waker, not for wall-clock time.
    let mut fired = gate.lock();
    while !*fired {
        fired = gate.wait(fired);
    }
    drop(fired);
    // A fired waker is a readiness *hint* (spurious wakes are legal), so
    // drain through the full poll/register protocol.
    assert_eq!(recv_eventually(&bob, 7, "Alice").unwrap().payload, b"wake");
}

/// Registration on a mailbox that is (or becomes) ready refuses the
/// waker — `Ok(true)` — instead of parking it, so the no-lost-wakeup
/// handshake closes; after the mailbox is drained, registration parks
/// again.
pub fn registration_reports_ready_mailbox(alice: impl AliceTransport, bob: impl BobTransport) {
    alice.send_frame("Bob", frame(3, 0, b"a")).unwrap();
    alice.send_frame("Bob", frame(3, 1, b"b")).unwrap();
    assert_eq!(recv_eventually(&bob, 3, "Alice").unwrap().payload, b"a");
    // With "b" still undelivered, registration must eventually report
    // ready rather than leave the caller parked forever.
    loop {
        let gate = Arc::new(WaitQueue::new(false));
        if bob.register_waker(3, "Alice", gate_waker(&gate)).unwrap() {
            break;
        }
        let mut fired = gate.lock();
        while !*fired {
            fired = gate.wait(fired);
        }
    }
    assert_eq!(bob.try_receive_frame(3, "Alice").unwrap().unwrap().payload, b"b");
    // Drained: a fresh registration parks.
    let gate = Arc::new(WaitQueue::new(false));
    assert!(
        !bob.register_waker(3, "Alice", gate_waker(&gate)).unwrap(),
        "the mailbox was drained; the waker must park"
    );
}

/// A failed link surfaces through the non-blocking path exactly as it
/// does through the blocking one: queued frames first, then the
/// protocol error.
pub fn try_receive_surfaces_link_failure(alice: impl AliceTransport, bob: impl BobTransport) {
    alice.send_frame("Bob", frame(1, 0, b"ok")).unwrap();
    // A sequence gap kills the link.
    alice.send_frame("Bob", frame(1, 2, b"gap")).unwrap();
    assert_eq!(recv_eventually(&bob, 1, "Alice").unwrap().payload, b"ok");
    let err = recv_eventually(&bob, 1, "Alice").unwrap_err();
    assert!(
        matches!(err, TransportError::Protocol(_)),
        "the failure must surface as a protocol error, got {err:?}"
    );
}

/// Per-(session, sender) FIFO holds when every receive goes through the
/// poll/register/park protocol instead of blocking receives.
pub fn fifo_preserved_under_try_polling(alice: impl AliceTransport, bob: impl BobTransport) {
    for i in 0..16u64 {
        alice.send_frame("Bob", frame(5, i, &i.to_le_bytes())).unwrap();
    }
    for i in 0..16u64 {
        let envelope = recv_eventually(&bob, 5, "Alice").unwrap();
        assert_eq!(envelope.seq, i, "frame {i} out of order under try-polling");
        assert_eq!(envelope.payload, i.to_le_bytes().as_slice());
    }
}

/// The adversarial-corruption contract, parameterized by which side of
/// it the instance is on. A `hostile` pair (sim under an always-on
/// [`Corruption`](chorus_transport::Corruption) plan) must deliver the
/// frame with *exactly one* payload bit flipped — tampering the payload
/// without touching framing, so sequence checks pass and only a
/// payload-level integrity check (sealed decode, commitment
/// verification) can catch it. An honest pair must deliver bit-exact.
pub fn corrupted_link_flips_exactly_one_payload_bit(
    alice: impl AliceTransport,
    bob: impl BobTransport,
    hostile: bool,
) {
    // All zeros: any flip anywhere is visible in the XOR popcount.
    let sent = [0u8; 8];
    alice.send_frame("Bob", frame(1, 0, &sent)).unwrap();
    let got = bob.receive_frame(1, "Alice").unwrap();
    assert_eq!((got.session, got.seq), (1, 0), "corruption must never touch framing");
    assert_eq!(got.payload.len(), sent.len(), "corruption must never truncate");
    let flipped: u32 = got.payload.iter().zip(sent.iter()).map(|(a, b)| (a ^ b).count_ones()).sum();
    if hostile {
        assert_eq!(flipped, 1, "an adversarial link flips exactly one payload bit");
    } else {
        assert_eq!(flipped, 0, "an honest link delivers bit-exact");
    }
}

/// The selective-silence contract: a `hostile` pair (sim with the
/// Alice→Bob link silenced) must fail *loudly* — a
/// [`TransportError::Protocol`] naming the silenced peer, produced by
/// the link watchdog — rather than parking the receiver forever. An
/// honest pair simply delivers.
pub fn silenced_link_fails_loud(alice: impl AliceTransport, bob: impl BobTransport, hostile: bool) {
    alice.send_frame("Bob", frame(1, 0, b"probe")).unwrap();
    if hostile {
        let err = bob.receive_frame(1, "Alice").unwrap_err();
        match err {
            TransportError::Protocol(message) => assert!(
                message.contains("Alice"),
                "the watchdog must name the silenced edge, got {message:?}"
            ),
            other => panic!("selective silence must surface as a protocol error, got {other:?}"),
        }
    } else {
        assert_eq!(bob.receive_frame(1, "Alice").unwrap().payload, b"probe");
    }
}

/// N sessions over one shared pair produce exactly N× the per-edge
/// metrics of a single session — sessions share links but never
/// double- or under-count.
pub fn multi_session_metrics_parity<TA: AliceTransport, TB: BobTransport>(
    make: impl Fn() -> (TA, TB),
) {
    const SESSIONS: u64 = 6;

    // Count one session's traffic on a fresh pair.
    let run = |sessions: u64, pair: (TA, TB)| -> chorus_transport::MetricsSnapshot {
        let metrics = Arc::new(TransportMetrics::new());
        let alice = Endpoint::builder(Alice).transport(pair.0).layer(Arc::clone(&metrics)).build();
        let bob = Endpoint::builder(Bob).transport(pair.1).layer(Arc::clone(&metrics)).build();
        for id in 0..sessions {
            let sa = alice.session_with_id(id);
            sa.send_bytes("Bob", format!("ping-{id}").as_bytes()).unwrap();
        }
        for id in 0..sessions {
            let sb = bob.session_with_id(id);
            let got = sb.receive_bytes("Alice").unwrap();
            assert_eq!(got, format!("ping-{id}").into_bytes());
            sb.send_bytes("Alice", format!("pong-{id}").as_bytes()).unwrap();
        }
        for id in 0..sessions {
            let sa = alice.session_with_id(id);
            assert_eq!(sa.receive_bytes("Bob").unwrap(), format!("pong-{id}").into_bytes());
        }
        metrics.snapshot()
    };

    let baseline = run(1, make());
    let multi = run(SESSIONS, make());

    assert_eq!(
        multi.keys().collect::<Vec<_>>(),
        baseline.keys().collect::<Vec<_>>(),
        "same edges in both runs"
    );
    for (edge, base) in &baseline {
        let got = multi[edge];
        assert_eq!(
            got.messages,
            base.messages * SESSIONS,
            "edge {edge:?}: {SESSIONS} sessions must count {SESSIONS}× the messages"
        );
        assert_eq!(
            got.bytes,
            base.bytes * SESSIONS,
            "edge {edge:?}: {SESSIONS} sessions must count {SESSIONS}× the bytes"
        );
    }
}

/// Sequential session reuse survives a link disruption: a session id
/// whose first run completed is reused (sequence restarting at zero,
/// per the tracker's restart rule) and keeps working even though the
/// underlying connection was dropped and re-established in between —
/// and again with frames in flight, so the resilient TCP link must
/// replay its unacked tail across the reconnect. `disrupt` is
/// transport-specific: on TCP it hard-kills every established
/// connection; on local/sim (no connections to kill) it is a no-op and
/// the case pins plain sequential-reuse semantics.
pub fn session_reuse_after_link_disruption<TA: AliceTransport, TB: BobTransport>(
    alice: TA,
    bob: TB,
    disrupt: impl Fn(&TA, &TB),
) {
    const SESSION: u64 = 7;
    const FRAMES: u64 = 4;
    for seq in 0..FRAMES {
        alice.send_frame("Bob", frame(SESSION, seq, format!("run1-{seq}").as_bytes())).unwrap();
    }
    for seq in 0..FRAMES {
        assert_eq!(
            bob.receive_frame(SESSION, "Alice").unwrap().payload,
            format!("run1-{seq}").as_bytes(),
            "first run broke before any disruption"
        );
    }
    // The link dies between the runs.
    disrupt(&alice, &bob);
    for seq in 0..FRAMES {
        alice.send_frame("Bob", frame(SESSION, seq, format!("run2-{seq}").as_bytes())).unwrap();
    }
    // …and again with the second run's frames potentially still in
    // flight (unacknowledged), forcing a replay on transports with real
    // connections.
    disrupt(&alice, &bob);
    for seq in 0..FRAMES {
        assert_eq!(
            bob.receive_frame(SESSION, "Alice").unwrap().payload,
            format!("run2-{seq}").as_bytes(),
            "reused session lost or reordered frames across the disruption"
        );
    }
}
