//! The transport conformance battery: generic test bodies asserting the
//! [`SessionTransport`] contract, instantiated per transport by the
//! `conformance_suite!` macro in `main.rs`.
//!
//! Every body is **event-driven** — no sleeps, no spin thresholds — so
//! the suite behaves identically on a 1-core CI runner and a laptop:
//! sends are buffered by the transport under test, and receives block
//! until the transport delivers or reports an error.

use chorus_core::{Endpoint, SessionTransport, TransportError};
use chorus_transport::TransportMetrics;
use chorus_wire::Envelope;
use std::sync::Arc;

chorus_core::locations! { Alice, Bob }

/// The two-party census every conformance instance runs over.
pub type System = chorus_core::LocationSet!(Alice, Bob);

/// Shorthand for the bounds a conformance transport pair must satisfy.
pub trait AliceTransport: SessionTransport<System, Alice> + Send + Sync + 'static {}
impl<T: SessionTransport<System, Alice> + Send + Sync + 'static> AliceTransport for T {}
/// Bob's half of the pair.
pub trait BobTransport: SessionTransport<System, Bob> + Send + Sync + 'static {}
impl<T: SessionTransport<System, Bob> + Send + Sync + 'static> BobTransport for T {}

fn frame(session: u64, seq: u64, payload: &[u8]) -> Envelope {
    Envelope::new(session, seq, payload.to_vec())
}

/// Within one session, frames from one sender arrive in exactly the
/// order they were offered — the λN FIFO guarantee (§4.1).
pub fn per_sender_fifo(alice: impl AliceTransport, bob: impl BobTransport) {
    for i in 0..24u64 {
        alice.send_frame("Bob", frame(9, i, &i.to_le_bytes())).unwrap();
    }
    // The opposite direction shares no state with the first.
    for i in 0..24u64 {
        bob.send_frame("Alice", frame(9, i, &(1000 + i).to_le_bytes())).unwrap();
    }
    for i in 0..24u64 {
        assert_eq!(
            bob.receive_frame(9, "Alice").unwrap().payload,
            i.to_le_bytes().as_slice(),
            "frame {i} out of order at Bob"
        );
        assert_eq!(
            alice.receive_frame(9, "Bob").unwrap().payload,
            (1000 + i).to_le_bytes().as_slice(),
            "frame {i} out of order at Alice"
        );
    }
}

/// Sessions multiplexed on one link deliver independently: draining one
/// session's mailbox out of arrival order never disturbs another's
/// FIFO.
pub fn cross_session_interleaving(alice: impl AliceTransport, bob: impl BobTransport) {
    const SESSIONS: u64 = 4;
    const FRAMES: u64 = 6;
    // Interleave the sessions frame-by-frame on the wire.
    for seq in 0..FRAMES {
        for session in 0..SESSIONS {
            let tag = format!("s{session}-f{seq}");
            alice.send_frame("Bob", frame(session, seq, tag.as_bytes())).unwrap();
        }
    }
    // Read the sessions in reverse, each to completion: every stream
    // must be intact regardless of drain order.
    for session in (0..SESSIONS).rev() {
        for seq in 0..FRAMES {
            let got = bob.receive_frame(session, "Alice").unwrap();
            assert_eq!(got.seq, seq);
            assert_eq!(
                got.payload,
                format!("s{session}-f{seq}").as_bytes(),
                "session {session} corrupted by its neighbors"
            );
        }
    }
}

/// A sequence gap within a session is a protocol violation the receiver
/// must detect and report, not silently reorder around.
pub fn sequence_gap_detected(alice: impl AliceTransport, bob: impl BobTransport) {
    alice.send_frame("Bob", frame(1, 0, b"ok")).unwrap();
    alice.send_frame("Bob", frame(1, 2, b"gap")).unwrap();
    assert_eq!(bob.receive_frame(1, "Alice").unwrap().payload, b"ok");
    let err = bob.receive_frame(1, "Alice").unwrap_err();
    assert!(
        matches!(err, TransportError::Protocol(_)),
        "a sequence gap must surface as a protocol error, got {err:?}"
    );
}

/// Once a link is poisoned by a violation, *valid* frames sent
/// afterwards — in any session — are withheld, so every session behind
/// the link observes the failure instead of a silently resumed stream.
pub fn poisoned_link_withholds(alice: impl AliceTransport, bob: impl BobTransport) {
    alice.send_frame("Bob", frame(1, 0, b"ok")).unwrap();
    // Poison the link with a sequence gap in session 1...
    alice.send_frame("Bob", frame(1, 2, b"gap")).unwrap();
    // ...then send a perfectly valid frame in session 2.
    alice.send_frame("Bob", frame(2, 0, b"late")).unwrap();
    assert_eq!(bob.receive_frame(1, "Alice").unwrap().payload, b"ok");
    let err = bob.receive_frame(2, "Alice").unwrap_err();
    assert!(
        matches!(err, TransportError::Protocol(_)),
        "a frame sent after the poison must be withheld, got {err:?}"
    );
}

/// N sessions over one shared pair produce exactly N× the per-edge
/// metrics of a single session — sessions share links but never
/// double- or under-count.
pub fn multi_session_metrics_parity<TA: AliceTransport, TB: BobTransport>(
    make: impl Fn() -> (TA, TB),
) {
    const SESSIONS: u64 = 6;

    // Count one session's traffic on a fresh pair.
    let run = |sessions: u64, pair: (TA, TB)| -> chorus_transport::MetricsSnapshot {
        let metrics = Arc::new(TransportMetrics::new());
        let alice = Endpoint::builder(Alice).transport(pair.0).layer(Arc::clone(&metrics)).build();
        let bob = Endpoint::builder(Bob).transport(pair.1).layer(Arc::clone(&metrics)).build();
        for id in 0..sessions {
            let sa = alice.session_with_id(id);
            sa.send_bytes("Bob", format!("ping-{id}").as_bytes()).unwrap();
        }
        for id in 0..sessions {
            let sb = bob.session_with_id(id);
            let got = sb.receive_bytes("Alice").unwrap();
            assert_eq!(got, format!("ping-{id}").into_bytes());
            sb.send_bytes("Alice", format!("pong-{id}").as_bytes()).unwrap();
        }
        for id in 0..sessions {
            let sa = alice.session_with_id(id);
            assert_eq!(sa.receive_bytes("Bob").unwrap(), format!("pong-{id}").into_bytes());
        }
        metrics.snapshot()
    };

    let baseline = run(1, make());
    let multi = run(SESSIONS, make());

    assert_eq!(
        multi.keys().collect::<Vec<_>>(),
        baseline.keys().collect::<Vec<_>>(),
        "same edges in both runs"
    );
    for (edge, base) in &baseline {
        let got = multi[edge];
        assert_eq!(
            got.messages,
            base.messages * SESSIONS,
            "edge {edge:?}: {SESSIONS} sessions must count {SESSIONS}× the messages"
        );
        assert_eq!(
            got.bytes,
            base.bytes * SESSIONS,
            "edge {edge:?}: {SESSIONS} sessions must count {SESSIONS}× the bytes"
        );
    }
}
