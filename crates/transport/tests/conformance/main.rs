//! The transport conformance suite: one macro-driven battery asserting
//! the [`chorus_core::SessionTransport`] contract — per-(session,
//! sender) FIFO, independent cross-session interleaving, sequence-gap
//! detection, poisoned-link withholding, and multi-session metrics
//! parity — instantiated against every transport in the workspace:
//!
//! * [`LocalTransport`] — in-process queues;
//! * [`TcpTransport`] — real sockets on loopback;
//! * [`SimTransport`] — the deterministic simulated network, run under
//!   a *hostile* fault plan (jitter, drops, duplicates) to show the
//!   contract survives adverse schedules, not just quiet ones.
//!
//! The sim-only module at the bottom pins the determinism guarantee:
//! one seed, one delivery schedule, bit for bit.

mod cases;

use chorus_transport::{
    free_local_addrs, Corruption, FaultPlan, LocalTransport, LocalTransportChannel, Silence,
    SimNet, SimTransport, TcpConfigBuilder, TcpTransport,
};

use cases::{Alice, Bob, System};

/// Instantiates the whole battery for one transport; `$make` is an
/// expression producing a fresh, independent `(alice, bob)` pair each
/// time it is evaluated.
///
/// The two **adversarial** cases run on every transport, but only the
/// sim instantiates them with actually-hostile pairs (`$corrupt` under
/// an always-on corruption plan, `$silent` with the Alice→Bob link
/// silenced) and `$hostile = true`; local and TCP reuse `$make` with
/// `$hostile = false`, pinning the honest side of the same contract —
/// bit-exact delivery, no spurious watchdog errors.
macro_rules! conformance_suite {
    ($name:ident, $make:expr) => {
        conformance_suite!($name, $make, $make, $make, false, (|_, _| {}));
    };
    ($name:ident, $make:expr, $corrupt:expr, $silent:expr, $hostile:expr) => {
        conformance_suite!($name, $make, $corrupt, $silent, $hostile, (|_, _| {}));
    };
    ($name:ident, $make:expr, $corrupt:expr, $silent:expr, $hostile:expr, $disrupt:expr) => {
        mod $name {
            use super::*;

            #[test]
            fn per_sender_fifo() {
                let (alice, bob) = $make;
                cases::per_sender_fifo(alice, bob);
            }

            #[test]
            fn cross_session_interleaving() {
                let (alice, bob) = $make;
                cases::cross_session_interleaving(alice, bob);
            }

            #[test]
            fn fifo_across_batch_boundaries() {
                let (alice, bob) = $make;
                cases::fifo_across_batch_boundaries(alice, bob);
            }

            #[test]
            fn sequence_gap_detected() {
                let (alice, bob) = $make;
                cases::sequence_gap_detected(alice, bob);
            }

            #[test]
            fn poisoned_link_withholds() {
                let (alice, bob) = $make;
                cases::poisoned_link_withholds(alice, bob);
            }

            #[test]
            fn multi_session_metrics_parity() {
                cases::multi_session_metrics_parity(|| $make);
            }

            #[test]
            fn try_receive_on_empty_mailbox_is_none() {
                let (alice, bob) = $make;
                cases::try_receive_on_empty_mailbox_is_none(alice, bob);
            }

            #[test]
            fn waker_fires_on_deposit() {
                let (alice, bob) = $make;
                cases::waker_fires_on_deposit(alice, bob);
            }

            #[test]
            fn registration_reports_ready_mailbox() {
                let (alice, bob) = $make;
                cases::registration_reports_ready_mailbox(alice, bob);
            }

            #[test]
            fn try_receive_surfaces_link_failure() {
                let (alice, bob) = $make;
                cases::try_receive_surfaces_link_failure(alice, bob);
            }

            #[test]
            fn fifo_preserved_under_try_polling() {
                let (alice, bob) = $make;
                cases::fifo_preserved_under_try_polling(alice, bob);
            }

            #[test]
            fn corrupted_link_flips_exactly_one_payload_bit() {
                let (alice, bob) = $corrupt;
                cases::corrupted_link_flips_exactly_one_payload_bit(alice, bob, $hostile);
            }

            #[test]
            fn silenced_link_fails_loud() {
                let (alice, bob) = $silent;
                cases::silenced_link_fails_loud(alice, bob, $hostile);
            }

            #[test]
            fn session_reuse_after_link_disruption() {
                let (alice, bob) = $make;
                cases::session_reuse_after_link_disruption(alice, bob, $disrupt);
            }
        }
    };
}

conformance_suite!(local, {
    let channel = LocalTransportChannel::<System>::new();
    (LocalTransport::new(Alice, channel.clone()), LocalTransport::new(Bob, channel))
});

macro_rules! tcp_pair {
    () => {{
        let addrs = free_local_addrs(2).unwrap();
        let config = TcpConfigBuilder::new()
            .location(Alice, addrs[0])
            .location(Bob, addrs[1])
            .build::<System>()
            .unwrap();
        (
            TcpTransport::bind(Alice, config.clone()).unwrap(),
            TcpTransport::bind(Bob, config).unwrap(),
        )
    }};
}

conformance_suite!(
    tcp,
    tcp_pair!(),
    tcp_pair!(),
    tcp_pair!(),
    false,
    // The TCP disruption is real: hard-kill every established
    // connection on both sides; the resilient link layer must
    // reconnect and replay without a session noticing.
    |alice: &TcpTransport<System, Alice>, bob: &TcpTransport<System, Bob>| {
        alice.break_established_links();
        bob.break_established_links();
    }
);

conformance_suite!(
    sim,
    {
        // A hostile schedule, not a quiet one: reordering jitter, drops
        // (with retransmission), and duplicates. The contract must hold
        // anyway.
        let plan =
            FaultPlan::ideal().with_seed(11).with_jitter(6).with_drop(0.15).with_duplicate(0.1);
        let net = SimNet::<System>::new(plan);
        (SimTransport::new(Alice, net.clone()), SimTransport::new(Bob, net))
    },
    {
        // Every Alice→Bob frame has one payload bit flipped.
        let plan =
            FaultPlan::ideal().with_seed(12).with_corruption(Corruption::link("Alice", "Bob", 1.0));
        let net = SimNet::<System>::new(plan);
        (SimTransport::new(Alice, net.clone()), SimTransport::new(Bob, net))
    },
    {
        // Alice's frames to Bob never arrive; the watchdog must report
        // the dead edge instead of letting Bob hang.
        let plan = FaultPlan::ideal().with_seed(13).with_silence(Silence::link("Alice", "Bob"));
        let net = SimNet::<System>::new(plan);
        (SimTransport::new(Alice, net.clone()), SimTransport::new(Bob, net))
    },
    true
);

/// Determinism pins for the simulated network — the property the chaos
/// tests and CI replay workflow stand on.
mod sim_determinism {
    use super::*;
    use chorus_core::Endpoint;
    use chorus_transport::Trace;
    use std::sync::Arc;

    /// One fixed driver script over endpoints with a shared `Trace`
    /// layer: two sessions per direction, interleaved.
    fn run(seed: u64) -> (String, Vec<chorus_transport::TraceEvent>) {
        let plan =
            FaultPlan::ideal().with_seed(seed).with_jitter(9).with_drop(0.25).with_duplicate(0.2);
        let net = SimNet::<System>::new(plan);
        let trace = Arc::new(Trace::new());
        let alice = Endpoint::builder(Alice)
            .transport(SimTransport::new(Alice, net.clone()))
            .layer(Arc::clone(&trace))
            .build();
        let bob = Endpoint::builder(Bob)
            .transport(SimTransport::new(Bob, net.clone()))
            .layer(Arc::clone(&trace))
            .build();
        for id in 0..2u64 {
            let sa = alice.session_with_id(id);
            let sb = bob.session_with_id(id);
            for i in 0..16u32 {
                sa.send_bytes("Bob", &(i + id as u32).to_le_bytes()).unwrap();
                sb.send_bytes("Alice", &i.to_le_bytes()).unwrap();
            }
        }
        for id in 0..2u64 {
            let sa = alice.session_with_id(id);
            let sb = bob.session_with_id(id);
            for i in 0..16u32 {
                assert_eq!(sb.receive_bytes("Alice").unwrap(), (i + id as u32).to_le_bytes());
                assert_eq!(sa.receive_bytes("Bob").unwrap(), i.to_le_bytes());
            }
        }
        (net.schedule_dump(), trace.events())
    }

    #[test]
    fn same_seed_reproduces_the_delivery_trace_bit_for_bit() {
        let (dump_a, trace_a) = run(2024);
        let (dump_b, trace_b) = run(2024);
        assert_eq!(dump_a, dump_b, "schedule dumps must be identical");
        assert_eq!(trace_a, trace_b, "layer-observed traces must be identical");
        assert!(dump_a.contains("== Alice -> Bob") && dump_a.contains("== Bob -> Alice"));
    }

    #[test]
    fn different_seeds_explore_different_schedules() {
        let (dump_a, _) = run(1);
        let (dump_b, _) = run(2);
        assert_ne!(dump_a, dump_b);
    }

    #[test]
    fn sim_trace_events_interoperate_with_the_trace_layer_format() {
        let plan = FaultPlan::ideal().with_seed(5);
        let net = SimNet::<System>::new(plan);
        let alice = SimTransport::new(Alice, net.clone());
        let bob = SimTransport::new(Bob, net.clone());
        use chorus_core::Transport as _;
        alice.send("Bob", b"one").unwrap();
        bob.receive("Alice").unwrap();
        let events = net.trace_events();
        let sends =
            events.iter().filter(|e| e.direction == chorus_transport::Direction::Send).count();
        let receives =
            events.iter().filter(|e| e.direction == chorus_transport::Direction::Receive).count();
        assert_eq!((sends, receives), (1, 1));
    }
}
