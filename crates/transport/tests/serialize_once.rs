//! Pins the encode-once fan-out property: a multicast (and a broadcast)
//! serializes its value **exactly once**, no matter how many
//! destinations receive it — every recipient, including the sender's
//! own keep-copy, observes the same encoded bytes.
//!
//! The probes are values whose `Serialize` impls count their
//! invocations (one counter per test, so the tests can run on the
//! harness's concurrent threads without interfering).

use chorus_core::{ChoreoOp, Choreography, Endpoint, Located, LocationSet as _, MultiplyLocated};
use chorus_transport::{LocalTransport, LocalTransportChannel};
use serde::de::Deserializer;
use serde::ser::Serializer;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

macro_rules! counted_probe {
    ($name:ident, $counter:ident) => {
        static $counter: AtomicUsize = AtomicUsize::new(0);

        #[derive(Debug, Clone, PartialEq, Eq)]
        struct $name(u64);

        impl Serialize for $name {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                $counter.fetch_add(1, Ordering::SeqCst);
                self.0.serialize(serializer)
            }
        }

        impl<'de> Deserialize<'de> for $name {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                u64::deserialize(deserializer).map($name)
            }
        }
    };
}

counted_probe!(MulticastProbe, MULTICAST_SERIALIZATIONS);
counted_probe!(BroadcastProbe, BROADCAST_SERIALIZATIONS);
counted_probe!(TcpBatchProbe, TCP_BATCH_SERIALIZATIONS);

chorus_core::locations! { A, B, C, D }
type Census = chorus_core::LocationSet!(A, B, C, D);

/// A multicasts to the whole census (itself included) and everyone
/// returns the value they observed.
#[derive(Clone)]
struct FanOut;

impl Choreography<u64> for FanOut {
    type L = Census;

    fn run(self, op: &impl ChoreoOp<Self::L>) -> u64 {
        let at_a: Located<MulticastProbe, A> = op.locally(A, |_| MulticastProbe(41));
        let shared: MultiplyLocated<MulticastProbe, Census> = op.multicast(A, Census::new(), &at_a);
        op.naked(shared).0
    }
}

/// A broadcasts; every location returns what it heard.
#[derive(Clone)]
struct Shout;

impl Choreography<u64> for Shout {
    type L = Census;

    fn run(self, op: &impl ChoreoOp<Self::L>) -> u64 {
        let at_a: Located<BroadcastProbe, A> = op.locally(A, |_| BroadcastProbe(17));
        op.broadcast(A, at_a).0
    }
}

fn run_everywhere<C: Choreography<u64, L = Census> + Clone + Send + 'static>(
    choreo: C,
) -> Vec<u64> {
    let channel = LocalTransportChannel::<Census>::new();
    let mut handles = Vec::new();
    macro_rules! spawn_at {
        ($loc:ident) => {{
            let ch = channel.clone();
            let c = choreo.clone();
            handles.push(std::thread::spawn(move || {
                let endpoint = Endpoint::new(LocalTransport::new($loc, ch));
                endpoint.session_with_id(7).epp_and_run(c)
            }));
        }};
    }
    spawn_at!(A);
    spawn_at!(B);
    spawn_at!(C);
    spawn_at!(D);
    handles.into_iter().map(|h| h.join().expect("participant")).collect()
}

#[test]
fn multicast_serializes_exactly_once_regardless_of_census_size() {
    let results = run_everywhere(FanOut);
    assert_eq!(results, vec![41, 41, 41, 41]);
    // One fan-out to 3 remote destinations plus the sender's keep-copy:
    // one serialization total. (The counter also proves the keep-copy
    // decodes the shared bytes instead of re-encoding.)
    assert_eq!(
        MULTICAST_SERIALIZATIONS.load(Ordering::SeqCst),
        1,
        "multicast must serialize once, not once per destination"
    );
}

/// A multicasts over the batched TCP data plane; the census returns
/// what it observed.
#[derive(Clone)]
struct TcpFanOut;

impl Choreography<u64> for TcpFanOut {
    type L = Census;

    fn run(self, op: &impl ChoreoOp<Self::L>) -> u64 {
        let at_a: Located<TcpBatchProbe, A> = op.locally(A, |_| TcpBatchProbe(23));
        let shared: MultiplyLocated<TcpBatchProbe, Census> = op.multicast(A, Census::new(), &at_a);
        op.naked(shared).0
    }
}

/// The encode-once property must survive the batched TCP path: the
/// coalescing window queues all three remote copies before one vectored
/// flush, and every queued frame shares the single encoded payload
/// buffer — so the probe still serializes exactly once.
#[test]
fn tcp_batched_multicast_serializes_exactly_once() {
    use chorus_transport::{free_local_addrs, TcpConfigBuilder, TcpTransport};
    use std::time::Duration;

    let addrs = free_local_addrs(4).unwrap();
    let cfg = TcpConfigBuilder::new()
        .location(A, addrs[0])
        .location(B, addrs[1])
        .location(C, addrs[2])
        .location(D, addrs[3])
        .flush_delay(Duration::from_micros(200))
        .build::<Census>()
        .unwrap();
    let mut handles = Vec::new();
    macro_rules! spawn_at {
        ($loc:ident) => {{
            let cfg = cfg.clone();
            handles.push(std::thread::spawn(move || {
                let endpoint = Endpoint::new(TcpTransport::bind($loc, cfg).unwrap());
                endpoint.session_with_id(7).epp_and_run(TcpFanOut)
            }));
        }};
    }
    spawn_at!(A);
    spawn_at!(B);
    spawn_at!(C);
    spawn_at!(D);
    let results: Vec<u64> = handles.into_iter().map(|h| h.join().expect("participant")).collect();
    assert_eq!(results, vec![23, 23, 23, 23]);
    assert_eq!(
        TCP_BATCH_SERIALIZATIONS.load(Ordering::SeqCst),
        1,
        "a batched TCP multicast must serialize once, not once per socket"
    );
}

#[test]
fn broadcast_serializes_exactly_once() {
    let results = run_everywhere(Shout);
    assert_eq!(results, vec![17, 17, 17, 17]);
    assert_eq!(
        BROADCAST_SERIALIZATIONS.load(Ordering::SeqCst),
        1,
        "broadcast must serialize once, not once per listener"
    );
}
