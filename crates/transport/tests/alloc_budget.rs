//! Pins the zero-copy property of the in-process data plane: a counting
//! global allocator asserts the per-message allocation budget on the
//! `LocalTransport` send+receive hot path.
//!
//! The budget is **one allocation per message**: the shared payload
//! buffer created when the value's bytes leave the session's reusable
//! scratch space. Everything downstream — framing, demultiplexing,
//! mailbox delivery, the receiver's view of the payload — must share
//! that buffer, not copy it.
//!
//! This file contains exactly one `#[test]`: the default test harness
//! runs tests on concurrent threads, and a second test would perturb
//! the counter.

use chorus_core::Endpoint;
use chorus_transport::{LocalTransport, LocalTransportChannel};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Forwards to the system allocator, counting every allocation.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

chorus_core::locations! { Alice, Bob }
type System2 = chorus_core::LocationSet!(Alice, Bob);

#[test]
fn local_hot_path_stays_within_one_allocation_per_message() {
    // Both endpoints live on this thread: `LocalTransport` never needs
    // a peer thread, which makes the allocation count deterministic.
    let channel = LocalTransportChannel::<System2>::new();
    let alice = Endpoint::new(LocalTransport::new(Alice, channel.clone()));
    let bob = Endpoint::new(LocalTransport::new(Bob, channel));
    let alice_session = alice.session_with_id(1);
    let bob_session = bob.session_with_id(1);

    // Warm-up: grow the scratch buffer, the sequence trackers, the
    // mailbox map and its queue to steady-state capacity.
    for i in 0..64u64 {
        alice_session.send_value("Bob", &i).unwrap();
        let got = bob_session.receive_payload("Alice").unwrap();
        assert_eq!(got.len(), 8);
    }

    const MESSAGES: usize = 100;
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..MESSAGES as u64 {
        // Typed send: serialize into the session scratch (no
        // allocation at steady state), copy once into the shared
        // payload buffer (THE allocation), deposit the structured
        // frame, pop it at the receiver — nothing else.
        alice_session.send_value("Bob", &i).unwrap();
        let payload = bob_session.receive_payload("Alice").unwrap();
        assert_eq!(payload.len(), 8);
    }
    let spent = ALLOCATIONS.load(Ordering::Relaxed) - before;

    // The counter is process-global, and the test harness's own threads
    // (plus any lazily-ticking runtime thread) can allocate a handful of
    // times while the measured loop runs — more likely when the machine
    // is loaded by the rest of the suite. A small *constant* slack
    // absorbs that without weakening the per-message pin: anything the
    // hot path allocated per message would scale with MESSAGES.
    const SLACK: usize = 8;
    assert!(
        spent <= MESSAGES + SLACK,
        "local send+receive hot path allocated {spent} times for {MESSAGES} messages \
         (budget: 1 per message + {SLACK} constant slack)"
    );

    // Batched phase: the whole burst is queued before the first
    // receive, the shape the batched TCP data plane flushes as one
    // vectored write. The budget is unchanged — one allocation per
    // message — because batching reuses the same shared payload
    // buffers; only the mailbox queue's capacity growth is new, and the
    // warm-up burst pays for that once.
    for i in 0..MESSAGES as u64 {
        alice_session.send_value("Bob", &i).unwrap();
    }
    for _ in 0..MESSAGES {
        bob_session.receive_payload("Alice").unwrap();
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..MESSAGES as u64 {
        alice_session.send_value("Bob", &i).unwrap();
    }
    for _ in 0..MESSAGES {
        let payload = bob_session.receive_payload("Alice").unwrap();
        assert_eq!(payload.len(), 8);
    }
    let spent = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(
        spent <= MESSAGES + SLACK,
        "batched send burst allocated {spent} times for {MESSAGES} messages \
         (budget: 1 per message + {SLACK} constant slack)"
    );
}
