//! Pins the allocation budget of the *pooled* session runtime's hot
//! path: a counting global allocator asserts that driving a parked
//! session through a receive→send round costs O(1) allocations per
//! message at steady state — and in particular that waking a session
//! does **not** box anything per wakeup.
//!
//! Steady-state accounting for one echoed message pair:
//!
//! * client send: serialize into reusable scratch (0), copy once into
//!   the shared payload buffer (1);
//! * deposit + wake: mailbox push into retained capacity (0), waker
//!   taken out of the map by key (0), run-queue push of a cloned
//!   pre-allocated `Arc` (0);
//! * pooled resume: pop frame (0), decode (0), reply through the
//!   session scratch into one shared payload buffer (1);
//! * re-park: waker re-registered into a map slot already at capacity
//!   (0), park bookkeeping in place (0).
//!
//! That is 1 allocation per message. The assertion allows 2 per message
//! for cross-platform allocator noise — still O(1), still no per-wakeup
//! boxing (boxing even one waker per wake would double the count).
//!
//! This file contains exactly one `#[test]`: the default test harness
//! runs tests on concurrent threads, and a second test would perturb
//! the counter.

use chorus_core::{Endpoint, RoleProgram, SessionCx, SessionRuntime, Step, TransportError};
use chorus_transport::{LocalTransport, LocalTransportChannel};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Forwards to the system allocator, counting every allocation.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

chorus_core::locations! { Alice, Bob }
type Census = chorus_core::LocationSet!(Alice, Bob);

/// Echoes `remaining` integers back to Alice, parking between frames —
/// every round exercises the full yield/wake/resume cycle.
struct PooledEcho {
    remaining: u32,
}

impl RoleProgram for PooledEcho {
    type Output = ();

    fn resume(&mut self, cx: &mut SessionCx<'_>) -> Result<Step<()>, TransportError> {
        while self.remaining > 0 {
            let Some(value) = cx.try_receive_value::<u64>("Alice")? else {
                return Ok(Step::Pending);
            };
            cx.send_value("Alice", &value)?;
            self.remaining -= 1;
        }
        Ok(Step::Done(()))
    }
}

const WARMUP: u32 = 64;
const MESSAGES: u32 = 100;

#[test]
fn pooled_wakeup_path_stays_within_budget() {
    let channel = LocalTransportChannel::<Census>::new();
    let alice = Endpoint::new(LocalTransport::new(Alice, channel.clone()));
    let bob = Arc::new(Endpoint::new(LocalTransport::new(Bob, channel)));

    let runtime = SessionRuntime::new(1);
    let server = runtime.spawn(&bob, 1, PooledEcho { remaining: WARMUP + MESSAGES });
    let session = alice.session_with_id(1);

    // Warm-up: grow the scratch buffers, sequence trackers, mailbox
    // map, waker map, and run queue to steady-state capacity.
    for i in 0..u64::from(WARMUP) {
        session.send_value("Bob", &i).unwrap();
        assert_eq!(session.receive_payload("Bob").unwrap().len(), 8);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..u64::from(MESSAGES) {
        session.send_value("Bob", &i).unwrap();
        assert_eq!(session.receive_payload("Bob").unwrap().len(), 8);
    }
    let spent = ALLOCATIONS.load(Ordering::Relaxed) - before;

    server.join().unwrap();

    // 2 messages per round; measured cost is 1 allocation per message
    // (the shared payload buffer). Budget 2× for allocator noise.
    let budget = (MESSAGES as usize) * 2 * 2;
    assert!(
        spent <= budget,
        "pooled echo round-trips allocated {spent} times for {MESSAGES} rounds \
         (budget: {budget}; anything per-wakeup would blow this)"
    );
}
