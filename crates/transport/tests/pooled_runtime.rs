//! The pooled session runtime, end to end over real transports: ten
//! thousand concurrent KVS sessions on a fixed worker pool, thread
//! count bounded by the pool (never by the session count), stalls
//! surfaced by the watchdog, panics contained, chaos schedules
//! survived, and pooled/blocking interop.

use chorus_core::park::WaitQueue;
use chorus_core::{
    ChoreographyLocation, Endpoint, RoleProgram, SessionCx, SessionRuntime, Step, TransportError,
};
use chorus_protocols::kvs_simple::{PooledKvsClient, PooledKvsServer, SimpleKvs, SimpleKvsCensus};
use chorus_protocols::roles::{Client, Primary};
use chorus_protocols::store::{Request, Response, SharedStore};
use chorus_transport::{FaultPlan, LocalTransport, LocalTransportChannel, SimNet, SimTransport};
use std::sync::Arc;
use std::time::Duration;

type ClientEndpoint = Endpoint<SimpleKvsCensus, Client, LocalTransport<SimpleKvsCensus, Client>>;
type ServerEndpoint = Endpoint<SimpleKvsCensus, Primary, LocalTransport<SimpleKvsCensus, Primary>>;

fn local_pair() -> (Arc<ClientEndpoint>, Arc<ServerEndpoint>) {
    let channel = LocalTransportChannel::<SimpleKvsCensus>::new();
    let client = Arc::new(Endpoint::new(LocalTransport::new(Client, channel.clone())));
    let server = Arc::new(Endpoint::new(LocalTransport::new(Primary, channel)));
    (client, server)
}

/// The acceptance bar: 10k concurrent sessions complete on a pool whose
/// total OS thread count is bounded by the machine's parallelism — not
/// by the session count. Thread-per-role would need 20 000 threads
/// here; the runtime owns `pool + 1` (workers + watchdog), asserted
/// against the `2 × available_parallelism` ceiling.
#[test]
fn ten_thousand_sessions_on_a_fixed_pool() {
    const SESSIONS: u64 = 10_000;
    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let runtime = SessionRuntime::new(parallelism);
    assert_eq!(runtime.pool_size(), parallelism);
    assert!(
        runtime.thread_count() <= 2 * parallelism,
        "runtime owns {} OS threads, over the 2×{parallelism} bound",
        runtime.thread_count()
    );

    let (client, server) = local_pair();
    let store = SharedStore::new();
    let mut servers = Vec::with_capacity(SESSIONS as usize);
    let mut clients = Vec::with_capacity(SESSIONS as usize);
    for id in 0..SESSIONS {
        servers.push(runtime.spawn(&server, id, PooledKvsServer::new(store.clone())));
        clients.push(runtime.spawn(
            &client,
            id,
            PooledKvsClient::new(Request::Put(format!("k{id}"), format!("v{id}"))),
        ));
    }
    // Thread count is *constant*: spawning 20k roles changed nothing.
    assert!(runtime.thread_count() <= 2 * parallelism);
    for (id, handle) in clients.into_iter().enumerate() {
        assert_eq!(handle.join().unwrap(), Response::NotFound, "client {id} saw a stale key");
    }
    for handle in servers {
        handle.join().unwrap();
    }
    assert_eq!(runtime.live_sessions(), 0, "every task slot must be reclaimed");
    assert_eq!(store.get("k0"), Response::Found("v0".into()));
    assert_eq!(store.get("k9999"), Response::Found("v9999".into()));
}

/// A session whose peer never answers resolves with the watchdog's
/// protocol error (naming the awaited edge) instead of hanging — and
/// leaves the pool healthy for later sessions.
#[test]
fn watchdog_surfaces_a_stalled_session() {
    let runtime = SessionRuntime::with_watchdog(2, Duration::from_millis(200));
    let (client, server) = local_pair();
    // No server role is spawned: the client's receive can never be
    // satisfied.
    let stalled = runtime.spawn(&client, 1, PooledKvsClient::new(Request::Get("k".into())));
    let err = stalled.join().unwrap_err();
    assert!(matches!(err, TransportError::Protocol(_)));
    let message = err.to_string();
    assert!(message.contains("watchdog"), "got: {message}");
    assert!(message.contains("Primary"), "the stalled edge should be named, got: {message}");

    // The pool survived: a well-formed session still completes.
    let store = SharedStore::new();
    let s = runtime.spawn(&server, 2, PooledKvsServer::new(store));
    let c = runtime.spawn(&client, 2, PooledKvsClient::new(Request::Get("k".into())));
    assert_eq!(c.join().unwrap(), Response::NotFound);
    s.join().unwrap();
}

struct PanicsOnResume;

impl RoleProgram for PanicsOnResume {
    type Output = ();

    fn resume(&mut self, _cx: &mut SessionCx<'_>) -> Result<Step<()>, TransportError> {
        panic!("deliberate test panic");
    }
}

/// A panicking program resolves its own handle with a protocol error;
/// the worker that caught it keeps serving other sessions.
#[test]
fn panic_is_contained_to_its_session() {
    let runtime = SessionRuntime::new(2);
    let (client, server) = local_pair();
    let crashed = runtime.spawn(&client, 7, PanicsOnResume);
    let err = crashed.join().unwrap_err();
    assert!(err.to_string().contains("panicked"), "got: {err}");
    assert!(err.to_string().contains("deliberate test panic"), "got: {err}");

    let store = SharedStore::new();
    let s = runtime.spawn(&server, 8, PooledKvsServer::new(store));
    let c = runtime.spawn(&client, 8, PooledKvsClient::new(Request::Get("k".into())));
    assert_eq!(c.join().unwrap(), Response::NotFound);
    s.join().unwrap();
}

/// Pooled sessions run over the deterministic sim under a hostile
/// schedule (jitter, drops, duplicates): every session still completes
/// with the right answer, because the try-receive path drains the
/// in-flight set in the same deterministic order blocking receivers
/// use.
#[test]
fn pooled_sessions_survive_sim_chaos() {
    const SESSIONS: u64 = 64;
    let plan = FaultPlan::ideal().with_seed(77).with_jitter(8).with_drop(0.2).with_duplicate(0.15);
    let net = SimNet::<SimpleKvsCensus>::new(plan);
    let client = Arc::new(Endpoint::new(SimTransport::new(Client, net.clone())));
    let server = Arc::new(Endpoint::new(SimTransport::new(Primary, net)));
    let runtime = SessionRuntime::new(4);
    let store = SharedStore::new();
    let mut handles = Vec::new();
    for id in 0..SESSIONS {
        handles.push(runtime.spawn(&server, id, PooledKvsServer::new(store.clone())));
    }
    let clients: Vec<_> = (0..SESSIONS)
        .map(|id| {
            runtime.spawn(
                &client,
                id,
                PooledKvsClient::new(Request::Put(format!("k{id}"), format!("v{id}"))),
            )
        })
        .collect();
    for (id, handle) in clients.into_iter().enumerate() {
        assert_eq!(handle.join().unwrap(), Response::NotFound, "client {id}");
    }
    for handle in handles {
        handle.join().unwrap();
    }
    assert_eq!(store.get("k63"), Response::Found("v63".into()));
}

/// A pooled server answers a *blocking* client running the unchanged
/// `Session::epp_and_run` path — the two execution models speak the
/// same frames and mix freely within one session.
#[test]
fn pooled_server_answers_blocking_client() {
    let runtime = SessionRuntime::new(2);
    let (client, server) = local_pair();
    let store = SharedStore::new();
    store.put("lang", "rust");
    let pooled = runtime.spawn(&server, 3, PooledKvsServer::new(store));

    let session = client.session_with_id(3);
    let result = session.epp_and_run(SimpleKvs {
        request: session.local(Request::Get("lang".into())),
        state: session.remote(Primary),
    });
    assert_eq!(session.unwrap(result), Response::Found("rust".into()));
    pooled.join().unwrap();
}

/// `Endpoint::spawn_session` schedules onto the process-global runtime;
/// the global pool is sized to the machine, created on first use.
#[test]
fn endpoint_spawn_session_uses_the_global_runtime() {
    let (client, server) = local_pair();
    let store = SharedStore::new();
    let s = server.spawn_session(11, PooledKvsServer::new(store));
    let c = client.spawn_session(11, PooledKvsClient::new(Request::Put("k".into(), "v".into())));
    assert_eq!(c.join().unwrap(), Response::NotFound);
    s.join().unwrap();
    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    assert!(SessionRuntime::global().thread_count() <= 2 * parallelism);
}

/// A program with several receives re-parks on each edge in turn; the
/// runtime follows the *most recent* miss. This pins the multi-yield
/// resume contract with a two-round ping/pong.
struct TwoRoundClient {
    sent_first: bool,
    got_first: bool,
    sent_second: bool,
}

impl RoleProgram for TwoRoundClient {
    type Output = (Response, Response);

    fn resume(&mut self, cx: &mut SessionCx<'_>) -> Result<Step<Self::Output>, TransportError> {
        if !self.sent_first {
            cx.send_value(Primary::NAME, &Request::Put("round".into(), "one".into()))?;
            self.sent_first = true;
        }
        if !self.got_first {
            match cx.try_receive_value::<Response>(Primary::NAME)? {
                Some(_) => self.got_first = true,
                None => return Ok(Step::Pending),
            }
        }
        if !self.sent_second {
            cx.send_value(Primary::NAME, &Request::Get("round".into()))?;
            self.sent_second = true;
        }
        match cx.try_receive_value::<Response>(Primary::NAME)? {
            Some(second) => Ok(Step::Done((Response::NotFound, second))),
            None => Ok(Step::Pending),
        }
    }
}

struct TwoRoundServer {
    store: SharedStore,
    answered: u8,
}

impl RoleProgram for TwoRoundServer {
    type Output = ();

    fn resume(&mut self, cx: &mut SessionCx<'_>) -> Result<Step<()>, TransportError> {
        while self.answered < 2 {
            let Some(request) = cx.try_receive_value::<Request>(Client::NAME)? else {
                return Ok(Step::Pending);
            };
            let response = chorus_protocols::kvs_simple::handle_request(&request, &self.store);
            cx.send_value(Client::NAME, &response)?;
            self.answered += 1;
        }
        Ok(Step::Done(()))
    }
}

#[test]
fn multi_round_programs_repark_per_edge() {
    let runtime = SessionRuntime::new(2);
    let (client, server) = local_pair();
    let store = SharedStore::new();
    let s = runtime.spawn(&server, 21, TwoRoundServer { store, answered: 0 });
    let c = runtime.spawn(
        &client,
        21,
        TwoRoundClient { sent_first: false, got_first: false, sent_second: false },
    );
    let (_, second) = c.join().unwrap();
    assert_eq!(second, Response::Found("one".into()));
    s.join().unwrap();
}

/// Fairness smoke: a session that must wait for many peers does not
/// starve them — all sessions make progress through the FIFO run queue
/// even when one pool worker would suffice.
#[test]
fn single_worker_pool_still_drives_many_sessions() {
    const SESSIONS: u64 = 128;
    let runtime = SessionRuntime::new(1);
    let (client, server) = local_pair();
    let store = SharedStore::new();
    let handles: Vec<_> = (0..SESSIONS)
        .flat_map(|id| {
            let s = runtime.spawn(&server, id, PooledKvsServer::new(store.clone()));
            let c = runtime.spawn(
                &client,
                id,
                PooledKvsClient::new(Request::Put(format!("k{id}"), "v".into())),
            );
            [
                Box::new(move || {
                    s.join().unwrap();
                }) as Box<dyn FnOnce()>,
                Box::new(move || {
                    assert_eq!(c.join().unwrap(), Response::NotFound);
                }),
            ]
        })
        .collect();
    for join in handles {
        join();
    }
    assert_eq!(runtime.thread_count(), 2, "one worker + one watchdog");
}

/// The handle works from any thread — a spawner can hand it off and the
/// completion propagates through the cell's own park/wake.
#[test]
fn handles_join_across_threads() {
    let runtime = Arc::new(SessionRuntime::new(2));
    let (client, server) = local_pair();
    let store = SharedStore::new();
    let s = runtime.spawn(&server, 5, PooledKvsServer::new(store));
    let c = runtime.spawn(&client, 5, PooledKvsClient::new(Request::Get("x".into())));
    let gate = Arc::new(WaitQueue::new(Option::<Response>::None));
    let publisher = {
        let gate = Arc::clone(&gate);
        std::thread::spawn(move || {
            let response = c.join().unwrap();
            *gate.lock() = Some(response);
            gate.notify_all();
        })
    };
    let mut guard = gate.lock();
    loop {
        if let Some(response) = guard.take() {
            assert_eq!(response, Response::NotFound);
            break;
        }
        guard = gate.wait(guard);
    }
    drop(guard);
    publisher.join().unwrap();
    s.join().unwrap();
}
