//! Ad-hoc profiling harness for the saturated-link shape.
//! `cargo run --release -p chorus-transport --example saturate -- <mode> <msgs> <sessions> <flush_us> [send_only]`

use chorus_core::SessionTransport as _;
use chorus_transport::{free_local_addrs, TcpConfigBuilder, TcpTransport};
use chorus_wire::Envelope;
use std::sync::Arc;
use std::time::{Duration, Instant};

chorus_core::locations! { LA, LB }
type Duo = chorus_core::LocationSet!(LA, LB);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let resilient = args[0] == "batched";
    let msgs: u64 = args[1].parse().unwrap();
    let sessions: u64 = args[2].parse().unwrap();
    let flush_us: u64 = args[3].parse().unwrap();
    let send_only = args.get(4).map(|s| s == "send_only").unwrap_or(false);

    let addrs = free_local_addrs(2).unwrap();
    let config = TcpConfigBuilder::new()
        .location(LA, addrs[0])
        .location(LB, addrs[1])
        .resilience(resilient)
        .flush_delay(Duration::from_micros(flush_us))
        .build::<Duo>()
        .unwrap();
    let a = Arc::new(TcpTransport::<Duo, _>::bind(LA, config.clone()).unwrap());
    let b = Arc::new(TcpTransport::<Duo, _>::bind(LB, config).unwrap());
    let per_session = msgs / sessions;
    let start = Instant::now();
    let senders: Vec<_> = (0..sessions)
        .map(|session| {
            let a = Arc::clone(&a);
            std::thread::spawn(move || {
                for seq in 0..per_session {
                    a.send_frame("LB", Envelope::new(session + 1, seq, vec![0xB7u8; 32])).unwrap();
                }
            })
        })
        .collect();
    let receivers: Vec<_> = if send_only {
        Vec::new()
    } else {
        (0..sessions)
            .map(|session| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for _ in 0..per_session {
                        b.receive_frame(session + 1, "LA").unwrap();
                    }
                })
            })
            .collect()
    };
    for t in senders {
        t.join().unwrap();
    }
    let send_done = start.elapsed();
    for t in receivers {
        t.join().unwrap();
    }
    let all_done = start.elapsed();
    println!(
        "mode={} sessions={} flush={}us send_only={}: senders done {:.1}ms ({:.0} msgs/s), all done {:.1}ms ({:.0} msgs/s)",
        args[0],
        sessions,
        flush_us,
        send_only,
        send_done.as_secs_f64() * 1e3,
        msgs as f64 / send_done.as_secs_f64(),
        all_done.as_secs_f64() * 1e3,
        msgs as f64 / all_done.as_secs_f64(),
    );
}
