//! Transports for choreographic programs.
//!
//! The paper's libraries execute one choreography over interchangeable
//! transports (§2.1): threads in one process, or sockets between machines.
//! This crate provides:
//!
//! * [`LocalTransport`] — in-process, channel-based; each participant runs
//!   on its own thread.
//! * [`TcpTransport`] — length-prefixed frames over TCP sockets, for
//!   multi-process execution on one or more hosts.
//! * [`InstrumentedTransport`] — a wrapper that counts messages and bytes
//!   per edge; every communication-efficiency experiment in the benchmark
//!   harness uses it.

mod local;
mod metrics;
mod tcp;

pub use local::{LocalTransport, LocalTransportChannel};
pub use metrics::{EdgeMetrics, InstrumentedTransport, MetricsSnapshot, TransportMetrics};
pub use tcp::{free_local_addrs, TcpConfig, TcpConfigBuilder, TcpTransport};
