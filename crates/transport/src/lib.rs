//! Transports for choreographic programs.
//!
//! The paper's libraries execute one choreography over interchangeable
//! transports (§2.1): threads in one process, or sockets between
//! machines. This crate provides the session-native transports and the
//! layers that observe them:
//!
//! * [`LocalTransport`] — in-process, queue-based; each participant runs
//!   on its own thread. One shared fabric carries any number of
//!   concurrent sessions.
//! * [`TcpTransport`] — length-prefixed envelope frames over TCP
//!   sockets, for multi-process execution on one or more hosts, with
//!   per-(session, sender) demultiplexing and a resilient link layer
//!   (retention + cumulative acks + replay, heartbeat supervision,
//!   jittered reconnect backoff with a bounded budget) so connections
//!   can die and return without sessions observing more than latency.
//! * [`FaultyTcp`] — a seeded in-process fault injector for *real*
//!   sockets: a per-edge proxy that kills established connections,
//!   delays accepts, and blackholes one direction on a reproducible
//!   schedule, powering the tcp-chaos suite.
//! * [`SimTransport`] — a deterministic discrete-event simulation of a
//!   hostile network (seeded latency, drops, duplication, reordering,
//!   partitions, link poison, adversarial corruption and selective
//!   silence) with virtual time and reproducible, dumpable delivery
//!   schedules.
//! * [`Equivocator`] — a Byzantine *sender* adapter over any session
//!   transport: delivers deterministically different payloads to chosen
//!   victim receivers for the same logical send.
//! * [`TransportMetrics`] — a [`chorus_core::Layer`] counting messages
//!   and bytes per edge; every communication-efficiency experiment in
//!   the benchmark harness uses it.
//! * [`Trace`] — a layer recording an ordered, session-tagged log of
//!   every send and receive.

mod byzantine;
mod faulty;
mod link;
mod local;
mod metrics;
mod sim;
mod tcp;
mod trace;

pub use byzantine::Equivocator;
pub use faulty::{FaultyPlan, FaultyTcp};
pub use link::{LinkTuning, TcpLinkStats};
pub use local::{LocalTransport, LocalTransportChannel};
pub use metrics::{EdgeMetrics, MetricsSnapshot, TransportMetrics};
pub use sim::{
    Corruption, FaultPlan, Partition, Poison, Silence, SimEvent, SimEventKind, SimNet, SimTransport,
};
pub use tcp::{free_local_addrs, TcpConfig, TcpConfigBuilder, TcpTransport};
pub use trace::{Direction, Trace, TraceEvent};
