//! A tracing [`Layer`]: records every message an endpoint sends or
//! receives, in order, with full session context.
//!
//! Useful for debugging interleaved sessions ("which session did that
//! frame belong to?") and for asserting on communication patterns in
//! tests without counting bytes by hand.

use chorus_core::{Layer, MessageCtx, SessionId};
use parking_lot::Mutex;

/// Whether a traced message was sent or received by this endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// The endpoint sent the message.
    Send,
    /// The endpoint received the message.
    Receive,
}

/// One traced message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Send or receive, from this endpoint's perspective.
    pub direction: Direction,
    /// The session the message belonged to.
    pub session: SessionId,
    /// The message's per-(session, edge) sequence number.
    pub seq: u64,
    /// Name of the sending location.
    pub from: String,
    /// Name of the receiving location.
    pub to: String,
    /// Payload size in bytes.
    pub bytes: usize,
}

/// A [`Layer`] recording an ordered log of [`TraceEvent`]s.
///
/// Install one per endpoint (or share one `Arc` across endpoints to get
/// a global interleaving as observed by layer hooks).
#[derive(Debug, Default)]
pub struct Trace {
    events: Mutex<Vec<TraceEvent>>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a copy of all events recorded so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Events belonging to one session, in recording order.
    pub fn session_events(&self, session: SessionId) -> Vec<TraceEvent> {
        self.events.lock().iter().filter(|e| e.session == session).cloned().collect()
    }

    /// Clears the log.
    pub fn clear(&self) {
        self.events.lock().clear();
    }

    fn record(&self, direction: Direction, ctx: &MessageCtx<'_>, payload: &[u8]) {
        self.events.lock().push(TraceEvent {
            direction,
            session: ctx.session,
            seq: ctx.seq,
            from: ctx.from.to_string(),
            to: ctx.to.to_string(),
            bytes: payload.len(),
        });
    }
}

impl Layer for Trace {
    fn on_send(&self, ctx: &MessageCtx<'_>, payload: &[u8]) {
        self.record(Direction::Send, ctx, payload);
    }

    fn on_receive(&self, ctx: &MessageCtx<'_>, payload: &[u8]) {
        self.record(Direction::Receive, ctx, payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LocalTransport, LocalTransportChannel};
    use chorus_core::Endpoint;
    use std::sync::Arc;

    chorus_core::locations! { Alice, Bob }
    type System = chorus_core::LocationSet!(Alice, Bob);

    #[test]
    fn records_sends_and_receives_with_session_context() {
        let channel = LocalTransportChannel::<System>::new();
        let trace = Arc::new(Trace::new());
        let alice = Endpoint::builder(Alice)
            .transport(LocalTransport::new(Alice, channel.clone()))
            .layer(Arc::clone(&trace))
            .build();
        let bob = Endpoint::builder(Bob)
            .transport(LocalTransport::new(Bob, channel))
            .layer(Arc::clone(&trace))
            .build();

        alice.session_with_id(5).send_bytes("Bob", b"abc").unwrap();
        bob.session_with_id(5).receive_bytes("Alice").unwrap();

        let events = trace.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].direction, Direction::Send);
        assert_eq!(events[1].direction, Direction::Receive);
        for event in &events {
            assert_eq!(event.session, 5);
            assert_eq!(event.seq, 0);
            assert_eq!(event.from, "Alice");
            assert_eq!(event.to, "Bob");
            assert_eq!(event.bytes, 3);
        }
        assert_eq!(trace.session_events(5).len(), 2);
        assert!(trace.session_events(6).is_empty());
        trace.clear();
        assert!(trace.is_empty());
    }
}
