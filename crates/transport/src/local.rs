//! In-process transport: participants are threads, links are in-memory
//! queues, and every link demultiplexes concurrent sessions.

use chorus_core::{
    ChoreographyLocation, LocationSet, SequenceTracker, SessionId, SessionTransport, Transport,
    TransportError, RAW_SESSION,
};
use chorus_wire::Envelope;
use std::collections::{HashMap, VecDeque};
use std::marker::PhantomData;
use std::sync::{Arc, Condvar, Mutex};

/// One directed link's state: encoded frames in transit plus the
/// per-session mailboxes they are demultiplexed into.
#[derive(Default)]
struct LinkState {
    inner: Mutex<LinkInner>,
    cv: Condvar,
}

#[derive(Default)]
struct LinkInner {
    /// Encoded envelopes, in send order, not yet demultiplexed.
    raw: VecDeque<Vec<u8>>,
    /// Per-session FIFO mailboxes.
    mailboxes: HashMap<SessionId, VecDeque<Envelope>>,
    /// Per-session sequence validation.
    sequences: SequenceTracker,
    /// A protocol violation that poisoned the whole link. Every current
    /// and future receiver sees it, not just the session whose thread
    /// happened to demultiplex the bad frame.
    dead: Option<String>,
}

impl LinkInner {
    /// Moves the oldest in-transit frame into its session mailbox; on a
    /// malformed or out-of-order frame, marks the link dead.
    fn demux_one(&mut self, from: &str) {
        if let Some(bytes) = self.raw.pop_front() {
            match Envelope::decode(&bytes).map_err(TransportError::from).and_then(|envelope| {
                self.sequences.check(envelope.session, from, envelope.seq)?;
                Ok(envelope)
            }) {
                Ok(envelope) => {
                    self.mailboxes.entry(envelope.session).or_default().push_back(envelope);
                }
                Err(e) => self.dead = Some(e.to_string()),
            }
        }
    }
}

/// The shared fabric connecting every pair of locations in `L`.
///
/// Create one channel, clone it into each participant's thread, and wrap
/// each clone in a [`LocalTransport`]. One fabric carries any number of
/// concurrent sessions.
///
/// # Examples
///
/// ```
/// use chorus_transport::{LocalTransport, LocalTransportChannel};
///
/// chorus_core::locations! { Alice, Bob }
/// type System = chorus_core::LocationSet!(Alice, Bob);
///
/// let channel = LocalTransportChannel::<System>::new();
/// let for_alice = LocalTransport::new(Alice, channel.clone());
/// let for_bob = LocalTransport::new(Bob, channel);
/// # let _ = (for_alice, for_bob);
/// ```
pub struct LocalTransportChannel<L: LocationSet> {
    links: Arc<HashMap<(&'static str, &'static str), LinkState>>,
    system: PhantomData<L>,
}

impl<L: LocationSet> Clone for LocalTransportChannel<L> {
    fn clone(&self) -> Self {
        LocalTransportChannel { links: Arc::clone(&self.links), system: PhantomData }
    }
}

impl<L: LocationSet> LocalTransportChannel<L> {
    /// Creates a fabric with an unbounded FIFO link for every ordered pair
    /// of distinct locations in `L`.
    pub fn new() -> Self {
        let names = L::names();
        let mut links = HashMap::new();
        for from in &names {
            for to in &names {
                if from != to {
                    links.insert((*from, *to), LinkState::default());
                }
            }
        }
        LocalTransportChannel { links: Arc::new(links), system: PhantomData }
    }
}

impl<L: LocationSet> Default for LocalTransportChannel<L> {
    fn default() -> Self {
        Self::new()
    }
}

/// One participant's endpoint of a [`LocalTransportChannel`].
pub struct LocalTransport<L: LocationSet, Target: ChoreographyLocation> {
    channel: LocalTransportChannel<L>,
    /// Sequence counters for the raw (sessionless) compatibility path.
    raw_seqs: Mutex<HashMap<&'static str, u64>>,
    target: PhantomData<Target>,
}

impl<L: LocationSet, Target: ChoreographyLocation> LocalTransport<L, Target> {
    /// Creates `target`'s endpoint over the shared fabric.
    pub fn new(target: Target, channel: LocalTransportChannel<L>) -> Self {
        let _ = target;
        LocalTransport { channel, raw_seqs: Mutex::new(HashMap::new()), target: PhantomData }
    }

    fn link(&self, from: &str, to: &str) -> Result<&LinkState, TransportError> {
        let key_from = L::names()
            .into_iter()
            .find(|n| *n == from)
            .ok_or_else(|| TransportError::UnknownLocation(from.to_string()))?;
        let key_to = L::names()
            .into_iter()
            .find(|n| *n == to)
            .ok_or_else(|| TransportError::UnknownLocation(to.to_string()))?;
        self.channel.links.get(&(key_from, key_to)).ok_or_else(|| {
            TransportError::UnknownLocation(if from == Target::NAME {
                to.to_string()
            } else {
                from.to_string()
            })
        })
    }
}

impl<L: LocationSet, Target: ChoreographyLocation> SessionTransport<L, Target>
    for LocalTransport<L, Target>
{
    fn send_frame(&self, to: &str, frame: Envelope) -> Result<(), TransportError> {
        let link = self.link(Target::NAME, to)?;
        let mut inner = link.inner.lock().expect("local link poisoned");
        inner.raw.push_back(frame.encode());
        link.cv.notify_all();
        Ok(())
    }

    fn receive_frame(&self, session: SessionId, from: &str) -> Result<Envelope, TransportError> {
        let link = self.link(from, Target::NAME)?;
        let mut inner = link.inner.lock().expect("local link poisoned");
        loop {
            if let Some(envelope) = inner.mailboxes.get_mut(&session).and_then(VecDeque::pop_front)
            {
                return Ok(envelope);
            }
            if let Some(reason) = &inner.dead {
                link.cv.notify_all();
                return Err(TransportError::Protocol(format!(
                    "link from {from} is down: {reason}"
                )));
            }
            if !inner.raw.is_empty() {
                inner.demux_one(from);
                continue;
            }
            inner = link.cv.wait(inner).expect("local link poisoned");
        }
    }
}

impl<L: LocationSet, Target: ChoreographyLocation> Transport<L, Target>
    for LocalTransport<L, Target>
{
    fn send(&self, to: &str, data: &[u8]) -> Result<(), TransportError> {
        let seq = {
            let to_static = L::names()
                .into_iter()
                .find(|n| *n == to)
                .ok_or_else(|| TransportError::UnknownLocation(to.to_string()))?;
            let mut seqs = self.raw_seqs.lock().expect("raw sequence counters poisoned");
            let counter = seqs.entry(to_static).or_insert(0);
            let seq = *counter;
            *counter += 1;
            seq
        };
        self.send_frame(to, Envelope::new(RAW_SESSION, seq, data.to_vec()))
    }

    fn receive(&self, from: &str) -> Result<Vec<u8>, TransportError> {
        self.receive_frame(RAW_SESSION, from).map(|envelope| envelope.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    chorus_core::locations! { Alice, Bob }
    type System = chorus_core::LocationSet!(Alice, Bob);

    #[test]
    fn send_and_receive_preserve_fifo_order() {
        let channel = LocalTransportChannel::<System>::new();
        let alice = LocalTransport::new(Alice, channel.clone());
        let bob = LocalTransport::new(Bob, channel);
        alice.send("Bob", b"one").unwrap();
        alice.send("Bob", b"two").unwrap();
        assert_eq!(bob.receive("Alice").unwrap(), b"one");
        assert_eq!(bob.receive("Alice").unwrap(), b"two");
    }

    #[test]
    fn unknown_locations_are_rejected() {
        let channel = LocalTransportChannel::<System>::new();
        let alice = LocalTransport::new(Alice, channel);
        assert!(matches!(alice.send("Nobody", b"x"), Err(TransportError::UnknownLocation(_))));
        assert!(matches!(alice.receive("Nobody"), Err(TransportError::UnknownLocation(_))));
    }

    #[test]
    fn locations_lists_the_census() {
        let channel = LocalTransportChannel::<System>::new();
        let alice = LocalTransport::new(Alice, channel);
        assert_eq!(chorus_core::Transport::locations(&alice), vec!["Alice", "Bob"]);
        assert_eq!(chorus_core::SessionTransport::locations(&alice), vec!["Alice", "Bob"]);
    }

    #[test]
    fn links_are_directional() {
        let channel = LocalTransportChannel::<System>::new();
        let alice = LocalTransport::new(Alice, channel.clone());
        let bob = LocalTransport::new(Bob, channel);
        alice.send("Bob", b"ping").unwrap();
        // Bob's message to Alice does not interfere with Alice's to Bob.
        bob.send("Alice", b"pong").unwrap();
        assert_eq!(bob.receive("Alice").unwrap(), b"ping");
        assert_eq!(alice.receive("Bob").unwrap(), b"pong");
    }

    #[test]
    fn sessions_demultiplex_on_one_link() {
        let channel = LocalTransportChannel::<System>::new();
        let alice = LocalTransport::new(Alice, channel.clone());
        let bob = LocalTransport::new(Bob, channel);
        // Interleave two sessions on the same directed link.
        alice.send_frame("Bob", Envelope::new(1, 0, b"s1-first".to_vec())).unwrap();
        alice.send_frame("Bob", Envelope::new(2, 0, b"s2-first".to_vec())).unwrap();
        alice.send_frame("Bob", Envelope::new(1, 1, b"s1-second".to_vec())).unwrap();
        // Reading session 2 first must not disturb session 1's order.
        assert_eq!(bob.receive_frame(2, "Alice").unwrap().payload, b"s2-first");
        assert_eq!(bob.receive_frame(1, "Alice").unwrap().payload, b"s1-first");
        assert_eq!(bob.receive_frame(1, "Alice").unwrap().payload, b"s1-second");
    }

    #[test]
    fn out_of_order_frames_are_rejected() {
        let channel = LocalTransportChannel::<System>::new();
        let alice = LocalTransport::new(Alice, channel.clone());
        let bob = LocalTransport::new(Bob, channel);
        alice.send_frame("Bob", Envelope::new(1, 0, b"ok".to_vec())).unwrap();
        alice.send_frame("Bob", Envelope::new(1, 2, b"gap".to_vec())).unwrap();
        assert_eq!(bob.receive_frame(1, "Alice").unwrap().payload, b"ok");
        assert!(matches!(bob.receive_frame(1, "Alice"), Err(TransportError::Protocol(_))));
    }
}
