//! In-process transport: participants are threads, links are channels.

use chorus_core::{ChoreographyLocation, LocationSet, Transport, TransportError};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::Arc;

type Link = (Sender<Vec<u8>>, Receiver<Vec<u8>>);

/// The shared fabric connecting every pair of locations in `L`.
///
/// Create one channel, clone it into each participant's thread, and wrap
/// each clone in a [`LocalTransport`].
///
/// # Examples
///
/// ```
/// use chorus_transport::{LocalTransport, LocalTransportChannel};
///
/// chorus_core::locations! { Alice, Bob }
/// type System = chorus_core::LocationSet!(Alice, Bob);
///
/// let channel = LocalTransportChannel::<System>::new();
/// let for_alice = LocalTransport::new(Alice, channel.clone());
/// let for_bob = LocalTransport::new(Bob, channel);
/// # let _ = (for_alice, for_bob);
/// ```
pub struct LocalTransportChannel<L: LocationSet> {
    links: Arc<HashMap<(&'static str, &'static str), Link>>,
    system: PhantomData<L>,
}

impl<L: LocationSet> Clone for LocalTransportChannel<L> {
    fn clone(&self) -> Self {
        LocalTransportChannel { links: Arc::clone(&self.links), system: PhantomData }
    }
}

impl<L: LocationSet> LocalTransportChannel<L> {
    /// Creates a fabric with an unbounded FIFO link for every ordered pair
    /// of distinct locations in `L`.
    pub fn new() -> Self {
        let names = L::names();
        let mut links = HashMap::new();
        for from in &names {
            for to in &names {
                if from != to {
                    links.insert((*from, *to), unbounded());
                }
            }
        }
        LocalTransportChannel { links: Arc::new(links), system: PhantomData }
    }
}

impl<L: LocationSet> Default for LocalTransportChannel<L> {
    fn default() -> Self {
        Self::new()
    }
}

/// One participant's endpoint of a [`LocalTransportChannel`].
pub struct LocalTransport<L: LocationSet, Target: ChoreographyLocation> {
    channel: LocalTransportChannel<L>,
    target: PhantomData<Target>,
}

impl<L: LocationSet, Target: ChoreographyLocation> LocalTransport<L, Target> {
    /// Creates `target`'s endpoint over the shared fabric.
    pub fn new(target: Target, channel: LocalTransportChannel<L>) -> Self {
        let _ = target;
        LocalTransport { channel, target: PhantomData }
    }
}

impl<L: LocationSet, Target: ChoreographyLocation> Transport<L, Target>
    for LocalTransport<L, Target>
{
    fn send(&self, to: &str, data: &[u8]) -> Result<(), TransportError> {
        let link = self
            .channel
            .links
            .get(&(Target::NAME, to))
            .ok_or_else(|| TransportError::UnknownLocation(to.to_string()))?;
        link.0
            .send(data.to_vec())
            .map_err(|_| TransportError::ConnectionClosed { peer: to.to_string() })
    }

    fn receive(&self, from: &str) -> Result<Vec<u8>, TransportError> {
        let link = self
            .channel
            .links
            .get(&(from, Target::NAME))
            .ok_or_else(|| TransportError::UnknownLocation(from.to_string()))?;
        link.1
            .recv()
            .map_err(|_| TransportError::ConnectionClosed { peer: from.to_string() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chorus_core::Transport as _;

    chorus_core::locations! { Alice, Bob }
    type System = chorus_core::LocationSet!(Alice, Bob);

    #[test]
    fn send_and_receive_preserve_fifo_order() {
        let channel = LocalTransportChannel::<System>::new();
        let alice = LocalTransport::new(Alice, channel.clone());
        let bob = LocalTransport::new(Bob, channel);
        alice.send("Bob", b"one").unwrap();
        alice.send("Bob", b"two").unwrap();
        assert_eq!(bob.receive("Alice").unwrap(), b"one");
        assert_eq!(bob.receive("Alice").unwrap(), b"two");
    }

    #[test]
    fn unknown_locations_are_rejected() {
        let channel = LocalTransportChannel::<System>::new();
        let alice = LocalTransport::new(Alice, channel);
        assert!(matches!(
            alice.send("Nobody", b"x"),
            Err(TransportError::UnknownLocation(_))
        ));
        assert!(matches!(
            alice.receive("Nobody"),
            Err(TransportError::UnknownLocation(_))
        ));
    }

    #[test]
    fn locations_lists_the_census() {
        let channel = LocalTransportChannel::<System>::new();
        let alice = LocalTransport::new(Alice, channel);
        assert_eq!(alice.locations(), vec!["Alice", "Bob"]);
    }

    #[test]
    fn links_are_directional() {
        let channel = LocalTransportChannel::<System>::new();
        let alice = LocalTransport::new(Alice, channel.clone());
        let bob = LocalTransport::new(Bob, channel);
        alice.send("Bob", b"ping").unwrap();
        // Bob's message to Alice does not interfere with Alice's to Bob.
        bob.send("Alice", b"pong").unwrap();
        assert_eq!(bob.receive("Alice").unwrap(), b"ping");
        assert_eq!(alice.receive("Bob").unwrap(), b"pong");
    }
}
