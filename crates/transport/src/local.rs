//! In-process transport: participants are threads, links are in-memory
//! queues, and every link demultiplexes concurrent sessions.
//!
//! Frames stay *structured* end to end: a sent [`Envelope`] is
//! sequence-checked and deposited directly into its per-session
//! mailbox — no encode-to-bytes / decode-from-bytes round trip ever
//! happens in-process, and the payload the receiver observes is the
//! very buffer the sender serialized (shared, not copied).

use chorus_core::park::WaitQueue;
use chorus_core::{
    ChoreographyLocation, InternedNames, LocationSet, MailboxWaker, SequenceTracker, SessionId,
    SessionTransport, Transport, TransportError, RAW_SESSION,
};
use chorus_wire::Envelope;
use std::collections::{HashMap, VecDeque};
use std::marker::PhantomData;
use std::sync::{Arc, Mutex};

/// How many lock-and-look retries a receiver burns before escalating.
/// In-process peers usually answer within a microsecond; polling
/// briefly skips the cross-thread park/wake round trip that otherwise
/// dominates the latency of small messages. Only used when more than
/// one core is available — on a single core, spinning just steals the
/// sender's CPU.
const RECV_SPIN_LIMIT: u32 = 128;

/// After spinning, how many `yield_now` retries before parking on the
/// condvar. A yield immediately hands the core to a runnable sender —
/// the cheap path on oversubscribed or single-core machines — while a
/// park/wake costs two futex transitions.
const RECV_YIELD_LIMIT: u32 = 32;

/// One directed link's state: per-session FIFO mailboxes of structured
/// frames, parked on via the core park/wake shim.
type LinkState = WaitQueue<LinkInner>;

#[derive(Default)]
struct LinkInner {
    /// Per-session FIFO mailboxes. Senders deposit directly (after
    /// sequence validation); receivers only ever pop.
    mailboxes: HashMap<SessionId, VecDeque<Envelope>>,
    /// Per-session sequence validation.
    sequences: SequenceTracker,
    /// A protocol violation that poisoned the whole link. Every current
    /// and future receiver sees it, not just the session whose frame
    /// was bad.
    dead: Option<String>,
    /// Readiness wakers parked on empty mailboxes by the pooled session
    /// runtime: at most one per session, removed (and fired, outside
    /// the lock) when a frame for that session is deposited, drained
    /// wholesale when the link dies.
    wakers: HashMap<SessionId, MailboxWaker>,
}

/// The shared fabric connecting every pair of locations in `L`.
///
/// Create one channel, clone it into each participant's thread, and wrap
/// each clone in a [`LocalTransport`]. One fabric carries any number of
/// concurrent sessions.
///
/// # Examples
///
/// ```
/// use chorus_transport::{LocalTransport, LocalTransportChannel};
///
/// chorus_core::locations! { Alice, Bob }
/// type System = chorus_core::LocationSet!(Alice, Bob);
///
/// let channel = LocalTransportChannel::<System>::new();
/// let for_alice = LocalTransport::new(Alice, channel.clone());
/// let for_bob = LocalTransport::new(Bob, channel);
/// # let _ = (for_alice, for_bob);
/// ```
pub struct LocalTransportChannel<L: LocationSet> {
    links: Arc<HashMap<(&'static str, &'static str), LinkState>>,
    system: PhantomData<L>,
}

impl<L: LocationSet> Clone for LocalTransportChannel<L> {
    fn clone(&self) -> Self {
        LocalTransportChannel { links: Arc::clone(&self.links), system: PhantomData }
    }
}

impl<L: LocationSet> LocalTransportChannel<L> {
    /// Creates a fabric with an unbounded FIFO link for every ordered pair
    /// of distinct locations in `L`.
    pub fn new() -> Self {
        let names = L::names();
        let mut links = HashMap::new();
        for from in &names {
            for to in &names {
                if from != to {
                    links.insert((*from, *to), LinkState::default());
                }
            }
        }
        LocalTransportChannel { links: Arc::new(links), system: PhantomData }
    }
}

impl<L: LocationSet> Default for LocalTransportChannel<L> {
    fn default() -> Self {
        Self::new()
    }
}

/// One participant's endpoint of a [`LocalTransportChannel`].
pub struct LocalTransport<L: LocationSet, Target: ChoreographyLocation> {
    channel: LocalTransportChannel<L>,
    /// The census, resolved once so per-message destination/sender
    /// validation works over interned names without allocating.
    names: InternedNames,
    /// Spin budget for receives, resolved once from the machine's
    /// parallelism: zero on a single core, [`RECV_SPIN_LIMIT`] otherwise.
    spin_limit: u32,
    /// Sequence counters for the raw (sessionless) compatibility path.
    raw_seqs: Mutex<HashMap<&'static str, u64>>,
    target: PhantomData<Target>,
}

impl<L: LocationSet, Target: ChoreographyLocation> LocalTransport<L, Target> {
    /// Creates `target`'s endpoint over the shared fabric.
    pub fn new(target: Target, channel: LocalTransportChannel<L>) -> Self {
        let _ = target;
        static PARALLELISM: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        let parallel = *PARALLELISM
            .get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        LocalTransport {
            channel,
            names: InternedNames::of::<L>(),
            spin_limit: if parallel > 1 { RECV_SPIN_LIMIT } else { 0 },
            raw_seqs: Mutex::new(HashMap::new()),
            target: PhantomData,
        }
    }

    fn link(&self, from: &'static str, to: &'static str) -> Result<&LinkState, TransportError> {
        self.channel.links.get(&(from, to)).ok_or_else(|| {
            TransportError::UnknownLocation(if from == Target::NAME {
                to.to_string()
            } else {
                from.to_string()
            })
        })
    }
}

impl<L: LocationSet, Target: ChoreographyLocation> SessionTransport<L, Target>
    for LocalTransport<L, Target>
{
    fn send_frame(&self, to: &str, frame: Envelope) -> Result<(), TransportError> {
        let to = self.names.resolve(to)?;
        let link = self.link(Target::NAME, to)?;
        let mut inner = link.lock();
        // Sequence-check and demultiplex at the sender, under the link
        // lock: frames land in their session mailbox fully structured,
        // sharing the sender's payload buffer. A violation poisons the
        // link for every receiver, and frames sent after the poison are
        // withheld — every session on the link sees the error, exactly
        // as when demultiplexing stopped at the first bad frame. (The
        // send itself still reports `Ok`; the error surfaces at the
        // receivers.)
        let mut fired = None;
        let mut all_fired = Vec::new();
        if inner.dead.is_none() {
            match inner.sequences.check(frame.session, Target::NAME, frame.seq) {
                Ok(()) => {
                    let session = frame.session;
                    inner.mailboxes.entry(session).or_default().push_back(frame);
                    // `remove` hands the parked waker out without
                    // allocating; it is invoked outside the lock (a waker
                    // re-enqueues into a scheduler queue, and calling it
                    // under the mailbox lock invites ordering deadlocks).
                    fired = inner.wakers.remove(&session);
                }
                Err(e) => {
                    inner.dead = Some(e.to_string());
                    // The whole link is now an error state every session
                    // observes: every parked session is ready.
                    all_fired.extend(inner.wakers.drain().map(|(_, waker)| waker));
                }
            }
        }
        drop(inner);
        link.notify_all();
        if let Some(waker) = fired {
            waker();
        }
        for waker in all_fired {
            waker();
        }
        Ok(())
    }

    fn receive_frame(&self, session: SessionId, from: &str) -> Result<Envelope, TransportError> {
        let from = self.names.resolve(from)?;
        let link = self.link(from, Target::NAME)?;
        let mut spins = 0u32;
        let mut inner = link.lock();
        loop {
            if let Some(envelope) = inner.mailboxes.get_mut(&session).and_then(VecDeque::pop_front)
            {
                return Ok(envelope);
            }
            if let Some(reason) = &inner.dead {
                link.notify_all();
                return Err(TransportError::Protocol(format!(
                    "link from {from} is down: {reason}"
                )));
            }
            if spins < self.spin_limit {
                // Briefly poll before escalating: drop the lock so the
                // sender can deposit, give the core a breather, retry.
                spins += 1;
                drop(inner);
                std::hint::spin_loop();
                inner = link.lock();
            } else if spins < self.spin_limit + RECV_YIELD_LIMIT {
                // Hand the core to a runnable sender; far cheaper than a
                // park/wake when the reply is about to arrive.
                spins += 1;
                drop(inner);
                std::thread::yield_now();
                inner = link.lock();
            } else {
                inner = link.wait(inner);
            }
        }
    }

    fn try_receive_frame(
        &self,
        session: SessionId,
        from: &str,
    ) -> Result<Option<Envelope>, TransportError> {
        let from = self.names.resolve(from)?;
        let link = self.link(from, Target::NAME)?;
        let mut inner = link.lock();
        if let Some(envelope) = inner.mailboxes.get_mut(&session).and_then(VecDeque::pop_front) {
            return Ok(Some(envelope));
        }
        if let Some(reason) = &inner.dead {
            return Err(TransportError::Protocol(format!("link from {from} is down: {reason}")));
        }
        Ok(None)
    }

    fn register_waker(
        &self,
        session: SessionId,
        from: &str,
        waker: MailboxWaker,
    ) -> Result<bool, TransportError> {
        let from = self.names.resolve(from)?;
        let link = self.link(from, Target::NAME)?;
        let mut inner = link.lock();
        // Ready-check and registration under the one link lock senders
        // deposit under: a frame can never slip between them.
        let ready = inner.dead.is_some()
            || inner.mailboxes.get(&session).is_some_and(|mailbox| !mailbox.is_empty());
        if ready {
            return Ok(true);
        }
        inner.wakers.insert(session, waker);
        Ok(false)
    }
}

impl<L: LocationSet, Target: ChoreographyLocation> Transport<L, Target>
    for LocalTransport<L, Target>
{
    fn send(&self, to: &str, data: &[u8]) -> Result<(), TransportError> {
        let seq = {
            let to_static = self.names.resolve(to)?;
            let mut seqs = self.raw_seqs.lock().expect("raw sequence counters poisoned");
            let counter = seqs.entry(to_static).or_insert(0);
            let seq = *counter;
            *counter += 1;
            seq
        };
        self.send_frame(to, Envelope::new(RAW_SESSION, seq, data))
    }

    fn receive(&self, from: &str) -> Result<Vec<u8>, TransportError> {
        self.receive_frame(RAW_SESSION, from).map(|envelope| envelope.payload.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    chorus_core::locations! { Alice, Bob }
    type System = chorus_core::LocationSet!(Alice, Bob);

    #[test]
    fn send_and_receive_preserve_fifo_order() {
        let channel = LocalTransportChannel::<System>::new();
        let alice = LocalTransport::new(Alice, channel.clone());
        let bob = LocalTransport::new(Bob, channel);
        alice.send("Bob", b"one").unwrap();
        alice.send("Bob", b"two").unwrap();
        assert_eq!(bob.receive("Alice").unwrap(), b"one");
        assert_eq!(bob.receive("Alice").unwrap(), b"two");
    }

    #[test]
    fn unknown_locations_are_rejected() {
        let channel = LocalTransportChannel::<System>::new();
        let alice = LocalTransport::new(Alice, channel);
        assert!(matches!(alice.send("Nobody", b"x"), Err(TransportError::UnknownLocation(_))));
        assert!(matches!(alice.receive("Nobody"), Err(TransportError::UnknownLocation(_))));
    }

    #[test]
    fn locations_lists_the_census() {
        let channel = LocalTransportChannel::<System>::new();
        let alice = LocalTransport::new(Alice, channel);
        assert_eq!(chorus_core::Transport::locations(&alice), vec!["Alice", "Bob"]);
        assert_eq!(chorus_core::SessionTransport::locations(&alice), vec!["Alice", "Bob"]);
    }

    #[test]
    fn links_are_directional() {
        let channel = LocalTransportChannel::<System>::new();
        let alice = LocalTransport::new(Alice, channel.clone());
        let bob = LocalTransport::new(Bob, channel);
        alice.send("Bob", b"ping").unwrap();
        // Bob's message to Alice does not interfere with Alice's to Bob.
        bob.send("Alice", b"pong").unwrap();
        assert_eq!(bob.receive("Alice").unwrap(), b"ping");
        assert_eq!(alice.receive("Bob").unwrap(), b"pong");
    }

    #[test]
    fn sessions_demultiplex_on_one_link() {
        let channel = LocalTransportChannel::<System>::new();
        let alice = LocalTransport::new(Alice, channel.clone());
        let bob = LocalTransport::new(Bob, channel);
        // Interleave two sessions on the same directed link.
        alice.send_frame("Bob", Envelope::new(1, 0, b"s1-first".to_vec())).unwrap();
        alice.send_frame("Bob", Envelope::new(2, 0, b"s2-first".to_vec())).unwrap();
        alice.send_frame("Bob", Envelope::new(1, 1, b"s1-second".to_vec())).unwrap();
        // Reading session 2 first must not disturb session 1's order.
        assert_eq!(bob.receive_frame(2, "Alice").unwrap().payload, b"s2-first");
        assert_eq!(bob.receive_frame(1, "Alice").unwrap().payload, b"s1-first");
        assert_eq!(bob.receive_frame(1, "Alice").unwrap().payload, b"s1-second");
    }

    #[test]
    fn out_of_order_frames_are_rejected() {
        let channel = LocalTransportChannel::<System>::new();
        let alice = LocalTransport::new(Alice, channel.clone());
        let bob = LocalTransport::new(Bob, channel);
        alice.send_frame("Bob", Envelope::new(1, 0, b"ok".to_vec())).unwrap();
        alice.send_frame("Bob", Envelope::new(1, 2, b"gap".to_vec())).unwrap();
        assert_eq!(bob.receive_frame(1, "Alice").unwrap().payload, b"ok");
        assert!(matches!(bob.receive_frame(1, "Alice"), Err(TransportError::Protocol(_))));
    }

    #[test]
    fn frames_sent_after_a_poison_are_withheld() {
        let channel = LocalTransportChannel::<System>::new();
        let alice = LocalTransport::new(Alice, channel.clone());
        let bob = LocalTransport::new(Bob, channel);
        alice.send_frame("Bob", Envelope::new(1, 0, b"ok".to_vec())).unwrap();
        // Poison the link with a sequence gap in session 1...
        alice.send_frame("Bob", Envelope::new(1, 2, b"gap".to_vec())).unwrap();
        // ...then send a perfectly valid frame in session 2: it must be
        // withheld, so *every* session on the link observes the error.
        alice.send_frame("Bob", Envelope::new(2, 0, b"late".to_vec())).unwrap();
        assert_eq!(bob.receive_frame(1, "Alice").unwrap().payload, b"ok");
        assert!(matches!(bob.receive_frame(2, "Alice"), Err(TransportError::Protocol(_))));
    }
}
