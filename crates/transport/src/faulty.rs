//! A seeded fault injector for *real* TCP sockets.
//!
//! The simulated transport's `FaultPlan` stresses delivery schedules;
//! this module stresses the operating system's actual byte streams. A
//! [`FaultyTcp`] sits between a connecting endpoint and its peer as a
//! per-edge loopback proxy and, on a seed-derived schedule, kills
//! established connections mid-stream, delays accepts, and blackholes
//! one direction (relaying nothing while keeping the socket open — the
//! half-dead link a failing middlebox or dying NAT produces).
//!
//! Determinism: every decision for connection `k` of an edge derives
//! from `(plan.seed, edge label, k)` alone, so a failing chaos seed
//! replays exactly. Faults are drawn from a pattern that leaves a
//! bounded prefix of each edge's connections faulty and everything
//! after it clean, so a resilient link always eventually gets a
//! connection that lives — sessions finish under chaos rather than
//! merely surviving it.
//!
//! The proxy is transparent to the transport under test: the
//! `TcpTransport` connects to the proxy's address believing it is the
//! peer, and the peer sees an ordinary inbound connection. No transport
//! code paths are test-only.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// After this many connections on one edge, the proxy stops injecting
/// faults: the edge is guaranteed clean connections from then on.
const CLEAN_AFTER: u64 = 5;

/// The seed-derived shape of the chaos a [`FaultyTcp`] injects,
/// mirroring `FaultPlan`'s chaos constructor for the simulated
/// transport.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultyPlan {
    /// Root seed; every per-connection decision derives from it.
    pub seed: u64,
    /// A killed connection dies after relaying between this many bytes…
    pub kill_after_lo: u64,
    /// …and this many (inclusive range sampled per connection).
    pub kill_after_hi: u64,
    /// Maximum artificial delay before an accepted connection is
    /// bridged to the upstream peer (must stay below the link layer's
    /// minimum handshake timeout of 500ms, or connects never succeed).
    pub accept_delay_ms: u64,
    /// Probability that a faulty connection blackholes one direction
    /// instead of dying outright.
    pub blackhole: f64,
    /// How long a blackholed direction stays silent before the proxy
    /// kills the connection (silently resuming the relay would splice
    /// the frame stream and is never done).
    pub blackhole_ttl_ms: u64,
}

impl FaultyPlan {
    /// Derives a chaos plan from a seed, the same way
    /// [`crate::FaultPlan::chaos`] seeds the simulated network.
    pub fn chaos(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED);
        // Low enough that even a terse protocol (a single request /
        // response pair per edge) gets its connection cut mid-stream —
        // the handshake plus resume cursor is ~24 bytes, so triggers
        // land between the first data frames; high enough that chatty
        // protocols also see kills deep into their streams.
        let kill_after_lo = 48 + rng.gen_range(0u64..64);
        FaultyPlan {
            seed,
            kill_after_lo,
            kill_after_hi: kill_after_lo + 32 + rng.gen_range(0u64..2048),
            accept_delay_ms: rng.gen_range(0u64..120),
            blackhole: rng.gen_range(0u64..40) as f64 / 100.0,
            blackhole_ttl_ms: 150 + rng.gen_range(0u64..250),
        }
    }
}

/// What the schedule decided for one accepted connection.
#[derive(Debug, Clone, Copy)]
enum Fault {
    /// Relay faithfully forever.
    Clean,
    /// Relay until `after` bytes (both directions combined) have
    /// crossed, then hard-kill both legs.
    Kill { after: u64 },
    /// Relay until `after` bytes, then silently discard one direction
    /// (`to_upstream` chooses which) for `ttl`, then kill.
    Blackhole { after: u64, to_upstream: bool, ttl: Duration },
}

/// FNV-1a over the root seed, the edge label, and the connection index:
/// the per-connection decision seed.
fn connection_seed(seed: u64, edge: &str, k: u64) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for byte in edge.bytes().chain(k.to_le_bytes()) {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn schedule(plan: &FaultyPlan, edge: &str, k: u64) -> (Fault, Duration) {
    let mut rng = StdRng::seed_from_u64(connection_seed(plan.seed, edge, k));
    let delay = Duration::from_millis(rng.gen_range(0..=plan.accept_delay_ms.max(1)));
    if k >= CLEAN_AFTER {
        return (Fault::Clean, Duration::ZERO);
    }
    // Fault-count pattern {0,1,1,1}: 3 in 4 of the early connections
    // are faulty; the occasional clean one keeps kill-timing diverse.
    if rng.gen_range(0u64..4) == 0 {
        return (Fault::Clean, delay);
    }
    let after = rng.gen_range(plan.kill_after_lo..=plan.kill_after_hi.max(plan.kill_after_lo));
    let fault = if rng.gen_bool(plan.blackhole) {
        Fault::Blackhole {
            after,
            to_upstream: rng.gen_bool(0.5),
            ttl: Duration::from_millis(plan.blackhole_ttl_ms),
        }
    } else {
        Fault::Kill { after }
    };
    (fault, delay)
}

/// Shared by the two pump threads of one proxied connection.
struct Conn {
    /// Bytes relayed so far, both directions combined — the fault
    /// trigger odometer.
    relayed: AtomicU64,
    /// Set once either leg dies or a fault fires; both pumps exit.
    dead: AtomicBool,
}

/// A per-edge TCP fault-injecting proxy.
///
/// [`route`](FaultyTcp::route) allocates a loopback listener per
/// directed edge; point the *connecting* side's `TcpConfig` at the
/// returned address and the proxy forwards to the real peer, applying
/// the seeded fault schedule connection by connection.
pub struct FaultyTcp {
    plan: FaultyPlan,
    stop: Arc<AtomicBool>,
    /// Human-readable schedule log for failing-seed artifacts.
    log: Arc<Mutex<Vec<String>>>,
}

impl FaultyTcp {
    /// Creates an injector applying `plan`.
    pub fn new(plan: FaultyPlan) -> Self {
        FaultyTcp {
            plan,
            stop: Arc::new(AtomicBool::new(false)),
            log: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Starts a proxy for one directed edge and returns its address.
    ///
    /// Every connection accepted there is bridged to `upstream` under
    /// the fault schedule derived from `(plan.seed, edge)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the loopback listener cannot bind.
    pub fn route(&self, edge: &str, upstream: SocketAddr) -> std::io::Result<SocketAddr> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let plan = self.plan;
        let edge = edge.to_string();
        let stop = Arc::clone(&self.stop);
        let log = Arc::clone(&self.log);
        std::thread::Builder::new().name(format!("faulty-tcp-{edge}")).spawn(move || {
            let mut k = 0u64;
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((downstream, _)) => {
                        let (fault, delay) = schedule(&plan, &edge, k);
                        log.lock().expect("faulty log poisoned").push(format!(
                            "{edge} conn#{k}: {fault:?}, accept_delay={}ms",
                            delay.as_millis()
                        ));
                        k += 1;
                        let stop = Arc::clone(&stop);
                        std::thread::spawn(move || {
                            bridge(downstream, upstream, fault, delay, stop);
                        });
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => {
                        // A transient accept failure (e.g. a reset in
                        // the backlog) must not silently close this
                        // edge's proxy for the rest of the run.
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
            }
        })?;
        Ok(addr)
    }

    /// The schedule every proxied connection actually ran, one line per
    /// connection, prefixed with replay instructions — the artifact to
    /// dump when a chaos seed fails.
    pub fn scenario_dump(&self) -> String {
        let lines = self.log.lock().expect("faulty log poisoned");
        let mut out = format!(
            "# FaultyTcp scenario (seed {})\n# replay: rerun the failing test with \
             CHORUS_TCP_SEED_BASE pinned so this seed recurs\n# plan: {:?}\n",
            self.plan.seed, self.plan
        );
        for line in lines.iter() {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Total connections accepted across every routed edge.
    pub fn connection_count(&self) -> usize {
        self.log.lock().expect("faulty log poisoned").len()
    }

    /// Distinct edges that accepted at least one connection.
    pub fn edge_count(&self) -> usize {
        let lines = self.log.lock().expect("faulty log poisoned");
        let mut edges: Vec<&str> = lines.iter().filter_map(|l| l.split(" conn#").next()).collect();
        edges.sort_unstable();
        edges.dedup();
        edges.len()
    }

    /// Stops accepting new connections on every routed edge. Existing
    /// bridges die with their sockets.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

impl Drop for FaultyTcp {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bridges one accepted connection to the upstream peer under `fault`.
fn bridge(
    downstream: TcpStream,
    upstream: SocketAddr,
    fault: Fault,
    delay: Duration,
    stop: Arc<AtomicBool>,
) {
    if !delay.is_zero() {
        std::thread::sleep(delay);
    }
    let Ok(up) = TcpStream::connect_timeout(&upstream, Duration::from_secs(1)) else {
        let _ = downstream.shutdown(std::net::Shutdown::Both);
        return;
    };
    downstream.set_nodelay(true).ok();
    up.set_nodelay(true).ok();
    let conn = Arc::new(Conn { relayed: AtomicU64::new(0), dead: AtomicBool::new(false) });
    let (down_r, down_w) = match (downstream.try_clone(), downstream) {
        (Ok(r), w) => (r, w),
        (Err(_), w) => {
            let _ = w.shutdown(std::net::Shutdown::Both);
            return;
        }
    };
    let (up_r, up_w) = match (up.try_clone(), up) {
        (Ok(r), w) => (r, w),
        (Err(_), w) => {
            let _ = w.shutdown(std::net::Shutdown::Both);
            let _ = down_w.shutdown(std::net::Shutdown::Both);
            return;
        }
    };
    let c2s = {
        let conn = Arc::clone(&conn);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || pump(down_r, up_w, fault, true, conn, stop))
    };
    pump(up_r, down_w, fault, false, conn, stop);
    let _ = c2s.join();
}

/// Copies one direction of a bridged connection, byte-counting against
/// the fault odometer. `to_upstream` is true on the downstream→upstream
/// leg.
fn pump(
    mut from: TcpStream,
    to: TcpStream,
    fault: Fault,
    to_upstream: bool,
    conn: Arc<Conn>,
    stop: Arc<AtomicBool>,
) {
    from.set_read_timeout(Some(Duration::from_millis(25))).ok();
    let mut to = to;
    let mut buf = [0u8; 4096];
    // While blackholed: the instant silence began (bytes are read and
    // discarded so the sender never blocks on a full kernel buffer —
    // exactly what a half-dead link looks like from the outside).
    let mut silent_since: Option<Instant> = None;
    loop {
        if stop.load(Ordering::Relaxed) || conn.dead.load(Ordering::Relaxed) {
            break;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(ref e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if let (Some(since), Fault::Blackhole { ttl, .. }) = (silent_since, fault) {
                    if since.elapsed() >= ttl {
                        conn.dead.store(true, Ordering::Relaxed);
                        break;
                    }
                }
                continue;
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        let total = conn.relayed.fetch_add(n as u64, Ordering::Relaxed) + n as u64;
        match fault {
            Fault::Clean => {}
            Fault::Kill { after } => {
                if total >= after {
                    // Relay the tail up to the trigger so the cut lands
                    // mid-stream, then die.
                    let _ = to.write_all(&buf[..n]);
                    conn.dead.store(true, Ordering::Relaxed);
                    break;
                }
            }
            Fault::Blackhole { after, to_upstream: hole_dir, ttl } => {
                if total >= after && hole_dir == to_upstream {
                    // Discard: the direction goes dark but the socket
                    // stays open, until the ttl elapses.
                    let since = *silent_since.get_or_insert_with(Instant::now);
                    if since.elapsed() >= ttl {
                        conn.dead.store(true, Ordering::Relaxed);
                        break;
                    }
                    continue;
                }
            }
        }
        if to.write_all(&buf[..n]).is_err() {
            break;
        }
    }
    conn.dead.store(true, Ordering::Relaxed);
    let _ = from.shutdown(std::net::Shutdown::Both);
    let _ = to.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_seed() {
        assert_eq!(FaultyPlan::chaos(7), FaultyPlan::chaos(7));
        assert_ne!(FaultyPlan::chaos(7), FaultyPlan::chaos(8));
    }

    #[test]
    fn schedules_are_deterministic_and_eventually_clean() {
        let plan = FaultyPlan::chaos(3);
        for k in 0..CLEAN_AFTER + 4 {
            let (a, da) = schedule(&plan, "Alice->Bob", k);
            let (b, db) = schedule(&plan, "Alice->Bob", k);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
            assert_eq!(da, db);
            if k >= CLEAN_AFTER {
                assert!(matches!(a, Fault::Clean), "conn#{k} must be clean, got {a:?}");
            }
        }
        // Distinct edges draw distinct schedules (overwhelmingly).
        let ab: Vec<String> =
            (0..CLEAN_AFTER).map(|k| format!("{:?}", schedule(&plan, "Alice->Bob", k).0)).collect();
        let ba: Vec<String> =
            (0..CLEAN_AFTER).map(|k| format!("{:?}", schedule(&plan, "Bob->Alice", k).0)).collect();
        assert_ne!(ab, ba);
    }

    #[test]
    fn clean_connections_relay_faithfully() {
        // An upstream echo server; a clean proxied connection must be
        // byte-transparent in both directions.
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        std::thread::spawn(move || {
            let (mut s, _) = upstream.accept().unwrap();
            let mut buf = [0u8; 5];
            s.read_exact(&mut buf).unwrap();
            s.write_all(&buf).unwrap();
        });
        // A plan whose schedule cannot fire: no faults once past the
        // pattern (use a huge kill threshold and no blackholes).
        let plan = FaultyPlan {
            seed: 1,
            kill_after_lo: u64::MAX / 2,
            kill_after_hi: u64::MAX / 2,
            accept_delay_ms: 1,
            blackhole: 0.0,
            blackhole_ttl_ms: 100,
        };
        let proxy = FaultyTcp::new(plan);
        let addr = proxy.route("echo", upstream_addr).unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"hello").unwrap();
        let mut back = [0u8; 5];
        client.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"hello");
        assert!(proxy.scenario_dump().contains("echo conn#0"));
    }

    #[test]
    fn kill_faults_sever_the_connection() {
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        std::thread::spawn(move || {
            let (mut s, _) = upstream.accept().unwrap();
            let mut sink = Vec::new();
            let _ = s.read_to_end(&mut sink);
        });
        let plan = FaultyPlan {
            seed: 2,
            kill_after_lo: 16,
            kill_after_hi: 16,
            accept_delay_ms: 1,
            blackhole: 0.0,
            blackhole_ttl_ms: 100,
        };
        let proxy = FaultyTcp::new(plan);
        // Find a connection index whose schedule is a kill; with the
        // {0,1,1,1} pattern one exists in the faulty prefix for any seed.
        assert!(
            (0..CLEAN_AFTER).any(|k| matches!(schedule(&plan, "sink", k).0, Fault::Kill { .. })),
            "seed 2 must schedule at least one kill"
        );
        let addr = proxy.route("sink", upstream_addr).unwrap();
        let mut died = false;
        for _ in 0..CLEAN_AFTER {
            let Ok(mut client) = TcpStream::connect(addr) else { continue };
            client.set_read_timeout(Some(Duration::from_millis(50))).ok();
            let mut wrote = 0usize;
            for _ in 0..64 {
                match client.write_all(&[0u8; 8]).and_then(|()| client.flush()) {
                    Ok(()) => wrote += 8,
                    Err(_) => break,
                }
                // A severed proxy leg eventually surfaces as EOF/reset
                // on read or a write error.
                let mut probe = [0u8; 1];
                match client.read(&mut probe) {
                    Ok(0) => break,
                    Err(ref e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        continue
                    }
                    _ => break,
                }
            }
            if wrote < 64 * 8 {
                died = true;
                break;
            }
        }
        assert!(died, "a kill-scheduled connection never died");
    }
}
