//! TCP transport: length-prefixed frames over sockets.
//!
//! Each endpoint binds a listener at its configured address. Outgoing
//! links are opened lazily (with retry, so start-up order does not matter)
//! and begin with a handshake frame carrying the sender's location name;
//! after that, every frame is `u32` little-endian length + payload.
//! A reader thread per peer pushes frames into a per-sender FIFO, giving
//! the per-sender ordering guarantee the λN model assumes.

use chorus_core::{ChoreographyLocation, LocationSet, Transport, TransportError};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::marker::PhantomData;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Address book for a TCP system: one socket address per location in `L`.
#[derive(Debug, Clone)]
pub struct TcpConfig<L: LocationSet> {
    addrs: HashMap<&'static str, SocketAddr>,
    system: PhantomData<L>,
}

/// Builder for [`TcpConfig`].
#[derive(Debug, Default)]
pub struct TcpConfigBuilder {
    addrs: HashMap<&'static str, SocketAddr>,
}

impl TcpConfigBuilder {
    /// Starts an empty address book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns `addr` to `location`.
    pub fn location<P: ChoreographyLocation>(mut self, location: P, addr: SocketAddr) -> Self {
        let _ = location;
        self.addrs.insert(P::NAME, addr);
        self
    }

    /// Finalizes the address book for the system census `L`.
    ///
    /// # Errors
    ///
    /// Returns the set of missing names if any location in `L` has no
    /// address.
    pub fn build<L: LocationSet>(self) -> Result<TcpConfig<L>, Vec<&'static str>> {
        let missing: Vec<&'static str> =
            L::names().into_iter().filter(|n| !self.addrs.contains_key(n)).collect();
        if missing.is_empty() {
            Ok(TcpConfig { addrs: self.addrs, system: PhantomData })
        } else {
            Err(missing)
        }
    }
}

/// Reserves `n` distinct loopback addresses with OS-assigned free ports.
///
/// Test/bench helper: binds ephemeral listeners, records their addresses,
/// and releases them. (The usual caveat applies: the ports could in
/// principle be reused between this call and the transport's bind.)
pub fn free_local_addrs(n: usize) -> std::io::Result<Vec<SocketAddr>> {
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0")).collect::<Result<_, _>>()?;
    listeners.iter().map(|l| l.local_addr()).collect()
}

fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

fn read_frame(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    stream.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(payload)
}

/// One endpoint of a TCP-connected choreography.
pub struct TcpTransport<L: LocationSet, Target: ChoreographyLocation> {
    config: TcpConfig<L>,
    outgoing: Mutex<HashMap<&'static str, TcpStream>>,
    incoming: HashMap<&'static str, Receiver<Vec<u8>>>,
    stop: Arc<AtomicBool>,
    target: PhantomData<Target>,
}

impl<L: LocationSet, Target: ChoreographyLocation> TcpTransport<L, Target> {
    /// Binds `target`'s listener and starts its acceptor thread.
    ///
    /// # Errors
    ///
    /// Returns an error if the listener cannot bind to the configured
    /// address.
    pub fn bind(target: Target, config: TcpConfig<L>) -> Result<Self, TransportError> {
        let _ = target;
        let addr = *config
            .addrs
            .get(Target::NAME)
            .ok_or_else(|| TransportError::UnknownLocation(Target::NAME.to_string()))?;
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;

        let mut senders: HashMap<&'static str, Sender<Vec<u8>>> = HashMap::new();
        let mut incoming = HashMap::new();
        for name in L::names() {
            if name != Target::NAME {
                let (tx, rx) = unbounded();
                senders.insert(name, tx);
                incoming.insert(name, rx);
            }
        }

        let stop = Arc::new(AtomicBool::new(false));
        let acceptor_stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            accept_loop(listener, senders, acceptor_stop);
        });

        Ok(TcpTransport {
            config,
            outgoing: Mutex::new(HashMap::new()),
            incoming,
            stop,
            target: PhantomData,
        })
    }

    fn connect(&self, to: &'static str) -> Result<TcpStream, TransportError> {
        let addr = *self
            .config
            .addrs
            .get(to)
            .ok_or_else(|| TransportError::UnknownLocation(to.to_string()))?;
        // Retry with backoff: peers may not have bound their listeners yet.
        let mut delay = Duration::from_millis(5);
        let mut last_err = None;
        for _ in 0..60 {
            match TcpStream::connect_timeout(&addr, Duration::from_secs(1)) {
                Ok(mut stream) => {
                    stream.set_nodelay(true).ok();
                    // Handshake: announce who we are.
                    write_frame(&mut stream, Target::NAME.as_bytes())?;
                    return Ok(stream);
                }
                Err(e) => {
                    last_err = Some(e);
                    std::thread::sleep(delay);
                    delay = (delay * 2).min(Duration::from_millis(200));
                }
            }
        }
        Err(TransportError::Io(last_err.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::TimedOut, "connect retries exhausted")
        })))
    }
}

fn accept_loop(
    listener: TcpListener,
    senders: HashMap<&'static str, Sender<Vec<u8>>>,
    stop: Arc<AtomicBool>,
) {
    let senders = Arc::new(senders);
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let senders = Arc::clone(&senders);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    stream.set_nonblocking(false).ok();
                    stream.set_nodelay(true).ok();
                    // Handshake frame identifies the peer.
                    let Ok(name_bytes) = read_frame(&mut stream) else { return };
                    let Ok(name) = String::from_utf8(name_bytes) else { return };
                    let Some(queue) = senders.get(name.as_str()) else { return };
                    while !stop.load(Ordering::Relaxed) {
                        match read_frame(&mut stream) {
                            Ok(payload) => {
                                if queue.send(payload).is_err() {
                                    return;
                                }
                            }
                            Err(_) => return, // peer hung up
                        }
                    }
                });
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => return,
        }
    }
}

impl<L: LocationSet, Target: ChoreographyLocation> Drop for TcpTransport<L, Target> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

impl<L: LocationSet, Target: ChoreographyLocation> Transport<L, Target>
    for TcpTransport<L, Target>
{
    fn send(&self, to: &str, data: &[u8]) -> Result<(), TransportError> {
        let to_static = L::names()
            .into_iter()
            .find(|n| *n == to)
            .ok_or_else(|| TransportError::UnknownLocation(to.to_string()))?;
        let mut outgoing = self.outgoing.lock();
        if !outgoing.contains_key(to_static) {
            let stream = self.connect(to_static)?;
            outgoing.insert(to_static, stream);
        }
        let stream = outgoing.get_mut(to_static).expect("just inserted");
        write_frame(stream, data).map_err(|e| {
            // A dead link is not recoverable within one choreography.
            outgoing.remove(to_static);
            TransportError::Io(e)
        })
    }

    fn receive(&self, from: &str) -> Result<Vec<u8>, TransportError> {
        let queue = self
            .incoming
            .get(from)
            .ok_or_else(|| TransportError::UnknownLocation(from.to_string()))?;
        queue
            .recv()
            .map_err(|_| TransportError::ConnectionClosed { peer: from.to_string() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    chorus_core::locations! { Alice, Bob }
    type System = chorus_core::LocationSet!(Alice, Bob);

    fn config() -> TcpConfig<System> {
        let addrs = free_local_addrs(2).unwrap();
        TcpConfigBuilder::new()
            .location(Alice, addrs[0])
            .location(Bob, addrs[1])
            .build::<System>()
            .unwrap()
    }

    #[test]
    fn config_requires_every_location() {
        let addrs = free_local_addrs(1).unwrap();
        let result = TcpConfigBuilder::new().location(Alice, addrs[0]).build::<System>();
        assert_eq!(result.unwrap_err(), vec!["Bob"]);
    }

    #[test]
    fn messages_cross_sockets_in_order() {
        let config = config();
        let a_cfg = config.clone();
        let b_cfg = config;
        let bob = std::thread::spawn(move || {
            let t = TcpTransport::bind(Bob, b_cfg).unwrap();
            let one = t.receive("Alice").unwrap();
            let two = t.receive("Alice").unwrap();
            t.send("Alice", b"ack").unwrap();
            (one, two)
        });
        let alice = TcpTransport::bind(Alice, a_cfg).unwrap();
        alice.send("Bob", b"first").unwrap();
        alice.send("Bob", b"second").unwrap();
        assert_eq!(alice.receive("Bob").unwrap(), b"ack");
        let (one, two) = bob.join().unwrap();
        assert_eq!(one, b"first");
        assert_eq!(two, b"second");
    }

    #[test]
    fn connect_retries_until_peer_binds() {
        let config = config();
        let a_cfg = config.clone();
        let b_cfg = config;
        // Alice sends before Bob has bound its listener.
        let alice = std::thread::spawn(move || {
            let t = TcpTransport::bind(Alice, a_cfg).unwrap();
            t.send("Bob", b"early").unwrap();
        });
        std::thread::sleep(Duration::from_millis(50));
        let bob = TcpTransport::bind(Bob, b_cfg).unwrap();
        assert_eq!(bob.receive("Alice").unwrap(), b"early");
        alice.join().unwrap();
    }

    #[test]
    fn empty_payloads_are_delivered() {
        let config = config();
        let a_cfg = config.clone();
        let b_cfg = config;
        let bob = std::thread::spawn(move || {
            let t = TcpTransport::bind(Bob, b_cfg).unwrap();
            t.receive("Alice").unwrap()
        });
        let alice = TcpTransport::bind(Alice, a_cfg).unwrap();
        alice.send("Bob", b"").unwrap();
        assert_eq!(bob.join().unwrap(), b"");
    }
}
