//! TCP transport: resilient, length-prefixed link frames over sockets.
//!
//! Each endpoint binds a listener at its configured address. Outgoing
//! links are opened lazily (with jittered, env-tunable backoff — see
//! [`LinkTuning`]) and begin with a handshake frame carrying the
//! sender's location name and link mode; after that, every frame is a
//! `u32` little-endian length followed by a [`chorus_wire::LinkFrame`]:
//! either a data frame (per-link sequence number + session
//! [`chorus_wire::Envelope`]) or an ack/heartbeat/resume control frame.
//!
//! # The resilient link layer
//!
//! In the default resilient mode, any TCP connection can die and come
//! back at any moment without a session observing anything but latency:
//!
//! * **Retention + replay.** A send queue retains every encoded frame
//!   (refcounted, so retention is cheap) until the receiver's
//!   cumulative ack covers it. On reconnect the receiver answers the
//!   handshake with a `Resume { next }` cursor and the sender replays
//!   exactly the unacknowledged tail.
//! * **Dedup.** The receiver keeps a per-peer link cursor across
//!   connections: already-delivered frames replayed by a cautious
//!   sender are dropped before they reach session sequencing, and a
//!   *forward* cursor gap — bytes genuinely lost — poisons the link
//!   loudly instead of corrupting a session.
//! * **Supervision.** A per-endpoint supervisor thread probes idle
//!   established links with heartbeats (a link silent for 3 heartbeats
//!   is presumed half-dead and torn down for replay) and re-establishes
//!   broken links in the background so a parked receiver's frames
//!   replay even when the application has nothing new to send. Every
//!   outage has a bounded retry budget, after which the link surfaces a
//!   typed [`TransportError::LinkDown`] instead of hanging.
//!
//! The plain mode (`TcpConfigBuilder::resilience(false)`) is the same
//! wire format without retention, acks, or supervision — the bench
//! baseline for measuring the ack path's overhead, and the old
//! lose-whatever-was-in-flight behavior (now detected loudly by the
//! receiver's cursor rather than surfacing as a session sequence gap).
//!
//! # The batched data plane
//!
//! Resilient sends are batched per link: every retained frame not yet
//! on the current connection flushes in one vectored write — the fixed
//! 33-byte headers assembled in a reused per-link buffer, the
//! refcounted payloads handed to the kernel as their own slices, never
//! copied. With a nonzero coalescing window (`CHORUS_TCP_FLUSH_US`,
//! builder override wins) sends enqueue and a flusher thread writes the
//! accumulated batch once the window closes; the window starts at the
//! first enqueued frame, so a lone frame is never stalled longer than
//! the window, and a large backlog flushes inline without waiting.
//!
//! A reader thread per accepted connection drains the whole buffered
//! burst per wakeup, deposits it into the per-(session, sender) FIFO
//! mailboxes under one inbox lock, and fires each parked waker once per
//! drain instead of once per frame — preserving the per-sender ordering
//! guarantee the λN model assumes *within* each session while letting
//! sessions interleave freely on the socket.
//!
//! Retention is bounded: a link whose unacknowledged tail reaches the
//! `CHORUS_TCP_RETAIN_MAX` watermark parks further senders until acks
//! prune it, and surfaces [`TransportError::RetentionExceeded`] if the
//! link resolves down while they wait — a peer that stays dead can no
//! longer grow a sender's retention queue without bound.

pub use crate::link::TcpLinkStats;
use crate::link::{backoff_delay, FrameAccumulator, LinkStats, LinkTuning, ACK_EVERY};
use chorus_core::{
    park, ChoreographyLocation, InternedNames, LocationSet, MailboxWaker, SequenceTracker,
    SessionId, SessionTransport, Transport, TransportError, RAW_SESSION,
};
use chorus_wire::{
    data_frame_wire_len, data_header, ControlFrame, Envelope, LinkFrame, DATA_FRAME_OVERHEAD,
    DATA_HEADER_LEN,
};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{IoSlice, Read, Write};
use std::marker::PhantomData;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard, PoisonError, TryLockError};
use std::time::{Duration, Instant};

/// Unanswered heartbeat probes before an established link is presumed
/// half-dead and torn down for replay.
const DEAD_AFTER_PINGS: u32 = 3;

/// Handshake mode byte: a plain (frame-at-a-time) sender.
const MODE_PLAIN: u8 = 0;
/// Handshake mode byte: a resilient sender expecting a resume cursor
/// and sending/consuming acks and heartbeats.
const MODE_RESILIENT: u8 = 1;

/// Address book for a TCP system: one socket address per location in
/// `L`, plus the link-layer policy every endpoint of the system shares.
#[derive(Debug, Clone)]
pub struct TcpConfig<L: LocationSet> {
    addrs: HashMap<&'static str, SocketAddr>,
    resilient: bool,
    retry_limit: Option<u32>,
    retry_base: Option<Duration>,
    heartbeat: Option<Duration>,
    flush_delay: Option<Duration>,
    retain_max: Option<usize>,
    system: PhantomData<L>,
}

/// Builder for [`TcpConfig`].
#[derive(Debug)]
pub struct TcpConfigBuilder {
    addrs: HashMap<&'static str, SocketAddr>,
    resilient: bool,
    retry_limit: Option<u32>,
    retry_base: Option<Duration>,
    heartbeat: Option<Duration>,
    flush_delay: Option<Duration>,
    retain_max: Option<usize>,
}

impl Default for TcpConfigBuilder {
    fn default() -> Self {
        TcpConfigBuilder {
            addrs: HashMap::new(),
            resilient: true,
            retry_limit: None,
            retry_base: None,
            heartbeat: None,
            flush_delay: None,
            retain_max: None,
        }
    }
}

impl TcpConfigBuilder {
    /// Starts an empty address book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns `addr` to `location`.
    pub fn location<P: ChoreographyLocation>(mut self, location: P, addr: SocketAddr) -> Self {
        let _ = location;
        self.addrs.insert(P::NAME, addr);
        self
    }

    /// Enables or disables the resilient link layer (default: enabled).
    ///
    /// All endpoints of one system must agree: a plain receiver never
    /// answers a resilient sender's handshake, which the sender treats
    /// as a failed connection attempt.
    pub fn resilience(mut self, resilient: bool) -> Self {
        self.resilient = resilient;
        self
    }

    /// Overrides the per-outage connection-attempt budget (otherwise
    /// `CHORUS_TCP_RETRY_LIMIT`, default 60).
    pub fn retry_limit(mut self, attempts: u32) -> Self {
        self.retry_limit = Some(attempts.max(1));
        self
    }

    /// Overrides the base reconnect backoff delay (otherwise
    /// `CHORUS_TCP_RETRY_BASE_MS`, default 5ms).
    pub fn retry_base(mut self, base: Duration) -> Self {
        self.retry_base = Some(base);
        self
    }

    /// Overrides the heartbeat cadence (otherwise
    /// `CHORUS_TCP_HEARTBEAT_MS`, default 1s).
    pub fn heartbeat(mut self, heartbeat: Duration) -> Self {
        self.heartbeat = Some(heartbeat);
        self
    }

    /// Overrides the coalescing flush window (otherwise
    /// `CHORUS_TCP_FLUSH_US`, default zero — flush inline on every
    /// send, which still batches whatever queued behind a contended
    /// link or a replay).
    pub fn flush_delay(mut self, window: Duration) -> Self {
        self.flush_delay = Some(window);
        self
    }

    /// Overrides the per-link retention watermark in bytes (otherwise
    /// `CHORUS_TCP_RETAIN_MAX`, default 64 MiB; zero disables the
    /// bound).
    pub fn retain_max(mut self, bytes: usize) -> Self {
        self.retain_max = Some(bytes);
        self
    }

    /// Finalizes the address book for the system census `L`.
    ///
    /// # Errors
    ///
    /// Returns the set of missing names if any location in `L` has no
    /// address.
    pub fn build<L: LocationSet>(self) -> Result<TcpConfig<L>, Vec<&'static str>> {
        let missing: Vec<&'static str> =
            L::names().into_iter().filter(|n| !self.addrs.contains_key(n)).collect();
        if missing.is_empty() {
            Ok(TcpConfig {
                addrs: self.addrs,
                resilient: self.resilient,
                retry_limit: self.retry_limit,
                retry_base: self.retry_base,
                heartbeat: self.heartbeat,
                flush_delay: self.flush_delay,
                retain_max: self.retain_max,
                system: PhantomData,
            })
        } else {
            Err(missing)
        }
    }
}

impl<L: LocationSet> TcpConfig<L> {
    /// The link tuning this config resolves to: builder overrides win,
    /// then the `CHORUS_TCP_*` environment, then defaults.
    fn tuning(&self) -> LinkTuning {
        let mut tuning = LinkTuning::from_env(self.resilient);
        if let Some(limit) = self.retry_limit {
            tuning.retry_limit = limit;
        }
        if let Some(base) = self.retry_base {
            tuning.retry_base = base;
        }
        if let Some(heartbeat) = self.heartbeat {
            tuning.heartbeat = heartbeat;
        }
        if let Some(window) = self.flush_delay {
            tuning.flush_delay = window;
        }
        if let Some(bytes) = self.retain_max {
            tuning.retain_max = bytes;
        }
        tuning
    }
}

/// Reserves `n` distinct loopback addresses with OS-assigned free ports.
///
/// Test/bench helper: binds ephemeral listeners, records their addresses,
/// and releases them. (The usual caveat applies: the ports could in
/// principle be reused between this call and the transport's bind.)
pub fn free_local_addrs(n: usize) -> std::io::Result<Vec<SocketAddr>> {
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0")).collect::<Result<_, _>>()?;
    listeners.iter().map(|l| l.local_addr()).collect()
}

fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

fn read_frame(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    stream.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(payload)
}

/// Writes one control frame as its own length-prefixed wire frame.
fn write_control(stream: &mut TcpStream, frame: &ControlFrame) -> std::io::Result<()> {
    write_frame(stream, &frame.encode())
}

/// Payloads up to this size are coalesced with their headers into the
/// reused send buffer and hit the socket as a single `write`; larger
/// payloads go out as their own slice, uncopied.
const COALESCE_LIMIT: usize = 16 * 1024;

/// Writes one data frame: `u32` outer length, link-frame data header
/// (tag + link sequence), envelope header, payload — assembled in `buf`
/// (whose capacity is reused across frames) or, for large payloads,
/// written as two slices so the payload is never copied.
fn write_link_data(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    link_seq: u64,
    frame: &Envelope,
) -> std::io::Result<()> {
    let inner_len = DATA_HEADER_LEN + frame.encoded_len();
    let outer_len = u32::try_from(inner_len)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    buf.clear();
    buf.extend_from_slice(&outer_len.to_le_bytes());
    buf.extend_from_slice(&data_header(link_seq));
    buf.extend_from_slice(&frame.header());
    if frame.payload.len() <= COALESCE_LIMIT {
        buf.extend_from_slice(&frame.payload);
        stream.write_all(buf)?;
    } else {
        stream.write_all(buf)?;
        stream.write_all(&frame.payload)?;
    }
    stream.flush()
}

/// What the link layer made of one deposited batch of data frames.
#[derive(Default)]
struct BatchOutcome {
    /// Frames whose link cursor advanced (session routing ran).
    accepted: u32,
    /// Frames dropped as already delivered on an earlier connection.
    duplicates: u64,
    /// The cursor jumped forward: frames were genuinely lost (plain
    /// mode, or a receiver restart behind a live sender). The link is
    /// poisoned loudly and the rest of the batch discarded.
    gap: bool,
}

/// The demultiplexed receive side shared by all reader threads.
#[derive(Default)]
struct Inbox {
    inner: StdMutex<InboxInner>,
    cv: Condvar,
}

#[derive(Default)]
struct InboxInner {
    /// Per-(sender, session) FIFO mailboxes, keyed by interned sender
    /// names so per-frame routing allocates nothing.
    mailboxes: HashMap<(&'static str, SessionId), VecDeque<Envelope>>,
    /// Per-(session, sender) sequence validation.
    sequences: SequenceTracker,
    /// Per-sender link cursor: the next link sequence expected,
    /// persisted across connections (the heart of resumption — a
    /// reconnecting sender is told exactly where to replay from).
    cursors: HashMap<&'static str, u64>,
    /// Senders whose connection has ended (with an optional error).
    closed: HashMap<&'static str, Option<String>>,
    /// Readiness wakers parked on empty mailboxes by the pooled session
    /// runtime: at most one per (sender, session) mailbox, removed and
    /// fired (outside the lock) when that mailbox gains a frame, drained
    /// per sender when its connection ends.
    wakers: HashMap<(&'static str, SessionId), MailboxWaker>,
}

impl Inbox {
    /// Routes one decoded burst of data frames from `sender` through
    /// link-level dedup/gap detection and into their session mailboxes,
    /// under a single inbox lock.
    ///
    /// Each waker fires at most once per drain: the first frame for a
    /// parked mailbox removes and collects its waker, subsequent frames
    /// of the burst find none. Only mailboxes that actually received a
    /// frame (or observed an error) are woken.
    fn deposit_batch(
        &self,
        sender: &'static str,
        batch: &mut Vec<(u64, Envelope)>,
    ) -> BatchOutcome {
        let mut outcome = BatchOutcome::default();
        let mut fired: Vec<MailboxWaker> = Vec::new();
        let mut inner = self.inner.lock().expect("tcp inbox poisoned");
        for (link_seq, envelope) in batch.drain(..) {
            let cursor = inner.cursors.entry(sender).or_insert(0);
            if link_seq < *cursor {
                // A replay of something already delivered: the sender
                // reconnected before our ack covering this frame
                // reached it.
                outcome.duplicates += 1;
                continue;
            }
            if link_seq > *cursor {
                // Frames below `link_seq` are gone for good (a
                // plain-mode sender lost its in-flight tail, or this
                // receiver restarted and lost its cursor). Poison the
                // link rather than let a session see a silently
                // shortened stream.
                let message = format!(
                    "link-layer sequence gap from {sender}: expected frame {cursor}, got \
                     {link_seq} (frames lost on a dead connection)"
                );
                inner.closed.insert(sender, Some(message));
                fired.extend(drain_sender_wakers(&mut inner.wakers, sender));
                outcome.gap = true;
                break;
            }
            *cursor += 1;
            outcome.accepted += 1;
            // A sender that violated its session sequencing is
            // unrecoverable (see `reopen`): consume the frame at the
            // link level (so the sender's retention queue drains) but
            // withhold it from every session, which observes the
            // protocol error instead of a silently resumed stream.
            if matches!(inner.closed.get(sender), Some(Some(_))) {
                continue;
            }
            match inner.sequences.check(envelope.session, sender, envelope.seq) {
                Ok(()) => {
                    let session = envelope.session;
                    inner.mailboxes.entry((sender, session)).or_default().push_back(envelope);
                    fired.extend(inner.wakers.remove(&(sender, session)));
                }
                Err(e) => {
                    inner.closed.insert(sender, Some(e.to_string()));
                    fired.extend(drain_sender_wakers(&mut inner.wakers, sender));
                }
            }
        }
        if outcome.accepted > 0 || outcome.gap {
            self.cv.notify_all();
        }
        // Wakers re-enqueue sessions into a scheduler queue; invoke them
        // outside the inbox lock to avoid ordering deadlocks.
        drop(inner);
        for waker in fired {
            waker();
        }
        outcome
    }

    /// The next link sequence expected of `sender` — the cumulative-ack
    /// and resume cursor.
    fn link_cursor(&self, sender: &'static str) -> u64 {
        let mut inner = self.inner.lock().expect("tcp inbox poisoned");
        *inner.cursors.entry(sender).or_insert(0)
    }

    /// Marks `sender`'s connection as ended.
    fn close(&self, sender: &'static str, error: Option<String>) {
        let mut inner = self.inner.lock().expect("tcp inbox poisoned");
        inner.closed.entry(sender).or_insert(error);
        // A closed link is an observable (error) state for every session
        // parked on it: fire them all.
        let fired = drain_sender_wakers(&mut inner.wakers, sender);
        self.cv.notify_all();
        drop(inner);
        for waker in fired {
            waker();
        }
    }

    /// Clears `sender`'s closed state when it establishes a fresh
    /// connection, so a reconnecting peer resumes feeding its mailboxes
    /// instead of being treated as permanently gone. A sequence
    /// violation or link gap is kept: the stream state is unrecoverable.
    fn reopen(&self, sender: &'static str) {
        let mut inner = self.inner.lock().expect("tcp inbox poisoned");
        if matches!(inner.closed.get(sender), Some(None)) {
            inner.closed.remove(sender);
        }
    }

    /// Pops the next frame of `session` from `sender` if one is already
    /// deliverable.
    fn try_take(
        &self,
        session: SessionId,
        sender: &'static str,
    ) -> Result<Option<Envelope>, TransportError> {
        let mut inner = self.inner.lock().expect("tcp inbox poisoned");
        if let Some(envelope) =
            inner.mailboxes.get_mut(&(sender, session)).and_then(VecDeque::pop_front)
        {
            return Ok(Some(envelope));
        }
        if let Some(error) = inner.closed.get(sender) {
            return Err(match error {
                Some(message) => TransportError::Protocol(message.clone()),
                None => TransportError::ConnectionClosed { peer: sender.to_string() },
            });
        }
        Ok(None)
    }

    /// Parks `waker` on the (sender, session) mailbox, or reports the
    /// mailbox already ready. Ready-check and registration happen under
    /// the inbox lock the reader threads deposit under — no lost
    /// wakeups.
    fn register(
        &self,
        session: SessionId,
        sender: &'static str,
        waker: MailboxWaker,
    ) -> Result<bool, TransportError> {
        let mut inner = self.inner.lock().expect("tcp inbox poisoned");
        let ready = inner.closed.contains_key(sender)
            || inner.mailboxes.get(&(sender, session)).is_some_and(|mailbox| !mailbox.is_empty());
        if ready {
            return Ok(true);
        }
        inner.wakers.insert((sender, session), waker);
        Ok(false)
    }

    /// Blocks until a frame of `session` from `sender` arrives, bounded
    /// by the workspace watchdog ([`park::default_watchdog`]) so a dead
    /// edge resolves with a protocol error naming the wait instead of
    /// parking the thread forever.
    fn take(&self, session: SessionId, sender: &'static str) -> Result<Envelope, TransportError> {
        let watchdog = park::default_watchdog();
        let started = Instant::now();
        let mut inner = self.inner.lock().expect("tcp inbox poisoned");
        loop {
            if let Some(envelope) =
                inner.mailboxes.get_mut(&(sender, session)).and_then(VecDeque::pop_front)
            {
                return Ok(envelope);
            }
            if let Some(error) = inner.closed.get(sender) {
                return Err(match error {
                    Some(message) => TransportError::Protocol(message.clone()),
                    None => TransportError::ConnectionClosed { peer: sender.to_string() },
                });
            }
            let waited = started.elapsed();
            let Some(remaining) = watchdog.checked_sub(waited) else {
                return Err(TransportError::Protocol(format!(
                    "tcp receive watchdog: no frame of session {session} from {sender} after \
                     {}ms (configured deadline {}ms)",
                    waited.as_millis(),
                    watchdog.as_millis()
                )));
            };
            let (guard, _timed_out) =
                self.cv.wait_timeout(inner, remaining).expect("tcp inbox poisoned");
            inner = guard;
        }
    }
}

/// Removes every waker parked on `sender`'s mailboxes, for firing once
/// the inbox lock is released. The map is typically tiny here (the
/// link just died), so the linear scan is fine.
fn drain_sender_wakers(
    wakers: &mut HashMap<(&'static str, SessionId), MailboxWaker>,
    sender: &'static str,
) -> Vec<MailboxWaker> {
    let keys: Vec<(&'static str, SessionId)> =
        wakers.keys().filter(|(s, _)| *s == sender).copied().collect();
    keys.into_iter().filter_map(|key| wakers.remove(&key)).collect()
}

/// An ongoing connection outage on one link: when it began and how many
/// attempts the retry budget has consumed.
struct Outage {
    since: Instant,
    attempts: u32,
}

/// One outgoing link: the lazily-opened stream, the retention queue of
/// unacknowledged frames, and the reconnect bookkeeping.
struct SendLink {
    stream: Option<TcpStream>,
    /// Bumped per connection attempt that reached streaming, so the ack
    /// reader of a dead connection can tell it has been superseded and
    /// must not touch the link's fresh state.
    generation: u64,
    /// Successfully established connections (for reconnect stats).
    established: u64,
    /// Reused frame assembly buffer, so steady-state sends allocate
    /// nothing.
    buf: Vec<u8>,
    /// Next link sequence to assign.
    next_seq: u64,
    /// Frames below this are on the wire of the *current* connection.
    flushed: u64,
    /// Highest sequence ever written to any connection (replay stats).
    wire_high: u64,
    /// Everything the peer has not cumulatively acked, in order.
    /// Payloads are refcounted `Bytes`, so retention holds handles, not
    /// copies.
    unacked: VecDeque<(u64, Envelope)>,
    /// Wire bytes `unacked` accounts for (headers + payloads), the
    /// quantity the `retain_max` watermark bounds.
    retained_bytes: usize,
    /// Wire bytes enqueued but not yet attempted on the current
    /// connection — the inline-flush threshold for the coalescing path.
    unflushed_bytes: usize,
    /// Frames are parked behind the coalescing window, waiting for the
    /// flusher thread.
    dirty: bool,
    /// Frames below this are acknowledged (pruned from `unacked`).
    acked: u64,
    /// Last time the peer proved liveness (ack or pong).
    last_heard: Instant,
    /// Last heartbeat probe written.
    last_ping: Instant,
    /// Probes written since the peer last proved liveness. Deadness is
    /// judged by unanswered probes, not wall time, so a supervisor
    /// stalled elsewhere (e.g. a long reconnect on another link) cannot
    /// misread its own silence as the peer's.
    pings_unanswered: u32,
    /// Heartbeat nonce counter.
    nonce: u64,
    /// Present while disconnected: the running retry budget.
    outage: Option<Outage>,
    /// Terminal: the retry budget was exhausted `(elapsed, attempts)`.
    down: Option<(Duration, u32)>,
}

impl SendLink {
    fn new() -> Self {
        let now = Instant::now();
        SendLink {
            stream: None,
            generation: 0,
            established: 0,
            buf: Vec::new(),
            next_seq: 0,
            flushed: 0,
            wire_high: 0,
            unacked: VecDeque::new(),
            retained_bytes: 0,
            unflushed_bytes: 0,
            dirty: false,
            acked: 0,
            last_heard: now,
            last_ping: now,
            pings_unanswered: 0,
            nonce: 0,
            outage: None,
            down: None,
        }
    }
}

/// A send link fused with the condvar announcing retention prunes, so
/// a watermark-blocked sender parks on exactly the link it waits for
/// and wakes when acks (or a terminal link-down) resolve the wait.
struct LinkCell {
    state: StdMutex<SendLink>,
    pruned: Condvar,
}

impl LinkCell {
    fn new() -> Self {
        LinkCell { state: StdMutex::new(SendLink::new()), pruned: Condvar::new() }
    }

    /// Locks the link. Poisoning is deliberately absorbed: the state a
    /// panicking holder leaves behind is structurally sound (queues and
    /// counters move together), and propagating it would wedge every
    /// sender on the link.
    fn lock(&self) -> MutexGuard<'_, SendLink> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn try_lock(&self) -> Option<MutexGuard<'_, SendLink>> {
        match self.state.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Parks until a prune is announced (or `timeout` passes — callers
    /// re-check their predicate either way).
    fn wait_pruned<'a>(
        &self,
        guard: MutexGuard<'a, SendLink>,
        timeout: Duration,
    ) -> MutexGuard<'a, SendLink> {
        match self.pruned.wait_timeout(guard, timeout) {
            Ok((guard, _timed_out)) => guard,
            Err(poisoned) => poisoned.into_inner().0,
        }
    }

    /// Announces a retention prune (or a terminal link-down) to parked
    /// senders.
    fn notify_pruned(&self) {
        self.pruned.notify_all();
    }
}

/// Pops every retained frame below `below`, keeping `retained_bytes`
/// in step with the queue. Returns how many frames were pruned (the
/// caller announces via [`LinkCell::notify_pruned`]).
fn prune_acked(link: &mut SendLink, below: u64) -> usize {
    let mut pruned = 0;
    while link.unacked.front().is_some_and(|(seq, _)| *seq < below) {
        let (_, envelope) = link.unacked.pop_front().expect("front checked above");
        link.retained_bytes = link.retained_bytes.saturating_sub(data_frame_wire_len(&envelope));
        pruned += 1;
    }
    pruned
}

/// Tears down the link's current connection (if any) and starts the
/// outage clock if one is not already running.
fn kill_stream(link: &mut SendLink) {
    if let Some(stream) = link.stream.take() {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
    if link.outage.is_none() {
        link.outage = Some(Outage { since: Instant::now(), attempts: 0 });
    }
}

/// Send-side state shared with the supervisor and ack-reader threads.
/// Deliberately non-generic (the target's name is interned in `me`).
struct SendShared {
    me: &'static str,
    addrs: HashMap<&'static str, SocketAddr>,
    tuning: LinkTuning,
    stats: Arc<LinkStats>,
    stop: Arc<AtomicBool>,
    /// Per-peer outgoing links. The outer lock is held only to look up
    /// or create an entry; connecting (which retries with backoff) and
    /// writing happen under the per-peer lock, so one slow or dead peer
    /// never stalls sends to the others.
    links: Mutex<HashMap<&'static str, Arc<LinkCell>>>,
    /// Set when any link parked frames behind the coalescing window;
    /// the flusher thread consumes it.
    flush_signal: park::WaitQueue<bool>,
    /// Fast-path gate in front of `flush_signal`: the first deposit of
    /// a flush round pays the lock + wake; the thousands that follow in
    /// the same window see the hint already set and pay one relaxed
    /// atomic swap. The flusher clears the hint *before* scanning for
    /// dirty links, so a deposit that lands mid-scan re-arms the next
    /// round instead of being lost.
    dirty_hint: AtomicBool,
}

impl SendShared {
    /// Tells the coalescing flusher that a link has undispatched
    /// frames (the start of its flush window).
    fn note_dirty(&self) {
        if self.dirty_hint.swap(true, Ordering::Relaxed) {
            return;
        }
        let mut signalled = self.flush_signal.lock();
        *signalled = true;
        drop(signalled);
        self.flush_signal.notify_one();
    }
}

fn link_down_error(me: &str, to: &str, elapsed: Duration, attempts: u32) -> TransportError {
    TransportError::LinkDown { edge: format!("{me}->{to}"), elapsed, attempts }
}

/// Parks the sending session until acks prune the retention queue far
/// enough below the watermark to admit `wire_len` more bytes — the
/// backpressure that keeps a slow or dead peer from growing a sender's
/// retention without bound.
///
/// # Errors
///
/// Surfaces [`TransportError::RetentionExceeded`] if the link resolves
/// down, or the workspace watchdog expires, while the queue is still
/// over the watermark.
fn wait_for_retention_room<'a>(
    me: &str,
    to: &'static str,
    handle: &'a LinkCell,
    mut link: MutexGuard<'a, SendLink>,
    wire_len: usize,
    limit: usize,
) -> Result<MutexGuard<'a, SendLink>, TransportError> {
    let deadline = Instant::now() + park::default_watchdog();
    loop {
        // An empty queue admits the frame regardless: a single frame
        // larger than the watermark must still be sendable, or it could
        // never leave at all.
        if link.unacked.is_empty() || link.retained_bytes + wire_len <= limit {
            return Ok(link);
        }
        if link.down.is_some() || Instant::now() >= deadline {
            return Err(TransportError::RetentionExceeded {
                edge: format!("{me}->{to}"),
                retained_bytes: link.retained_bytes,
                limit,
            });
        }
        // Bounded park: prunes notify `pruned`, but the terminal
        // link-down can race a notification, so re-check periodically.
        link = handle.wait_pruned(link, Duration::from_millis(50));
    }
}

/// FNV-1a of a peer name, as the per-link backoff jitter salt.
fn jitter_salt(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Frames per vectored batch: bounds the header buffer and keeps the
/// iovec array comfortably under `IOV_MAX` (two slices per frame).
const FLUSH_BATCH_MAX: usize = 256;

/// A coalescing-mode backlog at or past this many wire bytes flushes
/// inline on the sending thread instead of waiting out the window.
const FLUSH_INLINE_BYTES: usize = 256 * 1024;

/// Writes every retained frame not yet on the current connection, as
/// vectored batches: per batch, the fixed 33-byte headers are
/// assembled back-to-back in the reused link buffer and handed to
/// `write_vectored` interleaved with the refcounted payload slices —
/// one syscall per batch, the payloads never copied.
///
/// # Errors
///
/// An I/O error leaves the stream in place (a batch may be partially
/// written; the resume cursor re-syncs `flushed` on reconnect); the
/// caller decides between `kill_stream` + re-establish (resilient) and
/// surfacing it.
fn flush_pending(link: &mut SendLink, stats: &LinkStats) -> std::io::Result<()> {
    let SendLink { stream, buf, unacked, flushed, wire_high, .. } = &mut *link;
    let Some(stream) = stream.as_mut() else {
        return Err(std::io::Error::new(std::io::ErrorKind::NotConnected, "link not connected"));
    };
    loop {
        // `unacked` holds contiguous sequences, so the first unflushed
        // frame is at a computable offset — no scan over the
        // acked-but-unpruned prefix.
        let skip = unacked
            .front()
            .map_or(0, |(first, _)| usize::try_from(flushed.saturating_sub(*first)).unwrap_or(0));
        if skip >= unacked.len() {
            break;
        }
        let count = (unacked.len() - skip).min(FLUSH_BATCH_MAX);
        buf.clear();
        let mut last_seq = *flushed;
        for (seq, envelope) in unacked.iter().skip(skip).take(count) {
            if *seq < *wire_high {
                stats.replayed.fetch_add(1, Ordering::Relaxed);
            }
            let inner_len = DATA_HEADER_LEN + envelope.encoded_len();
            let outer_len = u32::try_from(inner_len).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large")
            })?;
            buf.extend_from_slice(&outer_len.to_le_bytes());
            buf.extend_from_slice(&data_header(*seq));
            buf.extend_from_slice(&envelope.header());
            last_seq = *seq;
        }
        // Headers have a fixed stride, so header `i` sits at
        // `buf[i * DATA_FRAME_OVERHEAD ..]`. The iovec array lives on
        // the stack: the steady-state flush allocates nothing.
        let mut iov = [IoSlice::new(&[]); 2 * FLUSH_BATCH_MAX];
        let mut iov_len = 0;
        for (i, (_, envelope)) in unacked.iter().skip(skip).take(count).enumerate() {
            iov[iov_len] =
                IoSlice::new(&buf[i * DATA_FRAME_OVERHEAD..(i + 1) * DATA_FRAME_OVERHEAD]);
            iov_len += 1;
            if !envelope.payload.is_empty() {
                iov[iov_len] = IoSlice::new(&envelope.payload);
                iov_len += 1;
            }
        }
        let mut slices = &mut iov[..iov_len];
        while !slices.is_empty() {
            match stream.write_vectored(slices) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "connection closed mid-batch",
                    ))
                }
                Ok(n) => IoSlice::advance_slices(&mut slices, n),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        *flushed = last_seq + 1;
        *wire_high = (*wire_high).max(*flushed);
        stats.record_batch(count);
    }
    link.unflushed_bytes = 0;
    link.dirty = false;
    Ok(())
}

/// One connection attempt: connect, handshake, (resilient) adopt the
/// receiver's resume cursor, replay the unacked tail, and start the ack
/// reader. On `Err` the caller counts the attempt and backs off.
fn try_connect_once(
    shared: &Arc<SendShared>,
    to: &'static str,
    handle: &Arc<LinkCell>,
    link: &mut SendLink,
    addr: SocketAddr,
) -> std::io::Result<()> {
    let tuning = shared.tuning;
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(1))?;
    stream.set_nodelay(true).ok();
    let mut hello = Vec::with_capacity(1 + shared.me.len());
    hello.push(if tuning.resilient { MODE_RESILIENT } else { MODE_PLAIN });
    hello.extend_from_slice(shared.me.as_bytes());
    write_frame(&mut stream, &hello)?;
    if !tuning.resilient {
        link.generation += 1;
        link.stream = Some(stream);
        return Ok(());
    }

    // Wait for the receiver's resume cursor (bounded: a half-dead or
    // mode-mismatched peer must not hang the connect path).
    stream.set_read_timeout(Some(tuning.io_tick()))?;
    let mut acc = FrameAccumulator::default();
    let deadline = Instant::now() + tuning.handshake_timeout();
    let resume = loop {
        if shared.stop.load(Ordering::Relaxed) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "transport shutting down",
            ));
        }
        match acc.poll(&mut stream)? {
            Some(body) => {
                break LinkFrame::decode(body).map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                })?
            }
            None if Instant::now() >= deadline => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "peer sent no resume cursor (plain-mode receiver, or half-open connection)",
                ))
            }
            None => {}
        }
    };
    let LinkFrame::Control(ControlFrame::Resume { next }) = resume else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "expected a resume cursor after the handshake",
        ));
    };
    if next > link.next_seq {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "peer resume cursor is ahead of everything ever sent",
        ));
    }
    // Adopt the cursor: everything below it arrived, everything from it
    // on must (re)flow on this connection. A cursor *behind* `acked`
    // (the receiver lost its state, e.g. a process restart) replays
    // from what we still retain; the receiver's gap detection will
    // report the truncation loudly rather than let sessions see a
    // spliced stream.
    if prune_acked(link, next) > 0 {
        handle.notify_pruned();
    }
    link.acked = link.acked.max(next);
    link.flushed = next;
    link.generation += 1;
    let generation = link.generation;
    // The clone shares the socket (and its read timeout) with the
    // writer half; it becomes the ack reader's handle.
    let reader_stream = stream.try_clone()?;
    link.stream = Some(stream);
    link.last_heard = Instant::now();
    link.last_ping = Instant::now();
    link.pings_unanswered = 0;
    // Replay the unacked tail before anything else touches the link.
    flush_pending(link, &shared.stats)?;
    let reader_handle = Arc::clone(handle);
    let reader_stop = Arc::clone(&shared.stop);
    std::thread::Builder::new()
        .name(format!("chorus-tcp-ack-{to}"))
        .spawn(move || ack_reader(reader_stream, acc, reader_handle, reader_stop, generation))
        .map_err(|e| std::io::Error::other(format!("spawning ack reader: {e}")))?;
    Ok(())
}

/// Establishes `link`'s connection, retrying with jittered exponential
/// backoff against the outage's bounded budget.
///
/// `burst` limits attempts consumed in *this call* (the supervisor
/// reconnects in short bursts per sweep; the send path stays until the
/// budget resolves). The budget itself is cumulative across calls via
/// `link.outage`.
fn establish(
    shared: &Arc<SendShared>,
    to: &'static str,
    handle: &Arc<LinkCell>,
    link: &mut SendLink,
    burst: Option<u32>,
) -> Result<(), TransportError> {
    if let Some((elapsed, attempts)) = link.down {
        return Err(link_down_error(shared.me, to, elapsed, attempts));
    }
    let addr =
        *shared.addrs.get(to).ok_or_else(|| TransportError::UnknownLocation(to.to_string()))?;
    if link.outage.is_none() {
        link.outage = Some(Outage { since: Instant::now(), attempts: 0 });
    }
    let salt = jitter_salt(to);
    let mut tried_this_call = 0u32;
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return Err(TransportError::Io(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "transport shutting down",
            )));
        }
        let (since, attempts) = {
            let outage = link.outage.as_ref().expect("outage set above");
            (outage.since, outage.attempts)
        };
        if attempts >= shared.tuning.retry_limit {
            let elapsed = since.elapsed();
            link.down = Some((elapsed, attempts));
            shared.stats.links_down.fetch_add(1, Ordering::Relaxed);
            // Senders parked on the retention watermark observe the
            // terminal state and surface `RetentionExceeded`.
            handle.notify_pruned();
            return Err(link_down_error(shared.me, to, elapsed, attempts));
        }
        if burst.is_some_and(|budget| tried_this_call >= budget) {
            return Err(TransportError::Io(std::io::Error::new(
                std::io::ErrorKind::WouldBlock,
                "reconnect pass budget spent; the supervisor retries next sweep",
            )));
        }
        match try_connect_once(shared, to, handle, link, addr) {
            Ok(()) => {
                link.outage = None;
                link.down = None;
                link.established += 1;
                if link.established > 1 {
                    shared.stats.reconnects.fetch_add(1, Ordering::Relaxed);
                }
                return Ok(());
            }
            Err(_) => {
                #[cfg(test)]
                tests::FAILED_CONNECT_ATTEMPTS.fetch_add(1, Ordering::Relaxed);
                kill_stream(link);
                let outage = link.outage.as_mut().expect("kill_stream keeps the outage");
                outage.attempts += 1;
                tried_this_call += 1;
                let delay = backoff_delay(shared.tuning.retry_base, outage.attempts, salt);
                std::thread::sleep(delay);
            }
        }
    }
}

/// Drains acknowledgements (and heartbeat replies) of one established
/// connection, pruning the retention queue. Exits when the connection
/// dies (tearing the link down for the supervisor to rebuild) or when a
/// newer connection supersedes this generation.
fn ack_reader(
    mut stream: TcpStream,
    mut acc: FrameAccumulator,
    handle: Arc<LinkCell>,
    stop: Arc<AtomicBool>,
    generation: u64,
) {
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        match acc.poll(&mut stream) {
            Ok(Some(body)) => {
                let next = match LinkFrame::decode(body) {
                    Ok(LinkFrame::Control(ControlFrame::Ack { next })) => Some(next),
                    Ok(LinkFrame::Control(ControlFrame::Pong { next, .. })) => Some(next),
                    Ok(_) => None,
                    Err(_) => None,
                };
                if let Some(next) = next {
                    let mut link = handle.lock();
                    if link.generation != generation {
                        return;
                    }
                    link.acked = link.acked.max(next);
                    let below = link.acked;
                    let pruned = prune_acked(&mut link, below);
                    link.last_heard = Instant::now();
                    link.pings_unanswered = 0;
                    drop(link);
                    if pruned > 0 {
                        handle.notify_pruned();
                    }
                }
            }
            Ok(None) => {
                // Idle tick: cheap staleness check so superseded readers
                // exit instead of lingering on a parked connection.
                if handle.lock().generation != generation {
                    return;
                }
            }
            Err(_) => {
                let mut link = handle.lock();
                if link.generation == generation {
                    kill_stream(&mut link);
                }
                return;
            }
        }
    }
}

/// The per-endpoint link supervisor: heartbeats established links,
/// tears down half-dead ones, and re-establishes broken links in the
/// background so retained frames replay even when the application has
/// nothing new to send.
fn supervisor_loop(shared: Arc<SendShared>) {
    let tick = shared.tuning.supervisor_tick();
    while !shared.stop.load(Ordering::Relaxed) {
        std::thread::sleep(tick);
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        let links: Vec<(&'static str, Arc<LinkCell>)> =
            shared.links.lock().iter().map(|(to, handle)| (*to, Arc::clone(handle))).collect();
        for (to, handle) in links {
            // A contended link is being actively worked (a sender in
            // `establish`, an ack reader pruning); blocking the whole
            // sweep on it would starve every other link of heartbeats
            // and misread their silence as deadness. Skip and revisit.
            let Some(mut link) = handle.try_lock() else { continue };
            if link.down.is_some() {
                continue;
            }
            if link.stream.is_some() {
                if link.pings_unanswered >= DEAD_AFTER_PINGS
                    && link.last_heard.elapsed() >= shared.tuning.dead_after()
                {
                    // Probes went out and nothing came back: presumed
                    // half-dead (e.g. one direction blackholed). Tear it
                    // down; replay brings the retained tail back on the
                    // next connection.
                    kill_stream(&mut link);
                } else if link.last_ping.elapsed() >= shared.tuning.heartbeat {
                    link.nonce += 1;
                    let ping = ControlFrame::Ping { nonce: link.nonce };
                    let SendLink { stream, .. } = &mut *link;
                    if write_control(stream.as_mut().expect("checked above"), &ping).is_ok() {
                        link.last_ping = Instant::now();
                        link.pings_unanswered += 1;
                        shared.stats.heartbeats.fetch_add(1, Ordering::Relaxed);
                    } else {
                        kill_stream(&mut link);
                    }
                }
            } else if !link.unacked.is_empty() {
                // A receiver is owed frames we still retain: reconnect in
                // short bursts (the cumulative budget lives in the
                // outage) without monopolizing the sweep.
                let _ = establish(&shared, to, &handle, &mut link, Some(2));
            }
        }
    }
}

/// The coalescing flusher: when sends park frames behind a nonzero
/// `CHORUS_TCP_FLUSH_US` window, this thread wakes at the *first*
/// enqueue, sleeps out the window (letting the batch accumulate), and
/// writes every dirty link's backlog as one vectored flush. Because
/// the signal fires on the first frame, a lone frame's latency is
/// bounded by the window — it is never stalled waiting for company.
fn flusher_loop(shared: Arc<SendShared>) {
    let window = shared.tuning.flush_delay;
    // Bound idle parks so shutdown is prompt even with no traffic.
    let tick = shared.tuning.supervisor_tick();
    while !shared.stop.load(Ordering::Relaxed) {
        let mut signalled = shared.flush_signal.lock();
        while !*signalled {
            let (guard, _timed_out) =
                shared.flush_signal.wait_deadline(signalled, Instant::now() + tick);
            signalled = guard;
            if shared.stop.load(Ordering::Relaxed) {
                return;
            }
        }
        *signalled = false;
        drop(signalled);
        // Re-arm the fast-path gate before sleeping: deposits from here
        // on signal the *next* round (and are usually also caught by
        // this one, since the dirty links are scanned after the
        // window).
        shared.dirty_hint.store(false, Ordering::Relaxed);
        // The coalescing window: frames sent while we sleep join the
        // batch (and set the signal again, harmlessly).
        std::thread::sleep(window);
        let links: Vec<Arc<LinkCell>> = shared.links.lock().values().map(Arc::clone).collect();
        for handle in links {
            let mut link = handle.lock();
            if !link.dirty {
                continue;
            }
            link.dirty = false;
            if link.stream.is_some() && flush_pending(&mut link, &shared.stats).is_err() {
                // The retained tail is non-empty, so the supervisor
                // re-establishes and replays in the background.
                kill_stream(&mut link);
            }
        }
    }
}

/// One endpoint of a TCP-connected choreography.
pub struct TcpTransport<L: LocationSet, Target: ChoreographyLocation> {
    /// The census, resolved once so per-message destination/sender
    /// validation works over interned names.
    names: InternedNames,
    send: Arc<SendShared>,
    inbox: Arc<Inbox>,
    /// Sequence counters for the raw (sessionless) compatibility path.
    raw_seqs: Mutex<HashMap<&'static str, u64>>,
    stop: Arc<AtomicBool>,
    system: PhantomData<(L, Target)>,
}

impl<L: LocationSet, Target: ChoreographyLocation> TcpTransport<L, Target> {
    /// Binds `target`'s listener and starts its acceptor thread (plus,
    /// in resilient mode, the link supervisor).
    ///
    /// # Errors
    ///
    /// Returns an error if the listener cannot bind to the configured
    /// address.
    pub fn bind(target: Target, config: TcpConfig<L>) -> Result<Self, TransportError> {
        let _ = target;
        let addr = *config
            .addrs
            .get(Target::NAME)
            .ok_or_else(|| TransportError::UnknownLocation(Target::NAME.to_string()))?;
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;

        let peers: HashSet<&'static str> =
            L::names().into_iter().filter(|n| *n != Target::NAME).collect();
        let tuning = config.tuning();
        let stats = Arc::new(LinkStats::default());
        let inbox = Arc::new(Inbox::default());
        let stop = Arc::new(AtomicBool::new(false));

        let acceptor_inbox = Arc::clone(&inbox);
        let acceptor_stats = Arc::clone(&stats);
        let acceptor_stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            accept_loop(listener, peers, acceptor_inbox, acceptor_stats, tuning, acceptor_stop);
        });

        let send = Arc::new(SendShared {
            me: Target::NAME,
            addrs: config.addrs.clone(),
            tuning,
            stats,
            stop: Arc::clone(&stop),
            links: Mutex::new(HashMap::new()),
            flush_signal: park::WaitQueue::new(false),
            dirty_hint: AtomicBool::new(false),
        });
        if tuning.resilient {
            let supervisor_shared = Arc::clone(&send);
            std::thread::Builder::new()
                .name("chorus-tcp-supervisor".into())
                .spawn(move || supervisor_loop(supervisor_shared))
                .map_err(|e| {
                    TransportError::Io(std::io::Error::other(format!(
                        "spawning link supervisor: {e}"
                    )))
                })?;
        }
        if tuning.resilient && tuning.flush_delay > Duration::ZERO {
            let flusher_shared = Arc::clone(&send);
            std::thread::Builder::new()
                .name("chorus-tcp-flusher".into())
                .spawn(move || flusher_loop(flusher_shared))
                .map_err(|e| {
                    TransportError::Io(std::io::Error::other(format!(
                        "spawning coalescing flusher: {e}"
                    )))
                })?;
        }

        Ok(TcpTransport {
            names: InternedNames::of::<L>(),
            send,
            inbox,
            raw_seqs: Mutex::new(HashMap::new()),
            stop,
            system: PhantomData,
        })
    }

    /// A snapshot of this endpoint's link-layer activity: reconnects,
    /// replayed and deduplicated frames, heartbeats, downed links.
    pub fn link_stats(&self) -> TcpLinkStats {
        self.send.stats.snapshot()
    }

    /// Chaos/test hook: hard-kills every currently established outgoing
    /// connection (as a crashed middlebox would), returning how many
    /// were torn down. In resilient mode the links replay their
    /// retained tails on reconnect; sessions observe only latency.
    pub fn break_established_links(&self) -> usize {
        let handles: Vec<Arc<LinkCell>> = self.send.links.lock().values().map(Arc::clone).collect();
        let mut killed = 0;
        for handle in handles {
            let mut link = handle.lock();
            if link.stream.is_some() {
                kill_stream(&mut link);
                killed += 1;
            }
        }
        killed
    }

    /// What the resilient link to `to` currently retains, as
    /// `(frames, wire_bytes)` — the quantity the `retain_max`
    /// watermark bounds. Test/introspection hook; `(0, 0)` for unknown
    /// peers or links never used.
    pub fn retention(&self, to: &str) -> (usize, usize) {
        let Ok(to) = self.names.resolve(to) else {
            return (0, 0);
        };
        let handle = self.send.links.lock().get(to).map(Arc::clone);
        handle.map_or((0, 0), |handle| {
            let link = handle.lock();
            (link.unacked.len(), link.retained_bytes)
        })
    }

    fn link_handle(&self, to: &'static str) -> Arc<LinkCell> {
        let mut links = self.send.links.lock();
        Arc::clone(links.entry(to).or_insert_with(|| Arc::new(LinkCell::new())))
    }
}

fn accept_loop(
    listener: TcpListener,
    peers: HashSet<&'static str>,
    inbox: Arc<Inbox>,
    stats: Arc<LinkStats>,
    tuning: LinkTuning,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let inbox = Arc::clone(&inbox);
                let stats = Arc::clone(&stats);
                let stop = Arc::clone(&stop);
                let peers = peers.clone();
                std::thread::spawn(move || {
                    stream.set_nonblocking(false).ok();
                    stream.set_nodelay(true).ok();
                    // Handshake frame: one mode byte, then the peer's
                    // location name; resolve it to the interned census
                    // name once, so every subsequent frame routes
                    // without allocating.
                    let Ok(hello) = read_frame(&mut stream) else { return };
                    let Some((&mode, name_bytes)) = hello.split_first() else { return };
                    if mode != MODE_PLAIN && mode != MODE_RESILIENT {
                        return;
                    }
                    let Ok(name) = std::str::from_utf8(name_bytes) else { return };
                    let Some(name) = peers.get(name).copied() else {
                        return;
                    };
                    reader_loop(stream, name, mode == MODE_RESILIENT, inbox, stats, tuning, stop);
                });
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => {
                // Transient accept failures (e.g. ECONNABORTED when a
                // queued peer resets before we accept) must not kill
                // the listener for everyone else.
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

/// Deposits a decoded burst into the inbox, keeping the duplicate
/// stats and the ack cadence counter in step. Returns `false` when the
/// burst poisoned the link with a cursor gap (the reader must exit).
fn drain_batch(
    inbox: &Inbox,
    stats: &LinkStats,
    name: &'static str,
    batch: &mut Vec<(u64, Envelope)>,
    accepted_since_ack: &mut u32,
) -> bool {
    if batch.is_empty() {
        return true;
    }
    let outcome = inbox.deposit_batch(name, batch);
    if outcome.duplicates > 0 {
        stats.duplicates.fetch_add(outcome.duplicates, Ordering::Relaxed);
    }
    if outcome.accepted > 0 {
        stats.deposited.fetch_add(u64::from(outcome.accepted), Ordering::Relaxed);
    }
    *accepted_since_ack = accepted_since_ack.saturating_add(outcome.accepted);
    !outcome.gap
}

/// Drives one accepted connection: resume-cursor handshake reply,
/// whole-burst frame decode and batch deposit, link dedup/gap
/// verdicts, cumulative acks at batch boundaries, heartbeat replies.
fn reader_loop(
    mut stream: TcpStream,
    name: &'static str,
    resilient_peer: bool,
    inbox: Arc<Inbox>,
    stats: Arc<LinkStats>,
    tuning: LinkTuning,
    stop: Arc<AtomicBool>,
) {
    // Timeout ticks keep shutdown prompt and drive pending-ack flushes.
    stream.set_read_timeout(Some(tuning.io_tick())).ok();
    if resilient_peer {
        // Tell the (re)connecting sender exactly where to replay from.
        let next = inbox.link_cursor(name);
        if write_control(&mut stream, &ControlFrame::Resume { next }).is_err() {
            return;
        }
    }
    // A fresh connection from a peer whose previous one hung up resumes
    // feeding its mailboxes (plain mode; resilient links never close on
    // mere disconnection).
    inbox.reopen(name);
    let mut acc = FrameAccumulator::default();
    let mut accepted_since_ack: u32 = 0;
    let mut batch: Vec<(u64, Envelope)> = Vec::new();
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        // Decode immediately so the borrow of the accumulator ends and
        // the burst-drain below can keep pulling buffered frames.
        let polled = match acc.poll(&mut stream) {
            Ok(Some(body)) => Some(LinkFrame::decode(body)),
            Ok(None) => None,
            Err(_) => {
                // The connection ended. For a resilient peer that is not
                // an event sessions may observe — the sender reconnects
                // and the cursor resumes the stream. A plain peer is
                // simply gone.
                if !resilient_peer {
                    inbox.close(name, None);
                }
                return;
            }
        };
        let Some(mut frame) = polled else {
            // Timeout tick: flush a pending cumulative ack so a sender
            // trickling frames slower than ACK_EVERY still drains its
            // retention queue promptly.
            if resilient_peer && accepted_since_ack > 0 {
                accepted_since_ack = 0;
                let next = inbox.link_cursor(name);
                if write_control(&mut stream, &ControlFrame::Ack { next }).is_err() {
                    return;
                }
            }
            continue;
        };
        // Decode the whole buffered burst before depositing: one inbox
        // lock and at most one waker fire per mailbox per drain, not
        // per frame.
        loop {
            match frame {
                Ok(LinkFrame::Data { link_seq, envelope }) => {
                    batch.push((link_seq, envelope));
                }
                Ok(LinkFrame::Control(ControlFrame::Ping { nonce })) => {
                    // Deposit what preceded the probe so the pong's
                    // piggybacked cursor covers it, doubling as an ack.
                    if !drain_batch(&inbox, &stats, name, &mut batch, &mut accepted_since_ack) {
                        return;
                    }
                    accepted_since_ack = 0;
                    let next = inbox.link_cursor(name);
                    if write_control(&mut stream, &ControlFrame::Pong { nonce, next }).is_err() {
                        return;
                    }
                }
                Ok(LinkFrame::Control(_)) => {
                    // Ack/Pong/Resume have no meaning inbound here.
                }
                Err(e) => {
                    // Deliver the frames that preceded the bad one,
                    // then close loudly.
                    drain_batch(&inbox, &stats, name, &mut batch, &mut accepted_since_ack);
                    inbox.close(name, Some(format!("bad frame: {e}")));
                    return;
                }
            }
            match acc.next_buffered() {
                Some(body) => frame = LinkFrame::decode(body),
                None => break,
            }
        }
        if !drain_batch(&inbox, &stats, name, &mut batch, &mut accepted_since_ack) {
            return;
        }
        // Ack at the batch boundary: a burst whose tail lands exactly
        // on the cadence must not leave the sender's retention tail
        // unpruned until the idle tick or a heartbeat.
        if resilient_peer && accepted_since_ack >= ACK_EVERY {
            accepted_since_ack = 0;
            let next = inbox.link_cursor(name);
            if write_control(&mut stream, &ControlFrame::Ack { next }).is_err() {
                return;
            }
        }
    }
}

impl<L: LocationSet, Target: ChoreographyLocation> Drop for TcpTransport<L, Target> {
    fn drop(&mut self) {
        // A participant can finish its role (and drop its endpoint)
        // while a slower peer is still owed retained frames — perhaps
        // on a connection that just died. Linger briefly so the
        // supervisor finishes reconnecting and replaying; leaving
        // immediately would strand the tail and starve the peer.
        if self.send.tuning.resilient {
            let cap = (self.send.tuning.dead_after() * 3)
                .clamp(Duration::from_secs(1), Duration::from_secs(3));
            let deadline = Instant::now() + cap;
            loop {
                let drained = {
                    let links = self.send.links.lock();
                    links.values().all(|handle| {
                        handle
                            .try_lock()
                            .is_some_and(|link| link.unacked.is_empty() || link.down.is_some())
                    })
                };
                if drained || Instant::now() >= deadline {
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        self.stop.store(true, Ordering::Relaxed);
        self.send.flush_signal.notify_all();
        // Shut established streams down so reader/supervisor threads
        // notice promptly instead of waiting out their timeout ticks.
        let handles: Vec<Arc<LinkCell>> = self.send.links.lock().values().map(Arc::clone).collect();
        for handle in handles {
            if let Some(mut link) = handle.try_lock() {
                if let Some(stream) = link.stream.take() {
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                }
            }
        }
    }
}

impl<L: LocationSet, Target: ChoreographyLocation> SessionTransport<L, Target>
    for TcpTransport<L, Target>
{
    fn send_frame(&self, to: &str, frame: Envelope) -> Result<(), TransportError> {
        let to_static = self.names.resolve(to)?;
        let handle = self.link_handle(to_static);
        let mut link = handle.lock();
        if let Some((elapsed, attempts)) = link.down {
            return Err(link_down_error(self.send.me, to_static, elapsed, attempts));
        }
        if self.send.tuning.resilient {
            let wire_len = data_frame_wire_len(&frame);
            let limit = self.send.tuning.retain_max;
            if limit > 0 && !link.unacked.is_empty() && link.retained_bytes + wire_len > limit {
                link = wait_for_retention_room(
                    self.send.me,
                    to_static,
                    &handle,
                    link,
                    wire_len,
                    limit,
                )?;
            }
            // Retain first (the sequence is assigned *after* any
            // watermark park, so queue order always matches sequence
            // order): whatever happens to the connection from here on,
            // the frame is queued and will reach the peer (or the link
            // goes down loudly).
            let seq = link.next_seq;
            link.next_seq += 1;
            link.retained_bytes += wire_len;
            link.unflushed_bytes += wire_len;
            link.unacked.push_back((seq, frame));
            if link.stream.is_none() {
                return establish(&self.send, to_static, &handle, &mut link, None);
            }
            if self.send.tuning.flush_delay > Duration::ZERO
                && link.unflushed_bytes < FLUSH_INLINE_BYTES
            {
                // Park the frame behind the coalescing window; the
                // flusher writes the whole backlog as one batch.
                link.dirty = true;
                drop(link);
                self.send.note_dirty();
                return Ok(());
            }
            if flush_pending(&mut link, &self.send.stats).is_err() {
                kill_stream(&mut link);
                return establish(&self.send, to_static, &handle, &mut link, None);
            }
            Ok(())
        } else {
            let seq = link.next_seq;
            link.next_seq += 1;
            if link.stream.is_none() {
                establish(&self.send, to_static, &handle, &mut link, None)?;
            }
            let SendLink { stream, buf, .. } = &mut *link;
            let stream = stream.as_mut().expect("just connected");
            write_link_data(stream, buf, seq, &frame).map_err(|e| {
                // Drop the dead stream; whatever was in flight is lost
                // (the receiver's cursor reports the gap loudly).
                kill_stream(&mut link);
                TransportError::Io(e)
            })
        }
    }

    fn receive_frame(&self, session: SessionId, from: &str) -> Result<Envelope, TransportError> {
        let from = self.names.resolve(from)?;
        if from == Target::NAME {
            return Err(TransportError::UnknownLocation(from.to_string()));
        }
        self.inbox.take(session, from)
    }

    fn try_receive_frame(
        &self,
        session: SessionId,
        from: &str,
    ) -> Result<Option<Envelope>, TransportError> {
        let from = self.names.resolve(from)?;
        if from == Target::NAME {
            return Err(TransportError::UnknownLocation(from.to_string()));
        }
        self.inbox.try_take(session, from)
    }

    fn register_waker(
        &self,
        session: SessionId,
        from: &str,
        waker: MailboxWaker,
    ) -> Result<bool, TransportError> {
        let from = self.names.resolve(from)?;
        if from == Target::NAME {
            return Err(TransportError::UnknownLocation(from.to_string()));
        }
        self.inbox.register(session, from, waker)
    }
}

impl<L: LocationSet, Target: ChoreographyLocation> Transport<L, Target>
    for TcpTransport<L, Target>
{
    fn send(&self, to: &str, data: &[u8]) -> Result<(), TransportError> {
        let seq = {
            let to_static = self.names.resolve(to)?;
            let mut seqs = self.raw_seqs.lock();
            let counter = seqs.entry(to_static).or_insert(0);
            let seq = *counter;
            *counter += 1;
            seq
        };
        self.send_frame(to, Envelope::new(RAW_SESSION, seq, data))
    }

    fn receive(&self, from: &str) -> Result<Vec<u8>, TransportError> {
        self.receive_frame(RAW_SESSION, from).map(|envelope| envelope.payload.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Counts connect attempts that failed and went into the retry
    /// loop, so `connect_retries_until_peer_binds` can *force* the
    /// retry path instead of hoping a race exercises it.
    pub(super) static FAILED_CONNECT_ATTEMPTS: AtomicU64 = AtomicU64::new(0);

    chorus_core::locations! { Alice, Bob }
    type System = chorus_core::LocationSet!(Alice, Bob);

    fn config() -> TcpConfig<System> {
        let addrs = free_local_addrs(2).unwrap();
        TcpConfigBuilder::new()
            .location(Alice, addrs[0])
            .location(Bob, addrs[1])
            .build::<System>()
            .unwrap()
    }

    #[test]
    fn config_requires_every_location() {
        let addrs = free_local_addrs(1).unwrap();
        let result = TcpConfigBuilder::new().location(Alice, addrs[0]).build::<System>();
        assert_eq!(result.unwrap_err(), vec!["Bob"]);
    }

    #[test]
    fn messages_cross_sockets_in_order() {
        let config = config();
        let a_cfg = config.clone();
        let b_cfg = config;
        let bob = std::thread::spawn(move || {
            let t = TcpTransport::bind(Bob, b_cfg).unwrap();
            let one = t.receive("Alice").unwrap();
            let two = t.receive("Alice").unwrap();
            t.send("Alice", b"ack").unwrap();
            (one, two)
        });
        let alice = TcpTransport::bind(Alice, a_cfg).unwrap();
        alice.send("Bob", b"first").unwrap();
        alice.send("Bob", b"second").unwrap();
        assert_eq!(alice.receive("Bob").unwrap(), b"ack");
        let (one, two) = bob.join().unwrap();
        assert_eq!(one, b"first");
        assert_eq!(two, b"second");
    }

    #[test]
    fn connect_retries_until_peer_binds() {
        let config = config();
        let a_cfg = config.clone();
        let b_cfg = config;
        // Alice starts sending before Bob has bound its listener, and
        // Bob binds only after observing at least one *failed* connect
        // attempt — so the retry path is exercised deterministically,
        // with no wall-clock sleep. (The counter is global across this
        // test binary, so a concurrent test's failed connect could in
        // principle satisfy the gate early; the test then degrades to
        // racing the bind, never to flaking.)
        let before = FAILED_CONNECT_ATTEMPTS.load(Ordering::Relaxed);
        let alice = std::thread::spawn(move || {
            let t = TcpTransport::bind(Alice, a_cfg).unwrap();
            t.send("Bob", b"early").unwrap();
        });
        while FAILED_CONNECT_ATTEMPTS.load(Ordering::Relaxed) == before {
            std::thread::yield_now();
        }
        let bob = TcpTransport::bind(Bob, b_cfg).unwrap();
        assert_eq!(bob.receive("Alice").unwrap(), b"early");
        alice.join().unwrap();
    }

    #[test]
    fn empty_payloads_are_delivered() {
        let config = config();
        let a_cfg = config.clone();
        let b_cfg = config;
        let bob = std::thread::spawn(move || {
            let t = TcpTransport::bind(Bob, b_cfg).unwrap();
            t.receive("Alice").unwrap()
        });
        let alice = TcpTransport::bind(Alice, a_cfg).unwrap();
        alice.send("Bob", b"").unwrap();
        assert_eq!(bob.join().unwrap(), b"");
    }

    #[test]
    fn sessions_demultiplex_on_one_socket() {
        let config = config();
        let a_cfg = config.clone();
        let b_cfg = config;
        let bob = std::thread::spawn(move || {
            let t = TcpTransport::bind(Bob, b_cfg).unwrap();
            // Read the later session first; the earlier one must be intact.
            let s2 = t.receive_frame(2, "Alice").unwrap();
            let s1a = t.receive_frame(1, "Alice").unwrap();
            let s1b = t.receive_frame(1, "Alice").unwrap();
            (s2.payload, s1a.payload, s1b.payload)
        });
        let alice = TcpTransport::bind(Alice, a_cfg).unwrap();
        alice.send_frame("Bob", Envelope::new(1, 0, b"s1-first".to_vec())).unwrap();
        alice.send_frame("Bob", Envelope::new(1, 1, b"s1-second".to_vec())).unwrap();
        alice.send_frame("Bob", Envelope::new(2, 0, b"s2-only".to_vec())).unwrap();
        let (s2, s1a, s1b) = bob.join().unwrap();
        assert_eq!(s2, b"s2-only");
        assert_eq!(s1a, b"s1-first");
        assert_eq!(s1b, b"s1-second");
    }

    #[test]
    fn killed_connections_replay_the_unacked_tail() {
        // Fast heartbeat so the test's reconnect window is tight.
        let addrs = free_local_addrs(2).unwrap();
        let cfg = TcpConfigBuilder::new()
            .location(Alice, addrs[0])
            .location(Bob, addrs[1])
            .heartbeat(Duration::from_millis(50))
            .retry_base(Duration::from_millis(2))
            .build::<System>()
            .unwrap();
        let a_cfg = cfg.clone();
        let b_cfg = cfg;
        let bob = std::thread::spawn(move || {
            let t = TcpTransport::bind(Bob, b_cfg).unwrap();
            let mut got = Vec::new();
            for _ in 0..6 {
                got.push(t.receive("Alice").unwrap());
            }
            t.send("Alice", b"done").unwrap();
            got
        });
        let alice = TcpTransport::bind(Alice, a_cfg).unwrap();
        for i in 0..3u8 {
            alice.send("Bob", &[i]).unwrap();
        }
        // Hard-kill the established connection mid-session; the next
        // sends re-establish and the link replays anything unacked.
        assert!(alice.break_established_links() >= 1);
        for i in 3..6u8 {
            alice.send("Bob", &[i]).unwrap();
        }
        assert_eq!(alice.receive("Bob").unwrap(), b"done");
        let got = bob.join().unwrap();
        assert_eq!(got, vec![vec![0], vec![1], vec![2], vec![3], vec![4], vec![5]]);
        let stats = alice.link_stats();
        assert!(stats.reconnects >= 1, "kill must force a reconnect: {stats:?}");
    }

    #[test]
    fn exhausted_retry_budget_surfaces_link_down() {
        // Bob's address is reserved but never bound: every connect is
        // refused, so the budget drains deterministically and fast.
        let addrs = free_local_addrs(2).unwrap();
        let cfg = TcpConfigBuilder::new()
            .location(Alice, addrs[0])
            .location(Bob, addrs[1])
            .retry_limit(3)
            .retry_base(Duration::from_millis(1))
            .build::<System>()
            .unwrap();
        let alice = TcpTransport::<System, _>::bind(Alice, cfg).unwrap();
        let err = alice.send("Bob", b"void").unwrap_err();
        match &err {
            TransportError::LinkDown { edge, attempts, .. } => {
                assert_eq!(edge, "Alice->Bob");
                assert_eq!(*attempts, 3);
            }
            other => panic!("expected LinkDown, got {other:?}"),
        }
        // The link is terminally down: later sends fail immediately.
        let again = alice.send("Bob", b"still void").unwrap_err();
        assert!(matches!(again, TransportError::LinkDown { .. }), "got {again:?}");
        assert_eq!(alice.link_stats().links_down, 1);
    }

    #[test]
    fn batches_coalesce_under_flush_delay() {
        let addrs = free_local_addrs(2).unwrap();
        let cfg = TcpConfigBuilder::new()
            .location(Alice, addrs[0])
            .location(Bob, addrs[1])
            .flush_delay(Duration::from_millis(20))
            .build::<System>()
            .unwrap();
        let a_cfg = cfg.clone();
        let b_cfg = cfg;
        let bob = std::thread::spawn(move || {
            let t = TcpTransport::bind(Bob, b_cfg).unwrap();
            let mut got = Vec::new();
            for _ in 0..12 {
                got.push(t.receive("Alice").unwrap());
            }
            t.send("Alice", b"done").unwrap();
            got
        });
        let alice = TcpTransport::bind(Alice, a_cfg).unwrap();
        for i in 0..12u8 {
            alice.send("Bob", &[i]).unwrap();
        }
        assert_eq!(alice.receive("Bob").unwrap(), b"done");
        let got = bob.join().unwrap();
        assert_eq!(got, (0..12u8).map(|i| vec![i]).collect::<Vec<_>>());
        let stats = alice.link_stats();
        assert!(stats.batched_frames >= 12, "every frame flushes in a batch: {stats:?}");
        assert!(
            stats.batches < stats.batched_frames,
            "the window must coalesce at least one multi-frame batch: {stats:?}"
        );
    }

    #[test]
    fn single_frame_larger_than_watermark_still_sends() {
        // A watermark below one frame's wire footprint must admit the
        // frame when the queue is empty — otherwise it could never be
        // sent at all.
        let addrs = free_local_addrs(2).unwrap();
        let cfg = TcpConfigBuilder::new()
            .location(Alice, addrs[0])
            .location(Bob, addrs[1])
            .retain_max(64)
            .build::<System>()
            .unwrap();
        let a_cfg = cfg.clone();
        let b_cfg = cfg;
        let bob = std::thread::spawn(move || {
            let t = TcpTransport::bind(Bob, b_cfg).unwrap();
            t.receive("Alice").unwrap()
        });
        let alice = TcpTransport::bind(Alice, a_cfg).unwrap();
        let oversized = vec![7u8; 4096];
        alice.send("Bob", &oversized).unwrap();
        assert_eq!(bob.join().unwrap(), oversized);
    }

    #[test]
    fn retention_reports_and_drains() {
        let addrs = free_local_addrs(2).unwrap();
        let cfg = TcpConfigBuilder::new()
            .location(Alice, addrs[0])
            .location(Bob, addrs[1])
            .heartbeat(Duration::from_millis(50))
            .build::<System>()
            .unwrap();
        let a_cfg = cfg.clone();
        let b_cfg = cfg;
        let _bob = TcpTransport::<System, _>::bind(Bob, b_cfg).unwrap();
        let alice = TcpTransport::<System, _>::bind(Alice, a_cfg).unwrap();
        alice.send("Bob", b"tracked").unwrap();
        // Acks prune the retention queue without the application ever
        // receiving: the watermark accounting must return to zero.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let (frames, bytes) = alice.retention("Bob");
            if frames == 0 && bytes == 0 {
                break;
            }
            assert!(Instant::now() < deadline, "retention never drained: {frames} frames");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn plain_mode_still_delivers() {
        let addrs = free_local_addrs(2).unwrap();
        let cfg = TcpConfigBuilder::new()
            .location(Alice, addrs[0])
            .location(Bob, addrs[1])
            .resilience(false)
            .build::<System>()
            .unwrap();
        let a_cfg = cfg.clone();
        let b_cfg = cfg;
        let bob = std::thread::spawn(move || {
            let t = TcpTransport::bind(Bob, b_cfg).unwrap();
            let one = t.receive("Alice").unwrap();
            t.send("Alice", b"ack").unwrap();
            one
        });
        let alice = TcpTransport::bind(Alice, a_cfg).unwrap();
        alice.send("Bob", b"plain").unwrap();
        assert_eq!(alice.receive("Bob").unwrap(), b"ack");
        assert_eq!(bob.join().unwrap(), b"plain");
    }
}
