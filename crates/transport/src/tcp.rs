//! TCP transport: length-prefixed envelope frames over sockets.
//!
//! Each endpoint binds a listener at its configured address. Outgoing
//! links are opened lazily (with retry, so start-up order does not
//! matter) and begin with a handshake frame carrying the sender's
//! location name; after that, every frame is a `u32` little-endian
//! length followed by a [`chorus_wire::Envelope`] (session id, per-edge
//! sequence number, payload).
//!
//! A reader thread per peer decodes each envelope and routes
//! it into a per-(session, sender) FIFO mailbox, giving the per-sender
//! ordering guarantee the λN model assumes *within* each session while
//! letting sessions interleave freely on the socket.
//!
//! The data plane is allocation-lean: sends assemble small frames in a
//! reused per-link buffer (one `write` syscall) and put large payloads
//! on the wire as a second slice without copying them; reads pull each
//! frame into a pooled per-peer buffer and slice the payload out into
//! exactly-sized shared storage (one allocation per message).

use chorus_core::{
    ChoreographyLocation, InternedNames, LocationSet, MailboxWaker, SequenceTracker, SessionId,
    SessionTransport, Transport, TransportError, RAW_SESSION,
};
use chorus_wire::{Envelope, ENVELOPE_HEADER_LEN};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{Read, Write};
use std::marker::PhantomData;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Duration;

/// Address book for a TCP system: one socket address per location in `L`.
#[derive(Debug, Clone)]
pub struct TcpConfig<L: LocationSet> {
    addrs: HashMap<&'static str, SocketAddr>,
    system: PhantomData<L>,
}

/// Builder for [`TcpConfig`].
#[derive(Debug, Default)]
pub struct TcpConfigBuilder {
    addrs: HashMap<&'static str, SocketAddr>,
}

impl TcpConfigBuilder {
    /// Starts an empty address book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns `addr` to `location`.
    pub fn location<P: ChoreographyLocation>(mut self, location: P, addr: SocketAddr) -> Self {
        let _ = location;
        self.addrs.insert(P::NAME, addr);
        self
    }

    /// Finalizes the address book for the system census `L`.
    ///
    /// # Errors
    ///
    /// Returns the set of missing names if any location in `L` has no
    /// address.
    pub fn build<L: LocationSet>(self) -> Result<TcpConfig<L>, Vec<&'static str>> {
        let missing: Vec<&'static str> =
            L::names().into_iter().filter(|n| !self.addrs.contains_key(n)).collect();
        if missing.is_empty() {
            Ok(TcpConfig { addrs: self.addrs, system: PhantomData })
        } else {
            Err(missing)
        }
    }
}

/// Reserves `n` distinct loopback addresses with OS-assigned free ports.
///
/// Test/bench helper: binds ephemeral listeners, records their addresses,
/// and releases them. (The usual caveat applies: the ports could in
/// principle be reused between this call and the transport's bind.)
pub fn free_local_addrs(n: usize) -> std::io::Result<Vec<SocketAddr>> {
    let listeners: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0")).collect::<Result<_, _>>()?;
    listeners.iter().map(|l| l.local_addr()).collect()
}

fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

fn read_frame(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    stream.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(payload)
}

/// Payloads up to this size are coalesced with their headers into the
/// reused send buffer and hit the socket as a single `write`; larger
/// payloads go out as their own slice, uncopied.
const COALESCE_LIMIT: usize = 16 * 1024;

/// Writes one envelope: `u32` outer length, envelope header, payload —
/// assembled in `buf` (whose capacity is reused across frames) or, for
/// large payloads, written as two slices so the payload is never
/// copied.
fn write_envelope(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    frame: &Envelope,
) -> std::io::Result<()> {
    let inner_len = frame.encoded_len();
    let outer_len = u32::try_from(inner_len)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    buf.clear();
    buf.extend_from_slice(&outer_len.to_le_bytes());
    buf.extend_from_slice(&frame.header());
    if frame.payload.len() <= COALESCE_LIMIT {
        buf.extend_from_slice(&frame.payload);
        stream.write_all(buf)?;
    } else {
        stream.write_all(buf)?;
        stream.write_all(&frame.payload)?;
    }
    stream.flush()
}

/// Why reading one envelope off a socket failed.
enum ReadFrameError {
    /// The connection ended (peer hung up or I/O error).
    Disconnected,
    /// The stream delivered bytes that are not a valid envelope.
    Malformed(String),
}

/// Reads one envelope into the pooled `scratch` buffer (capacity reused
/// across frames) and decodes it, copying only the payload out into
/// exactly-sized shared storage.
fn read_envelope(
    stream: &mut TcpStream,
    scratch: &mut Vec<u8>,
) -> Result<Envelope, ReadFrameError> {
    let mut len_bytes = [0u8; 4];
    stream.read_exact(&mut len_bytes).map_err(|_| ReadFrameError::Disconnected)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len < ENVELOPE_HEADER_LEN {
        return Err(ReadFrameError::Malformed("frame shorter than an envelope header".into()));
    }
    scratch.clear();
    scratch.resize(len, 0);
    stream.read_exact(scratch).map_err(|_| ReadFrameError::Disconnected)?;
    Envelope::decode(scratch).map_err(|e| ReadFrameError::Malformed(e.to_string()))
}

/// The demultiplexed receive side shared by all reader threads.
#[derive(Default)]
struct Inbox {
    inner: StdMutex<InboxInner>,
    cv: Condvar,
}

#[derive(Default)]
struct InboxInner {
    /// Per-(sender, session) FIFO mailboxes, keyed by interned sender
    /// names so per-frame routing allocates nothing.
    mailboxes: HashMap<(&'static str, SessionId), VecDeque<Envelope>>,
    /// Per-(session, sender) sequence validation.
    sequences: SequenceTracker,
    /// Senders whose connection has ended (with an optional error).
    closed: HashMap<&'static str, Option<String>>,
    /// Readiness wakers parked on empty mailboxes by the pooled session
    /// runtime: at most one per (sender, session) mailbox, removed and
    /// fired (outside the lock) when that mailbox gains a frame, drained
    /// per sender when its connection ends.
    wakers: HashMap<(&'static str, SessionId), MailboxWaker>,
}

impl Inbox {
    /// Routes one decoded envelope from `sender` into its mailbox.
    fn deposit(&self, sender: &'static str, envelope: Envelope) {
        let mut inner = self.inner.lock().expect("tcp inbox poisoned");
        // A sender that violated its sequence is unrecoverable (see
        // `reopen`): withhold everything it sends afterwards so every
        // session behind it observes the protocol error instead of a
        // silently resumed stream.
        if matches!(inner.closed.get(sender), Some(Some(_))) {
            return;
        }
        let mut fired = None;
        let mut all_fired = Vec::new();
        match inner.sequences.check(envelope.session, sender, envelope.seq) {
            Ok(()) => {
                let session = envelope.session;
                inner.mailboxes.entry((sender, session)).or_default().push_back(envelope);
                fired = inner.wakers.remove(&(sender, session));
            }
            Err(e) => {
                inner.closed.insert(sender, Some(e.to_string()));
                all_fired = drain_sender_wakers(&mut inner.wakers, sender);
            }
        }
        self.cv.notify_all();
        // Wakers re-enqueue sessions into a scheduler queue; invoke them
        // outside the inbox lock to avoid ordering deadlocks.
        drop(inner);
        if let Some(waker) = fired {
            waker();
        }
        for waker in all_fired {
            waker();
        }
    }

    /// Marks `sender`'s connection as ended.
    fn close(&self, sender: &'static str, error: Option<String>) {
        let mut inner = self.inner.lock().expect("tcp inbox poisoned");
        inner.closed.entry(sender).or_insert(error);
        // A closed link is an observable (error) state for every session
        // parked on it: fire them all.
        let fired = drain_sender_wakers(&mut inner.wakers, sender);
        self.cv.notify_all();
        drop(inner);
        for waker in fired {
            waker();
        }
    }

    /// Clears `sender`'s closed state when it establishes a fresh
    /// connection, so a reconnecting peer resumes feeding its mailboxes
    /// instead of being treated as permanently gone. A sequence
    /// violation is kept: the stream state is unrecoverable.
    fn reopen(&self, sender: &'static str) {
        let mut inner = self.inner.lock().expect("tcp inbox poisoned");
        if matches!(inner.closed.get(sender), Some(None)) {
            inner.closed.remove(sender);
        }
    }

    /// Pops the next frame of `session` from `sender` if one is already
    /// deliverable.
    fn try_take(
        &self,
        session: SessionId,
        sender: &'static str,
    ) -> Result<Option<Envelope>, TransportError> {
        let mut inner = self.inner.lock().expect("tcp inbox poisoned");
        if let Some(envelope) =
            inner.mailboxes.get_mut(&(sender, session)).and_then(VecDeque::pop_front)
        {
            return Ok(Some(envelope));
        }
        if let Some(error) = inner.closed.get(sender) {
            return Err(match error {
                Some(message) => TransportError::Protocol(message.clone()),
                None => TransportError::ConnectionClosed { peer: sender.to_string() },
            });
        }
        Ok(None)
    }

    /// Parks `waker` on the (sender, session) mailbox, or reports the
    /// mailbox already ready. Ready-check and registration happen under
    /// the inbox lock the reader threads deposit under — no lost
    /// wakeups.
    fn register(
        &self,
        session: SessionId,
        sender: &'static str,
        waker: MailboxWaker,
    ) -> Result<bool, TransportError> {
        let mut inner = self.inner.lock().expect("tcp inbox poisoned");
        let ready = inner.closed.contains_key(sender)
            || inner.mailboxes.get(&(sender, session)).is_some_and(|mailbox| !mailbox.is_empty());
        if ready {
            return Ok(true);
        }
        inner.wakers.insert((sender, session), waker);
        Ok(false)
    }

    /// Blocks until a frame of `session` from `sender` arrives.
    fn take(&self, session: SessionId, sender: &'static str) -> Result<Envelope, TransportError> {
        let mut inner = self.inner.lock().expect("tcp inbox poisoned");
        loop {
            if let Some(envelope) =
                inner.mailboxes.get_mut(&(sender, session)).and_then(VecDeque::pop_front)
            {
                return Ok(envelope);
            }
            if let Some(error) = inner.closed.get(sender) {
                return Err(match error {
                    Some(message) => TransportError::Protocol(message.clone()),
                    None => TransportError::ConnectionClosed { peer: sender.to_string() },
                });
            }
            inner = self.cv.wait(inner).expect("tcp inbox poisoned");
        }
    }
}

/// Removes every waker parked on `sender`'s mailboxes, for firing once
/// the inbox lock is released. The map is typically tiny here (the
/// link just died), so the linear scan is fine.
fn drain_sender_wakers(
    wakers: &mut HashMap<(&'static str, SessionId), MailboxWaker>,
    sender: &'static str,
) -> Vec<MailboxWaker> {
    let keys: Vec<(&'static str, SessionId)> =
        wakers.keys().filter(|(s, _)| *s == sender).copied().collect();
    keys.into_iter().filter_map(|key| wakers.remove(&key)).collect()
}

/// One outgoing link: the lazily-opened stream plus a reused frame
/// assembly buffer, so steady-state sends allocate nothing.
#[derive(Default)]
struct SendLink {
    stream: Option<TcpStream>,
    buf: Vec<u8>,
}

/// One endpoint of a TCP-connected choreography.
pub struct TcpTransport<L: LocationSet, Target: ChoreographyLocation> {
    config: TcpConfig<L>,
    /// The census, resolved once so per-message destination/sender
    /// validation works over interned names.
    names: InternedNames,
    /// Per-peer outgoing links. The outer lock is held only to look up
    /// or create an entry; connecting (which retries with backoff) and
    /// writing happen under the per-peer lock, so one slow or dead peer
    /// never stalls sends to the others.
    outgoing: Mutex<HashMap<&'static str, Arc<Mutex<SendLink>>>>,
    inbox: Arc<Inbox>,
    /// Sequence counters for the raw (sessionless) compatibility path.
    raw_seqs: Mutex<HashMap<&'static str, u64>>,
    stop: Arc<AtomicBool>,
    target: PhantomData<Target>,
}

impl<L: LocationSet, Target: ChoreographyLocation> TcpTransport<L, Target> {
    /// Binds `target`'s listener and starts its acceptor thread.
    ///
    /// # Errors
    ///
    /// Returns an error if the listener cannot bind to the configured
    /// address.
    pub fn bind(target: Target, config: TcpConfig<L>) -> Result<Self, TransportError> {
        let _ = target;
        let addr = *config
            .addrs
            .get(Target::NAME)
            .ok_or_else(|| TransportError::UnknownLocation(Target::NAME.to_string()))?;
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;

        let peers: HashSet<&'static str> =
            L::names().into_iter().filter(|n| *n != Target::NAME).collect();
        let inbox = Arc::new(Inbox::default());
        let stop = Arc::new(AtomicBool::new(false));

        let acceptor_inbox = Arc::clone(&inbox);
        let acceptor_stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            accept_loop(listener, peers, acceptor_inbox, acceptor_stop);
        });

        Ok(TcpTransport {
            config,
            names: InternedNames::of::<L>(),
            outgoing: Mutex::new(HashMap::new()),
            inbox,
            raw_seqs: Mutex::new(HashMap::new()),
            stop,
            target: PhantomData,
        })
    }

    fn connect(&self, to: &'static str) -> Result<TcpStream, TransportError> {
        let addr = *self
            .config
            .addrs
            .get(to)
            .ok_or_else(|| TransportError::UnknownLocation(to.to_string()))?;
        // Retry with backoff: peers may not have bound their listeners yet.
        let mut delay = Duration::from_millis(5);
        let mut last_err = None;
        for _ in 0..60 {
            match TcpStream::connect_timeout(&addr, Duration::from_secs(1)) {
                Ok(mut stream) => {
                    stream.set_nodelay(true).ok();
                    // Handshake: announce who we are.
                    write_frame(&mut stream, Target::NAME.as_bytes())?;
                    return Ok(stream);
                }
                Err(e) => {
                    #[cfg(test)]
                    tests::FAILED_CONNECT_ATTEMPTS.fetch_add(1, Ordering::Relaxed);
                    last_err = Some(e);
                    std::thread::sleep(delay);
                    delay = (delay * 2).min(Duration::from_millis(200));
                }
            }
        }
        Err(TransportError::Io(last_err.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::TimedOut, "connect retries exhausted")
        })))
    }
}

fn accept_loop(
    listener: TcpListener,
    peers: HashSet<&'static str>,
    inbox: Arc<Inbox>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let inbox = Arc::clone(&inbox);
                let stop = Arc::clone(&stop);
                let peers = peers.clone();
                std::thread::spawn(move || {
                    stream.set_nonblocking(false).ok();
                    stream.set_nodelay(true).ok();
                    // Handshake frame identifies the peer; resolve it to
                    // the interned census name once, so every subsequent
                    // frame routes without allocating.
                    let Ok(name_bytes) = read_frame(&mut stream) else { return };
                    let Ok(name) = String::from_utf8(name_bytes) else { return };
                    let Some(name) = peers.get(name.as_str()).copied() else {
                        return;
                    };
                    // A fresh connection from a peer whose previous one
                    // hung up resumes feeding its mailboxes.
                    inbox.reopen(name);
                    // Pooled read buffer: frames are pulled into this
                    // scratch space and payloads sliced out of it.
                    let mut scratch = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        match read_envelope(&mut stream, &mut scratch) {
                            Ok(envelope) => inbox.deposit(name, envelope),
                            Err(ReadFrameError::Malformed(e)) => {
                                inbox.close(name, Some(format!("bad frame: {e}")));
                                return;
                            }
                            Err(ReadFrameError::Disconnected) => {
                                // Peer hung up.
                                inbox.close(name, None);
                                return;
                            }
                        }
                    }
                });
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => return,
        }
    }
}

impl<L: LocationSet, Target: ChoreographyLocation> Drop for TcpTransport<L, Target> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

impl<L: LocationSet, Target: ChoreographyLocation> SessionTransport<L, Target>
    for TcpTransport<L, Target>
{
    fn send_frame(&self, to: &str, frame: Envelope) -> Result<(), TransportError> {
        let to_static = self.names.resolve(to)?;
        let link = {
            let mut outgoing = self.outgoing.lock();
            Arc::clone(outgoing.entry(to_static).or_default())
        };
        let mut link = link.lock();
        if link.stream.is_none() {
            link.stream = Some(self.connect(to_static)?);
        }
        let SendLink { stream, buf } = &mut *link;
        let stream = stream.as_mut().expect("just connected");
        write_envelope(stream, buf, &frame).map_err(|e| {
            // Drop the dead stream; the next send reconnects lazily.
            link.stream = None;
            TransportError::Io(e)
        })
    }

    fn receive_frame(&self, session: SessionId, from: &str) -> Result<Envelope, TransportError> {
        let from = self.names.resolve(from)?;
        if from == Target::NAME {
            return Err(TransportError::UnknownLocation(from.to_string()));
        }
        self.inbox.take(session, from)
    }

    fn try_receive_frame(
        &self,
        session: SessionId,
        from: &str,
    ) -> Result<Option<Envelope>, TransportError> {
        let from = self.names.resolve(from)?;
        if from == Target::NAME {
            return Err(TransportError::UnknownLocation(from.to_string()));
        }
        self.inbox.try_take(session, from)
    }

    fn register_waker(
        &self,
        session: SessionId,
        from: &str,
        waker: MailboxWaker,
    ) -> Result<bool, TransportError> {
        let from = self.names.resolve(from)?;
        if from == Target::NAME {
            return Err(TransportError::UnknownLocation(from.to_string()));
        }
        self.inbox.register(session, from, waker)
    }
}

impl<L: LocationSet, Target: ChoreographyLocation> Transport<L, Target>
    for TcpTransport<L, Target>
{
    fn send(&self, to: &str, data: &[u8]) -> Result<(), TransportError> {
        let seq = {
            let to_static = self.names.resolve(to)?;
            let mut seqs = self.raw_seqs.lock();
            let counter = seqs.entry(to_static).or_insert(0);
            let seq = *counter;
            *counter += 1;
            seq
        };
        self.send_frame(to, Envelope::new(RAW_SESSION, seq, data))
    }

    fn receive(&self, from: &str) -> Result<Vec<u8>, TransportError> {
        self.receive_frame(RAW_SESSION, from).map(|envelope| envelope.payload.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Counts connect attempts that failed and went into the retry
    /// loop, so `connect_retries_until_peer_binds` can *force* the
    /// retry path instead of hoping a race exercises it.
    pub(super) static FAILED_CONNECT_ATTEMPTS: AtomicU64 = AtomicU64::new(0);

    chorus_core::locations! { Alice, Bob }
    type System = chorus_core::LocationSet!(Alice, Bob);

    fn config() -> TcpConfig<System> {
        let addrs = free_local_addrs(2).unwrap();
        TcpConfigBuilder::new()
            .location(Alice, addrs[0])
            .location(Bob, addrs[1])
            .build::<System>()
            .unwrap()
    }

    #[test]
    fn config_requires_every_location() {
        let addrs = free_local_addrs(1).unwrap();
        let result = TcpConfigBuilder::new().location(Alice, addrs[0]).build::<System>();
        assert_eq!(result.unwrap_err(), vec!["Bob"]);
    }

    #[test]
    fn messages_cross_sockets_in_order() {
        let config = config();
        let a_cfg = config.clone();
        let b_cfg = config;
        let bob = std::thread::spawn(move || {
            let t = TcpTransport::bind(Bob, b_cfg).unwrap();
            let one = t.receive("Alice").unwrap();
            let two = t.receive("Alice").unwrap();
            t.send("Alice", b"ack").unwrap();
            (one, two)
        });
        let alice = TcpTransport::bind(Alice, a_cfg).unwrap();
        alice.send("Bob", b"first").unwrap();
        alice.send("Bob", b"second").unwrap();
        assert_eq!(alice.receive("Bob").unwrap(), b"ack");
        let (one, two) = bob.join().unwrap();
        assert_eq!(one, b"first");
        assert_eq!(two, b"second");
    }

    #[test]
    fn connect_retries_until_peer_binds() {
        let config = config();
        let a_cfg = config.clone();
        let b_cfg = config;
        // Alice starts sending before Bob has bound its listener, and
        // Bob binds only after observing at least one *failed* connect
        // attempt — so the retry path is exercised deterministically,
        // with no wall-clock sleep. (The counter is global across this
        // test binary, so a concurrent test's failed connect could in
        // principle satisfy the gate early; the test then degrades to
        // racing the bind, never to flaking.)
        let before = FAILED_CONNECT_ATTEMPTS.load(Ordering::Relaxed);
        let alice = std::thread::spawn(move || {
            let t = TcpTransport::bind(Alice, a_cfg).unwrap();
            t.send("Bob", b"early").unwrap();
        });
        while FAILED_CONNECT_ATTEMPTS.load(Ordering::Relaxed) == before {
            std::thread::yield_now();
        }
        let bob = TcpTransport::bind(Bob, b_cfg).unwrap();
        assert_eq!(bob.receive("Alice").unwrap(), b"early");
        alice.join().unwrap();
    }

    #[test]
    fn empty_payloads_are_delivered() {
        let config = config();
        let a_cfg = config.clone();
        let b_cfg = config;
        let bob = std::thread::spawn(move || {
            let t = TcpTransport::bind(Bob, b_cfg).unwrap();
            t.receive("Alice").unwrap()
        });
        let alice = TcpTransport::bind(Alice, a_cfg).unwrap();
        alice.send("Bob", b"").unwrap();
        assert_eq!(bob.join().unwrap(), b"");
    }

    #[test]
    fn sessions_demultiplex_on_one_socket() {
        let config = config();
        let a_cfg = config.clone();
        let b_cfg = config;
        let bob = std::thread::spawn(move || {
            let t = TcpTransport::bind(Bob, b_cfg).unwrap();
            // Read the later session first; the earlier one must be intact.
            let s2 = t.receive_frame(2, "Alice").unwrap();
            let s1a = t.receive_frame(1, "Alice").unwrap();
            let s1b = t.receive_frame(1, "Alice").unwrap();
            (s2.payload, s1a.payload, s1b.payload)
        });
        let alice = TcpTransport::bind(Alice, a_cfg).unwrap();
        alice.send_frame("Bob", Envelope::new(1, 0, b"s1-first".to_vec())).unwrap();
        alice.send_frame("Bob", Envelope::new(1, 1, b"s1-second".to_vec())).unwrap();
        alice.send_frame("Bob", Envelope::new(2, 0, b"s2-only".to_vec())).unwrap();
        let (s2, s1a, s1b) = bob.join().unwrap();
        assert_eq!(s2, b"s2-only");
        assert_eq!(s1a, b"s1-first");
        assert_eq!(s1b, b"s1-second");
    }
}
