//! Resilient-link plumbing shared by the TCP transport: tuning knobs,
//! jittered reconnect backoff, link statistics, and the timeout-tolerant
//! frame accumulator both directions read the wire through.
//!
//! The policy lives here; the mechanism (send queues, the link
//! supervisor, replay) lives in `tcp.rs`. Everything is deliberately
//! non-generic so the supervisor and reader threads monomorphize once.

use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hasher};
use std::io::Read;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// A receiver acknowledges after this many newly accepted data frames
/// (sooner on an idle tick), bounding the sender's replay window under
/// load without an ack per frame.
pub(crate) const ACK_EVERY: u32 = 16;

/// Reconnect delays never exceed this, so a peer coming back is noticed
/// promptly even late in a long outage.
pub(crate) const BACKOFF_CAP: Duration = Duration::from_millis(200);

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|v| *v > 0)
        .unwrap_or(default)
}

/// Like [`env_u64`] but zero is a meaningful setting (it disables the
/// knob) rather than "unset".
fn env_u64_or_zero(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

/// Link-layer policy for one TCP endpoint.
///
/// Defaults come from the environment so deployments tune reconnect
/// behavior the same way they tune the watchdog (`CHORUS_WATCHDOG_MS`):
///
/// * `CHORUS_TCP_RETRY_LIMIT` — connection attempts per outage before
///   the link surfaces [`TransportError::LinkDown`]
///   (default 60).
/// * `CHORUS_TCP_RETRY_BASE_MS` — first reconnect delay; doubles per
///   attempt, jittered, capped at 200ms (default 5).
/// * `CHORUS_TCP_HEARTBEAT_MS` — ping cadence on idle established
///   links; a link silent for 3 heartbeats is presumed half-dead and
///   torn down for replay (default 1000).
/// * `CHORUS_TCP_FLUSH_US` — coalescing flush delay in microseconds for
///   resilient links: sends enqueue and a flusher thread writes the
///   whole accumulated batch after at most this long (default 0 —
///   flush inline on every send, which still batches whatever queued
///   behind a contended link lock).
/// * `CHORUS_TCP_RETAIN_MAX` — retention watermark in bytes per link:
///   a sender whose unacknowledged tail reaches this parks until acks
///   prune it, and surfaces
///   [`TransportError::RetentionExceeded`] if the link resolves down
///   (or the watchdog expires) while it waits (default 64 MiB; 0
///   disables the watermark).
///
/// [`TransportError::LinkDown`]: chorus_core::TransportError::LinkDown
/// [`TransportError::RetentionExceeded`]: chorus_core::TransportError::RetentionExceeded
#[derive(Debug, Clone, Copy)]
pub struct LinkTuning {
    /// Connection attempts per outage before the link goes down.
    pub retry_limit: u32,
    /// Base reconnect backoff delay.
    pub retry_base: Duration,
    /// Heartbeat probe cadence on established links.
    pub heartbeat: Duration,
    /// Coalescing window for batched flushes (zero: flush inline).
    pub flush_delay: Duration,
    /// Per-link retention watermark in bytes (zero: unbounded).
    pub retain_max: usize,
    /// Whether links retain, replay, and acknowledge frames. When
    /// false the transport is the plain frame-at-a-time wire (the bench
    /// baseline): a dead connection simply loses whatever was in
    /// flight, and the receiver's link cursor reports the gap loudly.
    pub resilient: bool,
}

/// Default retention watermark: 64 MiB per link.
const RETAIN_MAX_DEFAULT: u64 = 64 * 1024 * 1024;

impl LinkTuning {
    /// Reads the environment-tunable defaults.
    pub fn from_env(resilient: bool) -> Self {
        LinkTuning {
            retry_limit: env_u64("CHORUS_TCP_RETRY_LIMIT", 60).min(u64::from(u32::MAX)) as u32,
            retry_base: Duration::from_millis(env_u64("CHORUS_TCP_RETRY_BASE_MS", 5)),
            heartbeat: Duration::from_millis(env_u64("CHORUS_TCP_HEARTBEAT_MS", 1000)),
            flush_delay: Duration::from_micros(env_u64_or_zero("CHORUS_TCP_FLUSH_US", 0)),
            retain_max: usize::try_from(env_u64_or_zero(
                "CHORUS_TCP_RETAIN_MAX",
                RETAIN_MAX_DEFAULT,
            ))
            .unwrap_or(usize::MAX),
            resilient,
        }
    }

    /// How long a connecting side waits for the receiver's resume
    /// cursor before treating the attempt as failed.
    pub(crate) fn handshake_timeout(&self) -> Duration {
        (self.heartbeat * 2).max(Duration::from_millis(500))
    }

    /// Read-timeout tick for ack readers and receive loops: short
    /// enough that shutdown and pending-ack flushes are prompt.
    pub(crate) fn io_tick(&self) -> Duration {
        (self.heartbeat / 4).clamp(Duration::from_millis(5), Duration::from_millis(100))
    }

    /// Sweep cadence of the link supervisor.
    pub(crate) fn supervisor_tick(&self) -> Duration {
        (self.heartbeat / 4).clamp(Duration::from_millis(5), Duration::from_millis(250))
    }

    /// An established link silent this long is presumed half-dead.
    pub(crate) fn dead_after(&self) -> Duration {
        self.heartbeat * 3
    }
}

/// Exponential backoff with jitter for reconnect attempt `attempt`
/// (1-based): `base * 2^(attempt-1)` capped at [`BACKOFF_CAP`], plus a
/// jitter in `[0, delay/2]`.
///
/// The jitter is derived from a process-random hash of `(salt,
/// attempt)`, so two processes reconnecting to the same peer after a
/// shared outage spread out instead of thundering in lockstep — while
/// within one process the delay sequence stays reproducible enough to
/// reason about in tests.
pub(crate) fn backoff_delay(base: Duration, attempt: u32, salt: u64) -> Duration {
    static JITTER_KEYS: OnceLock<RandomState> = OnceLock::new();
    let exponent = attempt.saturating_sub(1).min(16);
    let delay = base.saturating_mul(1u32 << exponent.min(31)).min(BACKOFF_CAP);
    let mut hasher = JITTER_KEYS.get_or_init(RandomState::new).build_hasher();
    hasher.write_u64(salt);
    hasher.write_u32(attempt);
    let half = delay.as_nanos() as u64 / 2;
    let jitter = if half == 0 { 0 } else { hasher.finish() % (half + 1) };
    delay + Duration::from_nanos(jitter)
}

/// Number of batch-size histogram buckets; see
/// [`TcpLinkStats::batch_histogram`] for the bucket bounds.
pub const BATCH_HIST_BUCKETS: usize = 7;

/// Maps a batch size (frames per vectored flush) to its histogram
/// bucket: 1, 2, 3–4, 5–8, 9–16, 17–64, 65+.
fn batch_bucket(frames: usize) -> usize {
    match frames {
        0 | 1 => 0,
        2 => 1,
        3..=4 => 2,
        5..=8 => 3,
        9..=16 => 4,
        17..=64 => 5,
        _ => 6,
    }
}

/// Lifetime counters for one TCP endpoint's resilient links, shared by
/// the send queues, the supervisor, and the receive loops.
#[derive(Debug, Default)]
pub(crate) struct LinkStats {
    /// Connections successfully re-established after the first.
    pub reconnects: AtomicU64,
    /// Data frames written more than once (the replayed unacked tail).
    pub replayed: AtomicU64,
    /// Received data frames dropped as already-delivered.
    pub duplicates: AtomicU64,
    /// Heartbeat probes written.
    pub heartbeats: AtomicU64,
    /// Links that exhausted their retry budget and went down.
    pub links_down: AtomicU64,
    /// Vectored batch flushes issued.
    pub batches: AtomicU64,
    /// Data frames that travelled inside those batches.
    pub batched_frames: AtomicU64,
    /// Data frames this endpoint's readers accepted into mailboxes
    /// (duplicates excluded) — the receive-side mirror of
    /// `batched_frames`.
    pub deposited: AtomicU64,
    /// Batch-size distribution, bucketed by [`batch_bucket`].
    pub batch_hist: [AtomicU64; BATCH_HIST_BUCKETS],
}

impl LinkStats {
    /// Records one vectored flush of `frames` data frames.
    pub(crate) fn record_batch(&self, frames: usize) {
        if frames == 0 {
            return;
        }
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_frames.fetch_add(frames as u64, Ordering::Relaxed);
        self.batch_hist[batch_bucket(frames)].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> TcpLinkStats {
        let mut batch_histogram = [0u64; BATCH_HIST_BUCKETS];
        for (out, bucket) in batch_histogram.iter_mut().zip(&self.batch_hist) {
            *out = bucket.load(Ordering::Relaxed);
        }
        TcpLinkStats {
            reconnects: self.reconnects.load(Ordering::Relaxed),
            replayed_frames: self.replayed.load(Ordering::Relaxed),
            duplicate_frames: self.duplicates.load(Ordering::Relaxed),
            heartbeats: self.heartbeats.load(Ordering::Relaxed),
            links_down: self.links_down.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_frames: self.batched_frames.load(Ordering::Relaxed),
            deposited_frames: self.deposited.load(Ordering::Relaxed),
            batch_histogram,
        }
    }
}

/// A snapshot of one TCP endpoint's link-layer activity
/// ([`TcpTransport::link_stats`]).
///
/// Chaos tests assert on these to prove injected faults actually bit
/// (reconnects happened, duplicates were dropped) even though sessions
/// observed nothing but latency.
///
/// [`TcpTransport::link_stats`]: crate::TcpTransport::link_stats
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpLinkStats {
    /// Connections successfully re-established after the first.
    pub reconnects: u64,
    /// Data frames written more than once (replayed unacked tail).
    pub replayed_frames: u64,
    /// Received data frames dropped as already-delivered duplicates.
    pub duplicate_frames: u64,
    /// Heartbeat probes written.
    pub heartbeats: u64,
    /// Links that exhausted their retry budget and surfaced `LinkDown`.
    pub links_down: u64,
    /// Vectored batch flushes issued by this endpoint's send queues.
    pub batches: u64,
    /// Data frames that travelled inside those batches.
    pub batched_frames: u64,
    /// Data frames this endpoint accepted into its mailboxes
    /// (duplicates excluded). Tracks delivery into the transport, not
    /// application pops, so a bench can time the data plane itself.
    pub deposited_frames: u64,
    /// Batch-size distribution: flushes of 1, 2, 3–4, 5–8, 9–16,
    /// 17–64, and 65+ frames.
    pub batch_histogram: [u64; BATCH_HIST_BUCKETS],
}

/// Reassembles `u32`-length-prefixed frames from a stream being read
/// with a timeout.
///
/// `read_exact` across a read timeout can consume a partial frame and
/// lose it; this accumulator only ever issues single `read` calls into
/// a growing buffer, so a timeout tick leaves every byte accounted for
/// and framing intact across ticks.
#[derive(Default)]
pub(crate) struct FrameAccumulator {
    buf: Vec<u8>,
    /// Bytes before `start` belong to frames already handed out.
    start: usize,
}

impl FrameAccumulator {
    /// Returns the bounds of the next complete frame body, if buffered.
    fn frame_bounds(&self) -> Option<(usize, usize)> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return None;
        }
        let len = u32::from_le_bytes(avail[..4].try_into().expect("4 bytes")) as usize;
        if avail.len() < 4 + len {
            return None;
        }
        let lo = self.start + 4;
        Some((lo, lo + len))
    }

    /// Hands out the next complete frame body *already buffered*,
    /// without touching the stream — `None` means the next frame (if
    /// any) is still partial. Receivers drain a whole wire burst per
    /// wakeup through this before blocking in [`poll`] again.
    ///
    /// [`poll`]: FrameAccumulator::poll
    pub(crate) fn next_buffered(&mut self) -> Option<&[u8]> {
        let (lo, hi) = self.frame_bounds()?;
        self.start = hi;
        Some(&self.buf[lo..hi])
    }

    /// Returns the next complete frame body, reading from `stream` as
    /// needed. `Ok(None)` is a timeout tick (the stream's read timeout
    /// elapsed with no complete frame); an `Err` is end-of-stream or a
    /// real I/O failure.
    pub(crate) fn poll(&mut self, stream: &mut TcpStream) -> std::io::Result<Option<&[u8]>> {
        loop {
            if let Some((lo, hi)) = self.frame_bounds() {
                self.start = hi;
                return Ok(Some(&self.buf[lo..hi]));
            }
            // Reclaim consumed space before growing the buffer.
            if self.start == self.buf.len() {
                self.buf.clear();
                self.start = 0;
            } else if self.start > 64 * 1024 {
                self.buf.drain(..self.start);
                self.start = 0;
            }
            let mut chunk = [0u8; 16 * 1024];
            match stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection ended",
                    ))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(None)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn backoff_grows_and_caps() {
        let base = Duration::from_millis(5);
        let first = backoff_delay(base, 1, 7);
        assert!(first >= base && first <= base + base / 2, "got {first:?}");
        let late = backoff_delay(base, 30, 7);
        assert!(late >= BACKOFF_CAP, "got {late:?}");
        assert!(late <= BACKOFF_CAP + BACKOFF_CAP / 2, "got {late:?}");
    }

    #[test]
    fn backoff_is_stable_per_attempt_within_a_process() {
        let base = Duration::from_millis(5);
        assert_eq!(backoff_delay(base, 3, 42), backoff_delay(base, 3, 42));
    }

    #[test]
    fn tuning_env_defaults_are_sane() {
        // Whatever the environment says, the parsed values are usable.
        let tuning = LinkTuning::from_env(true);
        assert!(tuning.retry_limit >= 1);
        assert!(tuning.retry_base > Duration::ZERO);
        assert!(tuning.heartbeat > Duration::ZERO);
        assert!(tuning.handshake_timeout() >= Duration::from_millis(500));
        assert!(tuning.dead_after() > tuning.heartbeat);
    }

    #[test]
    fn batch_buckets_partition_every_size() {
        assert_eq!(batch_bucket(1), 0);
        assert_eq!(batch_bucket(2), 1);
        assert_eq!(batch_bucket(4), 2);
        assert_eq!(batch_bucket(8), 3);
        assert_eq!(batch_bucket(16), 4);
        assert_eq!(batch_bucket(64), 5);
        assert_eq!(batch_bucket(65), 6);
        assert_eq!(batch_bucket(100_000), 6);
    }

    #[test]
    fn accumulator_drains_a_buffered_burst_without_reading() {
        // Three frames land in one read; `poll` hands out the first and
        // `next_buffered` drains the rest without another syscall.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (mut rx, _) = listener.accept().unwrap();
        rx.set_read_timeout(Some(Duration::from_millis(100))).unwrap();

        let frames: Vec<Vec<u8>> = vec![b"one".to_vec(), b"".to_vec(), b"three".to_vec()];
        let mut wire = Vec::new();
        for frame in &frames {
            wire.extend_from_slice(&(frame.len() as u32).to_le_bytes());
            wire.extend_from_slice(frame);
        }
        tx.write_all(&wire).unwrap();
        tx.flush().unwrap();

        let mut acc = FrameAccumulator::default();
        let mut got = Vec::new();
        loop {
            match acc.poll(&mut rx).unwrap() {
                Some(body) => got.push(body.to_vec()),
                None => continue,
            }
            while let Some(body) = acc.next_buffered() {
                got.push(body.to_vec());
            }
            if got.len() == frames.len() {
                break;
            }
        }
        assert_eq!(got, frames);
        assert!(acc.next_buffered().is_none(), "the burst is fully drained");
    }

    #[test]
    fn accumulator_reassembles_across_arbitrary_segmentation() {
        // A real loopback socket pair, frames dripped in odd chunks.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (mut rx, _) = listener.accept().unwrap();
        rx.set_read_timeout(Some(Duration::from_millis(10))).unwrap();

        let frames: Vec<Vec<u8>> = vec![b"".to_vec(), b"ab".to_vec(), vec![7u8; 5000]];
        let mut wire = Vec::new();
        for frame in &frames {
            wire.extend_from_slice(&(frame.len() as u32).to_le_bytes());
            wire.extend_from_slice(frame);
        }
        let writer = std::thread::spawn(move || {
            for chunk in wire.chunks(3) {
                tx.write_all(chunk).unwrap();
                tx.flush().unwrap();
            }
            tx
        });

        let mut acc = FrameAccumulator::default();
        let mut got = Vec::new();
        while got.len() < frames.len() {
            // A `None` is a timeout tick mid-frame: keep accumulating.
            if let Some(body) = acc.poll(&mut rx).unwrap() {
                got.push(body.to_vec());
            }
        }
        assert_eq!(got, frames);
        drop(writer.join().unwrap());
        // End-of-stream surfaces as an error, not a tick.
        assert!(acc.poll(&mut rx).is_err());
    }
}
