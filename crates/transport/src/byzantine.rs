//! Byzantine *sender* behaviors, modeled as transport adapters.
//!
//! The simulated network ([`SimTransport`](crate::SimTransport)) can
//! corrupt or silence links, but some Byzantine faults are properties
//! of a *participant*, not a link — chief among them **equivocation**:
//! one logical send that delivers different payloads to different
//! receivers. A network cannot produce that fault (it never invents
//! bytes per-destination); a lying process can, by simply encoding a
//! different value for each peer.
//!
//! [`Equivocator`] wraps any [`SessionTransport`] and tampers with the
//! frames a chosen set of victim receivers see, deterministically from
//! a seed. Wrapping the transport (rather than patching the protocol)
//! means the *entire* stack above — sessions, layers, choreographies —
//! runs unmodified, exactly as it would under a genuinely compromised
//! participant, and the same seed replays the same equivocation
//! bit-for-bit.

use chorus_core::{
    ChoreographyLocation, LocationSet, MailboxWaker, SessionId, SessionTransport, TransportError,
};
use chorus_wire::{Bytes, Envelope};

/// A transport adapter that makes its owner equivocate: frames sent to
/// a *victim* receiver have one payload bit flipped (chosen
/// deterministically from `seed`, the destination, and the frame's
/// session/seq identity), while every other receiver sees the honest
/// payload. From the receivers' point of view the sender has told two
/// different stories about the same logical value.
///
/// All receive-side methods delegate untouched: an equivocator hears
/// perfectly well, it just lies when it speaks.
pub struct Equivocator<T> {
    inner: T,
    seed: u64,
    victims: Vec<&'static str>,
}

impl<T> Equivocator<T> {
    /// Wraps `inner` so that every frame sent to a location in
    /// `victims` is deterministically tampered with under `seed`.
    pub fn new(inner: T, seed: u64, victims: Vec<&'static str>) -> Self {
        Equivocator { inner, seed, victims }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The deterministic tamper position for a frame to `to`:
    /// `(byte, bit)` of the payload to flip. Stateless in everything
    /// but the frame's identity, so replays agree.
    fn tamper_position(&self, to: &str, session: SessionId, seq: u64, len: usize) -> (usize, u8) {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.seed.rotate_left(29);
        for &b in to.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        h ^= session;
        h = h.wrapping_mul(PRIME);
        h ^= seq;
        h = h.wrapping_mul(PRIME);
        ((h % len as u64) as usize, (h >> 32) as u8 & 7)
    }
}

impl<L, Target, T> SessionTransport<L, Target> for Equivocator<T>
where
    L: LocationSet,
    Target: ChoreographyLocation,
    T: SessionTransport<L, Target>,
{
    fn locations(&self) -> Vec<&'static str> {
        self.inner.locations()
    }

    fn send_frame(&self, to: &str, mut frame: Envelope) -> Result<(), TransportError> {
        if !frame.payload.is_empty() && self.victims.contains(&to) {
            let (byte, bit) =
                self.tamper_position(to, frame.session, frame.seq, frame.payload.len());
            // Copy before flipping: the payload `Bytes` may be shared
            // with the honest copies a multicast sends elsewhere.
            let mut tampered = frame.payload.to_vec();
            tampered[byte] ^= 1 << bit;
            frame.payload = Bytes::from(tampered);
        }
        self.inner.send_frame(to, frame)
    }

    fn receive_frame(&self, session: SessionId, from: &str) -> Result<Envelope, TransportError> {
        self.inner.receive_frame(session, from)
    }

    fn try_receive_frame(
        &self,
        session: SessionId,
        from: &str,
    ) -> Result<Option<Envelope>, TransportError> {
        self.inner.try_receive_frame(session, from)
    }

    fn register_waker(
        &self,
        session: SessionId,
        from: &str,
        waker: MailboxWaker,
    ) -> Result<bool, TransportError> {
        self.inner.register_waker(session, from, waker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultPlan, SimNet, SimTransport};

    chorus_core::locations! { Mallory, Victim, Honest }
    type System = chorus_core::LocationSet!(Mallory, Victim, Honest);

    fn net() -> SimNet<System> {
        SimNet::<System>::new(FaultPlan::ideal())
    }

    #[test]
    fn equivocator_lies_to_victims_only() {
        let fabric = net();
        let mallory =
            Equivocator::new(SimTransport::new(Mallory, fabric.clone()), 7, vec!["Victim"]);
        let victim = SimTransport::new(Victim, fabric.clone());
        let honest = SimTransport::new(Honest, fabric.clone());

        let payload = b"the-agreed-value".to_vec();
        mallory.send_frame("Victim", Envelope::new(1, 0, payload.clone())).unwrap();
        mallory.send_frame("Honest", Envelope::new(1, 0, payload.clone())).unwrap();

        let lied = victim.receive_frame(1, "Mallory").unwrap();
        let told = honest.receive_frame(1, "Mallory").unwrap();
        assert_eq!(told.payload.as_ref(), payload.as_slice(), "non-victims hear the truth");
        assert_ne!(lied.payload.as_ref(), payload.as_slice(), "victims hear a different story");
        let flipped: u32 =
            lied.payload.iter().zip(payload.iter()).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit of difference");
    }

    #[test]
    fn equivocation_is_seed_deterministic() {
        let run = |seed| {
            let fabric = net();
            let mallory =
                Equivocator::new(SimTransport::new(Mallory, fabric.clone()), seed, vec!["Victim"]);
            let victim = SimTransport::new(Victim, fabric.clone());
            mallory.send_frame("Victim", Envelope::new(1, 0, b"same-input".to_vec())).unwrap();
            victim.receive_frame(1, "Mallory").unwrap().payload.to_vec()
        };
        assert_eq!(run(9), run(9), "same seed, same lie");
        assert_ne!(run(9), run(10), "different seeds lie differently");
    }
}
