//! Deterministic simulation transport: virtual time, seeded faults,
//! reproducible delivery schedules.
//!
//! [`SimTransport`] is a [`SessionTransport`] whose links run over a
//! discrete-event model of a hostile network instead of queues or
//! sockets. Every frame a sender offers is assigned a delivery schedule
//! — latency, drops (with retransmission), duplication, partition
//! holds — computed *statelessly* from the [`FaultPlan`] seed, the link
//! identity, and the frame's index on that link. Two runs with the same
//! seed and the same per-link send order therefore produce bit-for-bit
//! identical schedules, no matter how the OS schedules the participant
//! threads: the randomness is keyed by *what* is sent, never by *when*
//! a thread happens to run.
//!
//! The model in one paragraph: time is virtual and per-link — offering
//! the `k`-th frame on a link happens at tick `k`, and the frame's
//! arrival tick is `k + latency + drops·rto`, pushed past any partition
//! window that covers tick `k`. Arrived frames pass through a per-session
//! reorder stage that re-establishes the per-(session, sender) FIFO
//! order the [`SessionTransport`] contract promises (exactly as TCP
//! re-establishes a reliable stream over a lossy, reordering packet
//! layer), discarding duplicates. Receivers are ordinary blocked
//! threads parked on a [`chorus_core::park::WaitQueue`]; a receiver that
//! would block first *advances virtual time* by draining the link's
//! in-flight set, so delivery never waits on a wall clock. A watchdog
//! deadline bounds every park, so a genuinely stuck schedule surfaces
//! as an error instead of hanging CI.
//!
//! Failure modes are injected, never emergent: a sender-side sequence
//! violation kills the link for every session behind it (mirroring
//! [`LocalTransport`](crate::LocalTransport)), and a
//! [`Poison`] plan withholds every frame from step `N` on, so tests can
//! pin down how choreographies observe a dead link.
//!
//! Beyond the *fail-stop* faults above, the plan also carries
//! **adversarial** modes that model a Byzantine participant rather than
//! a bad network: [`Corruption`] flips payload bits that survive
//! framing (caught only by the receiver's decode/validation), and
//! [`Silence`] drops every frame on a link forever (surfaced eagerly as
//! a protocol error naming the edge). Both derive statelessly from the
//! seed, exactly like the fail-stop faults, and neither perturbs the
//! delivery schedule the same seed produces with the modes off.
//! Equivocation — one logical send, different payloads per receiver —
//! is a *sender* behavior, so it lives in the
//! [`Equivocator`](crate::Equivocator) adapter, not the plan.
//!
//! On failure, [`SimNet::schedule_dump`] renders the full per-link
//! schedule — sends with their computed arrivals, then deliveries in
//! release order — as text; CI jobs attach it as an artifact so a
//! failing seed replays locally with nothing but the seed.

use chorus_core::park::{self, WaitQueue};
use chorus_core::{
    ChoreographyLocation, InternedNames, LocationSet, MailboxWaker, SequenceTracker, SessionId,
    SessionTransport, Transport, TransportError, RAW_SESSION,
};
use chorus_wire::Envelope;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::marker::PhantomData;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A frame is retransmitted at most this many times; past that the
/// "network" relents and delivers. Keeps arrival ticks finite even with
/// extreme drop probabilities.
const MAX_RETRANSMITS: u64 = 12;

/// One partition window: frames offered on a matching link while
/// `start <= tick < heal` are held and arrive only after the partition
/// heals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Sender the window applies to; `None` matches every sender.
    pub from: Option<&'static str>,
    /// Receiver the window applies to; `None` matches every receiver.
    pub to: Option<&'static str>,
    /// First link tick the partition covers.
    pub start: u64,
    /// First link tick after the heal; must be `> start` for the window
    /// to have any effect.
    pub heal: u64,
}

impl Partition {
    /// A window cutting every link.
    pub fn everywhere(start: u64, heal: u64) -> Self {
        Partition { from: None, to: None, start, heal }
    }

    /// A window cutting one directed link.
    pub fn link(from: &'static str, to: &'static str, start: u64, heal: u64) -> Self {
        Partition { from: Some(from), to: Some(to), start, heal }
    }

    fn matches(&self, from: &'static str, to: &'static str) -> bool {
        self.from.is_none_or(|f| f == from) && self.to.is_none_or(|t| t == to)
    }
}

/// Kills a link after `after` frames: every frame from step `after` on
/// is withheld, and receivers of the link observe a protocol error once
/// the earlier frames are drained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Poison {
    /// Sender the poison applies to; `None` matches every sender.
    pub from: Option<&'static str>,
    /// Receiver the poison applies to; `None` matches every receiver.
    pub to: Option<&'static str>,
    /// Frame index at which the link dies.
    pub after: u64,
}

impl Poison {
    /// Poisons one directed link after `after` frames.
    pub fn link(from: &'static str, to: &'static str, after: u64) -> Self {
        Poison { from: Some(from), to: Some(to), after }
    }

    fn matches(&self, from: &'static str, to: &'static str) -> bool {
        self.from.is_none_or(|f| f == from) && self.to.is_none_or(|t| t == to)
    }
}

/// Adversarial payload corruption on matching links: each frame's
/// payload has one bit flipped with `probability`, chosen statelessly
/// from the plan seed. The frame still *frames* correctly (header,
/// session, seq untouched), so the corruption survives the transport
/// layer and must be caught by the receiver's decode or validation
/// step — exactly the failure a Byzantine sender (or a tampering
/// network) produces.
#[derive(Debug, Clone, PartialEq)]
pub struct Corruption {
    /// Sender the corruption applies to; `None` matches every sender.
    pub from: Option<&'static str>,
    /// Receiver the corruption applies to; `None` matches every receiver.
    pub to: Option<&'static str>,
    /// Per-frame probability of a bit-flip, in `[0, 1]`.
    pub probability: f64,
}

impl Corruption {
    /// Corrupts one directed link with the given per-frame probability.
    pub fn link(from: &'static str, to: &'static str, probability: f64) -> Self {
        Corruption { from: Some(from), to: Some(to), probability }
    }

    /// Corrupts every link with the given per-frame probability.
    pub fn everywhere(probability: f64) -> Self {
        Corruption { from: None, to: None, probability }
    }

    fn matches(&self, from: &'static str, to: &'static str) -> bool {
        self.from.is_none_or(|f| f == from) && self.to.is_none_or(|t| t == to)
    }
}

/// Selective silence: every frame offered on a matching link is dropped
/// forever — the Byzantine "I'll just never talk to *you*" fault, as
/// opposed to a [`Partition`] (which heals) or a [`Poison`] (which
/// fires after N frames). Receivers observe an immediate
/// [`TransportError::Protocol`] naming the silenced edge instead of
/// burning a wall-clock watchdog, because the silence is a plan-level
/// fact the sim knows from tick zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Silence {
    /// Sender the silence applies to; `None` matches every sender.
    pub from: Option<&'static str>,
    /// Receiver the silence applies to; `None` matches every receiver.
    pub to: Option<&'static str>,
}

impl Silence {
    /// Silences one directed link forever.
    pub fn link(from: &'static str, to: &'static str) -> Self {
        Silence { from: Some(from), to: Some(to) }
    }

    fn matches(&self, from: &'static str, to: &'static str) -> bool {
        self.from.is_none_or(|f| f == from) && self.to.is_none_or(|t| t == to)
    }
}

/// The seeded description of how the simulated network misbehaves.
///
/// All probabilities are per *transmission attempt*; a dropped frame is
/// retransmitted after [`rto`](FaultPlan::rto) ticks until it gets
/// through (the sim is a reliable transport over a lossy network, like
/// TCP over IP), so drops delay but never lose messages — the paper's
/// guarantees assume reliable communication (§4.1), and the point of
/// the sim is to stress *schedules*, not to break the contract the
/// choreography was compiled against.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed every per-frame decision derives from.
    pub seed: u64,
    /// Minimum per-hop latency in ticks (clamped to ≥ 1).
    pub base_latency: u64,
    /// Extra uniform latency in `[0, jitter]` ticks; nonzero jitter is
    /// what reorders frames relative to each other.
    pub jitter: u64,
    /// Per-attempt drop probability in `[0, 1]`.
    pub drop: f64,
    /// Probability a delivered frame arrives a second time.
    pub duplicate: f64,
    /// Retransmission timeout in ticks charged per drop.
    pub rto: u64,
    /// Partition windows.
    pub partitions: Vec<Partition>,
    /// Optional link kill-switch.
    pub poison: Option<Poison>,
    /// Adversarial payload corruption rules.
    pub corruption: Vec<Corruption>,
    /// Links silenced forever.
    pub silence: Vec<Silence>,
    /// Real-time bound on any single blocked receive; a stalled
    /// schedule surfaces as [`TransportError::Protocol`] instead of a
    /// hang.
    pub watchdog: Duration,
}

impl FaultPlan {
    /// A perfectly behaved network: unit latency, no faults.
    pub fn ideal() -> Self {
        FaultPlan {
            seed: 0,
            base_latency: 1,
            jitter: 0,
            drop: 0.0,
            duplicate: 0.0,
            rto: 4,
            partitions: Vec::new(),
            poison: None,
            corruption: Vec::new(),
            silence: Vec::new(),
            watchdog: park::default_watchdog(),
        }
    }

    /// A hostile network whose parameters (latency spread, drop and
    /// duplication rates, an optional early partition) are themselves
    /// derived from `seed`, so a seed *matrix* sweeps qualitatively
    /// different schedules, not just different dice rolls of one
    /// schedule shape.
    pub fn chaos(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED);
        let partitions = if rng.gen_bool(0.5) {
            let start = rng.gen_range(0u64..32);
            let len = 1 + rng.gen_range(0u64..32);
            vec![Partition::everywhere(start, start + len)]
        } else {
            Vec::new()
        };
        FaultPlan {
            seed,
            base_latency: 1 + rng.gen_range(0u64..3),
            jitter: rng.gen_range(0u64..12),
            drop: rng.gen_range(0u64..30) as f64 / 100.0,
            duplicate: rng.gen_range(0u64..20) as f64 / 100.0,
            rto: 2 + rng.gen_range(0u64..8),
            partitions,
            poison: None,
            // Adversarial modes are opt-in (with_corruption /
            // with_silence / the byzantine matrix), never drawn by
            // chaos itself: chaos seeds stress *schedules* of an
            // honest network, and keeping these off preserves every
            // existing seed's schedule bit-for-bit.
            corruption: Vec::new(),
            silence: Vec::new(),
            watchdog: park::default_watchdog(),
        }
    }

    /// Replaces the seed, keeping the other knobs.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-attempt drop probability.
    pub fn with_drop(mut self, drop: f64) -> Self {
        self.drop = drop;
        self
    }

    /// Sets the duplication probability.
    pub fn with_duplicate(mut self, duplicate: f64) -> Self {
        self.duplicate = duplicate;
        self
    }

    /// Sets the latency jitter in ticks.
    pub fn with_jitter(mut self, jitter: u64) -> Self {
        self.jitter = jitter;
        self
    }

    /// Adds a partition window.
    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partitions.push(partition);
        self
    }

    /// Installs a link kill-switch.
    pub fn with_poison(mut self, poison: Poison) -> Self {
        self.poison = Some(poison);
        self
    }

    /// Adds an adversarial corruption rule.
    pub fn with_corruption(mut self, corruption: Corruption) -> Self {
        self.corruption.push(corruption);
        self
    }

    /// Silences a link forever.
    pub fn with_silence(mut self, silence: Silence) -> Self {
        self.silence.push(silence);
        self
    }

    /// Sets the receive watchdog.
    pub fn with_watchdog(mut self, watchdog: Duration) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// The deterministic schedule for frame `k` on `from → to`:
    /// `(arrival tick, drops, held by a partition, duplicate arrival)`.
    ///
    /// Pure in everything but the plan: repeated calls agree, and no
    /// call depends on any other frame's schedule.
    fn schedule(&self, from: &'static str, to: &'static str, k: u64) -> FrameSchedule {
        let mut rng = StdRng::seed_from_u64(frame_seed(self.seed, from, to, k));
        let mut drops = 0u64;
        while drops < MAX_RETRANSMITS && self.drop > 0.0 && rng.gen_bool(self.drop) {
            drops += 1;
        }
        let jit = if self.jitter > 0 { rng.gen_range(0..=self.jitter) } else { 0 };
        let mut arrival = k + self.base_latency.max(1) + jit + drops * self.rto.max(1);
        let mut held = false;
        for partition in &self.partitions {
            if partition.matches(from, to) && partition.start <= k && k < partition.heal {
                held = true;
                arrival = arrival.max(partition.heal + self.base_latency.max(1));
            }
        }
        let duplicate = if self.duplicate > 0.0 && rng.gen_bool(self.duplicate) {
            let extra = if self.jitter > 0 { rng.gen_range(0..=self.jitter) } else { 0 };
            Some(arrival + 1 + extra)
        } else {
            None
        };
        FrameSchedule { arrival, drops, held, duplicate }
    }

    /// Whether the plan silences `from → to` forever.
    fn silenced(&self, from: &'static str, to: &'static str) -> bool {
        self.silence.iter().any(|s| s.matches(from, to))
    }

    /// The deterministic corruption decision for frame `k` on
    /// `from → to`: `Some((byte, bit))` to flip, `None` to pass clean.
    ///
    /// Drawn from a *separate* stateless generator (the frame seed,
    /// rotated and re-salted), never from [`schedule`](Self::schedule)'s
    /// — so installing a corruption rule cannot perturb the delivery
    /// schedule an existing seed produces.
    fn corrupt_bit(
        &self,
        from: &'static str,
        to: &'static str,
        k: u64,
        payload_len: usize,
    ) -> Option<(usize, u8)> {
        if payload_len == 0 {
            return None;
        }
        let probability = self
            .corruption
            .iter()
            .filter(|c| c.matches(from, to))
            .map(|c| c.probability)
            .fold(0.0f64, f64::max);
        if probability <= 0.0 {
            return None;
        }
        let mut rng =
            StdRng::seed_from_u64(frame_seed(self.seed, from, to, k).rotate_left(17) ^ 0xC0FF);
        if !rng.gen_bool(probability.min(1.0)) {
            return None;
        }
        let byte = rng.gen_range(0..payload_len as u64) as usize;
        let bit = rng.gen_range(0..8u64) as u8;
        Some((byte, bit))
    }
}

struct FrameSchedule {
    arrival: u64,
    drops: u64,
    held: bool,
    duplicate: Option<u64>,
}

/// FNV-1a over the link identity and frame index, folded with the plan
/// seed: the stateless key all per-frame randomness derives from.
fn frame_seed(seed: u64, from: &str, to: &str, k: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    fn eat(mut h: u64, bytes: &[u8]) -> u64 {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        h
    }
    let mut h = eat(OFFSET, &seed.to_le_bytes());
    h = eat(h, from.as_bytes());
    h = eat(h, &[0xFF]);
    h = eat(h, to.as_bytes());
    h = eat(h, &[0xFF]);
    eat(h, &k.to_le_bytes())
}

/// What happened to one frame, as recorded in the schedule log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEventKind {
    /// The frame was offered and scheduled.
    Sent {
        /// Transmission attempts lost before the one that arrived.
        drops: u64,
        /// Whether a partition window held the frame.
        held: bool,
        /// Whether a duplicate arrival was scheduled.
        duplicated: bool,
    },
    /// The frame was withheld (dead or poisoned link) and will never
    /// arrive.
    Withheld,
    /// The frame was released to its session mailbox, in FIFO order.
    Delivered,
    /// A duplicate arrival was discarded by the reorder stage.
    DuplicateDropped,
    /// An adversarial [`Corruption`] rule flipped one payload bit
    /// before the frame was scheduled (logged in addition to `Sent`).
    Corrupted {
        /// Payload byte index that was flipped.
        byte: u64,
        /// Bit within that byte.
        bit: u8,
    },
    /// A [`Silence`] rule dropped the frame forever; it was never
    /// scheduled.
    Silenced,
}

/// One entry of a link's schedule log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimEvent {
    /// Sending location.
    pub from: &'static str,
    /// Receiving location.
    pub to: &'static str,
    /// The frame's index on its link (also its send tick).
    pub frame: u64,
    /// Session the frame belongs to.
    pub session: SessionId,
    /// Per-(session, sender) sequence number.
    pub seq: u64,
    /// Scheduled arrival tick (0 for withheld frames).
    pub arrival: u64,
    /// What happened.
    pub kind: SimEventKind,
}

/// One scheduled arrival waiting in a link's in-flight set, ordered by
/// `(arrival, uid)` so draining is a deterministic total order.
struct Flight {
    arrival: u64,
    uid: u64,
    frame: u64,
    env: Envelope,
}

impl PartialEq for Flight {
    fn eq(&self, other: &Self) -> bool {
        (self.arrival, self.uid) == (other.arrival, other.uid)
    }
}
impl Eq for Flight {}
impl PartialOrd for Flight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Flight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.arrival, self.uid).cmp(&(other.arrival, other.uid))
    }
}

/// Per-session reorder state: re-establishes the FIFO stream out of the
/// arrival order.
#[derive(Default)]
struct SessionStream {
    next_seq: u64,
    /// Out-of-order arrivals by seq: `(frame index, arrival tick, frame)`.
    pending: BTreeMap<u64, (u64, u64, Envelope)>,
    ready: VecDeque<Envelope>,
}

/// One directed link's whole state.
#[derive(Default)]
struct SimLink {
    /// Frames offered so far; the next frame's index and send tick.
    sent: u64,
    /// Monotonic tie-break for equal arrival ticks.
    next_uid: u64,
    /// Scheduled arrivals not yet drained.
    in_flight: std::collections::BinaryHeap<Reverse<Flight>>,
    /// Link-local virtual time: the latest arrival tick drained.
    now: u64,
    /// Frame indices already admitted once (duplicate filter).
    seen: HashSet<u64>,
    /// Per-session reorder stages.
    streams: HashMap<SessionId, SessionStream>,
    /// Sender-side stream validation; a violation kills the link.
    sequences: SequenceTracker,
    /// Set when a sequence violation killed the link.
    dead: Option<String>,
    /// Set when the poison plan fired, to the poison step.
    poisoned: Option<u64>,
    /// Readiness wakers parked by the pooled session runtime. Whether a
    /// given session is ready is only knowable after *draining* the
    /// in-flight set (which only a receiver may do — draining advances
    /// virtual time in the deterministic `(arrival, uid)` order), so
    /// every waker fires on any send or link-state change and the woken
    /// session re-polls; spurious wakes are harmless by contract.
    wakers: HashMap<SessionId, MailboxWaker>,
    /// Send-side schedule log, in frame order.
    sends: Vec<SimEvent>,
    /// Delivery log, in raw drain order. Drains race sends in real
    /// time, so this order is timing-dependent; [`SimNet::events`] and
    /// [`SimNet::schedule_dump`] re-sort it into the deterministic
    /// virtual-time order `(arrival, frame)` before exposing it.
    deliveries: Vec<SimEvent>,
}

impl SimLink {
    /// Drains the earliest in-flight arrival into its reorder stage,
    /// advancing link-virtual time and logging the outcome.
    fn advance(&mut self, from: &'static str, to: &'static str) {
        let Some(Reverse(flight)) = self.in_flight.pop() else { return };
        self.now = self.now.max(flight.arrival);
        let session = flight.env.session;
        let seq = flight.env.seq;
        if !self.seen.insert(flight.frame) {
            self.deliveries.push(SimEvent {
                from,
                to,
                frame: flight.frame,
                session,
                seq,
                arrival: flight.arrival,
                kind: SimEventKind::DuplicateDropped,
            });
            return;
        }
        let stream = self.streams.entry(session).or_default();
        stream.pending.insert(seq, (flight.frame, flight.arrival, flight.env));
        loop {
            if let Some((frame, arrival, env)) = stream.pending.remove(&stream.next_seq) {
                self.deliveries.push(SimEvent {
                    from,
                    to,
                    frame,
                    session,
                    seq: env.seq,
                    arrival,
                    kind: SimEventKind::Delivered,
                });
                stream.ready.push_back(env);
                stream.next_seq += 1;
                continue;
            }
            // A buffered seq 0 while expecting a later one marks a fresh
            // run reusing the session id (sequence restart, the same
            // convention `SequenceTracker` accepts). Sequential runs
            // never overlap, so this can only be a restart.
            if stream.next_seq > 0 && stream.pending.first_key_value().is_some_and(|(s, _)| *s == 0)
            {
                stream.next_seq = 0;
                continue;
            }
            break;
        }
    }
}

struct SimShared {
    plan: FaultPlan,
    links: HashMap<(&'static str, &'static str), WaitQueue<SimLink>>,
    /// Frames handed to receivers, across all links.
    received: Mutex<u64>,
}

/// The shared simulated network connecting every ordered pair of
/// locations in `L`. Clone it into each participant and wrap each clone
/// in a [`SimTransport`], exactly like
/// [`LocalTransportChannel`](crate::LocalTransportChannel).
pub struct SimNet<L: LocationSet> {
    shared: Arc<SimShared>,
    system: PhantomData<L>,
}

impl<L: LocationSet> Clone for SimNet<L> {
    fn clone(&self) -> Self {
        SimNet { shared: Arc::clone(&self.shared), system: PhantomData }
    }
}

impl<L: LocationSet> SimNet<L> {
    /// Creates the simulated fabric for census `L` under `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let names = L::names();
        let mut links = HashMap::new();
        for from in &names {
            for to in &names {
                if from != to {
                    links.insert((*from, *to), WaitQueue::new(SimLink::default()));
                }
            }
        }
        SimNet {
            shared: Arc::new(SimShared { plan, links, received: Mutex::new(0) }),
            system: PhantomData,
        }
    }

    /// The plan this net runs under.
    pub fn plan(&self) -> &FaultPlan {
        &self.shared.plan
    }

    /// The current virtual time: the maximum arrival tick any link has
    /// drained.
    pub fn virtual_now(&self) -> u64 {
        self.sorted_links().map(|(_, wq)| wq.lock().now).max().unwrap_or(0)
    }

    /// Frames handed to receivers so far, across all links.
    pub fn messages_received(&self) -> u64 {
        *self.shared.received.lock().expect("sim counters poisoned")
    }

    /// The full schedule log, link by link in name order: each link's
    /// sends in frame order, then its deliveries in **virtual-time
    /// order** `(arrival, frame)`. Deliveries are recorded as receivers
    /// drain the in-flight set, and drains race sends in real time — so
    /// the raw recording order is timing-dependent, but the sorted
    /// view depends only on the (deterministic) per-frame schedule.
    /// Every entry is therefore bit-for-bit reproducible for a fixed
    /// seed and per-link send order.
    ///
    /// Reading the log **finalizes** each link: arrivals still in
    /// flight (scheduled but not yet demanded by any receiver — e.g. a
    /// trailing duplicate) are drained first, so the log covers every
    /// scheduled flight exactly once no matter where receivers happened
    /// to stop. Call it after the run completes.
    pub fn events(&self) -> Vec<SimEvent> {
        let mut out = Vec::new();
        for (key, wq) in self.sorted_links() {
            let mut link = wq.lock();
            while !link.in_flight.is_empty() {
                link.advance(key.0, key.1);
            }
            out.extend(link.sends.iter().cloned());
            let mut deliveries = link.deliveries.clone();
            // A frame's Delivered always precedes its DuplicateDropped
            // (the duplicate is scheduled strictly later), so
            // (arrival, frame) is a total order over a link's
            // deliveries.
            deliveries.sort_by_key(|e| (e.arrival, e.frame));
            out.extend(deliveries);
        }
        out
    }

    /// Renders [`events`](Self::events) as replayable text — the
    /// artifact a failing CI seed dumps so the schedule can be eyeballed
    /// and diffed locally.
    pub fn schedule_dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# sim schedule (seed {})", self.shared.plan.seed);
        for (key, wq) in self.sorted_links() {
            let mut link = wq.lock();
            // Finalize, exactly as `events` does.
            while !link.in_flight.is_empty() {
                link.advance(key.0, key.1);
            }
            if link.sends.is_empty() && link.deliveries.is_empty() {
                continue;
            }
            let _ = writeln!(out, "== {} -> {}", key.0, key.1);
            // Same ordering rule as `events`: sends in frame order,
            // deliveries in deterministic virtual-time order.
            let mut deliveries = link.deliveries.clone();
            deliveries.sort_by_key(|e| (e.arrival, e.frame));
            for e in link.sends.iter().chain(deliveries.iter()) {
                let kind = match e.kind {
                    SimEventKind::Sent { drops, held, duplicated } => format!(
                        "sent     arrival={} drops={drops} held={held} dup={duplicated}",
                        e.arrival
                    ),
                    SimEventKind::Withheld => "withheld".to_string(),
                    SimEventKind::Delivered => format!("deliver  arrival={}", e.arrival),
                    SimEventKind::DuplicateDropped => format!("dupdrop  arrival={}", e.arrival),
                    SimEventKind::Corrupted { byte, bit } => {
                        format!("corrupt  byte={byte} bit={bit}")
                    }
                    SimEventKind::Silenced => "silenced".to_string(),
                };
                let _ = writeln!(
                    out,
                    "frame={:<5} session={:<4} seq={:<5} {kind}",
                    e.frame, e.session, e.seq
                );
            }
        }
        out
    }

    /// The delivery half of the log as [`TraceEvent`](crate::TraceEvent)s
    /// (sends as `Direction::Send`, deliveries as `Direction::Receive`),
    /// so the sim's schedule plugs into the same assertions the
    /// [`Trace`](crate::Trace) layer supports.
    pub fn trace_events(&self) -> Vec<crate::TraceEvent> {
        self.events()
            .into_iter()
            .filter_map(|e| {
                let direction = match e.kind {
                    SimEventKind::Sent { .. } => crate::Direction::Send,
                    SimEventKind::Delivered => crate::Direction::Receive,
                    SimEventKind::Withheld
                    | SimEventKind::DuplicateDropped
                    | SimEventKind::Corrupted { .. }
                    | SimEventKind::Silenced => return None,
                };
                Some(crate::TraceEvent {
                    direction,
                    session: e.session,
                    seq: e.seq,
                    from: e.from.to_string(),
                    to: e.to.to_string(),
                    bytes: 0,
                })
            })
            .collect()
    }

    fn sorted_links(
        &self,
    ) -> impl Iterator<Item = (&(&'static str, &'static str), &WaitQueue<SimLink>)> + '_ {
        let mut keys: Vec<_> = self.shared.links.iter().collect();
        keys.sort_by_key(|(k, _)| **k);
        keys.into_iter()
    }
}

/// One participant's endpoint of a [`SimNet`].
pub struct SimTransport<L: LocationSet, Target: ChoreographyLocation> {
    net: SimNet<L>,
    /// The census, resolved once so per-message validation works over
    /// interned names without allocating.
    names: InternedNames,
    /// Sequence counters for the raw (sessionless) compatibility path.
    raw_seqs: Mutex<HashMap<&'static str, u64>>,
    target: PhantomData<Target>,
}

impl<L: LocationSet, Target: ChoreographyLocation> SimTransport<L, Target> {
    /// Creates `target`'s endpoint over the simulated fabric.
    pub fn new(target: Target, net: SimNet<L>) -> Self {
        let _ = target;
        SimTransport {
            net,
            names: InternedNames::of::<L>(),
            raw_seqs: Mutex::new(HashMap::new()),
            target: PhantomData,
        }
    }

    /// The shared net, for schedule inspection.
    pub fn net(&self) -> &SimNet<L> {
        &self.net
    }

    fn link(
        &self,
        from: &'static str,
        to: &'static str,
    ) -> Result<&WaitQueue<SimLink>, TransportError> {
        self.net.shared.links.get(&(from, to)).ok_or_else(|| {
            TransportError::UnknownLocation(if from == Target::NAME {
                to.to_string()
            } else {
                from.to_string()
            })
        })
    }
}

impl<L: LocationSet, Target: ChoreographyLocation> SessionTransport<L, Target>
    for SimTransport<L, Target>
{
    fn send_frame(&self, to: &str, mut frame: Envelope) -> Result<(), TransportError> {
        let to = self.names.resolve(to)?;
        let from = Target::NAME;
        let wq = self.link(from, to)?;
        let plan = &self.net.shared.plan;
        let mut link = wq.lock();
        let k = link.sent;
        link.sent += 1;

        let withheld = |link: &mut SimLink| {
            link.sends.push(SimEvent {
                from,
                to,
                frame: k,
                session: frame.session,
                seq: frame.seq,
                arrival: 0,
                kind: SimEventKind::Withheld,
            });
        };

        // A link that already died (sequence violation) or got poisoned
        // withholds everything; as with `LocalTransport`, the send
        // itself reports `Ok` and the error surfaces at the receivers.
        if link.dead.is_some() || link.poisoned.is_some() {
            withheld(&mut link);
            return Ok(());
        }
        if let Err(e) = link.sequences.check(frame.session, from, frame.seq) {
            link.dead = Some(e.to_string());
            withheld(&mut link);
            let fired: Vec<MailboxWaker> = link.wakers.drain().map(|(_, w)| w).collect();
            drop(link);
            wq.notify_all();
            for waker in fired {
                waker();
            }
            return Ok(());
        }
        if let Some(poison) = &plan.poison {
            if poison.matches(from, to) && k >= poison.after {
                link.poisoned = Some(poison.after);
                withheld(&mut link);
                let fired: Vec<MailboxWaker> = link.wakers.drain().map(|(_, w)| w).collect();
                drop(link);
                wq.notify_all();
                for waker in fired {
                    waker();
                }
                return Ok(());
            }
        }
        // Selective silence: the frame is logged and dropped forever.
        // Receivers learn of the silence eagerly (the plan is global
        // knowledge), so wakers still fire and parked sessions resolve
        // with a protocol error instead of a watchdog timeout.
        if plan.silenced(from, to) {
            link.sends.push(SimEvent {
                from,
                to,
                frame: k,
                session: frame.session,
                seq: frame.seq,
                arrival: 0,
                kind: SimEventKind::Silenced,
            });
            let fired: Vec<MailboxWaker> = link.wakers.drain().map(|(_, w)| w).collect();
            drop(link);
            wq.notify_all();
            for waker in fired {
                waker();
            }
            return Ok(());
        }
        // Adversarial corruption: flip one payload bit, in a fresh
        // buffer (the payload `Bytes` may be shared with other
        // destinations of a multicast — those must stay clean).
        if let Some((byte, bit)) = plan.corrupt_bit(from, to, k, frame.payload.len()) {
            let mut tampered = frame.payload.to_vec();
            tampered[byte] ^= 1 << bit;
            frame.payload = chorus_wire::Bytes::from(tampered);
            link.sends.push(SimEvent {
                from,
                to,
                frame: k,
                session: frame.session,
                seq: frame.seq,
                arrival: 0,
                kind: SimEventKind::Corrupted { byte: byte as u64, bit },
            });
        }

        let schedule = plan.schedule(from, to, k);
        link.sends.push(SimEvent {
            from,
            to,
            frame: k,
            session: frame.session,
            seq: frame.seq,
            arrival: schedule.arrival,
            kind: SimEventKind::Sent {
                drops: schedule.drops,
                held: schedule.held,
                duplicated: schedule.duplicate.is_some(),
            },
        });
        if let Some(dup_arrival) = schedule.duplicate {
            let uid = link.next_uid;
            link.next_uid += 1;
            link.in_flight.push(Reverse(Flight {
                arrival: dup_arrival,
                uid,
                frame: k,
                env: frame.clone(),
            }));
        }
        let uid = link.next_uid;
        link.next_uid += 1;
        link.in_flight.push(Reverse(Flight {
            arrival: schedule.arrival,
            uid,
            frame: k,
            env: frame,
        }));
        // Drain the whole in-flight set eagerly — the same
        // deterministic `(arrival, uid)` total order any receiver
        // would drain in, so the delivery schedule is unchanged (and
        // the dumps re-sort by `(arrival, frame)` regardless) — then
        // wake only the sessions whose mailboxes actually gained a
        // frame. A deposit for session A no longer costs every other
        // parked session a spurious wake (and a scheduler requeue) per
        // frame; sessions whose frames are still held in the reorder
        // stage stay parked until the stream really resumes.
        while !link.in_flight.is_empty() {
            link.advance(from, to);
        }
        let woken: Vec<SessionId> = link
            .wakers
            .keys()
            .copied()
            .filter(|session| link.streams.get(session).is_some_and(|s| !s.ready.is_empty()))
            .collect();
        let mut fired: Vec<MailboxWaker> = Vec::with_capacity(woken.len());
        for session in woken {
            fired.extend(link.wakers.remove(&session));
        }
        drop(link);
        wq.notify_all();
        for waker in fired {
            waker();
        }
        Ok(())
    }

    fn receive_frame(&self, session: SessionId, from: &str) -> Result<Envelope, TransportError> {
        let from = self.names.resolve(from)?;
        let to = Target::NAME;
        let wq = self.link(from, to)?;
        let started = Instant::now();
        let deadline = started + self.net.shared.plan.watchdog;
        let mut link = wq.lock();
        loop {
            if let Some(env) = link.streams.get_mut(&session).and_then(|s| s.ready.pop_front()) {
                drop(link);
                *self.net.shared.received.lock().expect("sim counters poisoned") += 1;
                // Other receivers of this link may be waiting on frames
                // this thread drained into their mailboxes.
                wq.notify_all();
                return Ok(env);
            }
            if !link.in_flight.is_empty() {
                // Nothing ready: advance virtual time by draining the
                // earliest scheduled arrival, then re-check.
                link.advance(from, to);
                continue;
            }
            if let Some(reason) = &link.dead {
                return Err(TransportError::Protocol(format!(
                    "link from {from} is down: {reason}"
                )));
            }
            if let Some(step) = link.poisoned {
                return Err(TransportError::Protocol(format!(
                    "link from {from} poisoned at frame {step}: subsequent frames withheld"
                )));
            }
            if self.net.shared.plan.silenced(from, to) {
                // The silence is a plan-level fact: no frame will ever
                // arrive, so fail now instead of burning the watchdog.
                return Err(TransportError::Protocol(format!(
                    "link {from} -> {to} silenced: every frame dropped (selective silence)"
                )));
            }
            let (guard, timed_out) = wq.wait_deadline(link, deadline);
            link = guard;
            if timed_out
                && link.in_flight.is_empty()
                && link.streams.get(&session).is_none_or(|s| s.ready.is_empty())
            {
                return Err(TransportError::Protocol(format!(
                    "sim watchdog: no frame of session {session} from {from} after {}ms \
                     (configured deadline {}ms; schedule stalled or sender never sent)",
                    started.elapsed().as_millis(),
                    self.net.shared.plan.watchdog.as_millis()
                )));
            }
        }
    }

    fn try_receive_frame(
        &self,
        session: SessionId,
        from: &str,
    ) -> Result<Option<Envelope>, TransportError> {
        let from = self.names.resolve(from)?;
        let to = Target::NAME;
        let wq = self.link(from, to)?;
        let mut link = wq.lock();
        loop {
            if let Some(env) = link.streams.get_mut(&session).and_then(|s| s.ready.pop_front()) {
                drop(link);
                *self.net.shared.received.lock().expect("sim counters poisoned") += 1;
                wq.notify_all();
                return Ok(Some(env));
            }
            if !link.in_flight.is_empty() {
                // Draining advances virtual time in the deterministic
                // (arrival, uid) total order — the *same* order any
                // blocking receiver would drain in, so which thread
                // drains never changes the schedule.
                link.advance(from, to);
                continue;
            }
            if let Some(reason) = &link.dead {
                return Err(TransportError::Protocol(format!(
                    "link from {from} is down: {reason}"
                )));
            }
            if let Some(step) = link.poisoned {
                return Err(TransportError::Protocol(format!(
                    "link from {from} poisoned at frame {step}: subsequent frames withheld"
                )));
            }
            if self.net.shared.plan.silenced(from, to) {
                return Err(TransportError::Protocol(format!(
                    "link {from} -> {to} silenced: every frame dropped (selective silence)"
                )));
            }
            return Ok(None);
        }
    }

    fn register_waker(
        &self,
        session: SessionId,
        from: &str,
        waker: MailboxWaker,
    ) -> Result<bool, TransportError> {
        let from = self.names.resolve(from)?;
        let wq = self.link(from, Target::NAME)?;
        let mut link = wq.lock();
        // "Ready" is conservative: a non-empty in-flight set *may* hold
        // this session's frame, and only draining (a receiver's job)
        // can tell — so report ready and let the caller re-poll, which
        // drains. Exactly ready states (ready frame, dead, poisoned)
        // also refuse the registration.
        let ready = link.dead.is_some()
            || link.poisoned.is_some()
            || self.net.shared.plan.silenced(from, Target::NAME)
            || !link.in_flight.is_empty()
            || link.streams.get(&session).is_some_and(|s| !s.ready.is_empty());
        if ready {
            return Ok(true);
        }
        link.wakers.insert(session, waker);
        Ok(false)
    }
}

impl<L: LocationSet, Target: ChoreographyLocation> Transport<L, Target>
    for SimTransport<L, Target>
{
    fn send(&self, to: &str, data: &[u8]) -> Result<(), TransportError> {
        let seq = {
            let to_static = self.names.resolve(to)?;
            let mut seqs = self.raw_seqs.lock().expect("raw sequence counters poisoned");
            let counter = seqs.entry(to_static).or_insert(0);
            let seq = *counter;
            *counter += 1;
            seq
        };
        self.send_frame(to, Envelope::new(RAW_SESSION, seq, data))
    }

    fn receive(&self, from: &str) -> Result<Vec<u8>, TransportError> {
        self.receive_frame(RAW_SESSION, from).map(|envelope| envelope.payload.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    chorus_core::locations! { Alice, Bob }
    type System = chorus_core::LocationSet!(Alice, Bob);

    fn pair(
        plan: FaultPlan,
    ) -> (SimTransport<System, Alice>, SimTransport<System, Bob>, SimNet<System>) {
        let net = SimNet::<System>::new(plan);
        (SimTransport::new(Alice, net.clone()), SimTransport::new(Bob, net.clone()), net)
    }

    #[test]
    fn ideal_network_preserves_fifo() {
        let (alice, bob, _) = pair(FaultPlan::ideal());
        alice.send("Bob", b"one").unwrap();
        alice.send("Bob", b"two").unwrap();
        assert_eq!(bob.receive("Alice").unwrap(), b"one");
        assert_eq!(bob.receive("Alice").unwrap(), b"two");
    }

    #[test]
    fn chaos_reorders_packets_but_not_the_stream() {
        // High jitter, drops, and duplicates: the stream the receiver
        // observes must still be the exact FIFO the sender offered.
        let plan =
            FaultPlan::ideal().with_seed(42).with_jitter(20).with_drop(0.3).with_duplicate(0.3);
        let (alice, bob, net) = pair(plan);
        for i in 0..50u32 {
            alice.send("Bob", &i.to_le_bytes()).unwrap();
        }
        for i in 0..50u32 {
            assert_eq!(bob.receive("Alice").unwrap(), i.to_le_bytes());
        }
        assert!(net.virtual_now() > 0, "virtual time advanced");
        assert_eq!(net.messages_received(), 50);
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = || {
            let plan =
                FaultPlan::ideal().with_seed(7).with_jitter(9).with_drop(0.25).with_duplicate(0.25);
            let (alice, bob, net) = pair(plan);
            for i in 0..32u32 {
                alice.send("Bob", &i.to_le_bytes()).unwrap();
                bob.send("Alice", &i.to_le_bytes()).unwrap();
            }
            for i in 0..32u32 {
                assert_eq!(bob.receive("Alice").unwrap(), i.to_le_bytes());
                assert_eq!(alice.receive("Bob").unwrap(), i.to_le_bytes());
            }
            net.schedule_dump()
        };
        let first = run();
        let second = run();
        assert_eq!(first, second, "one seed, one schedule — bit for bit");
        assert!(first.contains("== Alice -> Bob"));
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            let (alice, bob, net) =
                pair(FaultPlan::ideal().with_seed(seed).with_jitter(16).with_drop(0.3));
            for i in 0..16u32 {
                alice.send("Bob", &i.to_le_bytes()).unwrap();
            }
            for i in 0..16u32 {
                assert_eq!(bob.receive("Alice").unwrap(), i.to_le_bytes());
            }
            net.schedule_dump()
        };
        assert_ne!(run(1), run(2), "distinct seeds should explore distinct schedules");
    }

    #[test]
    fn partition_holds_frames_until_heal() {
        let plan = FaultPlan::ideal().with_partition(Partition::everywhere(0, 100));
        let (alice, bob, net) = pair(plan);
        alice.send("Bob", b"through-the-partition").unwrap();
        assert_eq!(bob.receive("Alice").unwrap(), b"through-the-partition");
        assert!(net.virtual_now() > 100, "delivery waited for the heal, got {}", net.virtual_now());
    }

    #[test]
    fn poisoned_link_withholds_later_frames() {
        let plan = FaultPlan::ideal().with_poison(Poison::link("Alice", "Bob", 2));
        let (alice, bob, _) = pair(plan);
        alice.send("Bob", b"zero").unwrap();
        alice.send("Bob", b"one").unwrap();
        alice.send("Bob", b"two-withheld").unwrap();
        assert_eq!(bob.receive("Alice").unwrap(), b"zero");
        assert_eq!(bob.receive("Alice").unwrap(), b"one");
        let err = bob.receive("Alice").unwrap_err();
        assert!(matches!(err, TransportError::Protocol(_)));
        assert!(err.to_string().contains("poisoned at frame 2"), "got: {err}");
    }

    #[test]
    fn sequence_gaps_kill_the_link_for_every_session() {
        let (alice, bob, _) = pair(FaultPlan::ideal());
        alice.send_frame("Bob", Envelope::new(1, 0, b"ok".to_vec())).unwrap();
        alice.send_frame("Bob", Envelope::new(1, 2, b"gap".to_vec())).unwrap();
        alice.send_frame("Bob", Envelope::new(2, 0, b"other-session".to_vec())).unwrap();
        assert_eq!(bob.receive_frame(1, "Alice").unwrap().payload, b"ok");
        assert!(matches!(bob.receive_frame(2, "Alice"), Err(TransportError::Protocol(_))));
    }

    #[test]
    fn watchdog_fires_instead_of_hanging() {
        let plan = FaultPlan::ideal().with_watchdog(Duration::from_millis(50));
        let (_alice, bob, _) = pair(plan);
        let err = bob.receive("Alice").unwrap_err();
        assert!(err.to_string().contains("watchdog"), "got: {err}");
    }

    #[test]
    fn unknown_locations_are_rejected() {
        let (alice, _, _) = pair(FaultPlan::ideal());
        assert!(matches!(alice.send("Nobody", b"x"), Err(TransportError::UnknownLocation(_))));
        assert!(matches!(alice.receive("Nobody"), Err(TransportError::UnknownLocation(_))));
    }

    #[test]
    fn sessions_demultiplex_on_one_link() {
        let (alice, bob, _) = pair(FaultPlan::ideal().with_seed(3).with_jitter(6));
        alice.send_frame("Bob", Envelope::new(1, 0, b"s1-first".to_vec())).unwrap();
        alice.send_frame("Bob", Envelope::new(2, 0, b"s2-first".to_vec())).unwrap();
        alice.send_frame("Bob", Envelope::new(1, 1, b"s1-second".to_vec())).unwrap();
        assert_eq!(bob.receive_frame(2, "Alice").unwrap().payload, b"s2-first");
        assert_eq!(bob.receive_frame(1, "Alice").unwrap().payload, b"s1-first");
        assert_eq!(bob.receive_frame(1, "Alice").unwrap().payload, b"s1-second");
    }

    #[test]
    fn sequential_session_reuse_restarts_the_stream() {
        let (alice, bob, _) = pair(FaultPlan::ideal());
        // Run 1 of session 5.
        alice.send_frame("Bob", Envelope::new(5, 0, b"r1-a".to_vec())).unwrap();
        alice.send_frame("Bob", Envelope::new(5, 1, b"r1-b".to_vec())).unwrap();
        assert_eq!(bob.receive_frame(5, "Alice").unwrap().payload, b"r1-a");
        assert_eq!(bob.receive_frame(5, "Alice").unwrap().payload, b"r1-b");
        // Run 2 reuses the id; its seq restarts at zero.
        alice.send_frame("Bob", Envelope::new(5, 0, b"r2-a".to_vec())).unwrap();
        assert_eq!(bob.receive_frame(5, "Alice").unwrap().payload, b"r2-a");
    }

    #[test]
    fn corruption_flips_exactly_one_bit_deterministically() {
        let run = || {
            let plan =
                FaultPlan::ideal().with_seed(11).with_corruption(Corruption::everywhere(1.0));
            let (alice, bob, net) = pair(plan);
            alice.send("Bob", b"payload-under-attack").unwrap();
            let got = bob.receive("Alice").unwrap();
            (got, net.schedule_dump())
        };
        let (first, dump1) = run();
        let (second, dump2) = run();
        assert_eq!(first, second, "corruption must be seed-deterministic");
        assert_eq!(dump1, dump2);
        assert_ne!(first, b"payload-under-attack".to_vec(), "a bit must have flipped");
        let differing: u32 = first
            .iter()
            .zip(b"payload-under-attack".iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(differing, 1, "exactly one flipped bit");
        assert!(dump1.contains("corrupt  byte="), "dump records the corruption: {dump1}");
    }

    #[test]
    fn corruption_off_leaves_schedules_untouched() {
        // Installing a corruption rule must not perturb the delivery
        // schedule: the corruption rng is separate from schedule()'s.
        let dump = |plan: FaultPlan| {
            let (alice, bob, net) = pair(plan);
            for i in 0..16u32 {
                alice.send("Bob", &i.to_le_bytes()).unwrap();
            }
            for _ in 0..16u32 {
                bob.receive("Alice").unwrap();
            }
            net.schedule_dump()
        };
        let base = FaultPlan::ideal().with_seed(23).with_jitter(9).with_drop(0.2);
        let clean = dump(base.clone());
        let attacked = dump(base.with_corruption(Corruption::everywhere(1.0)));
        let strip =
            |d: &str| d.lines().filter(|l| !l.contains("corrupt")).collect::<Vec<_>>().join("\n");
        assert_eq!(strip(&clean), strip(&attacked), "same arrivals, drops, and order");
    }

    #[test]
    fn silenced_link_errors_eagerly_and_names_the_edge() {
        let plan = FaultPlan::ideal().with_silence(Silence::link("Alice", "Bob"));
        let (alice, bob, net) = pair(plan);
        alice.send("Bob", b"never-arrives").unwrap();
        let before = Instant::now();
        let err = bob.receive("Alice").unwrap_err();
        assert!(before.elapsed() < Duration::from_secs(5), "silence resolves eagerly");
        assert!(matches!(err, TransportError::Protocol(_)));
        let msg = err.to_string();
        assert!(msg.contains("Alice") && msg.contains("Bob") && msg.contains("silenced"), "{msg}");
        // try_receive surfaces the same verdict, and the reverse link
        // still works.
        assert!(bob.try_receive_frame(RAW_SESSION, "Alice").is_err());
        bob.send("Alice", b"reverse-ok").unwrap();
        assert_eq!(alice.receive("Bob").unwrap(), b"reverse-ok");
        assert!(net.schedule_dump().contains("silenced"));
    }

    #[test]
    fn silenced_link_reports_ready_to_wakers() {
        let plan = FaultPlan::ideal().with_silence(Silence::link("Alice", "Bob"));
        let (_alice, bob, _) = pair(plan);
        let ready = bob.register_waker(RAW_SESSION, "Alice", Arc::new(|| {})).unwrap();
        assert!(ready, "a silenced link must not park a session forever");
    }

    #[test]
    fn deposits_wake_only_the_mailboxes_that_gained_frames() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let (alice, bob, _) = pair(FaultPlan::ideal());
        let fired_one = Arc::new(AtomicUsize::new(0));
        let fired_two = Arc::new(AtomicUsize::new(0));
        let waker = |counter: &Arc<AtomicUsize>| -> MailboxWaker {
            let counter = Arc::clone(counter);
            Arc::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            })
        };
        assert!(!bob.register_waker(1, "Alice", waker(&fired_one)).unwrap());
        assert!(!bob.register_waker(2, "Alice", waker(&fired_two)).unwrap());
        // A frame for session 1 must not cost session 2 a spurious wake.
        alice.send_frame("Bob", Envelope::new(1, 0, b"for-one".to_vec())).unwrap();
        assert_eq!(fired_one.load(Ordering::SeqCst), 1);
        assert_eq!(fired_two.load(Ordering::SeqCst), 0, "session 2 gained no frame");
        // Session 2's waker is still armed and fires on its own deposit.
        alice.send_frame("Bob", Envelope::new(2, 0, b"for-two".to_vec())).unwrap();
        assert_eq!(fired_two.load(Ordering::SeqCst), 1);
        assert_eq!(fired_one.load(Ordering::SeqCst), 1, "consumed on its first fire");
        assert_eq!(bob.receive_frame(1, "Alice").unwrap().payload, b"for-one");
        assert_eq!(bob.receive_frame(2, "Alice").unwrap().payload, b"for-two");
    }

    #[test]
    fn eager_draining_leaves_chaos_schedules_bit_identical() {
        // Senders now drain the in-flight set at deposit time (so they
        // can tell which mailboxes gained frames). The dump must not
        // care *who* drains: a run that consumes after every send and a
        // run that consumes only at the end see one schedule.
        let plan = || {
            FaultPlan::ideal().with_seed(77).with_jitter(14).with_drop(0.25).with_duplicate(0.25)
        };
        let interleaved = {
            let (alice, bob, net) = pair(plan());
            for i in 0..24u32 {
                alice.send("Bob", &i.to_le_bytes()).unwrap();
                assert_eq!(bob.receive("Alice").unwrap(), i.to_le_bytes());
            }
            net.schedule_dump()
        };
        let batched = {
            let (alice, bob, net) = pair(plan());
            for i in 0..24u32 {
                alice.send("Bob", &i.to_le_bytes()).unwrap();
            }
            for i in 0..24u32 {
                assert_eq!(bob.receive("Alice").unwrap(), i.to_le_bytes());
            }
            net.schedule_dump()
        };
        assert_eq!(interleaved, batched, "drain timing must never change the schedule");
    }

    #[test]
    fn trace_events_mirror_the_delivery_log() {
        let (alice, bob, net) = pair(FaultPlan::ideal());
        alice.send("Bob", b"x").unwrap();
        bob.receive("Alice").unwrap();
        let events = net.trace_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].direction, crate::Direction::Send);
        assert_eq!(events[1].direction, crate::Direction::Receive);
        assert_eq!(events[0].from, "Alice");
        assert_eq!(events[0].to, "Bob");
    }
}
