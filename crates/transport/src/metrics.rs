//! Message accounting: the measurement substrate for every
//! communication-efficiency experiment.
//!
//! [`TransportMetrics`] is a [`Layer`]: install it on an
//! [`Endpoint`](chorus_core::Endpoint) at build time and it counts every
//! message and byte each session sends, per directed edge. It replaces
//! the old `InstrumentedTransport` wrapper — same counters, but
//! composable with other layers and shared by all sessions of an
//! endpoint.
//!
//! Only *sends* are recorded, so sharing one `TransportMetrics` across
//! all endpoints counts each message exactly once.

use chorus_core::{Layer, MessageCtx};
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Counters for one directed edge of the system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeMetrics {
    /// Number of messages sent along this edge.
    pub messages: u64,
    /// Total payload bytes sent along this edge.
    pub bytes: u64,
}

/// Shared counters, typically one `Arc` installed as a layer on every
/// participant's endpoint:
///
/// ```ignore
/// let metrics = Arc::new(TransportMetrics::new());
/// let endpoint = Endpoint::builder(Alice)
///     .transport(transport)
///     .layer(Arc::clone(&metrics))
///     .build();
/// ```
#[derive(Debug, Default)]
pub struct TransportMetrics {
    edges: Mutex<BTreeMap<(String, String), EdgeMetrics>>,
}

/// A point-in-time copy of the counters.
pub type MetricsSnapshot = BTreeMap<(String, String), EdgeMetrics>;

impl TransportMetrics {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    fn record_send(&self, from: &str, to: &str, bytes: usize) {
        let mut edges = self.edges.lock();
        let entry = edges.entry((from.to_string(), to.to_string())).or_default();
        entry.messages += 1;
        entry.bytes += bytes as u64;
    }

    /// Returns a copy of the per-edge counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.edges.lock().clone()
    }

    /// Total messages sent across all edges.
    pub fn total_messages(&self) -> u64 {
        self.edges.lock().values().map(|e| e.messages).sum()
    }

    /// Total payload bytes sent across all edges.
    pub fn total_bytes(&self) -> u64 {
        self.edges.lock().values().map(|e| e.bytes).sum()
    }

    /// Messages received by (i.e. addressed to) `location`.
    pub fn messages_to(&self, location: &str) -> u64 {
        self.edges
            .lock()
            .iter()
            .filter(|((_, to), _)| to == location)
            .map(|(_, e)| e.messages)
            .sum()
    }

    /// Messages sent by `location`.
    pub fn messages_from(&self, location: &str) -> u64 {
        self.edges
            .lock()
            .iter()
            .filter(|((from, _), _)| from == location)
            .map(|(_, e)| e.messages)
            .sum()
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.edges.lock().clear();
    }
}

impl Layer for TransportMetrics {
    fn on_send(&self, ctx: &MessageCtx<'_>, payload: &[u8]) {
        self.record_send(ctx.from, ctx.to, payload.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LocalTransport, LocalTransportChannel};
    use chorus_core::Endpoint;
    use std::sync::Arc;

    chorus_core::locations! { Alice, Bob, Carol }
    type System = chorus_core::LocationSet!(Alice, Bob, Carol);

    fn setup() -> (
        Endpoint<System, Alice, LocalTransport<System, Alice>>,
        Endpoint<System, Bob, LocalTransport<System, Bob>>,
        Arc<TransportMetrics>,
    ) {
        let channel = LocalTransportChannel::<System>::new();
        let metrics = Arc::new(TransportMetrics::new());
        let alice = Endpoint::builder(Alice)
            .transport(LocalTransport::new(Alice, channel.clone()))
            .layer(Arc::clone(&metrics))
            .build();
        let bob = Endpoint::builder(Bob)
            .transport(LocalTransport::new(Bob, channel))
            .layer(Arc::clone(&metrics))
            .build();
        (alice, bob, metrics)
    }

    #[test]
    fn sends_are_counted_once_per_message() {
        let (alice, bob, metrics) = setup();
        let alice_session = alice.session_with_id(9);
        let bob_session = bob.session_with_id(9);
        alice_session.send_bytes("Bob", b"abcd").unwrap();
        alice_session.send_bytes("Carol", b"xy").unwrap();
        bob_session.receive_bytes("Alice").unwrap();
        assert_eq!(metrics.total_messages(), 2);
        assert_eq!(metrics.total_bytes(), 6);
        assert_eq!(metrics.messages_from("Alice"), 2);
        assert_eq!(metrics.messages_to("Bob"), 1);
        assert_eq!(metrics.messages_to("Carol"), 1);
        assert_eq!(metrics.messages_to("Alice"), 0);
    }

    #[test]
    fn snapshot_reports_per_edge_counters() {
        let (alice, _bob, metrics) = setup();
        let session = alice.session();
        session.send_bytes("Bob", b"123").unwrap();
        session.send_bytes("Bob", b"45").unwrap();
        let snap = metrics.snapshot();
        let edge = snap[&("Alice".to_string(), "Bob".to_string())];
        assert_eq!(edge, EdgeMetrics { messages: 2, bytes: 5 });
    }

    #[test]
    fn reset_zeroes_counters() {
        let (alice, _bob, metrics) = setup();
        alice.session().send_bytes("Bob", b"123").unwrap();
        metrics.reset();
        assert_eq!(metrics.total_messages(), 0);
        assert_eq!(metrics.total_bytes(), 0);
    }

    #[test]
    fn concurrent_sessions_share_the_counters() {
        let (alice, _bob, metrics) = setup();
        let s1 = alice.session();
        let s2 = alice.session();
        s1.send_bytes("Bob", b"a").unwrap();
        s2.send_bytes("Bob", b"bc").unwrap();
        let snap = metrics.snapshot();
        let edge = snap[&("Alice".to_string(), "Bob".to_string())];
        assert_eq!(edge, EdgeMetrics { messages: 2, bytes: 3 });
    }
}
