//! Message accounting: the measurement substrate for every
//! communication-efficiency experiment.

use chorus_core::{ChoreographyLocation, LocationSet, Transport, TransportError};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::Arc;

/// Counters for one directed edge of the system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeMetrics {
    /// Number of messages sent along this edge.
    pub messages: u64,
    /// Total payload bytes sent along this edge.
    pub bytes: u64,
}

/// Shared counters, typically one [`Arc`] cloned into every participant's
/// [`InstrumentedTransport`].
///
/// Only *sends* are recorded, so sharing one `TransportMetrics` across all
/// endpoints counts each message exactly once.
#[derive(Debug, Default)]
pub struct TransportMetrics {
    edges: Mutex<BTreeMap<(String, String), EdgeMetrics>>,
}

/// A point-in-time copy of the counters.
pub type MetricsSnapshot = BTreeMap<(String, String), EdgeMetrics>;

impl TransportMetrics {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    fn record_send(&self, from: &str, to: &str, bytes: usize) {
        let mut edges = self.edges.lock();
        let entry = edges.entry((from.to_string(), to.to_string())).or_default();
        entry.messages += 1;
        entry.bytes += bytes as u64;
    }

    /// Returns a copy of the per-edge counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.edges.lock().clone()
    }

    /// Total messages sent across all edges.
    pub fn total_messages(&self) -> u64 {
        self.edges.lock().values().map(|e| e.messages).sum()
    }

    /// Total payload bytes sent across all edges.
    pub fn total_bytes(&self) -> u64 {
        self.edges.lock().values().map(|e| e.bytes).sum()
    }

    /// Messages received by (i.e. addressed to) `location`.
    pub fn messages_to(&self, location: &str) -> u64 {
        self.edges
            .lock()
            .iter()
            .filter(|((_, to), _)| to == location)
            .map(|(_, e)| e.messages)
            .sum()
    }

    /// Messages sent by `location`.
    pub fn messages_from(&self, location: &str) -> u64 {
        self.edges
            .lock()
            .iter()
            .filter(|((from, _), _)| from == location)
            .map(|(_, e)| e.messages)
            .sum()
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.edges.lock().clear();
    }
}

/// Wraps any transport, recording each send into a shared
/// [`TransportMetrics`].
pub struct InstrumentedTransport<L: LocationSet, Target: ChoreographyLocation, T> {
    inner: T,
    metrics: Arc<TransportMetrics>,
    phantom: PhantomData<fn() -> (L, Target)>,
}

impl<L, Target, T> InstrumentedTransport<L, Target, T>
where
    L: LocationSet,
    Target: ChoreographyLocation,
    T: Transport<L, Target>,
{
    /// Wraps `inner`, recording sends into `metrics`.
    pub fn new(inner: T, metrics: Arc<TransportMetrics>) -> Self {
        InstrumentedTransport { inner, metrics, phantom: PhantomData }
    }

    /// Returns the shared counters.
    pub fn metrics(&self) -> Arc<TransportMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Unwraps the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<L, Target, T> Transport<L, Target> for InstrumentedTransport<L, Target, T>
where
    L: LocationSet,
    Target: ChoreographyLocation,
    T: Transport<L, Target>,
{
    fn locations(&self) -> Vec<&'static str> {
        self.inner.locations()
    }

    fn send(&self, to: &str, data: &[u8]) -> Result<(), TransportError> {
        self.metrics.record_send(Target::NAME, to, data.len());
        self.inner.send(to, data)
    }

    fn receive(&self, from: &str) -> Result<Vec<u8>, TransportError> {
        self.inner.receive(from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LocalTransport, LocalTransportChannel};

    chorus_core::locations! { Alice, Bob, Carol }
    type System = chorus_core::LocationSet!(Alice, Bob, Carol);

    fn setup() -> (
        InstrumentedTransport<System, Alice, LocalTransport<System, Alice>>,
        InstrumentedTransport<System, Bob, LocalTransport<System, Bob>>,
        Arc<TransportMetrics>,
    ) {
        let channel = LocalTransportChannel::<System>::new();
        let metrics = Arc::new(TransportMetrics::new());
        let alice = InstrumentedTransport::new(
            LocalTransport::new(Alice, channel.clone()),
            Arc::clone(&metrics),
        );
        let bob = InstrumentedTransport::new(
            LocalTransport::new(Bob, channel),
            Arc::clone(&metrics),
        );
        (alice, bob, metrics)
    }

    #[test]
    fn sends_are_counted_once_per_message() {
        let (alice, bob, metrics) = setup();
        alice.send("Bob", b"abcd").unwrap();
        alice.send("Carol", b"xy").unwrap();
        bob.receive("Alice").unwrap();
        assert_eq!(metrics.total_messages(), 2);
        assert_eq!(metrics.total_bytes(), 6);
        assert_eq!(metrics.messages_from("Alice"), 2);
        assert_eq!(metrics.messages_to("Bob"), 1);
        assert_eq!(metrics.messages_to("Carol"), 1);
        assert_eq!(metrics.messages_to("Alice"), 0);
    }

    #[test]
    fn snapshot_reports_per_edge_counters() {
        let (alice, _bob, metrics) = setup();
        alice.send("Bob", b"123").unwrap();
        alice.send("Bob", b"45").unwrap();
        let snap = metrics.snapshot();
        let edge = snap[&("Alice".to_string(), "Bob".to_string())];
        assert_eq!(edge, EdgeMetrics { messages: 2, bytes: 5 });
    }

    #[test]
    fn reset_zeroes_counters() {
        let (alice, _bob, metrics) = setup();
        alice.send("Bob", b"123").unwrap();
        metrics.reset();
        assert_eq!(metrics.total_messages(), 0);
        assert_eq!(metrics.total_bytes(), 0);
    }
}
