//! Negative tests: the type system rejects exactly the programs whose
//! projections would deadlock — the formal justification for the
//! conclaves-&-MLVs knowledge-of-choice discipline.

use chorus_lambda::network::{Network, Outcome};
use chorus_lambda::parties;
use chorus_lambda::syntax::{Expr, Value};
use chorus_lambda::typing::{type_of, Env, TypeError};
use chorus_lambda::Party;

/// A conditional whose branches make party 2 receive, while party 2 has
/// no knowledge of the choice (it does not own the scrutinee).
fn koc_violation() -> Expr {
    let send_to_2 = Expr::app(
        Expr::val(Value::Com { from: Party(0), to: parties![2] }),
        Expr::val(Value::Unit(parties![0])),
    );
    Expr::case(
        parties![0], // only party 0 branches...
        Expr::val(Value::bool_true(parties![0])),
        "x",
        send_to_2.clone(), // ...but the branch involves party 2
        "y",
        send_to_2,
    )
}

#[test]
fn branch_bodies_must_stay_inside_the_conclave() {
    // TCase conclaves the branches to {0}; com_{0;{2}} needs {0,2}.
    let err = type_of(&parties![0, 1, 2], &Env::new(), &koc_violation()).unwrap_err();
    assert!(
        matches!(err, TypeError::OutsideCensus { .. }),
        "expected an OutsideCensus error, got {err:?}"
    );
}

#[test]
fn the_rejected_program_would_deadlock() {
    // Corollary 1 only protects *well-typed* programs: if we project the
    // ill-typed choreography anyway, party 2's projection skips the case
    // (it lacks knowledge of choice) while party 0 tries to send — a
    // deadlock, which is exactly what the type system prevented.
    let mut net = Network::project_all(&koc_violation());
    match net.run(10_000) {
        Outcome::Deadlock { blocked } => {
            assert!(blocked.contains_key(&Party(0)), "the sender is stuck");
        }
        other => panic!("expected a deadlock, got {other:?}"),
    }
}

#[test]
fn scrutinee_ownership_is_required() {
    // All branching parties must own the scrutinee (TCase's masking
    // precondition) — party 1 branches without knowing the value.
    let expr = Expr::case(
        parties![0, 1],
        Expr::val(Value::bool_true(parties![0])),
        "x",
        Expr::val(Value::Unit(parties![0, 1])),
        "y",
        Expr::val(Value::Unit(parties![0, 1])),
    );
    let err = type_of(&parties![0, 1], &Env::new(), &expr).unwrap_err();
    assert!(matches!(err, TypeError::NotASum(_)), "got {err:?}");
}

#[test]
fn communication_needs_the_sender_in_the_census() {
    let expr = Expr::app(
        Expr::val(Value::Com { from: Party(5), to: parties![1] }),
        Expr::val(Value::Unit(parties![5])),
    );
    let err = type_of(&parties![0, 1], &Env::new(), &expr).unwrap_err();
    assert!(matches!(err, TypeError::OutsideCensus { .. }), "got {err:?}");
}

#[test]
fn empty_recipient_sets_are_rejected() {
    let expr = Expr::app(
        Expr::val(Value::Com { from: Party(0), to: chorus_lambda::PartySet::empty() }),
        Expr::val(Value::Unit(parties![0])),
    );
    let err = type_of(&parties![0, 1], &Env::new(), &expr).unwrap_err();
    assert!(matches!(err, TypeError::EmptyAnnotation), "got {err:?}");
}
