//! Dynamic checks of the paper's metatheory (§4.1, Appendices F–I) on
//! randomly generated well-typed programs:
//!
//! * **Progress** (Theorem 3): a well-typed expression is a value or can
//!   step.
//! * **Preservation** (Theorem 2): stepping preserves the type exactly.
//! * **Termination**: λC has no recursion, so evaluation reaches a value.
//! * **EPP soundness & completeness** (Theorems 4–5): the projected
//!   network reaches exactly the projection of the central result.
//! * **Deadlock freedom** (Corollary 1): the projected network never
//!   gets stuck.

use chorus_lambda::epp::project;
use chorus_lambda::gen::{census_of, gen_program, GenConfig};
use chorus_lambda::local::floor_value;
use chorus_lambda::network::{Network, Outcome};
use chorus_lambda::semantics::{eval, step};
use chorus_lambda::syntax::Expr;
use chorus_lambda::typing::{type_of, Env};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FUEL: usize = 100_000;

fn generate(seed: u64, census_size: u32, depth: usize) -> (Expr, chorus_lambda::Type) {
    let config = GenConfig { census_size, max_depth: depth, max_data_depth: 2 };
    let mut rng = StdRng::seed_from_u64(seed);
    gen_program(&mut rng, &config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Theorems 2 + 3: every intermediate expression is well-typed at
    /// the same type, and only values fail to step.
    #[test]
    fn progress_and_preservation(seed: u64, census_size in 1u32..4, depth in 1usize..5) {
        let (expr, ty) = generate(seed, census_size, depth);
        let census = census_of(&GenConfig { census_size, max_depth: depth, max_data_depth: 2 });
        let mut current = expr;
        for _ in 0..FUEL {
            let checked = type_of(&census, &Env::new(), &current);
            prop_assert_eq!(
                checked.as_ref(),
                Ok(&ty),
                "preservation failed at {}",
                current
            );
            match step(&current) {
                Some(next) => current = next,
                None => {
                    // Progress: a non-stepping expression must be a value.
                    prop_assert!(
                        matches!(current, Expr::Val(_)),
                        "stuck non-value: {}",
                        current
                    );
                    return Ok(());
                }
            }
        }
        prop_assert!(false, "evaluation did not terminate");
    }

    /// Theorems 4 + 5 and Corollary 1: the network of projections runs
    /// without deadlock to exactly the projection of the central result.
    #[test]
    fn epp_is_sound_and_complete_and_deadlock_free(
        seed: u64,
        census_size in 1u32..4,
        depth in 1usize..5,
    ) {
        let (expr, _ty) = generate(seed, census_size, depth);
        let central = eval(&expr, FUEL).expect("well-typed programs evaluate");

        let mut network = Network::project_all(&expr);
        match network.run(FUEL) {
            Outcome::Finished(values) => {
                for (party, local_value) in &values {
                    let expected = floor_value(&project_value_of(&central, *party));
                    prop_assert_eq!(
                        local_value,
                        &expected,
                        "party {} disagrees with the central semantics for {}",
                        party,
                        expr
                    );
                }
            }
            Outcome::Deadlock { blocked } => {
                prop_assert!(false, "deadlock {:?} running {}", blocked, expr);
            }
            Outcome::OutOfFuel => prop_assert!(false, "network out of fuel for {}", expr),
        }
    }
}

/// Projects a central *value* to a party (the value fragment of `⟦·⟧p`).
fn project_value_of(
    value: &chorus_lambda::Value,
    party: chorus_lambda::Party,
) -> chorus_lambda::local::LValue {
    match project(&Expr::Val(value.clone()), party) {
        chorus_lambda::local::LExpr::Val(v) => v,
        other => panic!("projection of a value is a value, got {other}"),
    }
}

/// A handwritten end-to-end sanity check matching the paper's D.8
/// example: `⟦com_{s;{p,q}} ()@{s}⟧` reaches `⟦()@{p,q}⟧` in one
/// rendezvous.
#[test]
fn paper_example_network() {
    use chorus_lambda::parties;
    use chorus_lambda::syntax::Value;
    use chorus_lambda::Party;

    let expr = Expr::app(
        Expr::val(Value::Com { from: Party(0), to: parties![1, 2] }),
        Expr::val(Value::Unit(parties![0])),
    );
    let central = eval(&expr, 100).unwrap();
    assert_eq!(central, Value::Unit(parties![1, 2]));

    let mut network = Network::project_all(&expr);
    match network.run(100) {
        Outcome::Finished(values) => {
            assert_eq!(values[&Party(1)], chorus_lambda::local::LValue::Unit);
            assert_eq!(values[&Party(2)], chorus_lambda::local::LValue::Unit);
            assert_eq!(values[&Party(0)], chorus_lambda::local::LValue::Bottom);
        }
        other => panic!("unexpected outcome {other:?}"),
    }
}

/// Volume check outside proptest: a large batch of bigger programs, all
/// four theorems at once.
#[test]
fn theorem_sweep_on_larger_programs() {
    let mut failures = Vec::new();
    for seed in 0..150u64 {
        let (expr, ty) = generate(seed.wrapping_mul(0x9E3779B97F4A7C15), 4, 6);
        let census = census_of(&GenConfig { census_size: 4, max_depth: 6, max_data_depth: 2 });
        if type_of(&census, &Env::new(), &expr).as_ref() != Ok(&ty) {
            failures.push(format!("seed {seed}: generator/type mismatch"));
            continue;
        }
        let Some(central) = eval(&expr, FUEL) else {
            failures.push(format!("seed {seed}: did not evaluate"));
            continue;
        };
        let mut network = Network::project_all(&expr);
        match network.run(FUEL) {
            Outcome::Finished(values) => {
                for (party, v) in values {
                    let expected = floor_value(&project_value_of(&central, party));
                    if v != expected {
                        failures.push(format!("seed {seed}: {party} got {v}, wanted {expected}"));
                    }
                }
            }
            other => failures.push(format!("seed {seed}: network outcome {other:?}")),
        }
    }
    assert!(failures.is_empty(), "{} failures:\n{}", failures.len(), failures.join("\n"));
}
