//! λC syntax (Fig. 14).
//!
//! "Data" (which can be communicated) is distinguished from functions
//! (which cannot): [`Data`] describes communicable shapes — unit, sums,
//! products — while [`Type`] adds located functions and heterogeneous
//! tuples.

use crate::party::{Party, PartySet};
use std::fmt;

/// Variable names.
pub type Var = String;

/// The algebra of communicable data: `d ::= () | d + d | d × d`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Data {
    /// The unit shape.
    Unit,
    /// A disjoint sum.
    Sum(Box<Data>, Box<Data>),
    /// A pair.
    Prod(Box<Data>, Box<Data>),
}

impl Data {
    /// `d + d'`
    pub fn sum(l: Data, r: Data) -> Data {
        Data::Sum(Box::new(l), Box::new(r))
    }

    /// `d × d'`
    pub fn prod(l: Data, r: Data) -> Data {
        Data::Prod(Box::new(l), Box::new(r))
    }

    /// The booleans, encoded as `() + ()`.
    pub fn bool() -> Data {
        Data::sum(Data::Unit, Data::Unit)
    }
}

/// λC types: `T ::= d@p⁺ | (T → T)@p⁺ | (T, …, T)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// A multiply-located data type.
    Data(Data, PartySet),
    /// A located function type.
    Fun(Box<Type>, Box<Type>, PartySet),
    /// A fixed-length heterogeneous tuple.
    Tuple(Vec<Type>),
}

impl Type {
    /// `d@p⁺`
    pub fn data(d: Data, owners: PartySet) -> Type {
        Type::Data(d, owners)
    }

    /// `(a → r)@p⁺`
    pub fn fun(a: Type, r: Type, owners: PartySet) -> Type {
        Type::Fun(Box::new(a), Box::new(r), owners)
    }
}

/// λC expressions: `M ::= V | M M | case_{p⁺} M of Inl x ⇒ M; Inr x ⇒ M`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A value.
    Val(Value),
    /// Function application.
    App(Box<Expr>, Box<Expr>),
    /// Branching on a sum, conclaved to `parties`.
    Case {
        /// The parties participating in the branch (the conclave).
        parties: PartySet,
        /// The scrutinee.
        scrutinee: Box<Expr>,
        /// Binder for the left branch.
        left_var: Var,
        /// The left branch body.
        left: Box<Expr>,
        /// Binder for the right branch.
        right_var: Var,
        /// The right branch body.
        right: Box<Expr>,
    },
}

impl Expr {
    /// Wraps a value.
    pub fn val(v: Value) -> Expr {
        Expr::Val(v)
    }

    /// `M N`
    pub fn app(f: Expr, a: Expr) -> Expr {
        Expr::App(Box::new(f), Box::new(a))
    }

    /// `case_{p⁺} N of Inl xl ⇒ Ml; Inr xr ⇒ Mr`
    pub fn case(
        parties: PartySet,
        scrutinee: Expr,
        left_var: impl Into<Var>,
        left: Expr,
        right_var: impl Into<Var>,
        right: Expr,
    ) -> Expr {
        Expr::Case {
            parties,
            scrutinee: Box::new(scrutinee),
            left_var: left_var.into(),
            left: Box::new(left),
            right_var: right_var.into(),
            right: Box::new(right),
        }
    }

    /// All parties syntactically mentioned in the expression — the
    /// paper's `roles(M)`.
    pub fn roles(&self) -> PartySet {
        let mut acc = PartySet::empty();
        self.collect_roles(&mut acc);
        acc
    }

    fn collect_roles(&self, acc: &mut PartySet) {
        match self {
            Expr::Val(v) => v.collect_roles(acc),
            Expr::App(f, a) => {
                f.collect_roles(acc);
                a.collect_roles(acc);
            }
            Expr::Case { parties, scrutinee, left, right, .. } => {
                for p in parties.iter() {
                    acc.insert(p);
                }
                scrutinee.collect_roles(acc);
                left.collect_roles(acc);
                right.collect_roles(acc);
            }
        }
    }
}

/// λC values (Fig. 14's `V`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A variable.
    Var(Var),
    /// `(λx:T. M)@p⁺`
    Lambda {
        /// The parameter.
        param: Var,
        /// Its annotated type.
        param_ty: Type,
        /// The body.
        body: Box<Expr>,
        /// The participants (owners) of the function.
        parties: PartySet,
    },
    /// `()@p⁺`
    Unit(PartySet),
    /// Left injection.
    Inl(Box<Value>),
    /// Right injection.
    Inr(Box<Value>),
    /// A data pair.
    Pair(Box<Value>, Box<Value>),
    /// A heterogeneous tuple.
    Tuple(Vec<Value>),
    /// First projection of a data pair, at `p⁺`.
    Fst(PartySet),
    /// Second projection of a data pair, at `p⁺`.
    Snd(PartySet),
    /// Tuple lookup `lookupⁿ` at `p⁺`.
    Lookup(usize, PartySet),
    /// `com_{s;r⁺}`: multicast from `from` to `to`.
    Com {
        /// The sender.
        from: Party,
        /// The recipients (non-empty).
        to: PartySet,
    },
}

impl Value {
    /// `Inl V`
    pub fn inl(v: Value) -> Value {
        Value::Inl(Box::new(v))
    }

    /// `Inr V`
    pub fn inr(v: Value) -> Value {
        Value::Inr(Box::new(v))
    }

    /// `Pair V W`
    pub fn pair(l: Value, r: Value) -> Value {
        Value::Pair(Box::new(l), Box::new(r))
    }

    /// `(λx:T. M)@p⁺`
    pub fn lambda(param: impl Into<Var>, param_ty: Type, body: Expr, parties: PartySet) -> Value {
        Value::Lambda { param: param.into(), param_ty, body: Box::new(body), parties }
    }

    /// The boolean `true`, encoded as `Inl ()@p⁺`.
    pub fn bool_true(owners: PartySet) -> Value {
        Value::inl(Value::Unit(owners))
    }

    /// The boolean `false`, encoded as `Inr ()@p⁺`.
    pub fn bool_false(owners: PartySet) -> Value {
        Value::inr(Value::Unit(owners))
    }

    fn collect_roles(&self, acc: &mut PartySet) {
        match self {
            Value::Var(_) => {}
            Value::Lambda { body, parties, .. } => {
                for p in parties.iter() {
                    acc.insert(p);
                }
                body.collect_roles(acc);
            }
            Value::Unit(ps) | Value::Fst(ps) | Value::Snd(ps) | Value::Lookup(_, ps) => {
                for p in ps.iter() {
                    acc.insert(p);
                }
            }
            Value::Inl(v) | Value::Inr(v) => v.collect_roles(acc),
            Value::Pair(l, r) => {
                l.collect_roles(acc);
                r.collect_roles(acc);
            }
            Value::Tuple(vs) => {
                for v in vs {
                    v.collect_roles(acc);
                }
            }
            Value::Com { from, to } => {
                acc.insert(*from);
                for p in to.iter() {
                    acc.insert(p);
                }
            }
        }
    }
}

impl fmt::Display for Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Data::Unit => write!(f, "()"),
            Data::Sum(l, r) => write!(f, "({l}+{r})"),
            Data::Prod(l, r) => write!(f, "({l}×{r})"),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Data(d, ps) => write!(f, "{d}@{ps}"),
            Type::Fun(a, r, ps) => write!(f, "({a}→{r})@{ps}"),
            Type::Tuple(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Val(v) => write!(f, "{v}"),
            Expr::App(m, n) => write!(f, "({m} {n})"),
            Expr::Case { parties, scrutinee, left_var, left, right_var, right } => write!(
                f,
                "case_{parties} {scrutinee} of Inl {left_var} ⇒ {left}; Inr {right_var} ⇒ {right}"
            ),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Var(x) => write!(f, "{x}"),
            Value::Lambda { param, param_ty, body, parties } => {
                write!(f, "(λ{param}:{param_ty}. {body})@{parties}")
            }
            Value::Unit(ps) => write!(f, "()@{ps}"),
            Value::Inl(v) => write!(f, "Inl {v}"),
            Value::Inr(v) => write!(f, "Inr {v}"),
            Value::Pair(l, r) => write!(f, "Pair {l} {r}"),
            Value::Tuple(vs) => {
                write!(f, "(")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Value::Fst(ps) => write!(f, "fst@{ps}"),
            Value::Snd(ps) => write!(f, "snd@{ps}"),
            Value::Lookup(i, ps) => write!(f, "lookup{i}@{ps}"),
            Value::Com { from, to } => write!(f, "com_{from};{to}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parties;

    #[test]
    fn roles_collects_every_mentioned_party() {
        let expr = Expr::app(
            Expr::val(Value::Com { from: Party(0), to: parties![1, 2] }),
            Expr::val(Value::Unit(parties![0])),
        );
        assert_eq!(expr.roles(), parties![0, 1, 2]);
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::case(
            parties![0],
            Expr::val(Value::bool_true(parties![0])),
            "x",
            Expr::val(Value::Var("x".into())),
            "y",
            Expr::val(Value::Var("y".into())),
        );
        let s = e.to_string();
        assert!(s.contains("case_{p0}"), "got {s}");
        assert!(s.contains("Inl"), "got {s}");
    }

    #[test]
    fn bool_encoding_round_trips() {
        assert_eq!(Value::bool_true(parties![0]), Value::inl(Value::Unit(parties![0])));
        assert!(matches!(Data::bool(), Data::Sum(_, _)));
    }
}
