//! Endpoint projection `⟦·⟧p` from λC to λL (Fig. 22).

use crate::local::{floor, floor_value, LExpr, LValue};
use crate::party::Party;
use crate::syntax::{Expr, Value};

/// Projects a choreography to the party `p`.
pub fn project(expr: &Expr, p: Party) -> LExpr {
    floor(&project_expr(expr, p))
}

fn project_expr(expr: &Expr, p: Party) -> LExpr {
    match expr {
        Expr::Val(v) => LExpr::Val(project_value(v, p)),
        Expr::App(m, n) => floor(&LExpr::app(project_expr(m, p), project_expr(n, p))),
        Expr::Case { parties, scrutinee, left_var, left, right_var, right } => {
            let scrutinee = Box::new(project_expr(scrutinee, p));
            if parties.contains(p) {
                floor(&LExpr::Case {
                    scrutinee,
                    left_var: left_var.clone(),
                    left: Box::new(project_expr(left, p)),
                    right_var: right_var.clone(),
                    right: Box::new(project_expr(right, p)),
                })
            } else {
                // Non-participants keep evaluating the scrutinee (it may
                // involve them) but both branches are ⊥.
                floor(&LExpr::Case {
                    scrutinee,
                    left_var: left_var.clone(),
                    left: Box::new(LExpr::Val(LValue::Bottom)),
                    right_var: right_var.clone(),
                    right: Box::new(LExpr::Val(LValue::Bottom)),
                })
            }
        }
    }
}

fn project_value(value: &Value, p: Party) -> LValue {
    let projected = match value {
        Value::Var(x) => LValue::Var(x.clone()),
        Value::Lambda { param, body, parties, .. } => {
            if parties.contains(p) {
                LValue::Lambda { param: param.clone(), body: Box::new(project_expr(body, p)) }
            } else {
                LValue::Bottom
            }
        }
        Value::Unit(owners) => {
            if owners.contains(p) {
                LValue::Unit
            } else {
                LValue::Bottom
            }
        }
        Value::Inl(v) => LValue::inl(project_value(v, p)),
        Value::Inr(v) => LValue::inr(project_value(v, p)),
        Value::Pair(l, r) => LValue::pair(project_value(l, p), project_value(r, p)),
        Value::Tuple(vs) => LValue::Tuple(vs.iter().map(|v| project_value(v, p)).collect()),
        Value::Fst(owners) => {
            if owners.contains(p) {
                LValue::Fst
            } else {
                LValue::Bottom
            }
        }
        Value::Snd(owners) => {
            if owners.contains(p) {
                LValue::Snd
            } else {
                LValue::Bottom
            }
        }
        Value::Lookup(i, owners) => {
            if owners.contains(p) {
                LValue::Lookup(*i)
            } else {
                LValue::Bottom
            }
        }
        Value::Com { from, to } => {
            // Fig. 3(c) / Fig. 22: the four-way split.
            if p == *from && to.contains(p) {
                let mut others = to.clone();
                let others = others_without(&mut others, p);
                LValue::SendSelf(others)
            } else if p == *from {
                LValue::Send(to.clone())
            } else if to.contains(p) {
                LValue::Recv(*from)
            } else {
                LValue::Bottom
            }
        }
    };
    floor_value(&projected)
}

fn others_without(set: &mut crate::party::PartySet, p: Party) -> crate::party::PartySet {
    set.iter().filter(|q| *q != p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parties;

    #[test]
    fn com_projects_to_send_recv_and_bottom() {
        let com = Value::Com { from: Party(0), to: parties![1, 2] };
        assert_eq!(project_value(&com, Party(0)), LValue::Send(parties![1, 2]));
        assert_eq!(project_value(&com, Party(1)), LValue::Recv(Party(0)));
        assert_eq!(project_value(&com, Party(3)), LValue::Bottom);
    }

    #[test]
    fn self_including_multicast_projects_to_send_self() {
        let com = Value::Com { from: Party(0), to: parties![0, 1] };
        assert_eq!(project_value(&com, Party(0)), LValue::SendSelf(parties![1]));
        assert_eq!(project_value(&com, Party(1)), LValue::Recv(Party(0)));
    }

    #[test]
    fn located_values_project_to_owner_or_bottom() {
        let unit = Value::Unit(parties![0, 1]);
        assert_eq!(project_value(&unit, Party(0)), LValue::Unit);
        assert_eq!(project_value(&unit, Party(2)), LValue::Bottom);
    }

    #[test]
    fn whole_communication_projects_to_a_working_pipeline() {
        // com_{0;{1}} ()@{0}
        let expr = Expr::app(
            Expr::val(Value::Com { from: Party(0), to: parties![1] }),
            Expr::val(Value::Unit(parties![0])),
        );
        let at0 = project(&expr, Party(0));
        let at1 = project(&expr, Party(1));
        let at2 = project(&expr, Party(2));
        assert_eq!(
            at0,
            LExpr::app(LExpr::val(LValue::Send(parties![1])), LExpr::val(LValue::Unit))
        );
        assert_eq!(at1, LExpr::app(LExpr::val(LValue::Recv(Party(0))), LExpr::val(LValue::Bottom)));
        // A bystander's projection collapses entirely.
        assert_eq!(at2, LExpr::val(LValue::Bottom));
    }

    #[test]
    fn non_participants_skip_case_branches() {
        let case = Expr::case(
            parties![0],
            Expr::val(Value::bool_true(parties![0])),
            "x",
            Expr::val(Value::Unit(parties![0])),
            "y",
            Expr::val(Value::Unit(parties![0])),
        );
        assert_eq!(project(&case, Party(1)), LExpr::val(LValue::Bottom));
    }
}
