//! An executable rendition of the paper's formal model (§4, Appendix D):
//! the conclaves-&-MLVs choreographic lambda calculus **λC**, its local
//! process language **λL**, endpoint projection between them, and the
//! network semantics **λN**.
//!
//! The paper proves progress, preservation, and a sound/complete
//! bisimulation between λC and λN (from which deadlock freedom follows,
//! Corollary 1). Here those theorems become *dynamic checks*: the crate
//! ships a random well-typed-program generator ([`gen`]) and property
//! tests that exercise each theorem on thousands of programs — an
//! executable companion to Appendices E–I.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`syntax`] | Fig. 14 — λC terms, values, and types |
//! | [`mask`] | Fig. 15 — the `▷` masking operator |
//! | [`typing`] | Fig. 16 — the 13 typing rules (algorithmic reading) |
//! | [`subst`] | Fig. 17 — masked substitution |
//! | [`semantics`] | Fig. 18 — the centralized small-step semantics |
//! | [`local`] | Figs. 19–21 — λL, the floor `⌊·⌋`, and annotated steps |
//! | [`epp`] | Fig. 22 — endpoint projection `⟦·⟧p` |
//! | [`network`] | Fig. 23 — λN networks and their rendezvous scheduler |
//! | [`gen`] | random well-typed λC programs for the property tests |
//! | [`programs`] | named λC programs for communication-complexity checks |
//!
//! One deliberate deviation: the paper's typing rules are declarative
//! (`TCom`, `TProj*` are type *schemes* with free metavariables), while
//! [`typing::type_of`] is algorithmic. Operator values (`com`, `fst`,
//! `snd`, `lookup`) are therefore only typeable in application position,
//! where the argument's type pins the scheme down. This is conservative:
//! every program the checker accepts is well-typed in the paper's system,
//! which is the direction the dynamic theorem checks need.

pub mod epp;
pub mod gen;
pub mod local;
pub mod mask;
pub mod network;
pub mod party;
pub mod programs;
pub mod semantics;
pub mod subst;
pub mod syntax;
pub mod typing;

pub use party::{Party, PartySet};
pub use syntax::{Data, Expr, Type, Value};
