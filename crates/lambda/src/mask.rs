//! The mask operator `▷` (Fig. 15).
//!
//! `T ▷ Θ` reads as "type `T` masked to the local census `Θ`" or "`Θ`'s
//! view of `T`". It is *partial*: masking a data type to a census that
//! shares no owner, or a function to a census that does not contain all
//! its participants, is undefined (`None`). Because it is used during
//! type checking, failures surface as type errors rather than run-time
//! faults (§4, D.2).

use crate::party::PartySet;
use crate::syntax::{Type, Value};

/// `T ▷ Θ` for types (rules MTData, MTFunction, MTVector).
pub fn mask_type(ty: &Type, theta: &PartySet) -> Option<Type> {
    match ty {
        Type::Data(d, owners) => {
            let shared = owners.intersection(theta);
            // MTData: p⁺ ∩ Θ ≠ ∅
            if shared.is_empty() {
                None
            } else {
                Some(Type::Data(d.clone(), shared))
            }
        }
        Type::Fun(a, r, owners) => {
            // MTFunction: p⁺ ⊆ Θ (functions cannot be partially seen).
            if owners.is_subset(theta) {
                Some(Type::Fun(a.clone(), r.clone(), owners.clone()))
            } else {
                None
            }
        }
        Type::Tuple(ts) => {
            // MTVector: every component must mask.
            let masked: Option<Vec<Type>> = ts.iter().map(|t| mask_type(t, theta)).collect();
            Some(Type::Tuple(masked?))
        }
    }
}

/// `V ▷ Θ` for values (rules MVLambda … MVVar).
pub fn mask_value(value: &Value, theta: &PartySet) -> Option<Value> {
    match value {
        Value::Var(x) => Some(Value::Var(x.clone())), // MVVar
        Value::Lambda { param, param_ty, body, parties } => {
            // MVLambda: p⁺ ⊆ Θ, unchanged.
            if parties.is_subset(theta) {
                Some(Value::Lambda {
                    param: param.clone(),
                    param_ty: param_ty.clone(),
                    body: body.clone(),
                    parties: parties.clone(),
                })
            } else {
                None
            }
        }
        Value::Unit(owners) => {
            // MVUnit: p⁺ ∩ Θ ≠ ∅, owners shrink.
            let shared = owners.intersection(theta);
            if shared.is_empty() {
                None
            } else {
                Some(Value::Unit(shared))
            }
        }
        Value::Inl(v) => Some(Value::Inl(Box::new(mask_value(v, theta)?))),
        Value::Inr(v) => Some(Value::Inr(Box::new(mask_value(v, theta)?))),
        Value::Pair(l, r) => {
            Some(Value::Pair(Box::new(mask_value(l, theta)?), Box::new(mask_value(r, theta)?)))
        }
        Value::Tuple(vs) => {
            let masked: Option<Vec<Value>> = vs.iter().map(|v| mask_value(v, theta)).collect();
            Some(Value::Tuple(masked?))
        }
        Value::Fst(owners) => {
            // MVProj1: p⁺ ⊆ Θ, unchanged.
            owners.is_subset(theta).then(|| Value::Fst(owners.clone()))
        }
        Value::Snd(owners) => owners.is_subset(theta).then(|| Value::Snd(owners.clone())),
        Value::Lookup(i, owners) => {
            owners.is_subset(theta).then(|| Value::Lookup(*i, owners.clone()))
        }
        Value::Com { from, to } => {
            // MVCom: s ∈ Θ and r⁺ ⊆ Θ, unchanged.
            (theta.contains(*from) && to.is_subset(theta))
                .then(|| Value::Com { from: *from, to: to.clone() })
        }
    }
}

/// The paper's `noop▷p⁺(T)` precondition: masking `T` to `p⁺` is defined
/// and changes nothing.
pub fn mask_is_noop(ty: &Type, theta: &PartySet) -> bool {
    mask_type(ty, theta).as_ref() == Some(ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parties;
    use crate::syntax::Data;

    #[test]
    fn data_types_shrink_to_the_intersection() {
        let ty = Type::data(Data::Unit, parties![0, 1, 2]);
        assert_eq!(
            mask_type(&ty, &parties![1, 2, 3]),
            Some(Type::data(Data::Unit, parties![1, 2]))
        );
        assert_eq!(mask_type(&ty, &parties![3]), None);
    }

    #[test]
    fn function_types_are_all_or_nothing() {
        let ty = Type::fun(
            Type::data(Data::Unit, parties![0]),
            Type::data(Data::Unit, parties![0]),
            parties![0, 1],
        );
        assert_eq!(mask_type(&ty, &parties![0, 1, 2]), Some(ty.clone()));
        assert_eq!(mask_type(&ty, &parties![0]), None);
    }

    #[test]
    fn unit_values_shrink() {
        let v = Value::Unit(parties![0, 1]);
        assert_eq!(mask_value(&v, &parties![1, 2]), Some(Value::Unit(parties![1])));
        assert_eq!(mask_value(&v, &parties![2]), None);
    }

    #[test]
    fn pairs_mask_componentwise() {
        let v = Value::pair(Value::Unit(parties![0, 1]), Value::Unit(parties![1, 2]));
        assert_eq!(
            mask_value(&v, &parties![1]),
            Some(Value::pair(Value::Unit(parties![1]), Value::Unit(parties![1])))
        );
        // The left component cannot mask to {2}.
        assert_eq!(mask_value(&v, &parties![2]).map(|_| ()), None);
    }

    #[test]
    fn masking_to_owners_is_a_noop() {
        let ty = Type::data(Data::bool(), parties![0, 1]);
        assert!(mask_is_noop(&ty, &parties![0, 1]));
        assert!(mask_is_noop(&ty, &parties![0, 1]));
        assert!(!mask_is_noop(&ty, &parties![0]));
    }

    #[test]
    fn com_masks_only_when_fully_visible() {
        let v = Value::Com { from: crate::party::Party(0), to: parties![1] };
        assert_eq!(mask_value(&v, &parties![0, 1]), Some(v.clone()));
        assert_eq!(mask_value(&v, &parties![1]), None);
    }

    #[test]
    fn tuples_need_every_component() {
        let ty = Type::Tuple(vec![
            Type::data(Data::Unit, parties![0]),
            Type::data(Data::Unit, parties![1]),
        ]);
        assert!(mask_type(&ty, &parties![0, 1]).is_some());
        assert!(mask_type(&ty, &parties![0]).is_none());
    }
}
