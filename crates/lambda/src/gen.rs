//! Random well-typed λC programs.
//!
//! The generator is type-directed: given a census and a goal type it
//! emits an expression of exactly that type, choosing among values,
//! β-redexes, communications, conclaved cases, and projections. The
//! property tests use it to check the paper's theorems (progress,
//! preservation, EPP soundness/completeness, deadlock freedom) on
//! thousands of programs.
//!
//! Sum shapes are restricted to `d + ()` and `() + d` so that injections
//! have canonical types under the algorithmic checker (see the crate
//! docs); booleans `() + ()` are the common case, as in the paper's
//! examples.

use crate::party::{Party, PartySet};
use crate::syntax::{Data, Expr, Type, Value, Var};
use rand::Rng;

/// Tuning knobs for the generator.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of parties in the census (`p0 … p(n-1)`).
    pub census_size: u32,
    /// Maximum expression depth.
    pub max_depth: usize,
    /// Maximum data-shape depth.
    pub max_data_depth: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { census_size: 3, max_depth: 4, max_data_depth: 2 }
    }
}

/// The census `{p0, …, p(n-1)}` for a configuration.
pub fn census_of(config: &GenConfig) -> PartySet {
    PartySet::from_indices(0..config.census_size)
}

/// Generates a closed, well-typed program over the configured census,
/// returning the expression and its type.
pub fn gen_program<R: Rng + ?Sized>(rng: &mut R, config: &GenConfig) -> (Expr, Type) {
    let census = census_of(config);
    let d = gen_data(rng, config.max_data_depth);
    let owners = gen_owners(rng, &census);
    let ty = Type::Data(d.clone(), owners.clone());
    let mut ctx = Ctx { rng, fresh: 0 };
    let expr = ctx.gen_expr(&census, &[], &d, &owners, config.max_depth);
    (expr, ty)
}

struct Ctx<'a, R: Rng + ?Sized> {
    rng: &'a mut R,
    fresh: u32,
}

impl<R: Rng + ?Sized> Ctx<'_, R> {
    fn fresh_var(&mut self) -> Var {
        self.fresh += 1;
        format!("x{}", self.fresh)
    }

    fn gen_expr(
        &mut self,
        census: &PartySet,
        env: &[(Var, Type)],
        d: &Data,
        owners: &PartySet,
        depth: usize,
    ) -> Expr {
        if depth == 0 {
            return self.gen_leaf(census, env, d, owners);
        }
        match self.rng.gen_range(0..10u8) {
            // Communication: relocate the value from a sender.
            0..=2 => {
                let sender = pick_party(self.rng, census);
                let mut source = gen_owners_containing(self.rng, census, sender);
                source.insert(sender);
                let arg = self.gen_expr(census, env, d, &source, depth - 1);
                Expr::app(Expr::val(Value::Com { from: sender, to: owners.clone() }), arg)
            }
            // β-redex: (λx:A. body) arg.
            3 | 4 => {
                let parties = gen_superset(self.rng, census, owners);
                let param_d = gen_data(self.rng, 1);
                let param_owners = gen_owners(self.rng, &parties);
                let param_ty = Type::Data(param_d.clone(), param_owners.clone());
                let x = self.fresh_var();
                let mut body_env: Vec<(Var, Type)> = env.to_vec();
                body_env.push((x.clone(), param_ty.clone()));
                let body = self.gen_expr(&parties, &body_env, d, owners, depth - 1);
                let arg = self.gen_expr(census, env, &param_d, &param_owners, depth - 1);
                Expr::app(Expr::val(Value::lambda(x, param_ty, body, parties)), arg)
            }
            // Conclaved case on a boolean.
            5 | 6 => {
                let parties = gen_superset(self.rng, census, owners);
                let scrutinee_owners = gen_superset(self.rng, census, &parties);
                let scrutinee =
                    self.gen_expr(census, env, &Data::bool(), &scrutinee_owners, depth - 1);
                let xl = self.fresh_var();
                let xr = self.fresh_var();
                let mut left_env: Vec<(Var, Type)> = env.to_vec();
                left_env.push((xl.clone(), Type::Data(Data::Unit, parties.clone())));
                let mut right_env: Vec<(Var, Type)> = env.to_vec();
                right_env.push((xr.clone(), Type::Data(Data::Unit, parties.clone())));
                let left = self.gen_expr(&parties, &left_env, d, owners, depth - 1);
                let right = self.gen_expr(&parties, &right_env, d, owners, depth - 1);
                Expr::Case {
                    parties,
                    scrutinee: Box::new(scrutinee),
                    left_var: xl,
                    left: Box::new(left),
                    right_var: xr,
                    right: Box::new(right),
                }
            }
            // Projection out of a pair.
            7 => {
                let other = gen_data(self.rng, 1);
                let pair_owners = gen_superset(self.rng, census, owners);
                let take_first = self.rng.gen();
                let pair_d = if take_first {
                    Data::prod(d.clone(), other)
                } else {
                    Data::prod(other, d.clone())
                };
                let pair = self.gen_expr(census, env, &pair_d, &pair_owners, depth - 1);
                let proj = if take_first {
                    Value::Fst(owners.clone())
                } else {
                    Value::Snd(owners.clone())
                };
                Expr::app(Expr::val(proj), pair)
            }
            _ => self.gen_leaf(census, env, d, owners),
        }
    }

    /// A leaf: a variable whose masked type fits, or a literal value.
    fn gen_leaf(
        &mut self,
        census: &PartySet,
        env: &[(Var, Type)],
        d: &Data,
        owners: &PartySet,
    ) -> Expr {
        let goal = Type::Data(d.clone(), owners.clone());
        let candidates: Vec<&(Var, Type)> = env
            .iter()
            .filter(|(_, ty)| crate::mask::mask_type(ty, census).as_ref() == Some(&goal))
            .collect();
        if !candidates.is_empty() && self.rng.gen_bool(0.5) {
            let (x, _) = candidates[self.rng.gen_range(0..candidates.len())];
            return Expr::val(Value::Var(x.clone()));
        }
        Expr::val(self.gen_value(d, owners))
    }

    fn gen_value(&mut self, d: &Data, owners: &PartySet) -> Value {
        match d {
            Data::Unit => Value::Unit(owners.clone()),
            Data::Prod(l, r) => Value::pair(self.gen_value(l, owners), self.gen_value(r, owners)),
            Data::Sum(l, r) => {
                // Shapes are `d + ()` or `() + d`; both sides are unit
                // for booleans. Pick an injectable side (the side whose
                // complement is Unit, so the canonical type matches).
                let left_ok = **r == Data::Unit;
                let right_ok = **l == Data::Unit;
                let go_left = match (left_ok, right_ok) {
                    (true, true) => self.rng.gen(),
                    (true, false) => true,
                    (false, true) => false,
                    (false, false) => {
                        unreachable!("generator only produces sums with a unit side")
                    }
                };
                if go_left {
                    Value::inl(self.gen_value(l, owners))
                } else {
                    Value::inr(self.gen_value(r, owners))
                }
            }
        }
    }
}

/// A random data shape with at least one unit side in every sum.
pub fn gen_data<R: Rng + ?Sized>(rng: &mut R, depth: usize) -> Data {
    if depth == 0 {
        return Data::Unit;
    }
    match rng.gen_range(0..4u8) {
        0 => Data::Unit,
        1 => Data::bool(),
        2 => {
            let inner = gen_data(rng, depth - 1);
            if rng.gen() {
                Data::sum(inner, Data::Unit)
            } else {
                Data::sum(Data::Unit, inner)
            }
        }
        _ => Data::prod(gen_data(rng, depth - 1), gen_data(rng, depth - 1)),
    }
}

/// A random non-empty subset of `census`.
pub fn gen_owners<R: Rng + ?Sized>(rng: &mut R, census: &PartySet) -> PartySet {
    let all: Vec<Party> = census.iter().collect();
    loop {
        let subset: PartySet = all.iter().copied().filter(|_| rng.gen_bool(0.5)).collect();
        if !subset.is_empty() {
            return subset;
        }
    }
}

fn gen_owners_containing<R: Rng + ?Sized>(rng: &mut R, census: &PartySet, must: Party) -> PartySet {
    let mut set = gen_owners(rng, census);
    set.insert(must);
    set
}

/// A random set with `lower ⊆ result ⊆ census`.
fn gen_superset<R: Rng + ?Sized>(rng: &mut R, census: &PartySet, lower: &PartySet) -> PartySet {
    let mut set = lower.clone();
    for p in census.iter() {
        if rng.gen_bool(0.3) {
            set.insert(p);
        }
    }
    set
}

fn pick_party<R: Rng + ?Sized>(rng: &mut R, set: &PartySet) -> Party {
    let all: Vec<Party> = set.iter().collect();
    all[rng.gen_range(0..all.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typing::{type_of, Env};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_programs_type_check_at_the_declared_type() {
        let mut rng = StdRng::seed_from_u64(1);
        let config = GenConfig::default();
        let census = census_of(&config);
        for i in 0..200 {
            let (expr, ty) = gen_program(&mut rng, &config);
            let checked = type_of(&census, &Env::new(), &expr);
            assert_eq!(checked.as_ref(), Ok(&ty), "program {i}: {expr}");
        }
    }

    #[test]
    fn generator_covers_communication_and_branching() {
        let mut rng = StdRng::seed_from_u64(2);
        let config = GenConfig { census_size: 3, max_depth: 5, max_data_depth: 2 };
        let mut saw_com = false;
        let mut saw_case = false;
        for _ in 0..100 {
            let (expr, _) = gen_program(&mut rng, &config);
            let printed = expr.to_string();
            saw_com |= printed.contains("com_");
            saw_case |= printed.contains("case_");
        }
        assert!(saw_com, "no communication generated in 100 programs");
        assert!(saw_case, "no case generated in 100 programs");
    }

    #[test]
    fn single_party_census_works() {
        let mut rng = StdRng::seed_from_u64(3);
        let config = GenConfig { census_size: 1, max_depth: 3, max_data_depth: 1 };
        let census = census_of(&config);
        for _ in 0..50 {
            let (expr, ty) = gen_program(&mut rng, &config);
            assert_eq!(type_of(&census, &Env::new(), &expr), Ok(ty));
        }
    }
}
