//! Named λC programs encoding the paper's key communication patterns,
//! used by tests and benchmarks to check *communication complexity*
//! claims at the formal level.
//!
//! The centerpiece pair is [`reuse_koc`] versus [`resend_koc`]: both
//! branch twice on the same boolean among the same conclave, but the
//! first binds the multicast result and reuses it ("No additional
//! communication is needed for KoC in the second conditional!", §3.3),
//! while the second re-communicates before the second branch — the cost
//! a system without multiply-located values pays.

use crate::party::{Party, PartySet};
use crate::syntax::{Data, Expr, Type, Value};

/// A boolean owned by `owners`.
fn bool_value(flag: bool, owners: PartySet) -> Value {
    if flag {
        Value::bool_true(owners)
    } else {
        Value::bool_false(owners)
    }
}

/// `com_{from;to} payload`
pub fn com(from: Party, to: PartySet, payload: Expr) -> Expr {
    Expr::app(Expr::val(Value::Com { from, to }), payload)
}

/// A case over a boolean where both branches return booleans owned by
/// the case's parties.
fn bool_case(parties: PartySet, scrutinee: Expr, then_value: bool, else_value: bool) -> Expr {
    Expr::case(
        parties.clone(),
        scrutinee,
        "_l",
        Expr::val(bool_value(then_value, parties.clone())),
        "_r",
        Expr::val(bool_value(else_value, parties)),
    )
}

/// §3.3 pattern, MLV style: party 0 multicasts a boolean to the conclave
/// `{1, 2}`, which branches on it **twice** by λ-binding the
/// multiply-located value. Exactly **one** communication happens.
pub fn reuse_koc(flag: bool) -> Expr {
    let conclave = PartySet::from_indices([1, 2]);
    let multicast =
        com(Party(0), conclave.clone(), Expr::val(bool_value(flag, PartySet::singleton(Party(0)))));
    // λx. case x of ... (case x of ...) — the second case reuses x.
    let inner = bool_case(conclave.clone(), Expr::val(Value::Var("x".into())), true, false);
    let outer = Expr::case(
        conclave.clone(),
        Expr::val(Value::Var("x".into())),
        "_l",
        inner.clone(),
        "_r",
        inner,
    );
    let lambda = Value::lambda("x", Type::data(Data::bool(), conclave.clone()), outer, conclave);
    Expr::app(Expr::val(lambda), multicast)
}

/// The same double branch *without* MLV reuse: after the first case,
/// party 1 re-communicates the flag to the conclave before the second
/// branch. **Two** communications happen.
pub fn resend_koc(flag: bool) -> Expr {
    let conclave = PartySet::from_indices([1, 2]);
    let multicast =
        com(Party(0), conclave.clone(), Expr::val(bool_value(flag, PartySet::singleton(Party(0)))));
    let resend = com(Party(1), conclave.clone(), Expr::val(Value::Var("x".into())));
    let inner = bool_case(conclave.clone(), resend, true, false);
    let outer = Expr::case(
        conclave.clone(),
        Expr::val(Value::Var("x".into())),
        "_l",
        inner.clone(),
        "_r",
        inner,
    );
    let lambda = Value::lambda("x", Type::data(Data::bool(), conclave.clone()), outer, conclave);
    Expr::app(Expr::val(lambda), multicast)
}

/// A ring: party 0's unit value is forwarded hop by hop through parties
/// `1..n`. Costs exactly `n` communications.
pub fn ring(n: u32) -> Expr {
    let mut expr = Expr::val(Value::Unit(PartySet::singleton(Party(0))));
    for hop in 1..=n {
        expr = com(Party(hop - 1), PartySet::singleton(Party(hop)), expr);
    }
    expr
}

/// A broadcast followed by a conclave-internal decision, the skeleton of
/// the paper's Fig. 2: party 0 (the "client") sends to party 1 (the
/// "primary"), which multicasts to the "servers" `{1, …, n}`; the
/// servers branch; party 0 is never contacted again.
pub fn client_primary_servers(n_servers: u32, flag: bool) -> Expr {
    assert!(n_servers >= 1);
    let servers = PartySet::from_indices(1..=n_servers);
    let to_primary = com(
        Party(0),
        PartySet::singleton(Party(1)),
        Expr::val(bool_value(flag, PartySet::singleton(Party(0)))),
    );
    let shared = com(Party(1), servers.clone(), to_primary);
    bool_case(servers, shared, true, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Network, Outcome};
    use crate::parties;
    use crate::semantics::eval;
    use crate::typing::{type_of, Env};

    fn comm_steps(expr: &Expr) -> usize {
        let mut net = Network::project_all(expr);
        let (outcome, comms) = net.run_counting(100_000);
        assert!(matches!(outcome, Outcome::Finished(_)), "program must finish: {outcome:?}");
        comms
    }

    #[test]
    fn programs_are_well_typed() {
        let census = parties![0, 1, 2];
        for flag in [true, false] {
            type_of(&census, &Env::new(), &reuse_koc(flag)).expect("reuse_koc types");
            type_of(&census, &Env::new(), &resend_koc(flag)).expect("resend_koc types");
        }
        type_of(&parties![0, 1, 2, 3], &Env::new(), &ring(3)).expect("ring types");
        type_of(&parties![0, 1, 2], &Env::new(), &client_primary_servers(2, true))
            .expect("kvs skeleton types");
    }

    #[test]
    fn koc_reuse_costs_exactly_one_communication() {
        // The formal version of the paper's §3.3 claim: branching twice
        // on a bound MLV needs one multicast; re-communicating costs two.
        for flag in [true, false] {
            assert_eq!(comm_steps(&reuse_koc(flag)), 1, "reuse, flag={flag}");
            assert_eq!(comm_steps(&resend_koc(flag)), 2, "resend, flag={flag}");
        }
    }

    #[test]
    fn both_koc_variants_compute_the_same_answer() {
        for flag in [true, false] {
            let a = eval(&reuse_koc(flag), 10_000).expect("reuse evaluates");
            let b = eval(&resend_koc(flag), 10_000).expect("resend evaluates");
            assert_eq!(a, b, "flag={flag}");
        }
    }

    #[test]
    fn ring_costs_one_communication_per_hop() {
        for n in 1..=5u32 {
            assert_eq!(comm_steps(&ring(n)), n as usize);
        }
    }

    #[test]
    fn kvs_skeleton_never_contacts_the_client_again() {
        // Two comms: client→primary, primary→servers multicast. The
        // conclave's branch costs nothing extra, and party 0 receives
        // nothing.
        for n in 1..=4u32 {
            let expr = client_primary_servers(n, true);
            let mut net = Network::project_all(&expr);
            let (outcome, comms) = net.run_counting(100_000);
            assert!(matches!(outcome, Outcome::Finished(_)));
            // Two send redexes fire regardless of n: client→primary and
            // the primary's multicast (which for n == 1 is a `send*` with
            // an empty recipient list — a communication step that moves
            // no bytes, matching LSend1's μ = ∅ case).
            assert_eq!(comms, 2, "n={n}");
        }
    }
}
