//! The local process language λL (Fig. 19), the `⌊·⌋` floor function
//! (Fig. 20), and the annotated local semantics (Fig. 21).
//!
//! λL is untyped; `⊥` stands for "someone else's problem". The semantics
//! is written against a [`CommOracle`]: pure steps always fire; `send`
//! and `recv` redexes consult the oracle, which the λN scheduler
//! ([`crate::network`]) implements as a rendezvous.

use crate::party::{Party, PartySet};
use std::fmt;

/// λL expressions (`B` in the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LExpr {
    /// A value.
    Val(LValue),
    /// Application.
    App(Box<LExpr>, Box<LExpr>),
    /// Branching.
    Case {
        /// The scrutinee.
        scrutinee: Box<LExpr>,
        /// Left binder.
        left_var: String,
        /// Left branch.
        left: Box<LExpr>,
        /// Right binder.
        right_var: String,
        /// Right branch.
        right: Box<LExpr>,
    },
}

/// λL values (`L` in the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LValue {
    /// A variable.
    Var(String),
    /// Unit.
    Unit,
    /// `λx. B`
    Lambda {
        /// The parameter.
        param: String,
        /// The body.
        body: Box<LExpr>,
    },
    /// Left injection.
    Inl(Box<LValue>),
    /// Right injection.
    Inr(Box<LValue>),
    /// A pair.
    Pair(Box<LValue>, Box<LValue>),
    /// A tuple.
    Tuple(Vec<LValue>),
    /// First projection.
    Fst,
    /// Second projection.
    Snd,
    /// Tuple lookup.
    Lookup(usize),
    /// `recv_p`: expect a message from `p` (ignores its argument).
    Recv(Party),
    /// `send_{p*}`: transmit to the (possibly empty) recipient list, then
    /// evaluate to `⊥`.
    Send(PartySet),
    /// `send*_{p*}`: transmit, then evaluate to the sent value.
    SendSelf(PartySet),
    /// `⊥` — missing, located someplace else.
    Bottom,
}

impl LExpr {
    /// Wraps a value.
    pub fn val(v: LValue) -> LExpr {
        LExpr::Val(v)
    }

    /// `B B'`
    pub fn app(f: LExpr, a: LExpr) -> LExpr {
        LExpr::App(Box::new(f), Box::new(a))
    }

    /// Whether this expression is a value (normal form).
    pub fn as_value(&self) -> Option<&LValue> {
        match self {
            LExpr::Val(v) => Some(v),
            _ => None,
        }
    }
}

impl LValue {
    /// `Inl L`
    pub fn inl(v: LValue) -> LValue {
        LValue::Inl(Box::new(v))
    }

    /// `Inr L`
    pub fn inr(v: LValue) -> LValue {
        LValue::Inr(Box::new(v))
    }

    /// `Pair L L'`
    pub fn pair(l: LValue, r: LValue) -> LValue {
        LValue::Pair(Box::new(l), Box::new(r))
    }
}

/// The floor function `⌊·⌋` (Fig. 20): normalizes ⊥-based expressions so
/// that `⊥`-only structures collapse to `⊥`.
pub fn floor(expr: &LExpr) -> LExpr {
    match expr {
        LExpr::Val(v) => LExpr::Val(floor_value(v)),
        LExpr::App(f, a) => {
            let ff = floor(f);
            let fa = floor(a);
            // `⊥ L = ⊥` (an application of ⊥ to a value vanishes).
            if ff.as_value() == Some(&LValue::Bottom) && fa.as_value().is_some() {
                LExpr::Val(LValue::Bottom)
            } else {
                LExpr::app(ff, fa)
            }
        }
        LExpr::Case { scrutinee, left_var, left, right_var, right } => {
            let fs = floor(scrutinee);
            if fs.as_value() == Some(&LValue::Bottom) {
                LExpr::Val(LValue::Bottom)
            } else {
                LExpr::Case {
                    scrutinee: Box::new(fs),
                    left_var: left_var.clone(),
                    left: Box::new(floor(left)),
                    right_var: right_var.clone(),
                    right: Box::new(floor(right)),
                }
            }
        }
    }
}

/// `⌊·⌋` on values.
pub fn floor_value(value: &LValue) -> LValue {
    match value {
        LValue::Lambda { param, body } => {
            LValue::Lambda { param: param.clone(), body: Box::new(floor(body)) }
        }
        LValue::Inl(v) => match floor_value(v) {
            LValue::Bottom => LValue::Bottom,
            fv => LValue::inl(fv),
        },
        LValue::Inr(v) => match floor_value(v) {
            LValue::Bottom => LValue::Bottom,
            fv => LValue::inr(fv),
        },
        LValue::Pair(l, r) => {
            let fl = floor_value(l);
            let fr = floor_value(r);
            if fl == LValue::Bottom && fr == LValue::Bottom {
                LValue::Bottom
            } else {
                LValue::pair(fl, fr)
            }
        }
        LValue::Tuple(vs) => {
            let fvs: Vec<LValue> = vs.iter().map(floor_value).collect();
            if !fvs.is_empty() && fvs.iter().all(|v| *v == LValue::Bottom) {
                LValue::Bottom
            } else {
                LValue::Tuple(fvs)
            }
        }
        other => other.clone(),
    }
}

/// Standard capture-naive substitution for λL (projected programs are
/// closed and binders are machine-generated, so capture cannot occur).
pub fn subst(expr: &LExpr, x: &str, v: &LValue) -> LExpr {
    match expr {
        LExpr::Val(value) => LExpr::Val(subst_value(value, x, v)),
        LExpr::App(f, a) => LExpr::app(subst(f, x, v), subst(a, x, v)),
        LExpr::Case { scrutinee, left_var, left, right_var, right } => LExpr::Case {
            scrutinee: Box::new(subst(scrutinee, x, v)),
            left_var: left_var.clone(),
            left: Box::new(if left_var == x { (**left).clone() } else { subst(left, x, v) }),
            right_var: right_var.clone(),
            right: Box::new(if right_var == x { (**right).clone() } else { subst(right, x, v) }),
        },
    }
}

fn subst_value(value: &LValue, x: &str, v: &LValue) -> LValue {
    match value {
        LValue::Var(y) => {
            if y == x {
                v.clone()
            } else {
                value.clone()
            }
        }
        LValue::Lambda { param, body } => {
            if param == x {
                value.clone()
            } else {
                LValue::Lambda { param: param.clone(), body: Box::new(subst(body, x, v)) }
            }
        }
        LValue::Inl(inner) => LValue::inl(subst_value(inner, x, v)),
        LValue::Inr(inner) => LValue::inr(subst_value(inner, x, v)),
        LValue::Pair(l, r) => LValue::pair(subst_value(l, x, v), subst_value(r, x, v)),
        LValue::Tuple(vs) => LValue::Tuple(vs.iter().map(|w| subst_value(w, x, v)).collect()),
        _ => value.clone(),
    }
}

/// What a process's next redex requires of the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Need {
    /// A pure step is available.
    Internal,
    /// Blocked on sending `value` to every party in `to`.
    Send {
        /// The recipients (excluding self for `send*`).
        to: PartySet,
        /// The transmitted value.
        value: LValue,
    },
    /// Blocked on receiving from `from`.
    Recv {
        /// The expected sender.
        from: Party,
    },
    /// The expression is a value: nothing to do.
    Done,
    /// No rule applies (cannot happen for projections of well-typed
    /// choreographies).
    Stuck,
}

/// The network side of a local step: how sends and receives resolve.
pub trait CommOracle {
    /// Called at a send redex; returning `false` blocks the step.
    fn send(&mut self, to: &PartySet, value: &LValue) -> bool;
    /// Called at a recv redex; `None` blocks the step.
    fn recv(&mut self, from: Party) -> Option<LValue>;
}

/// Oracle that permits only pure steps.
pub struct PureOnly;

impl CommOracle for PureOnly {
    fn send(&mut self, _to: &PartySet, _value: &LValue) -> bool {
        false
    }
    fn recv(&mut self, _from: Party) -> Option<LValue> {
        None
    }
}

/// Reports what the next redex of `expr` needs, without stepping.
pub fn next_need(expr: &LExpr) -> Need {
    struct Probe {
        need: Option<Need>,
    }
    impl CommOracle for Probe {
        fn send(&mut self, to: &PartySet, value: &LValue) -> bool {
            self.need = Some(Need::Send { to: to.clone(), value: value.clone() });
            false
        }
        fn recv(&mut self, from: Party) -> Option<LValue> {
            self.need = Some(Need::Recv { from });
            None
        }
    }
    let mut probe = Probe { need: None };
    match step_local(expr, &mut probe) {
        Some(_) => Need::Internal,
        None => match probe.need {
            Some(need) => need,
            None => {
                if expr.as_value().is_some() {
                    Need::Done
                } else {
                    Need::Stuck
                }
            }
        },
    }
}

/// Performs one λL step (Fig. 21) using `oracle` to resolve
/// communication. Returns `None` when no step fires (value, blocked, or
/// stuck).
pub fn step_local(expr: &LExpr, oracle: &mut dyn CommOracle) -> Option<LExpr> {
    match expr {
        LExpr::Val(_) => None,
        LExpr::App(f, a) => {
            // LApp2: the function position steps first.
            if let Some(f2) = step_local(f, oracle) {
                return Some(floor(&LExpr::app(f2, (**a).clone())));
            }
            // LApp1: then the argument.
            if let Some(a2) = step_local(a, oracle) {
                return Some(floor(&LExpr::app((**f).clone(), a2)));
            }
            let fv = f.as_value()?;
            let av = a.as_value()?;
            apply_local(fv, av, oracle)
        }
        LExpr::Case { scrutinee, left_var, left, right_var, right } => {
            if let Some(s2) = step_local(scrutinee, oracle) {
                return Some(floor(&LExpr::Case {
                    scrutinee: Box::new(s2),
                    left_var: left_var.clone(),
                    left: left.clone(),
                    right_var: right_var.clone(),
                    right: right.clone(),
                }));
            }
            match scrutinee.as_value()? {
                LValue::Inl(v) => Some(floor(&subst(left, left_var, v))),
                LValue::Inr(v) => Some(floor(&subst(right, right_var, v))),
                _ => None,
            }
        }
    }
}

fn apply_local(f: &LValue, a: &LValue, oracle: &mut dyn CommOracle) -> Option<LExpr> {
    match f {
        // LAbsApp.
        LValue::Lambda { param, body } => Some(floor(&subst(body, param, a))),
        // LProj1 / LProj2 / LProjN.
        LValue::Fst => match a {
            LValue::Pair(l, _) => Some(LExpr::Val((**l).clone())),
            _ => None,
        },
        LValue::Snd => match a {
            LValue::Pair(_, r) => Some(LExpr::Val((**r).clone())),
            _ => None,
        },
        LValue::Lookup(i) => match a {
            LValue::Tuple(vs) => vs.get(*i).map(|v| LExpr::Val(v.clone())),
            _ => None,
        },
        // LSend* family: only data can be sent.
        LValue::Send(to) => {
            if is_data(a) && oracle.send(to, a) {
                Some(LExpr::Val(LValue::Bottom))
            } else {
                None
            }
        }
        LValue::SendSelf(to) => {
            if is_data(a) && oracle.send(to, a) {
                Some(LExpr::Val(a.clone()))
            } else {
                None
            }
        }
        // LRecv: the argument is ignored; the oracle supplies the value.
        LValue::Recv(from) => oracle.recv(*from).map(LExpr::Val),
        _ => None,
    }
}

fn is_data(v: &LValue) -> bool {
    match v {
        LValue::Unit | LValue::Bottom => true,
        LValue::Inl(inner) | LValue::Inr(inner) => is_data(inner),
        LValue::Pair(l, r) => is_data(l) && is_data(r),
        _ => false,
    }
}

impl fmt::Display for LExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LExpr::Val(v) => write!(f, "{v}"),
            LExpr::App(m, n) => write!(f, "({m} {n})"),
            LExpr::Case { scrutinee, left_var, left, right_var, right } => {
                write!(f, "case {scrutinee} of Inl {left_var} ⇒ {left}; Inr {right_var} ⇒ {right}")
            }
        }
    }
}

impl fmt::Display for LValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LValue::Var(x) => write!(f, "{x}"),
            LValue::Unit => write!(f, "()"),
            LValue::Lambda { param, body } => write!(f, "(λ{param}. {body})"),
            LValue::Inl(v) => write!(f, "Inl {v}"),
            LValue::Inr(v) => write!(f, "Inr {v}"),
            LValue::Pair(l, r) => write!(f, "Pair {l} {r}"),
            LValue::Tuple(vs) => {
                write!(f, "(")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            LValue::Fst => write!(f, "fst"),
            LValue::Snd => write!(f, "snd"),
            LValue::Lookup(i) => write!(f, "lookup{i}"),
            LValue::Recv(p) => write!(f, "recv_{p}"),
            LValue::Send(ps) => write!(f, "send_{ps}"),
            LValue::SendSelf(ps) => write!(f, "send*_{ps}"),
            LValue::Bottom => write!(f, "⊥"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parties;

    #[test]
    fn floor_collapses_bottom_structures() {
        assert_eq!(floor_value(&LValue::inl(LValue::Bottom)), LValue::Bottom);
        assert_eq!(floor_value(&LValue::pair(LValue::Bottom, LValue::Bottom)), LValue::Bottom);
        // A pair with one real side keeps its structure.
        assert_eq!(
            floor_value(&LValue::pair(LValue::Unit, LValue::Bottom)),
            LValue::pair(LValue::Unit, LValue::Bottom)
        );
        let app = LExpr::app(LExpr::val(LValue::Bottom), LExpr::val(LValue::Unit));
        assert_eq!(floor(&app), LExpr::val(LValue::Bottom));
    }

    #[test]
    fn beta_reduction_is_pure() {
        let id = LValue::Lambda {
            param: "x".into(),
            body: Box::new(LExpr::val(LValue::Var("x".into()))),
        };
        let app = LExpr::app(LExpr::val(id), LExpr::val(LValue::Unit));
        assert_eq!(next_need(&app), Need::Internal);
        let stepped = step_local(&app, &mut PureOnly).unwrap();
        assert_eq!(stepped, LExpr::val(LValue::Unit));
    }

    #[test]
    fn send_blocks_until_the_oracle_allows() {
        let send = LExpr::app(LExpr::val(LValue::Send(parties![1])), LExpr::val(LValue::Unit));
        assert_eq!(next_need(&send), Need::Send { to: parties![1], value: LValue::Unit });
        assert_eq!(step_local(&send, &mut PureOnly), None);

        struct Allow;
        impl CommOracle for Allow {
            fn send(&mut self, _to: &PartySet, _v: &LValue) -> bool {
                true
            }
            fn recv(&mut self, _from: Party) -> Option<LValue> {
                None
            }
        }
        assert_eq!(step_local(&send, &mut Allow), Some(LExpr::val(LValue::Bottom)));
    }

    #[test]
    fn send_self_keeps_the_value() {
        struct Allow;
        impl CommOracle for Allow {
            fn send(&mut self, _to: &PartySet, _v: &LValue) -> bool {
                true
            }
            fn recv(&mut self, _from: Party) -> Option<LValue> {
                None
            }
        }
        let send = LExpr::app(LExpr::val(LValue::SendSelf(parties![1])), LExpr::val(LValue::Unit));
        assert_eq!(step_local(&send, &mut Allow), Some(LExpr::val(LValue::Unit)));
    }

    #[test]
    fn recv_takes_the_oracle_value() {
        let recv = LExpr::app(LExpr::val(LValue::Recv(Party(0))), LExpr::val(LValue::Bottom));
        assert_eq!(next_need(&recv), Need::Recv { from: Party(0) });

        struct Give;
        impl CommOracle for Give {
            fn send(&mut self, _to: &PartySet, _v: &LValue) -> bool {
                false
            }
            fn recv(&mut self, from: Party) -> Option<LValue> {
                assert_eq!(from, Party(0));
                Some(LValue::inl(LValue::Unit))
            }
        }
        assert_eq!(step_local(&recv, &mut Give), Some(LExpr::val(LValue::inl(LValue::Unit))));
    }

    #[test]
    fn values_need_nothing() {
        assert_eq!(next_need(&LExpr::val(LValue::Unit)), Need::Done);
        assert_eq!(next_need(&LExpr::val(LValue::Bottom)), Need::Done);
    }

    #[test]
    fn stuck_expressions_are_reported() {
        // Applying unit to unit has no rule.
        let stuck = LExpr::app(LExpr::val(LValue::Unit), LExpr::val(LValue::Unit));
        assert_eq!(next_need(&stuck), Need::Stuck);
    }

    #[test]
    fn case_branches_locally() {
        let case = LExpr::Case {
            scrutinee: Box::new(LExpr::val(LValue::inr(LValue::Unit))),
            left_var: "x".into(),
            left: Box::new(LExpr::val(LValue::Var("x".into()))),
            right_var: "y".into(),
            right: Box::new(LExpr::val(LValue::pair(
                LValue::Var("y".into()),
                LValue::Var("y".into()),
            ))),
        };
        assert_eq!(
            step_local(&case, &mut PureOnly),
            Some(LExpr::val(LValue::pair(LValue::Unit, LValue::Unit)))
        );
    }
}
