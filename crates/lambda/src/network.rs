//! λN: networks of asynchronous λL processes (Fig. 23).
//!
//! A network `N` maps parties to λL expressions. Only `∅`-annotated steps
//! are "real" (NPro for pure steps; NCom groups where every send is
//! matched by its receive in the same step), so the scheduler implements
//! a **rendezvous**: a multicast fires only when every recipient is
//! blocked on the matching receive.
//!
//! Deadlock freedom (Corollary 1) says projections of well-typed
//! choreographies never get stuck: either some step fires or every
//! process is a value. [`Network::run`] checks exactly that.

use crate::epp::project;
use crate::local::{next_need, step_local, CommOracle, LExpr, LValue, Need, PureOnly};
use crate::party::{Party, PartySet};
use crate::syntax::Expr;
use std::collections::BTreeMap;

/// A network state: each party's current λL expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Network {
    procs: BTreeMap<Party, LExpr>,
}

/// The result of running a network to quiescence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Every process reduced to a value.
    Finished(BTreeMap<Party, LValue>),
    /// No step can fire but some process is not a value: a deadlock (or
    /// a stuck process). Impossible for projections of well-typed
    /// choreographies.
    Deadlock {
        /// What each non-value process was waiting for.
        blocked: BTreeMap<Party, Need>,
    },
    /// The step budget ran out.
    OutOfFuel,
}

impl Network {
    /// Projects `expr` to every party in `roles(expr)` (Fig. 22's `⟦M⟧`).
    pub fn project_all(expr: &Expr) -> Network {
        let procs = expr.roles().iter().map(|p| (p, project(expr, p))).collect();
        Network { procs }
    }

    /// Builds a network from explicit processes.
    pub fn from_procs(procs: BTreeMap<Party, LExpr>) -> Network {
        Network { procs }
    }

    /// Read access to a process.
    pub fn proc(&self, p: Party) -> Option<&LExpr> {
        self.procs.get(&p)
    }

    /// The parties in the network.
    pub fn parties(&self) -> PartySet {
        self.procs.keys().copied().collect()
    }

    /// Attempts one `∅`-annotated network step, preferring the party
    /// after `cursor` (round-robin fairness). Returns the party that
    /// moved and whether the step was a communication (an NCom
    /// rendezvous rather than a pure NPro step).
    pub fn step_counting(&mut self, cursor: usize) -> Option<(Party, bool)> {
        let parties: Vec<Party> = self.procs.keys().copied().collect();
        let n = parties.len();
        for offset in 0..n {
            let p = parties[(cursor + offset) % n];
            let expr = &self.procs[&p];
            if let Some(stepped) = step_local(expr, &mut PureOnly) {
                self.procs.insert(p, stepped);
                return Some((p, false));
            }
            if let Need::Send { to, value } = next_need(expr) {
                let ready = to.iter().all(|r| {
                    r != p
                        && matches!(
                            self.procs.get(&r).map(next_need),
                            Some(Need::Recv { from }) if from == p
                        )
                });
                if ready {
                    self.rendezvous(p, &to, &value);
                    return Some((p, true));
                }
            }
        }
        None
    }

    /// Like [`Network::run`] but also reports how many steps were
    /// communications — the formal counterpart of the benchmark suite's
    /// message counting.
    pub fn run_counting(&mut self, fuel: usize) -> (Outcome, usize) {
        let mut cursor = 0;
        let mut comms = 0;
        for _ in 0..fuel {
            match self.step_counting(cursor) {
                Some((_, was_comm)) => {
                    cursor += 1;
                    if was_comm {
                        comms += 1;
                    }
                }
                None => return (self.quiesce(), comms),
            }
        }
        (Outcome::OutOfFuel, comms)
    }

    fn quiesce(&self) -> Outcome {
        let mut values = BTreeMap::new();
        let mut blocked = BTreeMap::new();
        for (p, expr) in &self.procs {
            match expr.as_value() {
                Some(v) => {
                    values.insert(*p, v.clone());
                }
                None => {
                    blocked.insert(*p, next_need(expr));
                }
            }
        }
        if blocked.is_empty() {
            Outcome::Finished(values)
        } else {
            Outcome::Deadlock { blocked }
        }
    }

    /// Attempts one `∅`-annotated network step. Returns the party that
    /// moved.
    pub fn step(&mut self, cursor: usize) -> Option<Party> {
        self.step_counting(cursor).map(|(p, _)| p)
    }

    fn rendezvous(&mut self, sender: Party, to: &PartySet, value: &LValue) {
        // Step the sender with an oracle that allows exactly this send.
        struct AllowSend;
        impl CommOracle for AllowSend {
            fn send(&mut self, _to: &PartySet, _value: &LValue) -> bool {
                true
            }
            fn recv(&mut self, _from: Party) -> Option<LValue> {
                None
            }
        }
        let sender_expr = self.procs[&sender].clone();
        let stepped =
            step_local(&sender_expr, &mut AllowSend).expect("probed send redex must step");
        self.procs.insert(sender, stepped);

        // Step every recipient with the delivered value.
        struct Deliver<'a> {
            from: Party,
            value: &'a LValue,
        }
        impl CommOracle for Deliver<'_> {
            fn send(&mut self, _to: &PartySet, _value: &LValue) -> bool {
                false
            }
            fn recv(&mut self, from: Party) -> Option<LValue> {
                (from == self.from).then(|| self.value.clone())
            }
        }
        for r in to.iter() {
            let expr = self.procs[&r].clone();
            let mut oracle = Deliver { from: sender, value };
            let stepped = step_local(&expr, &mut oracle).expect("probed recv redex must step");
            self.procs.insert(r, stepped);
        }
    }

    /// Runs the network round-robin until quiescence.
    pub fn run(&mut self, fuel: usize) -> Outcome {
        self.run_counting(fuel).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parties;
    use crate::syntax::Value;

    #[test]
    fn multicast_rendezvous_completes() {
        // com_{0;{1,2}} ()@{0}: p0 sends, p1 and p2 receive.
        let expr = Expr::app(
            Expr::val(Value::Com { from: Party(0), to: parties![1, 2] }),
            Expr::val(Value::Unit(parties![0])),
        );
        let mut net = Network::project_all(&expr);
        match net.run(100) {
            Outcome::Finished(values) => {
                assert_eq!(values[&Party(0)], LValue::Bottom);
                assert_eq!(values[&Party(1)], LValue::Unit);
                assert_eq!(values[&Party(2)], LValue::Unit);
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn self_including_multicast_keeps_the_senders_copy() {
        let expr = Expr::app(
            Expr::val(Value::Com { from: Party(0), to: parties![0, 1] }),
            Expr::val(Value::Unit(parties![0])),
        );
        let mut net = Network::project_all(&expr);
        match net.run(100) {
            Outcome::Finished(values) => {
                assert_eq!(values[&Party(0)], LValue::Unit);
                assert_eq!(values[&Party(1)], LValue::Unit);
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn mismatched_network_deadlocks() {
        // p0 waits for p1, p1 waits for p0 — a handcrafted deadlock that
        // no well-typed choreography projects to.
        let mut procs = BTreeMap::new();
        procs.insert(
            Party(0),
            LExpr::app(LExpr::val(LValue::Recv(Party(1))), LExpr::val(LValue::Bottom)),
        );
        procs.insert(
            Party(1),
            LExpr::app(LExpr::val(LValue::Recv(Party(0))), LExpr::val(LValue::Bottom)),
        );
        let mut net = Network::from_procs(procs);
        match net.run(100) {
            Outcome::Deadlock { blocked } => {
                assert_eq!(blocked.len(), 2);
                assert_eq!(blocked[&Party(0)], Need::Recv { from: Party(1) });
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn case_inside_network_follows_the_chosen_branch() {
        // p0 cases on a boolean it owns, then sends the chosen unit to
        // p1. Both branches send, so p1's projection receives either way
        // (the branches merge to identical recvs after floor).
        let send_unit = Expr::app(
            Expr::val(Value::Com { from: Party(0), to: parties![1] }),
            Expr::val(Value::Unit(parties![0])),
        );
        let expr = Expr::case(
            parties![0],
            Expr::val(Value::bool_false(parties![0])),
            "x",
            send_unit.clone(),
            "y",
            send_unit,
        );
        // p1's projection: both case branches are ⊥-cases for p1... but
        // the scrutinee is p0-only, so p1's whole case floors to ⊥ —
        // meaning p1 must get its recv from elsewhere. Here we project
        // manually to show the network completing for the participants.
        let mut net = Network::project_all(&expr);
        // p1's projection of the *case* is ⊥ (it skips the branch), so
        // only p0 steps; the send can never match and p0 deadlocks — this
        // is exactly why λC requires KoC: the choreography above is NOT
        // well-typed (p1 receives inside a conclave it is not part of).
        match net.run(100) {
            Outcome::Deadlock { blocked } => {
                assert!(blocked.contains_key(&Party(0)));
            }
            other => panic!("expected the ill-typed program to deadlock, got {other:?}"),
        }
    }
}
