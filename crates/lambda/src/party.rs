//! Parties and party sets.
//!
//! The paper writes `p` for a single party and `p⁺` for a *non-empty* set
//! of parties; `Θ` is a party set used as a typing context (the census).
//! [`PartySet`] is an ordered set with the usual algebra; emptiness
//! checks are the callers' responsibility because the type/semantic rules
//! state them explicitly.

use std::collections::BTreeSet;
use std::fmt;

/// A party (process, location). Displayed as `p0`, `p1`, ...
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Party(pub u32);

impl fmt::Display for Party {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// An ordered set of parties.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PartySet(BTreeSet<Party>);

impl PartySet {
    /// The empty set.
    pub fn empty() -> Self {
        PartySet(BTreeSet::new())
    }

    /// A singleton set.
    pub fn singleton(p: Party) -> Self {
        PartySet(std::iter::once(p).collect())
    }

    /// Builds a set from party indices.
    pub fn from_indices(indices: impl IntoIterator<Item = u32>) -> Self {
        PartySet(indices.into_iter().map(Party).collect())
    }

    /// The number of parties.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, p: Party) -> bool {
        self.0.contains(&p)
    }

    /// Inserts a party.
    pub fn insert(&mut self, p: Party) {
        self.0.insert(p);
    }

    /// Set union.
    pub fn union(&self, other: &PartySet) -> PartySet {
        PartySet(self.0.union(&other.0).copied().collect())
    }

    /// Set intersection (the engine of the `▷` operator).
    pub fn intersection(&self, other: &PartySet) -> PartySet {
        PartySet(self.0.intersection(&other.0).copied().collect())
    }

    /// Set difference.
    pub fn difference(&self, other: &PartySet) -> PartySet {
        PartySet(self.0.difference(&other.0).copied().collect())
    }

    /// Subset test.
    pub fn is_subset(&self, other: &PartySet) -> bool {
        self.0.is_subset(&other.0)
    }

    /// Iterates in order.
    pub fn iter(&self) -> impl Iterator<Item = Party> + '_ {
        self.0.iter().copied()
    }

    /// An arbitrary (least) element, if any.
    pub fn first(&self) -> Option<Party> {
        self.0.iter().next().copied()
    }
}

impl FromIterator<Party> for PartySet {
    fn from_iter<I: IntoIterator<Item = Party>>(iter: I) -> Self {
        PartySet(iter.into_iter().collect())
    }
}

impl fmt::Display for PartySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

/// Convenience macro for building party sets in tests: `parties![0, 1]`.
#[macro_export]
macro_rules! parties {
    ($($i:expr),* $(,)?) => {
        $crate::party::PartySet::from_indices([$($i as u32),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_algebra_behaves() {
        let a = parties![0, 1, 2];
        let b = parties![1, 2, 3];
        assert_eq!(a.union(&b), parties![0, 1, 2, 3]);
        assert_eq!(a.intersection(&b), parties![1, 2]);
        assert_eq!(a.difference(&b), parties![0]);
        assert!(parties![1].is_subset(&a));
        assert!(!a.is_subset(&b));
        assert!(a.contains(Party(0)));
        assert!(!a.contains(Party(3)));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(parties![0, 2].to_string(), "{p0,p2}");
        assert_eq!(PartySet::empty().to_string(), "{}");
    }

    #[test]
    fn first_is_least() {
        assert_eq!(parties![2, 0, 1].first(), Some(Party(0)));
        assert_eq!(PartySet::empty().first(), None);
    }
}
