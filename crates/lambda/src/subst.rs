//! Masked substitution `M[x := V]` (Fig. 17).
//!
//! Substitution under a binder whose body is conclaved to `p⁺` first
//! masks the substituted value to `p⁺`; if the value does not mask, the
//! (necessarily unused — see Lemma 3) variable is left alone.

use crate::mask::mask_value;
use crate::party::PartySet;
use crate::syntax::{Expr, Value, Var};

/// `M[x := V]`.
pub fn subst_expr(expr: &Expr, x: &Var, v: &Value) -> Expr {
    match expr {
        Expr::Val(value) => Expr::Val(subst_value(value, x, v)),
        Expr::App(f, a) => Expr::app(subst_expr(f, x, v), subst_expr(a, x, v)),
        Expr::Case { parties, scrutinee, left_var, left, right_var, right } => {
            let scrutinee = Box::new(subst_expr(scrutinee, x, v));
            // The branches are conclaved to `parties`: substitute the
            // masked value, and only if masking is defined.
            let masked = mask_value(v, parties);
            let subst_branch = |binder: &Var, body: &Expr| -> Expr {
                if binder == x {
                    body.clone() // shadowed
                } else {
                    match &masked {
                        Some(mv) => subst_expr(body, x, mv),
                        None => body.clone(),
                    }
                }
            };
            Expr::Case {
                parties: parties.clone(),
                scrutinee,
                left_var: left_var.clone(),
                left: Box::new(subst_branch(left_var, left)),
                right_var: right_var.clone(),
                right: Box::new(subst_branch(right_var, right)),
            }
        }
    }
}

/// `V'[x := V]` on values.
pub fn subst_value(value: &Value, x: &Var, v: &Value) -> Value {
    match value {
        Value::Var(y) => {
            if y == x {
                v.clone()
            } else {
                value.clone()
            }
        }
        Value::Lambda { param, param_ty, body, parties } => {
            if param == x {
                value.clone() // shadowed
            } else {
                match mask_value(v, parties) {
                    Some(masked) => Value::Lambda {
                        param: param.clone(),
                        param_ty: param_ty.clone(),
                        body: Box::new(subst_expr(body, x, &masked)),
                        parties: parties.clone(),
                    },
                    // Fig. 17: if V does not mask to p⁺ the substitution
                    // is a no-op (x cannot occur with a usable type).
                    None => value.clone(),
                }
            }
        }
        Value::Inl(inner) => Value::Inl(Box::new(subst_value(inner, x, v))),
        Value::Inr(inner) => Value::Inr(Box::new(subst_value(inner, x, v))),
        Value::Pair(l, r) => {
            Value::Pair(Box::new(subst_value(l, x, v)), Box::new(subst_value(r, x, v)))
        }
        Value::Tuple(vs) => Value::Tuple(vs.iter().map(|w| subst_value(w, x, v)).collect()),
        Value::Unit(_)
        | Value::Fst(_)
        | Value::Snd(_)
        | Value::Lookup(_, _)
        | Value::Com { .. } => value.clone(),
    }
}

/// Substitution that first masks `v` to `theta` (used by the β and case
/// rules, which mask to the redex's parties).
pub fn subst_masked(expr: &Expr, x: &Var, v: &Value, theta: &PartySet) -> Option<Expr> {
    let masked = mask_value(v, theta)?;
    Some(subst_expr(expr, x, &masked))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parties;
    use crate::syntax::{Data, Type};

    fn var(x: &str) -> Expr {
        Expr::Val(Value::Var(x.into()))
    }

    #[test]
    fn variables_are_replaced() {
        let v = Value::Unit(parties![0]);
        assert_eq!(subst_expr(&var("x"), &"x".into(), &v), Expr::Val(v.clone()));
        assert_eq!(subst_expr(&var("y"), &"x".into(), &v), var("y"));
    }

    #[test]
    fn lambda_binders_shadow() {
        let lam = Value::lambda("x", Type::data(Data::Unit, parties![0]), var("x"), parties![0]);
        let out = subst_value(&lam, &"x".into(), &Value::Unit(parties![0]));
        assert_eq!(out, lam);
    }

    #[test]
    fn substitution_under_lambda_masks_the_value() {
        // λy. x  with x := ()@{0,1}, lambda at {0}: x becomes ()@{0}.
        let lam = Value::lambda("y", Type::data(Data::Unit, parties![0]), var("x"), parties![0]);
        let out = subst_value(&lam, &"x".into(), &Value::Unit(parties![0, 1]));
        match out {
            Value::Lambda { body, .. } => {
                assert_eq!(*body, Expr::Val(Value::Unit(parties![0])));
            }
            other => panic!("expected lambda, got {other:?}"),
        }
    }

    #[test]
    fn unmaskable_values_leave_the_body_alone() {
        // The lambda lives at {1}; ()@{0} cannot mask there.
        let lam = Value::lambda("y", Type::data(Data::Unit, parties![1]), var("x"), parties![1]);
        let out = subst_value(&lam, &"x".into(), &Value::Unit(parties![0]));
        assert_eq!(out, lam);
    }

    #[test]
    fn case_branches_shadow_and_mask() {
        let case = Expr::case(
            parties![0],
            var("x"),
            "x",
            var("x"), // shadowed by the binder
            "z",
            var("x"), // substituted (masked)
        );
        let out = subst_expr(&case, &"x".into(), &Value::Unit(parties![0, 1]));
        match out {
            Expr::Case { scrutinee, left, right, .. } => {
                assert_eq!(*scrutinee, Expr::Val(Value::Unit(parties![0, 1])));
                assert_eq!(*left, var("x"));
                assert_eq!(*right, Expr::Val(Value::Unit(parties![0])));
            }
            other => panic!("expected case, got {other:?}"),
        }
    }
}
