//! The centralized λC semantics (Fig. 18): call-by-value, deterministic,
//! with location-aware masking at every binding step.

use crate::mask::mask_value;
use crate::party::PartySet;
use crate::subst::subst_expr;
use crate::syntax::{Expr, Value};

/// Performs one semantic step, or returns `None` if `expr` is a value
/// (or stuck — which cannot happen for well-typed programs, by the
/// progress theorem).
pub fn step(expr: &Expr) -> Option<Expr> {
    match expr {
        Expr::Val(_) => None,
        Expr::App(m, n) => {
            // App2: the function position steps first.
            if let Some(m2) = step(m) {
                return Some(Expr::app(m2, (**n).clone()));
            }
            // App1: then the argument.
            if let Some(n2) = step(n) {
                return Some(Expr::app((**m).clone(), n2));
            }
            // Both are values: contract the redex.
            let Expr::Val(f) = &**m else { return None };
            let Expr::Val(a) = &**n else { return None };
            apply(f, a)
        }
        Expr::Case { parties, scrutinee, left_var, left, right_var, right } => {
            // Case: evaluate the scrutinee.
            if let Some(s2) = step(scrutinee) {
                return Some(Expr::Case {
                    parties: parties.clone(),
                    scrutinee: Box::new(s2),
                    left_var: left_var.clone(),
                    left: left.clone(),
                    right_var: right_var.clone(),
                    right: right.clone(),
                });
            }
            let Expr::Val(v) = &**scrutinee else { return None };
            match v {
                // CaseL: Ml[xl := V ▷ p⁺]
                Value::Inl(inner) => {
                    let masked = mask_value(inner, parties)?;
                    Some(subst_expr(left, left_var, &masked))
                }
                // CaseR.
                Value::Inr(inner) => {
                    let masked = mask_value(inner, parties)?;
                    Some(subst_expr(right, right_var, &masked))
                }
                _ => None,
            }
        }
    }
}

fn apply(f: &Value, a: &Value) -> Option<Expr> {
    match f {
        // AppAbs: M[x := V ▷ p⁺].
        Value::Lambda { param, body, parties, .. } => {
            let masked = mask_value(a, parties)?;
            Some(subst_expr(body, param, &masked))
        }
        // Proj1 / Proj2: project then mask.
        Value::Fst(parties) => match a {
            Value::Pair(l, _) => Some(Expr::Val(mask_value(l, parties)?)),
            _ => None,
        },
        Value::Snd(parties) => match a {
            Value::Pair(_, r) => Some(Expr::Val(mask_value(r, parties)?)),
            _ => None,
        },
        // ProjN.
        Value::Lookup(i, parties) => match a {
            Value::Tuple(vs) => Some(Expr::Val(mask_value(vs.get(*i)?, parties)?)),
            _ => None,
        },
        // Com1 / ComPair / ComInl / ComInr: retarget the annotations.
        Value::Com { from, to } => com_value(a, *from, to).map(Expr::Val),
        _ => None,
    }
}

/// The recursive `Com*` rules: relocate a data value to the recipients.
fn com_value(v: &Value, from: crate::party::Party, to: &PartySet) -> Option<Value> {
    match v {
        // Com1: the sender must see the value (()@p⁺ ▷ {s} defined).
        Value::Unit(owners) => {
            if owners.contains(from) {
                Some(Value::Unit(to.clone()))
            } else {
                None
            }
        }
        Value::Pair(l, r) => Some(Value::pair(com_value(l, from, to)?, com_value(r, from, to)?)),
        Value::Inl(inner) => Some(Value::inl(com_value(inner, from, to)?)),
        Value::Inr(inner) => Some(Value::inr(com_value(inner, from, to)?)),
        _ => None,
    }
}

/// Runs to a value, or returns `None` if the fuel runs out or the
/// expression gets stuck (impossible for well-typed terms: λC has no
/// recursion, so evaluation terminates).
pub fn eval(expr: &Expr, fuel: usize) -> Option<Value> {
    let mut current = expr.clone();
    for _ in 0..fuel {
        match step(&current) {
            Some(next) => current = next,
            None => {
                return match current {
                    Expr::Val(v) => Some(v),
                    _ => None,
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parties;
    use crate::party::Party;
    use crate::syntax::{Data, Type};

    #[test]
    fn identity_application_masks() {
        // (λx: ()@{0}. x)@{0} ()@{0,1}  →  ()@{0}
        let lam = Value::lambda(
            "x",
            Type::data(Data::Unit, parties![0]),
            Expr::val(Value::Var("x".into())),
            parties![0],
        );
        let app = Expr::app(Expr::val(lam), Expr::val(Value::Unit(parties![0, 1])));
        assert_eq!(eval(&app, 10), Some(Value::Unit(parties![0])));
    }

    #[test]
    fn com_relocates_ownership() {
        // com_{0;{1,2}} ()@{0}  →  ()@{1,2}
        let app = Expr::app(
            Expr::val(Value::Com { from: Party(0), to: parties![1, 2] }),
            Expr::val(Value::Unit(parties![0])),
        );
        assert_eq!(eval(&app, 10), Some(Value::Unit(parties![1, 2])));
    }

    #[test]
    fn com_relocates_structured_data() {
        let payload = Value::inl(Value::pair(Value::Unit(parties![0]), Value::Unit(parties![0])));
        let app = Expr::app(
            Expr::val(Value::Com { from: Party(0), to: parties![1] }),
            Expr::val(payload),
        );
        assert_eq!(
            eval(&app, 10),
            Some(Value::inl(Value::pair(Value::Unit(parties![1]), Value::Unit(parties![1]))))
        );
    }

    #[test]
    fn case_picks_the_right_branch() {
        let make = |scrutinee: Value| {
            Expr::case(
                parties![0],
                Expr::val(scrutinee),
                "x",
                Expr::val(Value::pair(Value::Var("x".into()), Value::Unit(parties![0]))),
                "y",
                Expr::val(Value::Var("y".into())),
            )
        };
        assert_eq!(
            eval(&make(Value::bool_true(parties![0])), 10),
            Some(Value::pair(Value::Unit(parties![0]), Value::Unit(parties![0])))
        );
        assert_eq!(eval(&make(Value::bool_false(parties![0])), 10), Some(Value::Unit(parties![0])));
    }

    #[test]
    fn projections_mask_their_result() {
        let pair = Value::pair(Value::Unit(parties![0, 1]), Value::Unit(parties![0, 1]));
        let app = Expr::app(Expr::val(Value::Fst(parties![0])), Expr::val(pair));
        assert_eq!(eval(&app, 10), Some(Value::Unit(parties![0])));
    }

    #[test]
    fn function_position_steps_before_argument() {
        // ((λx. x) (λy. y)) applied left-to-right; both reduce.
        let id0 = Value::lambda(
            "x",
            Type::data(Data::Unit, parties![0]),
            Expr::val(Value::Var("x".into())),
            parties![0],
        );
        let nested = Expr::app(
            Expr::app(
                Expr::val(Value::lambda(
                    "f",
                    Type::fun(
                        Type::data(Data::Unit, parties![0]),
                        Type::data(Data::Unit, parties![0]),
                        parties![0],
                    ),
                    Expr::val(Value::Var("f".into())),
                    parties![0],
                )),
                Expr::val(id0),
            ),
            Expr::val(Value::Unit(parties![0])),
        );
        assert_eq!(eval(&nested, 20), Some(Value::Unit(parties![0])));
    }

    #[test]
    fn values_do_not_step() {
        assert_eq!(step(&Expr::val(Value::Unit(parties![0]))), None);
    }
}
