//! The λC type system (Fig. 16), read algorithmically.
//!
//! A judgment `Θ; Γ ⊢ M : T` becomes `type_of(census, env, expr)`.
//! Operator values (`com`, `fst`, `snd`, `lookup`) are typed at their
//! application sites, where the argument determines the free
//! metavariables of their declarative rules (see the crate docs).

use crate::mask::{mask_is_noop, mask_type};
use crate::party::PartySet;
use crate::syntax::{Data, Expr, Type, Value, Var};
use std::collections::HashMap;
use std::fmt;

/// A typing context `Γ`.
pub type Env = HashMap<Var, Type>;

/// Why an expression failed to type-check.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TypeError {
    /// An unbound variable.
    UnboundVar(Var),
    /// A variable's type does not mask to the census (TVar).
    UnmaskableVar(Var),
    /// A party-set annotation escapes the census.
    OutsideCensus {
        /// The offending annotation.
        annotation: PartySet,
        /// The census in scope.
        census: PartySet,
    },
    /// An empty party-set annotation (`p⁺` must be non-empty).
    EmptyAnnotation,
    /// A lambda's parameter type is not already masked to its parties
    /// (the `noop▷` precondition of TLambda).
    ParamNotMasked(Type),
    /// Application of a non-function.
    NotAFunction(Type),
    /// The argument's type does not mask to the function's expectation.
    ArgumentMismatch {
        /// What the function expects.
        expected: Type,
        /// What the (masked) argument provides.
        found: Option<Type>,
    },
    /// A case scrutinee whose masked type is not a sum.
    NotASum(Type),
    /// The two case branches disagree.
    BranchMismatch(Type, Type),
    /// A pair of data values whose owner sets are disjoint (TPair).
    DisjointPair,
    /// A projection or lookup applied to the wrong shape.
    BadProjection(Type),
    /// A tuple lookup out of range.
    LookupOutOfRange(usize, usize),
    /// A communication whose sender does not own the payload.
    SenderLacksPayload {
        /// The sender.
        sender: crate::party::Party,
        /// The payload's owners.
        owners: PartySet,
    },
    /// An operator value (`com`, `fst`, ...) outside application position
    /// (declarative rules are schemes; see crate docs).
    OperatorNotApplied(&'static str),
    /// Communication of a non-data type.
    NotData(Type),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnboundVar(x) => write!(f, "unbound variable {x}"),
            TypeError::UnmaskableVar(x) => {
                write!(f, "variable {x} is not visible in this census")
            }
            TypeError::OutsideCensus { annotation, census } => {
                write!(f, "annotation {annotation} escapes census {census}")
            }
            TypeError::EmptyAnnotation => write!(f, "party-set annotation is empty"),
            TypeError::ParamNotMasked(t) => {
                write!(f, "lambda parameter type {t} is not masked to the lambda's parties")
            }
            TypeError::NotAFunction(t) => write!(f, "cannot apply a value of type {t}"),
            TypeError::ArgumentMismatch { expected, found } => match found {
                Some(found) => write!(f, "argument masks to {found}, expected {expected}"),
                None => write!(
                    f,
                    "argument does not mask to the function's parties (expected {expected})"
                ),
            },
            TypeError::NotASum(t) => write!(f, "case scrutinee has non-sum type {t}"),
            TypeError::BranchMismatch(l, r) => {
                write!(f, "case branches disagree: {l} versus {r}")
            }
            TypeError::DisjointPair => write!(f, "pair components have disjoint owners"),
            TypeError::BadProjection(t) => write!(f, "cannot project from type {t}"),
            TypeError::LookupOutOfRange(i, n) => {
                write!(f, "lookup{i} out of range for a {n}-tuple")
            }
            TypeError::SenderLacksPayload { sender, owners } => {
                write!(f, "sender {sender} does not own the payload (owners {owners})")
            }
            TypeError::OperatorNotApplied(op) => {
                write!(f, "operator {op} is only typeable in application position")
            }
            TypeError::NotData(t) => write!(f, "type {t} is not communicable data"),
        }
    }
}

impl std::error::Error for TypeError {}

/// `Θ; Γ ⊢ M : T` (Fig. 16).
///
/// # Errors
///
/// Returns a [`TypeError`] describing the first violated rule.
pub fn type_of(census: &PartySet, env: &Env, expr: &Expr) -> Result<Type, TypeError> {
    match expr {
        Expr::Val(v) => type_of_value(census, env, v),
        Expr::App(m, n) => type_of_app(census, env, m, n),
        Expr::Case { parties, scrutinee, left_var, left, right_var, right } => {
            // TCase.
            if parties.is_empty() {
                return Err(TypeError::EmptyAnnotation);
            }
            if !parties.is_subset(census) {
                return Err(TypeError::OutsideCensus {
                    annotation: parties.clone(),
                    census: census.clone(),
                });
            }
            let t_n = type_of(census, env, scrutinee)?;
            let masked = mask_type(&t_n, parties).ok_or_else(|| TypeError::NotASum(t_n.clone()))?;
            let (dl, dr) = match &masked {
                Type::Data(Data::Sum(dl, dr), owners) if owners == parties => {
                    ((**dl).clone(), (**dr).clone())
                }
                _ => return Err(TypeError::NotASum(masked)),
            };
            let mut left_env = env.clone();
            left_env.insert(left_var.clone(), Type::Data(dl, parties.clone()));
            let t_l = type_of(parties, &left_env, left)?;
            let mut right_env = env.clone();
            right_env.insert(right_var.clone(), Type::Data(dr, parties.clone()));
            let t_r = type_of(parties, &right_env, right)?;
            if t_l != t_r {
                return Err(TypeError::BranchMismatch(t_l, t_r));
            }
            Ok(t_l)
        }
    }
}

fn type_of_app(census: &PartySet, env: &Env, m: &Expr, n: &Expr) -> Result<Type, TypeError> {
    // Operator schemes: com/fst/snd/lookup applied directly.
    if let Expr::Val(op) = m {
        match op {
            Value::Com { from, to } => {
                // TCom + TApp combined: the argument fixes d and s⁺.
                if to.is_empty() {
                    return Err(TypeError::EmptyAnnotation);
                }
                let fun_parties = PartySet::singleton(*from).union(to);
                if !fun_parties.is_subset(census) {
                    return Err(TypeError::OutsideCensus {
                        annotation: fun_parties,
                        census: census.clone(),
                    });
                }
                let t_n = type_of(census, env, n)?;
                return match &t_n {
                    Type::Data(d, owners) => {
                        if owners.contains(*from) {
                            Ok(Type::Data(d.clone(), to.clone()))
                        } else {
                            Err(TypeError::SenderLacksPayload {
                                sender: *from,
                                owners: owners.clone(),
                            })
                        }
                    }
                    other => Err(TypeError::NotData(other.clone())),
                };
            }
            Value::Fst(parties) | Value::Snd(parties) => {
                // TProj1/TProj2 + TApp.
                check_annotation(parties, census)?;
                let t_n = type_of(census, env, n)?;
                let masked = mask_type(&t_n, parties)
                    .ok_or_else(|| TypeError::BadProjection(t_n.clone()))?;
                return match masked {
                    Type::Data(Data::Prod(d1, d2), owners) if owners == *parties => {
                        let d = if matches!(op, Value::Fst(_)) { *d1 } else { *d2 };
                        Ok(Type::Data(d, parties.clone()))
                    }
                    other => Err(TypeError::BadProjection(other)),
                };
            }
            Value::Lookup(i, parties) => {
                // TProjN + TApp.
                check_annotation(parties, census)?;
                let t_n = type_of(census, env, n)?;
                let masked = mask_type(&t_n, parties)
                    .ok_or_else(|| TypeError::BadProjection(t_n.clone()))?;
                return match masked {
                    Type::Tuple(ts) => {
                        if *i < ts.len() {
                            // noop▷p⁺ required by TProjN: components must
                            // already be masked to `parties`.
                            let t = ts[*i].clone();
                            if mask_is_noop(&Type::Tuple(ts.clone()), parties) {
                                Ok(t)
                            } else {
                                Err(TypeError::BadProjection(Type::Tuple(ts)))
                            }
                        } else {
                            Err(TypeError::LookupOutOfRange(*i, ts.len()))
                        }
                    }
                    other => Err(TypeError::BadProjection(other)),
                };
            }
            _ => {}
        }
    }

    // General TApp.
    let t_m = type_of(census, env, m)?;
    match t_m {
        Type::Fun(t_a, t_r, parties) => {
            let t_n = type_of(census, env, n)?;
            let masked = mask_type(&t_n, &parties);
            if masked.as_ref() == Some(&*t_a) {
                Ok(*t_r)
            } else {
                Err(TypeError::ArgumentMismatch { expected: *t_a, found: masked })
            }
        }
        other => Err(TypeError::NotAFunction(other)),
    }
}

fn type_of_value(census: &PartySet, env: &Env, value: &Value) -> Result<Type, TypeError> {
    match value {
        Value::Var(x) => {
            // TVar: the environment's type, masked to the census.
            let ty = env.get(x).ok_or_else(|| TypeError::UnboundVar(x.clone()))?;
            mask_type(ty, census).ok_or_else(|| TypeError::UnmaskableVar(x.clone()))
        }
        Value::Lambda { param, param_ty, body, parties } => {
            // TLambda.
            check_annotation(parties, census)?;
            if !mask_is_noop(param_ty, parties) {
                return Err(TypeError::ParamNotMasked(param_ty.clone()));
            }
            let mut body_env = env.clone();
            body_env.insert(param.clone(), param_ty.clone());
            let t_r = type_of(parties, &body_env, body)?;
            Ok(Type::fun(param_ty.clone(), t_r, parties.clone()))
        }
        Value::Unit(owners) => {
            // TUnit.
            check_annotation(owners, census)?;
            Ok(Type::Data(Data::Unit, owners.clone()))
        }
        Value::Inl(v) => {
            // TInl: the right component is free in the declarative rule;
            // we canonicalize it to Unit. (Generated programs branch on
            // booleans `()+()`, where this is exact.)
            match type_of_value(census, env, v)? {
                Type::Data(d, owners) => Ok(Type::Data(Data::sum(d, Data::Unit), owners)),
                other => Err(TypeError::NotData(other)),
            }
        }
        Value::Inr(v) => match type_of_value(census, env, v)? {
            Type::Data(d, owners) => Ok(Type::Data(Data::sum(Data::Unit, d), owners)),
            other => Err(TypeError::NotData(other)),
        },
        Value::Pair(l, r) => {
            // TPair: owners intersect.
            let t_l = type_of_value(census, env, l)?;
            let t_r = type_of_value(census, env, r)?;
            match (t_l, t_r) {
                (Type::Data(d1, p1), Type::Data(d2, p2)) => {
                    let shared = p1.intersection(&p2);
                    if shared.is_empty() {
                        Err(TypeError::DisjointPair)
                    } else {
                        Ok(Type::Data(Data::prod(d1, d2), shared))
                    }
                }
                (l, _) => Err(TypeError::NotData(l)),
            }
        }
        Value::Tuple(vs) => {
            // TVec.
            let ts: Result<Vec<Type>, TypeError> =
                vs.iter().map(|v| type_of_value(census, env, v)).collect();
            Ok(Type::Tuple(ts?))
        }
        Value::Fst(_) => Err(TypeError::OperatorNotApplied("fst")),
        Value::Snd(_) => Err(TypeError::OperatorNotApplied("snd")),
        Value::Lookup(_, _) => Err(TypeError::OperatorNotApplied("lookup")),
        Value::Com { .. } => Err(TypeError::OperatorNotApplied("com")),
    }
}

fn check_annotation(annotation: &PartySet, census: &PartySet) -> Result<(), TypeError> {
    if annotation.is_empty() {
        Err(TypeError::EmptyAnnotation)
    } else if !annotation.is_subset(census) {
        Err(TypeError::OutsideCensus { annotation: annotation.clone(), census: census.clone() })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parties;
    use crate::party::Party;

    fn check(census: &PartySet, expr: &Expr) -> Result<Type, TypeError> {
        type_of(census, &Env::new(), expr)
    }

    #[test]
    fn units_type_at_their_owners() {
        let e = Expr::val(Value::Unit(parties![0, 1]));
        assert_eq!(check(&parties![0, 1, 2], &e), Ok(Type::data(Data::Unit, parties![0, 1])));
        assert!(matches!(check(&parties![0], &e), Err(TypeError::OutsideCensus { .. })));
    }

    #[test]
    fn identity_lambda_masks_its_argument() {
        // (λx: ()@{0}. x)@{0} applied to ()@{0,1}  — the §D.2 example.
        let lam = Value::lambda(
            "x",
            Type::data(Data::Unit, parties![0]),
            Expr::val(Value::Var("x".into())),
            parties![0],
        );
        let app = Expr::app(Expr::val(lam), Expr::val(Value::Unit(parties![0, 1])));
        assert_eq!(check(&parties![0, 1], &app), Ok(Type::data(Data::Unit, parties![0])));
    }

    #[test]
    fn lambda_with_unmasked_param_is_rejected() {
        let lam = Value::lambda(
            "x",
            Type::data(Data::Unit, parties![0, 1]), // not masked to {0}
            Expr::val(Value::Var("x".into())),
            parties![0],
        );
        assert!(matches!(
            check(&parties![0, 1], &Expr::val(lam)),
            Err(TypeError::ParamNotMasked(_))
        ));
    }

    #[test]
    fn com_types_at_the_recipients() {
        let app = Expr::app(
            Expr::val(Value::Com { from: Party(0), to: parties![1, 2] }),
            Expr::val(Value::Unit(parties![0])),
        );
        assert_eq!(check(&parties![0, 1, 2], &app), Ok(Type::data(Data::Unit, parties![1, 2])));
    }

    #[test]
    fn com_requires_the_sender_to_own_the_payload() {
        let app = Expr::app(
            Expr::val(Value::Com { from: Party(0), to: parties![1] }),
            Expr::val(Value::Unit(parties![2])),
        );
        assert!(matches!(
            check(&parties![0, 1, 2], &app),
            Err(TypeError::SenderLacksPayload { .. })
        ));
    }

    #[test]
    fn case_requires_scrutinee_ownership() {
        // Everyone in the case's parties must own the scrutinee.
        let scrutinee = Expr::val(Value::bool_true(parties![0]));
        let case = Expr::case(
            parties![0, 1],
            scrutinee,
            "x",
            Expr::val(Value::Unit(parties![0, 1])),
            "y",
            Expr::val(Value::Unit(parties![0, 1])),
        );
        assert!(matches!(check(&parties![0, 1], &case), Err(TypeError::NotASum(_))));
    }

    #[test]
    fn well_formed_case_types() {
        let scrutinee = Expr::val(Value::bool_true(parties![0, 1]));
        let case = Expr::case(
            parties![0, 1],
            scrutinee,
            "x",
            Expr::val(Value::Unit(parties![0, 1])),
            "y",
            Expr::val(Value::Unit(parties![0, 1])),
        );
        assert_eq!(check(&parties![0, 1], &case), Ok(Type::data(Data::Unit, parties![0, 1])));
    }

    #[test]
    fn branch_mismatch_is_detected() {
        let case = Expr::case(
            parties![0],
            Expr::val(Value::bool_true(parties![0])),
            "x",
            Expr::val(Value::Unit(parties![0])),
            "y",
            Expr::val(Value::pair(Value::Unit(parties![0]), Value::Unit(parties![0]))),
        );
        assert!(matches!(check(&parties![0], &case), Err(TypeError::BranchMismatch(_, _))));
    }

    #[test]
    fn projections_type_through_application() {
        let pair = Value::pair(Value::Unit(parties![0, 1]), Value::Unit(parties![0, 1]));
        let app = Expr::app(Expr::val(Value::Fst(parties![0])), Expr::val(pair));
        assert_eq!(check(&parties![0, 1], &app), Ok(Type::data(Data::Unit, parties![0])));
    }

    #[test]
    fn bare_operators_are_rejected() {
        assert!(matches!(
            check(&parties![0], &Expr::val(Value::Fst(parties![0]))),
            Err(TypeError::OperatorNotApplied("fst"))
        ));
        assert!(matches!(
            check(&parties![0], &Expr::val(Value::Com { from: Party(0), to: parties![0] })),
            Err(TypeError::OperatorNotApplied("com"))
        ));
    }

    #[test]
    fn tuples_and_lookup() {
        let tuple = Value::Tuple(vec![Value::Unit(parties![0]), Value::Unit(parties![0])]);
        let app = Expr::app(Expr::val(Value::Lookup(1, parties![0])), Expr::val(tuple));
        assert_eq!(check(&parties![0], &app), Ok(Type::data(Data::Unit, parties![0])));

        let short = Value::Tuple(vec![Value::Unit(parties![0])]);
        let bad = Expr::app(Expr::val(Value::Lookup(3, parties![0])), Expr::val(short));
        assert!(matches!(check(&parties![0], &bad), Err(TypeError::LookupOutOfRange(3, 1))));
    }

    #[test]
    fn error_display_is_informative() {
        let err = check(&parties![0], &Expr::val(Value::Var("ghost".into()))).unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }
}
