//! All-to-all broadcast-and-gather with per-message validation.
//!
//! Every participant sends its facet to every other participant; every
//! participant ends up with either the full [`Quire`] of everyone's
//! values or a [`Misbehavior`] naming the first sender whose message
//! was missing, garbled, replayed, or rejected by the validation hook.
//!
//! Structurally this is the paper's nested fan-out/fan-in idiom (§3.4):
//! an outer [`FanOutChoreography`] over receivers, an inner
//! [`FanInChoreography`] over senders, with the pairwise exchange going
//! through [`ChoreoOp::try_multicast`] so transport- and decode-level
//! trouble surfaces as data instead of a panic. Each message is wrapped
//! in an epoch-tagged [`Sealed`] envelope for anti-replay.
//!
//! [`FanOutChoreography`]: chorus_core::FanOutChoreography
//! [`FanInChoreography`]: chorus_core::FanInChoreography

use crate::misbehavior::{Misbehavior, MisbehaviorKind, Sealed, Verdict};
use chorus_core::{
    ChoreoOp, Choreography, ChoreographyLocation, Faceted, Located, LocationSet,
    LocationSetFoldable, Member, MultiplyLocated, Portable, Quire, Subset, SubsetCons, SubsetNil,
};
use std::collections::BTreeMap;
use std::marker::PhantomData;

/// The broadcast-and-gather pattern.
///
/// `P` is the (census-polymorphic) participant set; `PRefl` and `PFold`
/// are inferred proof indices. The `validate` hook runs at every
/// *receiver* for every *remote* sender (a participant's own value is
/// taken on trust) and rejects a message by returning `Err(reason)`.
///
/// Returns, per participant, `Ok` of everyone's values or the
/// participant's first accusation in location-name order.
pub struct BroadcastGather<'a, V, P: LocationSet, F, PRefl, PFold> {
    /// Each participant's value to broadcast (its facet).
    pub values: &'a Faceted<V, P>,
    /// The anti-replay epoch every message is tagged with.
    pub epoch: u64,
    /// Per-message validation hook: `(sender name, value)`.
    pub validate: &'a F,
    /// Inferred proof indices; pass `PhantomData`.
    pub phantom: PhantomData<(PRefl, PFold)>,
}

impl<V, P, F, PRefl, PFold> Choreography<Faceted<Result<Quire<V, P>, Misbehavior>, P>>
    for BroadcastGather<'_, V, P, F, PRefl, PFold>
where
    V: Portable + Clone,
    P: LocationSet + Subset<P, PRefl> + LocationSetFoldable<P, P, PFold>,
    F: Fn(&'static str, &V) -> Result<(), String>,
{
    type L = P;

    fn run(self, op: &impl ChoreoOp<Self::L>) -> Faceted<Result<Quire<V, P>, Misbehavior>, P> {
        op.fanout(
            P::new(),
            GatherAt::<'_, V, P, F, PFold> {
                values: self.values,
                epoch: self.epoch,
                validate: self.validate,
                phantom: PhantomData,
            },
        )
    }
}

/// Outer fan-out over receivers: each receiver collects one sealed
/// value from every sender, then folds its quire of per-sender results
/// into one verdict.
struct GatherAt<'a, V, P: LocationSet, F, PFold> {
    values: &'a Faceted<V, P>,
    epoch: u64,
    validate: &'a F,
    phantom: PhantomData<PFold>,
}

impl<V, P, F, PFold> chorus_core::FanOutChoreography<Result<Quire<V, P>, Misbehavior>>
    for GatherAt<'_, V, P, F, PFold>
where
    V: Portable + Clone,
    P: LocationSet + LocationSetFoldable<P, P, PFold>,
    F: Fn(&'static str, &V) -> Result<(), String>,
{
    type L = P;
    type QS = P;

    fn run<Qj: ChoreographyLocation, QSSubsetL, QjMemberL, QjMemberQS>(
        &self,
        op: &impl ChoreoOp<Self::L>,
    ) -> Located<Result<Quire<V, P>, Misbehavior>, Qj>
    where
        Self::QS: Subset<Self::L, QSSubsetL>,
        Qj: Member<Self::L, QjMemberL>,
        Qj: Member<Self::QS, QjMemberQS>,
    {
        let fan_in = SealedSend::<'_, V, P, F, Qj, QjMemberL> {
            values: self.values,
            epoch: self.epoch,
            validate: self.validate,
            phantom: PhantomData,
        };
        let gathered: MultiplyLocated<
            Quire<Result<V, Misbehavior>, P>,
            chorus_core::LocationSet!(Qj),
        > = op
            .fanin::<Result<V, Misbehavior>, P, chorus_core::LocationSet!(Qj), _, QSSubsetL, SubsetCons<QjMemberL, SubsetNil>, PFold>(
                P::new(),
                fan_in,
            );
        op.locally::<_, Qj, QjMemberL>(Qj::new(), |un| {
            let quire = un
                .unwrap_ref::<Quire<Result<V, Misbehavior>, P>, chorus_core::LocationSet!(Qj), chorus_core::Here>(
                    &gathered,
                );
            let mut clean = BTreeMap::new();
            for (name, result) in quire.iter() {
                match result {
                    Ok(v) => {
                        clean.insert(name.to_string(), v.clone());
                    }
                    // First accusation in name order wins: deterministic
                    // across replays of the same schedule.
                    Err(m) => return Err(m.clone()),
                }
            }
            match Quire::from_map(clean) {
                Ok(q) => Ok(q),
                Err(_) => unreachable!("gathered quire is keyed by the census"),
            }
        })
    }
}

/// Inner fan-in over senders with a fixed receiver `Qj`: the self-pair
/// is a local copy; every remote pair seals, sends fallibly, and
/// validates on arrival.
struct SealedSend<'a, V, P: LocationSet, F, Qj, QjMemberL> {
    values: &'a Faceted<V, P>,
    epoch: u64,
    validate: &'a F,
    phantom: PhantomData<(Qj, QjMemberL)>,
}

impl<V, P, F, Qj, QjMemberL> chorus_core::FanInChoreography<Result<V, Misbehavior>>
    for SealedSend<'_, V, P, F, Qj, QjMemberL>
where
    V: Portable + Clone,
    P: LocationSet,
    F: Fn(&'static str, &V) -> Result<(), String>,
    Qj: ChoreographyLocation + Member<P, QjMemberL>,
{
    type L = P;
    type QS = P;
    type RS = chorus_core::LocationSet!(Qj);

    fn run<Qi: ChoreographyLocation, QSSubsetL, RSSubsetL, QiMemberL, QiMemberQS>(
        &self,
        op: &impl ChoreoOp<Self::L>,
    ) -> MultiplyLocated<Result<V, Misbehavior>, Self::RS>
    where
        Self::QS: Subset<Self::L, QSSubsetL>,
        Self::RS: Subset<Self::L, RSSubsetL>,
        Qi: Member<Self::L, QiMemberL>,
        Qi: Member<Self::QS, QiMemberQS>,
    {
        let epoch = self.epoch;
        if Qi::NAME == Qj::NAME {
            // Self-delivery: no wire, no validation — a participant
            // trusts its own value.
            return op.locally(Qj::new(), |un| {
                Ok(un.unwrap_faceted_ref::<V, P, QjMemberL>(self.values).clone())
            });
        }
        let sealed: Located<Sealed<V>, Qi> = op.locally::<_, Qi, QiMemberL>(Qi::new(), |un| {
            Sealed { epoch, value: un.unwrap_faceted_ref::<V, P, QiMemberL>(self.values).clone() }
        });
        // The endpoints diverge on this match (the sender sees its send
        // result, the receiver its receive result), which is safe
        // because both arms are purely local computation.
        match op.try_multicast::<Qi, Sealed<V>, Self::RS, QiMemberL, RSSubsetL>(
            Qi::new(),
            <Self::RS>::new(),
            &sealed,
        ) {
            Ok(delivered) => op.locally::<_, Qj, QjMemberL>(Qj::new(), |un| {
                let sealed = un.unwrap_ref::<Sealed<V>, Self::RS, chorus_core::Here>(&delivered);
                if sealed.epoch != epoch {
                    return Err(Misbehavior::new(
                        Qi::NAME,
                        MisbehaviorKind::WrongEpoch { got: sealed.epoch },
                        epoch,
                    ));
                }
                if let Err(reason) = (self.validate)(Qi::NAME, &sealed.value) {
                    return Err(Misbehavior::new(
                        Qi::NAME,
                        MisbehaviorKind::Rejected { reason },
                        epoch,
                    ));
                }
                Ok(sealed.value.clone())
            }),
            Err(failure) => op.locally::<_, Qj, QjMemberL>(Qj::new(), move |_| {
                Err(Misbehavior::from_comm_failure(&failure, epoch))
            }),
        }
    }
}

/// Folds a quire of [`Verdict`]s into one accusation (or none) by blame
/// count: the culprit accused by the most participants wins, ties
/// breaking toward the lexicographically smaller name.
///
/// Counting (rather than "first fault wins") matters when the culprit
/// *also* accuses: a participant that equivocated or computed a
/// divergent result typically files a counter-accusation against some
/// honest party, and with at most one faulty participant the honest
/// majority always outvotes it — so every honest participant resolves
/// the *same* culprit, keeping post-verdict control flow aligned.
pub fn resolve_verdicts<P: LocationSet>(quire: &Quire<Verdict, P>) -> Result<(), Misbehavior> {
    let mut blame: BTreeMap<&str, (u32, &Misbehavior)> = BTreeMap::new();
    for (_, verdict) in quire.iter() {
        if let Some(m) = verdict.fault() {
            let entry = blame.entry(m.culprit.as_str()).or_insert((0, m));
            entry.0 += 1;
        }
    }
    match blame.iter().max_by(|(n1, (c1, _)), (n2, (c2, _))| c1.cmp(c2).then_with(|| n2.cmp(n1))) {
        None => Ok(()),
        Some((_, (_, m))) => Err((*m).clone()),
    }
}

/// Exchanges per-participant [`Verdict`]s all-to-all and resolves them
/// with [`resolve_verdicts`], so that (absent new faults during the
/// exchange itself) every honest participant agrees on the outcome —
/// the knowledge-of-choice step that lets robust protocols *branch* on
/// a detection without diverging.
///
/// A participant whose own exchange round fails keeps its local
/// accusation; everyone else adopts the blame-count winner.
pub fn exchange_verdicts<P, Op, PRefl, PFold>(
    op: &Op,
    verdicts: &Faceted<Verdict, P>,
    epoch: u64,
) -> Faceted<Result<(), Misbehavior>, P>
where
    Op: ChoreoOp<P>,
    P: LocationSet + Subset<P, PRefl> + LocationSetFoldable<P, P, PFold>,
{
    // A verdict is almost free-form data, so give the hook teeth: an
    // accusation naming someone outside the census can only be a
    // tampered frame, and rejecting it attributes the tampering to the
    // frame's sender instead of adopting a fabricated culprit.
    let names = P::names();
    let accept = move |_: &'static str, v: &Verdict| match v {
        Verdict::Fault(m) if !names.contains(&m.culprit.as_str()) => {
            Err(format!("accuses {:?}, which is not in the census", m.culprit))
        }
        _ => Ok(()),
    };
    let gathered = BroadcastGather::<'_, Verdict, P, _, PRefl, PFold> {
        values: verdicts,
        epoch,
        validate: &accept,
        phantom: PhantomData,
    }
    .run(op);
    op.map_facets(P::new(), &gathered, |round| match round {
        Err(m) => Err(m.clone()),
        Ok(quire) => resolve_verdicts(quire),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chorus_core::Runner;

    chorus_core::locations! { A, B, C }
    type Trio = chorus_core::LocationSet!(A, B, C);

    fn values(a: u64, b: u64, c: u64) -> BTreeMap<String, u64> {
        [("A", a), ("B", b), ("C", c)].into_iter().map(|(k, v)| (k.to_string(), v)).collect()
    }

    struct Exchange<'a, F> {
        values: &'a Faceted<u64, Trio>,
        epoch: u64,
        validate: &'a F,
    }

    impl<F> Choreography<Faceted<Result<Quire<u64, Trio>, Misbehavior>, Trio>> for Exchange<'_, F>
    where
        F: Fn(&'static str, &u64) -> Result<(), String>,
    {
        type L = Trio;
        fn run(
            self,
            op: &impl ChoreoOp<Trio>,
        ) -> Faceted<Result<Quire<u64, Trio>, Misbehavior>, Trio> {
            BroadcastGather::<'_, u64, Trio, F, _, _> {
                values: self.values,
                epoch: self.epoch,
                validate: self.validate,
                phantom: PhantomData,
            }
            .run(op)
        }
    }

    #[test]
    fn honest_exchange_gives_everyone_the_full_quire() {
        let runner: Runner<Trio> = Runner::new();
        let faceted = runner.faceted(values(1, 2, 3));
        let ok = |_: &'static str, _: &u64| Ok(());
        let out = runner.run(Exchange { values: &faceted, epoch: 1, validate: &ok });
        for (name, result) in runner.unwrap_faceted(out) {
            let quire = result.unwrap_or_else(|m| panic!("{name} saw a fault: {m}"));
            assert_eq!(quire.get_by_name("A"), Some(&1));
            assert_eq!(quire.get_by_name("B"), Some(&2));
            assert_eq!(quire.get_by_name("C"), Some(&3));
        }
    }

    #[test]
    fn validation_rejects_remote_senders_but_not_self() {
        let runner: Runner<Trio> = Runner::new();
        let faceted = runner.faceted(values(1, 2, 3));
        // Reject B's value (2) wherever it is *received*.
        let no_twos = |_: &'static str, v: &u64| {
            if *v == 2 {
                Err("two is forbidden".into())
            } else {
                Ok(())
            }
        };
        let out = runner.run(Exchange { values: &faceted, epoch: 1, validate: &no_twos });
        let facets = runner.unwrap_faceted(out);
        for name in ["A", "C"] {
            let m = facets[name].as_ref().expect_err("receivers of 2 must accuse B");
            assert_eq!(m.culprit, "B");
            assert!(matches!(m.kind, MisbehaviorKind::Rejected { .. }));
            assert_eq!(m.epoch, 1);
        }
        // B trusts its own value, and everyone else's passes the hook.
        assert!(facets["B"].is_ok(), "self-delivery skips validation");
    }

    fn quire_of(verdicts: Vec<(&str, Verdict)>) -> Quire<Verdict, Trio> {
        Quire::from_map(verdicts.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
            .expect("keyed by census")
    }

    fn fault(culprit: &str) -> Verdict {
        Verdict::Fault(Misbehavior::new(culprit, MisbehaviorKind::Inconsistent, 1))
    }

    #[test]
    fn resolve_is_ok_when_nobody_accuses() {
        let quire = quire_of(vec![("A", Verdict::Ok), ("B", Verdict::Ok), ("C", Verdict::Ok)]);
        assert!(resolve_verdicts(&quire).is_ok());
    }

    #[test]
    fn resolve_lets_the_majority_outvote_a_counter_accusation() {
        // C (the actual culprit) accuses A; A and B accuse C.
        let quire = quire_of(vec![("A", fault("C")), ("B", fault("C")), ("C", fault("A"))]);
        let m = resolve_verdicts(&quire).expect_err("two accusations must resolve");
        assert_eq!(m.culprit, "C");
    }

    #[test]
    fn resolve_breaks_ties_toward_the_smaller_name() {
        let quire = quire_of(vec![("A", fault("C")), ("B", fault("B")), ("C", Verdict::Ok)]);
        let m = resolve_verdicts(&quire).expect_err("accusations present");
        assert_eq!(m.culprit, "B", "1–1 tie breaks lexicographically");
    }
}
