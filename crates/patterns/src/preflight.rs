//! The preflight heartbeat: probing every link *before* an inner
//! protocol risks a panic on one.
//!
//! A [`BroadcastGather`] round over a **fixed** value — the epoch itself,
//! validated as such — deterministically catches always-on link faults
//! (silence, corruption, an equivocating peer): there is no free-form
//! payload for a tampered frame to hide in, so any deviation surfaces as
//! `WrongEpoch`, `Rejected`, `Garbled`, or `Silent`. The follow-up
//! verdict exchange converges every honest participant on the same
//! culprit, and [`agreed_culprit`] turns that into a bare value the
//! protocol can *branch* on — skipping an inner choreography whose links
//! are known-bad instead of panicking inside it.

use crate::broadcast_gather::{exchange_verdicts, BroadcastGather};
use crate::misbehavior::{Misbehavior, Verdict};
use chorus_core::{ChoreoOp, Choreography as _, Faceted, LocationSet, LocationSetFoldable, Subset};
use std::marker::PhantomData;

/// Runs one heartbeat round plus a verdict exchange over the full census
/// `P`, returning each participant's resolution: `Ok(())` if every link
/// delivered the epoch intact, or the blame-count culprit.
pub fn preflight<P, Op, PRefl, PFold>(op: &Op, epoch: u64) -> Faceted<Result<(), Misbehavior>, P>
where
    Op: ChoreoOp<P>,
    P: LocationSet + Subset<P, PRefl> + LocationSetFoldable<P, P, PFold>,
{
    // The heartbeat value is the epoch — fixed and known to every
    // receiver, so the validation hook has full discriminating power
    // (a free-form value would let a decodable tampered frame through).
    let heartbeat: Faceted<u64, P> = op.parallel(P::new(), move || epoch);
    let expect_epoch = move |_: &'static str, v: &u64| {
        if *v == epoch {
            Ok(())
        } else {
            Err(format!("heartbeat {v} is not the epoch {epoch}"))
        }
    };
    let round = BroadcastGather::<'_, u64, P, _, PRefl, PFold> {
        values: &heartbeat,
        epoch,
        validate: &expect_epoch,
        phantom: PhantomData,
    }
    .run(op);
    let verdicts: Faceted<Verdict, P> = op.map_facets(P::new(), &round, |r| match r {
        Ok(_) => Verdict::Ok,
        Err(m) => Verdict::Fault(m.clone()),
    });
    exchange_verdicts::<P, Op, PRefl, PFold>(op, &verdicts, epoch)
}

/// Collapses a preflight (or postflight) resolution into the agreed
/// culprit's name, `None` meaning "all clear — proceed".
///
/// Participants may disagree on the misbehavior's *detail* (the
/// accuser's own facet carries its local reason; everyone else adopts
/// the blame-count winner's), but under the supported fault model — at
/// most one faulty participant or link, faulting every frame — they
/// agree on the culprit, which is exactly the part a branch needs.
pub fn agreed_culprit<P, Op, PRefl, PFold>(
    op: &Op,
    resolution: &Faceted<Result<(), Misbehavior>, P>,
) -> Option<String>
where
    Op: ChoreoOp<P>,
    P: LocationSet + Subset<P, PRefl> + LocationSetFoldable<P, P, PFold>,
{
    let culprits: Faceted<Option<String>, P> =
        op.map_facets(P::new(), resolution, |r| r.as_ref().err().map(|m| m.culprit.clone()));
    op.agree(P::new(), &culprits).expect("every census member owns the preflight resolution")
}

#[cfg(test)]
mod tests {
    use super::*;
    use chorus_core::{Choreography, Runner};

    chorus_core::locations! { A, B, C }
    type Trio = chorus_core::LocationSet!(A, B, C);

    struct Preflight;

    impl Choreography<Option<String>> for Preflight {
        type L = Trio;
        fn run(self, op: &impl ChoreoOp<Trio>) -> Option<String> {
            let resolution = preflight::<Trio, _, _, _>(op, 9);
            agreed_culprit::<Trio, _, _, _>(op, &resolution)
        }
    }

    #[test]
    fn clean_preflight_agrees_on_no_culprit() {
        let runner: Runner<Trio> = Runner::new();
        assert_eq!(runner.run(Preflight), None);
    }
}
