//! Byzantine-robust, census-polymorphic choreographic building blocks.
//!
//! The paper's choreographies assume participants that follow the
//! protocol; its one adversarial gesture — the lottery's commit-then-open
//! round — detects a cheater but reports only a bare boolean. This crate
//! generalizes that gesture into reusable patterns, each an ordinary
//! [`Choreography`] over a generic census, that turn link-level and
//! participant-level misbehavior into a typed [`Misbehavior`] naming the
//! offending role instead of a hang or a panic:
//!
//! * [`BroadcastGather`] — all-to-all exchange with per-message
//!   validation hooks and epoch-tagged anti-replay ([`Sealed`]); the
//!   robust counterpart of a `gather`-to-everyone round.
//! * [`VerifyConsistent`] — commit-reveal proof that every participant
//!   holds the same result, built on
//!   [`Commitment::commit_bytes`](chorus_mpc::commit::Commitment::commit_bytes).
//! * [`ProposeAck`] — propose-and-acknowledge with quorum tracking and a
//!   [`Decision`] push, for configuration-change-style rounds.
//! * [`exchange_verdicts`] / [`resolve_verdicts`] — the convergence step:
//!   accusations circulate and a blame count picks the culprit, so every
//!   honest participant takes the same branch afterwards (knowledge of
//!   choice for failure handling).
//!
//! All patterns ride on [`ChoreoOp::try_multicast`], whose
//! [`CommFailure`](chorus_core::CommFailure) attributes transport- and
//! decode-level trouble to a peer; the patterns lift that attribution to
//! the protocol level. The intended deployment shape is *preflight →
//! inner protocol → postflight*: run a cheap [`BroadcastGather`]
//! heartbeat first (catching always-on link faults deterministically),
//! run the unmodified inner choreography, then [`VerifyConsistent`] its
//! result — see the hardened protocols in `chorus-protocols`.
//!
//! [`Choreography`]: chorus_core::Choreography
//! [`ChoreoOp::try_multicast`]: chorus_core::ChoreoOp::try_multicast

mod broadcast_gather;
mod misbehavior;
mod preflight;
mod propose;
mod verify;

pub use broadcast_gather::{exchange_verdicts, resolve_verdicts, BroadcastGather};
pub use misbehavior::{Decision, Misbehavior, MisbehaviorKind, Opening, Sealed, Verdict};
pub use preflight::{agreed_culprit, preflight};
pub use propose::ProposeAck;
pub use verify::VerifyConsistent;
