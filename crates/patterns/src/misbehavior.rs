//! Typed protocol-fault vocabulary.
//!
//! Robust choreographies never just hang or panic when a participant
//! misbehaves: every pattern in this crate resolves to a
//! [`Misbehavior`] that *names the offending role*, so the surrounding
//! protocol (and its operator) can act on the accusation — abort,
//! exclude the culprit, or escalate.

use chorus_core::{CommFailure, CommFailureKind};
use serde::{Deserialize, Serialize};

/// What a participant was caught doing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MisbehaviorKind {
    /// No message ever arrived from the culprit: the link is silenced or
    /// dead, or the receive watchdog fired.
    Silent {
        /// The transport's description of the failure.
        reason: String,
    },
    /// A message arrived but did not decode as the expected type — a
    /// corrupted or forged frame.
    Garbled {
        /// The decoder's description of the failure.
        reason: String,
    },
    /// The message decoded, but the pattern's validation hook rejected
    /// its content.
    Rejected {
        /// The hook's stated reason.
        reason: String,
    },
    /// The message carried a stale or foreign epoch tag — a replayed or
    /// cross-protocol frame.
    WrongEpoch {
        /// The epoch the message claimed.
        got: u64,
    },
    /// An opened commit-reveal value did not match the prior
    /// commitment: the culprit chose its value after the fact.
    BadCommitment,
    /// The culprit showed different participants different values where
    /// the protocol requires one consistent answer (equivocation).
    Inconsistent,
    /// A proposal did not reach its acknowledgement quorum, with no
    /// single reported fault to pin it on.
    NoQuorum {
        /// Acknowledgements actually received (including the
        /// proposer's own).
        acks: u64,
        /// The quorum that was required.
        quorum: u64,
    },
}

/// A detected protocol fault, attributed to one role and one epoch.
///
/// `culprit` is the location name of the participant the evidence
/// points at — for link-level faults, the *sender* side of the faulted
/// edge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Misbehavior {
    /// The accused location.
    pub culprit: String,
    /// The evidence class.
    pub kind: MisbehaviorKind,
    /// The protocol epoch in which the fault was observed.
    pub epoch: u64,
}

impl Misbehavior {
    /// Builds an accusation.
    pub fn new(culprit: impl Into<String>, kind: MisbehaviorKind, epoch: u64) -> Self {
        Misbehavior { culprit: culprit.into(), kind, epoch }
    }

    /// Converts a failed communication into an accusation against the
    /// peer: transport trouble reads as [`Silent`], decode trouble as
    /// [`Garbled`].
    ///
    /// [`Silent`]: MisbehaviorKind::Silent
    /// [`Garbled`]: MisbehaviorKind::Garbled
    pub fn from_comm_failure(failure: &CommFailure, epoch: u64) -> Self {
        let kind = match &failure.kind {
            CommFailureKind::Transport(reason) => {
                MisbehaviorKind::Silent { reason: reason.clone() }
            }
            CommFailureKind::Decode(reason) => MisbehaviorKind::Garbled { reason: reason.clone() },
        };
        Misbehavior { culprit: failure.peer.clone(), kind, epoch }
    }
}

impl std::fmt::Display for Misbehavior {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "misbehavior by {} in epoch {}: ", self.culprit, self.epoch)?;
        match &self.kind {
            MisbehaviorKind::Silent { reason } => write!(f, "silent ({reason})"),
            MisbehaviorKind::Garbled { reason } => write!(f, "garbled message ({reason})"),
            MisbehaviorKind::Rejected { reason } => write!(f, "rejected by validation ({reason})"),
            MisbehaviorKind::WrongEpoch { got } => write!(f, "wrong epoch tag {got}"),
            MisbehaviorKind::BadCommitment => write!(f, "opened value contradicts commitment"),
            MisbehaviorKind::Inconsistent => write!(f, "equivocated: parties saw different values"),
            MisbehaviorKind::NoQuorum { acks, quorum } => {
                write!(f, "quorum not reached ({acks}/{quorum} acks)")
            }
        }
    }
}

impl std::error::Error for Misbehavior {}

/// One participant's signed-off view of a protocol round: either
/// everything it saw checked out, or it accuses someone.
///
/// This is the *portable* (wire-crossing) shape of
/// `Result<(), Misbehavior>`; the vendored serde has no `Result`
/// impls, and a dedicated type reads better in schedule dumps anyway.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// The round looked honest from this participant's seat.
    Ok,
    /// The participant accuses `0`'s culprit.
    Fault(Misbehavior),
}

impl Verdict {
    /// The accusation, if any.
    pub fn fault(&self) -> Option<&Misbehavior> {
        match self {
            Verdict::Ok => None,
            Verdict::Fault(m) => Some(m),
        }
    }
}

/// An epoch-tagged wire message (anti-replay).
///
/// Every frame a pattern sends is wrapped in a `Sealed` so a frame
/// captured in one epoch (or one protocol instance) is rejected with
/// [`MisbehaviorKind::WrongEpoch`] when replayed into another.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sealed<V> {
    /// The epoch this message belongs to.
    pub epoch: u64,
    /// The payload.
    pub value: V,
}

/// A commit-reveal opening: the committed byte string and its salt.
///
/// Verified against a [`chorus_mpc::commit::Commitment`] built with
/// [`Commitment::commit_bytes`](chorus_mpc::commit::Commitment::commit_bytes).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Opening {
    /// The wire-encoded committed value.
    pub bytes: Vec<u8>,
    /// The commitment salt.
    pub salt: u64,
}

/// The proposer's ruling at the end of a propose-and-acknowledge round.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// The quorum acknowledged; everyone adopts the proposal.
    Commit,
    /// The round failed; everyone adopts the accusation.
    Abort(Misbehavior),
}

#[cfg(test)]
mod tests {
    use super::*;
    use chorus_core::{CommFailure, CommFailureKind};

    #[test]
    fn comm_failures_map_to_silent_and_garbled() {
        let transport =
            CommFailure { peer: "S2".into(), kind: CommFailureKind::Transport("link down".into()) };
        let m = Misbehavior::from_comm_failure(&transport, 7);
        assert_eq!(m.culprit, "S2");
        assert_eq!(m.epoch, 7);
        assert!(matches!(m.kind, MisbehaviorKind::Silent { .. }));

        let decode =
            CommFailure { peer: "S3".into(), kind: CommFailureKind::Decode("bad tag".into()) };
        let m = Misbehavior::from_comm_failure(&decode, 9);
        assert_eq!(m.culprit, "S3");
        assert!(matches!(m.kind, MisbehaviorKind::Garbled { .. }));
    }

    #[test]
    fn display_names_the_culprit() {
        let m = Misbehavior::new("P2", MisbehaviorKind::BadCommitment, 3);
        let text = m.to_string();
        assert!(text.contains("P2") && text.contains("epoch 3"), "{text}");
    }

    #[test]
    fn verdict_round_trips_through_the_wire() {
        let fault = Verdict::Fault(Misbehavior::new(
            "P1",
            MisbehaviorKind::NoQuorum { acks: 1, quorum: 3 },
            11,
        ));
        for v in [Verdict::Ok, fault] {
            let bytes = chorus_wire::to_bytes(&v).unwrap();
            let back: Verdict = chorus_wire::from_bytes(&bytes).unwrap();
            assert_eq!(v, back);
        }
    }

    #[test]
    fn sealed_round_trips_through_the_wire() {
        let sealed = Sealed { epoch: 42, value: "payload".to_string() };
        let bytes = chorus_wire::to_bytes(&sealed).unwrap();
        let back: Sealed<String> = chorus_wire::from_bytes(&bytes).unwrap();
        assert_eq!(sealed, back);
    }

    #[test]
    fn decision_round_trips_through_the_wire() {
        let abort = Decision::Abort(Misbehavior::new(
            "S1",
            MisbehaviorKind::Rejected { reason: "stale config".into() },
            5,
        ));
        for d in [Decision::Commit, abort] {
            let bytes = chorus_wire::to_bytes(&d).unwrap();
            let back: Decision = chorus_wire::from_bytes(&bytes).unwrap();
            assert_eq!(d, back);
        }
    }
}
