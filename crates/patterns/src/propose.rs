//! Propose-and-acknowledge with quorum tracking.
//!
//! One distinguished proposer pushes an epoch-sealed proposal to the
//! whole census; every participant validates it and sends back a
//! [`Verdict`]; the proposer commits if the acknowledgement quorum is
//! reached and otherwise aborts with the blame-count winner among the
//! reported faults (falling back to [`NoQuorum`]). The decision is then
//! pushed to everyone, so the round ends with every reachable
//! participant holding either the committed value or a [`Misbehavior`]
//! naming the offender — never hanging on a silent peer, thanks to
//! [`ChoreoOp::try_multicast`] underneath.
//!
//! [`NoQuorum`]: crate::MisbehaviorKind::NoQuorum

use crate::broadcast_gather::resolve_verdicts;
use crate::misbehavior::{Decision, Misbehavior, MisbehaviorKind, Sealed, Verdict};
use chorus_core::{
    ChoreoOp, Choreography, ChoreographyLocation, CommFailure, Faceted, Located, LocationSet,
    LocationSetFoldable, Member, MultiplyLocated, Portable, Quire, Subset, SubsetCons, SubsetNil,
};
use std::marker::PhantomData;

/// The propose-and-acknowledge pattern.
///
/// `Proposer` must be a member of the census `P`; `quorum` counts the
/// proposer's own (self-validated) acknowledgement. The `validate` hook
/// runs at every participant, including the proposer.
pub struct ProposeAck<'a, V, Proposer, P: LocationSet, F, ProposerIdx, PRefl, PFold> {
    /// The proposer's proposal.
    pub proposal: &'a Located<V, Proposer>,
    /// The anti-replay epoch for the whole round.
    pub epoch: u64,
    /// Acknowledgements required to commit (including the proposer's).
    pub quorum: usize,
    /// Proposal validation hook.
    pub validate: &'a F,
    /// Inferred proof indices; pass `PhantomData`.
    pub phantom: PhantomData<(P, ProposerIdx, PRefl, PFold)>,
}

impl<V, Proposer, P, F, ProposerIdx, PRefl, PFold> Choreography<Faceted<Result<V, Misbehavior>, P>>
    for ProposeAck<'_, V, Proposer, P, F, ProposerIdx, PRefl, PFold>
where
    V: Portable + Clone,
    Proposer: ChoreographyLocation + Member<P, ProposerIdx>,
    P: LocationSet + Subset<P, PRefl> + LocationSetFoldable<P, P, PFold>,
    F: Fn(&V) -> Result<(), String>,
{
    type L = P;

    fn run(self, op: &impl ChoreoOp<Self::L>) -> Faceted<Result<V, Misbehavior>, P> {
        let epoch = self.epoch;
        let quorum = self.quorum;

        // 1. The proposer seals and pushes the proposal to everyone.
        let sealed: Located<Sealed<V>, Proposer> =
            op.locally::<_, Proposer, ProposerIdx>(Proposer::new(), |un| Sealed {
                epoch,
                value: un
                    .unwrap_ref::<V, chorus_core::LocationSet!(Proposer), chorus_core::Here>(
                        self.proposal,
                    )
                    .clone(),
            });
        let pushed = op.try_multicast::<Proposer, Sealed<V>, P, ProposerIdx, PRefl>(
            Proposer::new(),
            P::new(),
            &sealed,
        );

        // 2. Every participant independently validates its receipt.
        let receipts: Faceted<Result<V, Misbehavior>, P> = op.fanout(
            P::new(),
            Receipt::<'_, V, P, F> {
                pushed: &pushed,
                epoch,
                validate: self.validate,
                proposer: Proposer::NAME,
            },
        );

        // 3. Acknowledgements fan in to the proposer.
        let acks: MultiplyLocated<Quire<Verdict, P>, chorus_core::LocationSet!(Proposer)> = op
            .fanin::<Verdict, P, chorus_core::LocationSet!(Proposer), _, PRefl, SubsetCons<ProposerIdx, SubsetNil>, PFold>(
                P::new(),
                AckSend::<'_, V, P, Proposer, ProposerIdx> {
                    receipts: &receipts,
                    epoch,
                    phantom: PhantomData,
                },
            );

        // 4. The proposer rules: commit on quorum, otherwise adopt the
        // blame-count winner among the reported faults.
        let ruling: Located<Sealed<Decision>, Proposer> =
            op.locally::<_, Proposer, ProposerIdx>(Proposer::new(), |un| {
                let quire = un
                    .unwrap_ref::<Quire<Verdict, P>, chorus_core::LocationSet!(Proposer), chorus_core::Here>(
                        &acks,
                    );
                let oks = quire.values().filter(|v| matches!(v, Verdict::Ok)).count();
                let decision = if oks >= quorum {
                    Decision::Commit
                } else {
                    match resolve_verdicts(quire) {
                        Err(m) => Decision::Abort(m),
                        Ok(()) => Decision::Abort(Misbehavior::new(
                            Proposer::NAME,
                            MisbehaviorKind::NoQuorum { acks: oks as u64, quorum: quorum as u64 },
                            epoch,
                        )),
                    }
                };
                Sealed { epoch, value: decision }
            });

        // 5. The decision goes back out; each participant folds it with
        // its own receipt.
        let decided = op.try_multicast::<Proposer, Sealed<Decision>, P, ProposerIdx, PRefl>(
            Proposer::new(),
            P::new(),
            &ruling,
        );
        op.fanout(
            P::new(),
            Outcome::<'_, V, P> {
                decided: &decided,
                receipts: &receipts,
                epoch,
                proposer: Proposer::NAME,
            },
        )
    }
}

/// Per-participant validation of the pushed proposal.
struct Receipt<'a, V, P: LocationSet, F> {
    pushed: &'a Result<MultiplyLocated<Sealed<V>, P>, CommFailure>,
    epoch: u64,
    validate: &'a F,
    proposer: &'static str,
}

impl<V, P, F> chorus_core::FanOutChoreography<Result<V, Misbehavior>> for Receipt<'_, V, P, F>
where
    V: Portable + Clone,
    P: LocationSet,
    F: Fn(&V) -> Result<(), String>,
{
    type L = P;
    type QS = P;

    fn run<Q: ChoreographyLocation, QSSubsetL, QMemberL, QMemberQS>(
        &self,
        op: &impl ChoreoOp<Self::L>,
    ) -> Located<Result<V, Misbehavior>, Q>
    where
        Self::QS: Subset<Self::L, QSSubsetL>,
        Q: Member<Self::L, QMemberL>,
        Q: Member<Self::QS, QMemberQS>,
    {
        let epoch = self.epoch;
        op.locally::<_, Q, QMemberL>(Q::new(), |un| match self.pushed {
            Err(failure) => Err(Misbehavior::from_comm_failure(failure, epoch)),
            Ok(delivered) => {
                let sealed = un.unwrap_ref::<Sealed<V>, P, QMemberL>(delivered);
                if sealed.epoch != epoch {
                    return Err(Misbehavior::new(
                        self.proposer,
                        MisbehaviorKind::WrongEpoch { got: sealed.epoch },
                        epoch,
                    ));
                }
                if let Err(reason) = (self.validate)(&sealed.value) {
                    return Err(Misbehavior::new(
                        self.proposer,
                        MisbehaviorKind::Rejected { reason },
                        epoch,
                    ));
                }
                Ok(sealed.value.clone())
            }
        })
    }
}

/// Fan-in of acknowledgements to the proposer; an unreachable or
/// garbled acknowledger is recorded as its own fault.
struct AckSend<'a, V, P: LocationSet, Proposer, ProposerIdx> {
    receipts: &'a Faceted<Result<V, Misbehavior>, P>,
    epoch: u64,
    phantom: PhantomData<(Proposer, ProposerIdx)>,
}

impl<V, P, Proposer, ProposerIdx> chorus_core::FanInChoreography<Verdict>
    for AckSend<'_, V, P, Proposer, ProposerIdx>
where
    V: Portable + Clone,
    P: LocationSet,
    Proposer: ChoreographyLocation + Member<P, ProposerIdx>,
{
    type L = P;
    type QS = P;
    type RS = chorus_core::LocationSet!(Proposer);

    fn run<Qi: ChoreographyLocation, QSSubsetL, RSSubsetL, QiMemberL, QiMemberQS>(
        &self,
        op: &impl ChoreoOp<Self::L>,
    ) -> MultiplyLocated<Verdict, Self::RS>
    where
        Self::QS: Subset<Self::L, QSSubsetL>,
        Self::RS: Subset<Self::L, RSSubsetL>,
        Qi: Member<Self::L, QiMemberL>,
        Qi: Member<Self::QS, QiMemberQS>,
    {
        let epoch = self.epoch;
        let verdict_of = |receipt: &Result<V, Misbehavior>| match receipt {
            Ok(_) => Verdict::Ok,
            Err(m) => Verdict::Fault(m.clone()),
        };
        if Qi::NAME == Proposer::NAME {
            return op.locally::<_, Proposer, ProposerIdx>(Proposer::new(), |un| {
                verdict_of(
                    un.unwrap_faceted_ref::<Result<V, Misbehavior>, P, ProposerIdx>(self.receipts),
                )
            });
        }
        let ack: Located<Sealed<Verdict>, Qi> =
            op.locally::<_, Qi, QiMemberL>(Qi::new(), |un| Sealed {
                epoch,
                value: verdict_of(
                    un.unwrap_faceted_ref::<Result<V, Misbehavior>, P, QiMemberL>(self.receipts),
                ),
            });
        match op.try_multicast::<Qi, Sealed<Verdict>, Self::RS, QiMemberL, RSSubsetL>(
            Qi::new(),
            <Self::RS>::new(),
            &ack,
        ) {
            Ok(delivered) => op.locally::<_, Proposer, ProposerIdx>(Proposer::new(), |un| {
                let sealed =
                    un.unwrap_ref::<Sealed<Verdict>, Self::RS, chorus_core::Here>(&delivered);
                if sealed.epoch != epoch {
                    Verdict::Fault(Misbehavior::new(
                        Qi::NAME,
                        MisbehaviorKind::WrongEpoch { got: sealed.epoch },
                        epoch,
                    ))
                } else {
                    sealed.value.clone()
                }
            }),
            Err(failure) => op.locally::<_, Proposer, ProposerIdx>(Proposer::new(), move |_| {
                Verdict::Fault(Misbehavior::from_comm_failure(&failure, epoch))
            }),
        }
    }
}

/// Per-participant fold of the proposer's decision with the local
/// receipt.
struct Outcome<'a, V, P: LocationSet> {
    decided: &'a Result<MultiplyLocated<Sealed<Decision>, P>, CommFailure>,
    receipts: &'a Faceted<Result<V, Misbehavior>, P>,
    epoch: u64,
    proposer: &'static str,
}

impl<V, P> chorus_core::FanOutChoreography<Result<V, Misbehavior>> for Outcome<'_, V, P>
where
    V: Portable + Clone,
    P: LocationSet,
{
    type L = P;
    type QS = P;

    fn run<Q: ChoreographyLocation, QSSubsetL, QMemberL, QMemberQS>(
        &self,
        op: &impl ChoreoOp<Self::L>,
    ) -> Located<Result<V, Misbehavior>, Q>
    where
        Self::QS: Subset<Self::L, QSSubsetL>,
        Q: Member<Self::L, QMemberL>,
        Q: Member<Self::QS, QMemberQS>,
    {
        let epoch = self.epoch;
        op.locally::<_, Q, QMemberL>(Q::new(), |un| {
            // Local knowledge first: a participant whose own receipt
            // failed reports that failure — the decision arrived over
            // the same suspect link and a tampered `Abort` could
            // otherwise smuggle in a fabricated culprit.
            if let Err(m) =
                un.unwrap_faceted_ref::<Result<V, Misbehavior>, P, QMemberL>(self.receipts)
            {
                return Err(m.clone());
            }
            match self.decided {
                Err(failure) => Err(Misbehavior::from_comm_failure(failure, epoch)),
                Ok(delivered) => {
                    let sealed = un.unwrap_ref::<Sealed<Decision>, P, QMemberL>(delivered);
                    if sealed.epoch != epoch {
                        return Err(Misbehavior::new(
                            self.proposer,
                            MisbehaviorKind::WrongEpoch { got: sealed.epoch },
                            epoch,
                        ));
                    }
                    match &sealed.value {
                        Decision::Abort(m) => Err(m.clone()),
                        Decision::Commit => un
                            .unwrap_faceted_ref::<Result<V, Misbehavior>, P, QMemberL>(
                                self.receipts,
                            )
                            .clone(),
                    }
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chorus_core::Runner;
    use std::collections::BTreeMap;

    chorus_core::locations! { Leader, F1, F2 }
    type Cluster = chorus_core::LocationSet!(Leader, F1, F2);

    struct Round<'a, F> {
        proposal: &'a Located<String, Leader>,
        quorum: usize,
        validate: &'a F,
    }

    impl<F> Choreography<Faceted<Result<String, Misbehavior>, Cluster>> for Round<'_, F>
    where
        F: Fn(&String) -> Result<(), String>,
    {
        type L = Cluster;
        fn run(self, op: &impl ChoreoOp<Cluster>) -> Faceted<Result<String, Misbehavior>, Cluster> {
            ProposeAck::<'_, String, Leader, Cluster, F, _, _, _> {
                proposal: self.proposal,
                epoch: 6,
                quorum: self.quorum,
                validate: self.validate,
                phantom: PhantomData,
            }
            .run(op)
        }
    }

    fn run<F: Fn(&String) -> Result<(), String>>(
        quorum: usize,
        validate: F,
    ) -> BTreeMap<String, Result<String, Misbehavior>> {
        let runner: Runner<Cluster> = Runner::new();
        let proposal = runner.local("cfg-v2".to_string());
        let out = runner.run(Round { proposal: &proposal, quorum, validate: &validate });
        runner.unwrap_faceted(out)
    }

    #[test]
    fn unanimous_acks_commit_everywhere() {
        let facets = run(3, |_| Ok(()));
        for (name, outcome) in facets {
            assert_eq!(outcome, Ok("cfg-v2".to_string()), "{name} must adopt the proposal");
        }
    }

    #[test]
    fn rejected_proposal_aborts_with_the_proposer_named() {
        let facets = run(2, |_: &String| Err("policy violation".to_string()));
        for (name, outcome) in facets {
            let m = outcome.expect_err("a rejected proposal must abort");
            assert_eq!(m.culprit, "Leader", "{name} must blame the proposer");
            assert!(matches!(m.kind, MisbehaviorKind::Rejected { .. }));
            assert_eq!(m.epoch, 6);
        }
    }

    #[test]
    fn unreachable_quorum_aborts_with_no_quorum() {
        // Everyone validates, but the quorum is impossible to reach.
        let facets = run(4, |_| Ok(()));
        for (name, outcome) in facets {
            let m = outcome.expect_err("an unreachable quorum must abort");
            assert_eq!(m.culprit, "Leader", "{name}: NoQuorum falls back to the proposer");
            assert!(matches!(m.kind, MisbehaviorKind::NoQuorum { acks: 3, quorum: 4 }));
        }
    }
}
