//! Commit-reveal consistent-result verification.
//!
//! After a protocol computes a value that *should* be identical at
//! every participant (a revealed MPC output, a replicated decision),
//! this pattern has everyone prove it: each participant commits to its
//! wire-encoded value with a salted hash
//! ([`Commitment::commit_bytes`]), the commitments circulate first, the
//! openings second — so nobody can choose its "result" after seeing the
//! others' — and everyone judges every opening. A participant whose
//! opening contradicts its commitment is a [`BadCommitment`]; one whose
//! opened value differs from the judge's own is [`Inconsistent`]. A
//! final verdict exchange makes every honest participant agree on the
//! outcome.
//!
//! [`Commitment::commit_bytes`]: chorus_mpc::commit::Commitment::commit_bytes
//! [`BadCommitment`]: crate::MisbehaviorKind::BadCommitment
//! [`Inconsistent`]: crate::MisbehaviorKind::Inconsistent

use crate::broadcast_gather::{exchange_verdicts, BroadcastGather};
use crate::misbehavior::{Misbehavior, MisbehaviorKind, Opening, Verdict};
use chorus_core::{
    ChoreoOp, Choreography, ChoreographyLocation, Faceted, Located, LocationSet,
    LocationSetFoldable, Member, Portable, Quire, Subset,
};
use chorus_mpc::commit::Commitment;
use rand::{thread_rng, Rng};
use std::marker::PhantomData;

/// The consistent-result verification pattern.
///
/// `values` holds each participant's claimed result. Returns, per
/// participant, `Ok` of its own value if every participant provably
/// holds the same one, otherwise the agreed accusation.
pub struct VerifyConsistent<'a, V, P: LocationSet, PRefl, PFold> {
    /// Each participant's claimed result (its facet).
    pub values: &'a Faceted<V, P>,
    /// The anti-replay epoch for all three rounds.
    pub epoch: u64,
    /// Inferred proof indices; pass `PhantomData`.
    pub phantom: PhantomData<(PRefl, PFold)>,
}

impl<V, P, PRefl, PFold> Choreography<Faceted<Result<V, Misbehavior>, P>>
    for VerifyConsistent<'_, V, P, PRefl, PFold>
where
    V: Portable + Clone + PartialEq,
    P: LocationSet + Subset<P, PRefl> + LocationSetFoldable<P, P, PFold>,
{
    type L = P;

    fn run(self, op: &impl ChoreoOp<Self::L>) -> Faceted<Result<V, Misbehavior>, P> {
        let epoch = self.epoch;

        // Each participant encodes its value and salts a commitment.
        let openings: Faceted<Opening, P> = op.map_facets(P::new(), self.values, |v| Opening {
            bytes: chorus_wire::to_bytes(v).expect("wire encoding is total"),
            salt: thread_rng().gen(),
        });
        let commitments: Faceted<Commitment, P> =
            op.map_facets(P::new(), &openings, |o| Commitment::commit_bytes(&o.bytes, o.salt));

        // Round 1: commitments circulate. Round 2: openings. Program
        // order at each endpoint guarantees its openings are not sent
        // until it has finished gathering commitments.
        let accept_commit = |_: &'static str, _: &Commitment| Ok(());
        let commit_round = BroadcastGather::<'_, Commitment, P, _, PRefl, PFold> {
            values: &commitments,
            epoch,
            validate: &accept_commit,
            phantom: PhantomData,
        }
        .run(op);
        let accept_open = |_: &'static str, _: &Opening| Ok(());
        let open_round = BroadcastGather::<'_, Opening, P, _, PRefl, PFold> {
            values: &openings,
            epoch,
            validate: &accept_open,
            phantom: PhantomData,
        }
        .run(op);

        // Every participant judges every sender's opening against the
        // commitment and against its own value.
        let verdicts: Faceted<Verdict, P> = op.fanout(
            P::new(),
            Judge::<'_, V, P> {
                values: self.values,
                commit_round: &commit_round,
                open_round: &open_round,
                epoch,
            },
        );

        // Round 3: verdicts circulate so honest participants converge.
        let resolved = exchange_verdicts::<P, _, PRefl, PFold>(op, &verdicts, epoch);
        op.map_facets2(P::new(), &resolved, self.values, |outcome, own| {
            outcome.clone().map(|()| own.clone())
        })
    }
}

/// Per-participant judgement of one commit-reveal exchange.
struct Judge<'a, V, P: LocationSet> {
    values: &'a Faceted<V, P>,
    commit_round: &'a Faceted<Result<Quire<Commitment, P>, Misbehavior>, P>,
    open_round: &'a Faceted<Result<Quire<Opening, P>, Misbehavior>, P>,
    epoch: u64,
}

impl<V, P> chorus_core::FanOutChoreography<Verdict> for Judge<'_, V, P>
where
    V: Portable + Clone + PartialEq,
    P: LocationSet,
{
    type L = P;
    type QS = P;

    fn run<Q: ChoreographyLocation, QSSubsetL, QMemberL, QMemberQS>(
        &self,
        op: &impl ChoreoOp<Self::L>,
    ) -> Located<Verdict, Q>
    where
        Self::QS: Subset<Self::L, QSSubsetL>,
        Q: Member<Self::L, QMemberL>,
        Q: Member<Self::QS, QMemberQS>,
    {
        let epoch = self.epoch;
        op.locally::<_, Q, QMemberL>(Q::new(), |un| {
            let commits = match un
                .unwrap_faceted_ref::<Result<Quire<Commitment, P>, Misbehavior>, P, QMemberL>(
                    self.commit_round,
                ) {
                Ok(q) => q,
                Err(m) => return Verdict::Fault(m.clone()),
            };
            let opens = match un
                .unwrap_faceted_ref::<Result<Quire<Opening, P>, Misbehavior>, P, QMemberL>(
                    self.open_round,
                ) {
                Ok(q) => q,
                Err(m) => return Verdict::Fault(m.clone()),
            };
            let own = un.unwrap_faceted_ref::<V, P, QMemberL>(self.values);
            for (name, opening) in opens.iter() {
                let commitment = commits.get_by_name(name).expect("rounds share the census");
                if !commitment.verify_bytes(&opening.bytes, opening.salt) {
                    return Verdict::Fault(Misbehavior::new(
                        name,
                        MisbehaviorKind::BadCommitment,
                        epoch,
                    ));
                }
                match chorus_wire::from_bytes::<V>(&opening.bytes) {
                    Err(e) => {
                        return Verdict::Fault(Misbehavior::new(
                            name,
                            MisbehaviorKind::Garbled { reason: e.to_string() },
                            epoch,
                        ))
                    }
                    Ok(theirs) => {
                        if theirs != *own {
                            return Verdict::Fault(Misbehavior::new(
                                name,
                                MisbehaviorKind::Inconsistent,
                                epoch,
                            ));
                        }
                    }
                }
            }
            Verdict::Ok
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chorus_core::Runner;
    use std::collections::BTreeMap;

    chorus_core::locations! { A, B, C }
    type Trio = chorus_core::LocationSet!(A, B, C);

    struct Verify<'a> {
        values: &'a Faceted<u64, Trio>,
    }

    impl Choreography<Faceted<Result<u64, Misbehavior>, Trio>> for Verify<'_> {
        type L = Trio;
        fn run(self, op: &impl ChoreoOp<Trio>) -> Faceted<Result<u64, Misbehavior>, Trio> {
            VerifyConsistent::<'_, u64, Trio, _, _> {
                values: self.values,
                epoch: 4,
                phantom: PhantomData,
            }
            .run(op)
        }
    }

    fn run(values: [(&str, u64); 3]) -> BTreeMap<String, Result<u64, Misbehavior>> {
        let runner: Runner<Trio> = Runner::new();
        let faceted = runner.faceted(values.into_iter().map(|(k, v)| (k.to_string(), v)).collect());
        let out = runner.run(Verify { values: &faceted });
        runner.unwrap_faceted(out)
    }

    #[test]
    fn consistent_results_verify_everywhere() {
        let facets = run([("A", 99), ("B", 99), ("C", 99)]);
        for (name, outcome) in facets {
            assert_eq!(outcome, Ok(99), "{name} must keep its verified value");
        }
    }

    #[test]
    fn a_divergent_participant_is_named_by_everyone() {
        // C computed something else; A and B accuse C, C's counter-
        // accusation (of A) is outvoted, so all three — including C —
        // resolve culprit C.
        let facets = run([("A", 7), ("B", 7), ("C", 8)]);
        for (name, outcome) in facets {
            let m = outcome.expect_err("divergence must be detected");
            assert_eq!(m.culprit, "C", "{name} must converge on the actual culprit");
            assert!(matches!(m.kind, MisbehaviorKind::Inconsistent));
            assert_eq!(m.epoch, 4);
        }
    }
}
