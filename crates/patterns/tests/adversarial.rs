//! The patterns against a genuinely hostile wire: three endpoints on
//! real threads over [`SimTransport`] with adversarial fault modes
//! (selective silence, frame corruption, an equivocating sender),
//! asserting detection with the correct culprit named and — crucially —
//! no hangs: every endpoint resolves.

use chorus_core::{ChoreographyLocation as _, Endpoint, Quire};
use chorus_patterns::{BroadcastGather, Misbehavior, MisbehaviorKind, VerifyConsistent};
use chorus_transport::{Corruption, Equivocator, FaultPlan, Silence, SimNet, SimTransport};
use std::collections::BTreeMap;
use std::marker::PhantomData;

chorus_core::locations! { A, B, C }
type Trio = chorus_core::LocationSet!(A, B, C);

type GatherOutcome = Result<Quire<u64, Trio>, Misbehavior>;

/// Runs one `BroadcastGather` round at every endpoint and collects each
/// endpoint's own outcome.
fn run_gather(plan: FaultPlan) -> BTreeMap<String, GatherOutcome> {
    let net = SimNet::<Trio>::new(plan);
    let mut handles = Vec::new();
    macro_rules! node {
        ($ty:ty, $value:expr) => {{
            let net = net.clone();
            handles.push(std::thread::spawn(move || {
                let endpoint = Endpoint::new(SimTransport::new(<$ty>::new(), net));
                let session = endpoint.session();
                // The validation hook knows the protocol's value space
                // (multiples of ten up to thirty), so a tampered payload
                // that still decodes is rejected rather than adopted.
                let out = session.epp_and_run(BroadcastGather::<'_, u64, Trio, _, _, _> {
                    values: &session.local_faceted($value),
                    epoch: 3,
                    validate: &|_: &'static str, v: &u64| {
                        if *v % 10 == 0 && *v <= 30 {
                            Ok(())
                        } else {
                            Err(format!("{v} is outside the value space"))
                        }
                    },
                    phantom: PhantomData,
                });
                (<$ty>::NAME.to_string(), session.unwrap_faceted(out))
            }));
        }};
    }
    node!(A, 10);
    node!(B, 20);
    node!(C, 30);
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

#[test]
fn clean_network_gathers_everywhere() {
    let outcomes = run_gather(FaultPlan::ideal().with_seed(1));
    for (name, outcome) in outcomes {
        let quire = outcome.unwrap_or_else(|m| panic!("{name} saw a fault: {m}"));
        assert_eq!(quire.get_by_name("A"), Some(&10));
        assert_eq!(quire.get_by_name("B"), Some(&20));
        assert_eq!(quire.get_by_name("C"), Some(&30));
    }
}

#[test]
fn silenced_link_is_detected_by_its_receiver_only() {
    let plan = FaultPlan::ideal().with_seed(2).with_silence(Silence::link("A", "B"));
    let outcomes = run_gather(plan);
    let m = outcomes["B"].as_ref().expect_err("B never hears from A");
    assert_eq!(m.culprit, "A", "the silent edge's sender is the culprit");
    assert!(matches!(m.kind, MisbehaviorKind::Silent { .. }), "got {m}");
    assert_eq!(m.epoch, 3);
    // The fault is one-directional and link-local: everyone else
    // completes, including A itself.
    assert!(outcomes["A"].is_ok() && outcomes["C"].is_ok());
}

#[test]
fn corrupted_link_is_detected_and_attributed() {
    let plan = FaultPlan::ideal().with_seed(3).with_corruption(Corruption::link("C", "A", 1.0));
    let outcomes = run_gather(plan);
    let m = outcomes["A"].as_ref().expect_err("every frame C -> A is tampered");
    assert_eq!(m.culprit, "C");
    assert!(
        matches!(
            m.kind,
            MisbehaviorKind::Garbled { .. }
                | MisbehaviorKind::Rejected { .. }
                | MisbehaviorKind::WrongEpoch { .. }
        ),
        "a flipped bit must surface as garbled/rejected/wrong-epoch, got {m}"
    );
    assert!(outcomes["B"].is_ok() && outcomes["C"].is_ok());
}

/// An equivocating sender caught by commit-reveal verification: B runs
/// behind an [`Equivocator`] that tampers with every payload it sends
/// to its victim A, so A's view of B's opening contradicts B's
/// commitment (or decodes to a different value), and A accuses B. The
/// verdict exchange spreads the accusation: every endpoint converges on
/// culprit B.
#[test]
fn equivocating_sender_is_caught_by_verify_consistent() {
    let net = SimNet::<Trio>::new(FaultPlan::ideal().with_seed(4));
    let mut handles = Vec::new();
    macro_rules! node {
        ($ty:ty, $wrap:expr) => {{
            let net = net.clone();
            handles.push(std::thread::spawn(move || {
                let endpoint = Endpoint::new($wrap(SimTransport::new(<$ty>::new(), net)));
                let session = endpoint.session();
                let out = session.epp_and_run(VerifyConsistent::<'_, u64, Trio, _, _> {
                    values: &session.local_faceted(777u64),
                    epoch: 5,
                    phantom: PhantomData,
                });
                (<$ty>::NAME.to_string(), session.unwrap_faceted(out))
            }));
        }};
    }
    node!(A, |t| t);
    node!(B, |t| Equivocator::new(t, 0xB0B, vec!["A"]));
    node!(C, |t| t);
    let outcomes: BTreeMap<String, Result<u64, Misbehavior>> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();
    for (name, outcome) in outcomes {
        let m = outcome.expect_err("equivocation must be detected everywhere");
        assert_eq!(m.culprit, "B", "{name} must converge on the equivocator");
    }
}
