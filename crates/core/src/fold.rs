//! Type-level iteration over location sets.
//!
//! Census polymorphism (§3.4) needs "a way to loop over a polymorphic list
//! of parties". Because Rust closures cannot be generic, the loop body is a
//! *struct* implementing [`LocationSetFolder`], whose `f` method is generic
//! over the current location `Q` together with proofs that `Q` is a member
//! of both the census and the set being folded over (§5.5). The
//! [`LocationSetFoldable`] trait walks the type-level list, instantiating
//! `f` at each head.

use crate::location::{ChoreographyLocation, HCons, HNil, LocationSet};
use crate::member::Member;
use std::marker::PhantomData;

/// A fold body usable with [`LocationSetFoldable::foldr`].
///
/// `B` is the accumulator type. `Self::L` is the census in scope and
/// `Self::QS` the set being iterated; `f` receives the current location as
/// the type parameter `Q` along with inferred membership proofs into both.
pub trait LocationSetFolder<B> {
    /// The census every `Q` is known to belong to.
    type L: LocationSet;
    /// The set being folded over.
    type QS: LocationSet;

    /// Processes one location of `Self::QS`.
    fn f<Q: ChoreographyLocation, QMemberL, QMemberQS>(&self, acc: B) -> B
    where
        Q: Member<Self::L, QMemberL>,
        Q: Member<Self::QS, QMemberQS>;
}

/// Type-level index for one step of a fold: the head's membership proofs in
/// the census and the folded set, plus the index for the tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FoldStep<IL, IQS, ITail>(PhantomData<(IL, IQS, ITail)>);

/// Type-level index for the empty fold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FoldNil;

/// A location set that can be folded over with every element proven to be a
/// member of the census `L` and of the folded set `QS`.
///
/// `Index` is inferred; user code supplies `_`. All subsets of a census are
/// foldable, so in practice the bound
/// `QS: LocationSetFoldable<Census, QS, Index>` always resolves.
pub trait LocationSetFoldable<L: LocationSet, QS: LocationSet, Index> {
    /// Folds `f` over the set, left to right.
    fn foldr<B, F: LocationSetFolder<B, L = L, QS = QS>>(f: &F, acc: B) -> B;
}

impl<L: LocationSet, QS: LocationSet> LocationSetFoldable<L, QS, FoldNil> for HNil {
    fn foldr<B, F: LocationSetFolder<B, L = L, QS = QS>>(_f: &F, acc: B) -> B {
        acc
    }
}

impl<L: LocationSet, QS: LocationSet, Head: ChoreographyLocation, Tail, IL, IQS, ITail>
    LocationSetFoldable<L, QS, FoldStep<IL, IQS, ITail>> for HCons<Head, Tail>
where
    Head: Member<L, IL>,
    Head: Member<QS, IQS>,
    Tail: LocationSetFoldable<L, QS, ITail>,
{
    fn foldr<B, F: LocationSetFolder<B, L = L, QS = QS>>(f: &F, acc: B) -> B {
        let acc = f.f::<Head, IL, IQS>(acc);
        Tail::foldr(f, acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    crate::locations! { Alice, Bob, Carol }

    type Census = crate::LocationSet!(Alice, Bob, Carol);
    type Pair = crate::LocationSet!(Carol, Alice);

    struct CollectNames<L, QS>(PhantomData<(L, QS)>);

    impl<L: LocationSet, QS: LocationSet> LocationSetFolder<Vec<&'static str>> for CollectNames<L, QS> {
        type L = L;
        type QS = QS;

        fn f<Q: ChoreographyLocation, QMemberL, QMemberQS>(
            &self,
            mut acc: Vec<&'static str>,
        ) -> Vec<&'static str>
        where
            Q: Member<Self::L, QMemberL>,
            Q: Member<Self::QS, QMemberQS>,
        {
            acc.push(Q::NAME);
            acc
        }
    }

    fn run_fold<L: LocationSet, QS: LocationSet, Index>() -> Vec<&'static str>
    where
        QS: LocationSetFoldable<L, QS, Index>,
    {
        QS::foldr(&CollectNames::<L, QS>(PhantomData), Vec::new())
    }

    #[test]
    fn folding_the_census_visits_every_location_in_order() {
        assert_eq!(run_fold::<Census, Census, _>(), vec!["Alice", "Bob", "Carol"]);
    }

    #[test]
    fn folding_a_subset_visits_only_its_locations() {
        assert_eq!(run_fold::<Census, Pair, _>(), vec!["Carol", "Alice"]);
    }

    #[test]
    fn folding_the_empty_set_visits_nothing() {
        assert_eq!(run_fold::<Census, crate::LocationSet!(), _>(), Vec::<&str>::new());
    }
}
