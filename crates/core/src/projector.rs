//! Endpoint projection as dependency injection (§5.2).
//!
//! A [`Projector`] turns a choreography into the behavior of one endpoint
//! at run time, not by analyzing the program but by *running* it with
//! operator implementations specialized to the target: `locally` runs the
//! computation only at the target, `multicast` becomes sends at the source
//! and a receive at each destination (the `⟦com⟧p` rule of Fig. 3c), and
//! `conclave` skips the body entirely when the target is outside the
//! sub-census.

use crate::choreography::{ChoreoOp, Choreography, Portable};
use crate::located::{Located, MultiplyLocated, Unwrapper};
use crate::location::{ChoreographyLocation, LocationSet};
use crate::member::{Member, Subset};
use crate::transport::Transport;
use std::marker::PhantomData;

/// Projects choreographies to one endpoint and executes them over a
/// [`Transport`].
///
/// `TL` is the census the transport can reach and `Target` the endpoint
/// this process plays. The projector can run any choreography whose census
/// is a subset of `TL` and contains `Target`.
///
/// # Examples
///
/// See the crate-level documentation for a complete program; construction
/// looks like:
///
/// ```ignore
/// let transport = LocalTransport::new(Alice, channel.clone());
/// let projector = Projector::new(Alice, &transport);
/// let result = projector.epp_and_run(MyChoreography { .. });
/// ```
pub struct Projector<'a, TL, Target, T, TargetIndex>
where
    TL: LocationSet,
    Target: ChoreographyLocation,
    T: Transport<TL, Target>,
{
    transport: &'a T,
    phantom: PhantomData<fn() -> (TL, Target, TargetIndex)>,
}

impl<'a, TL, Target, T, TargetIndex> Projector<'a, TL, Target, T, TargetIndex>
where
    TL: LocationSet,
    Target: ChoreographyLocation + Member<TL, TargetIndex>,
    T: Transport<TL, Target>,
{
    /// Creates a projector for `target` over `transport`.
    pub fn new(target: Target, transport: &'a T) -> Self {
        let _ = target;
        Projector { transport, phantom: PhantomData }
    }

    /// Wraps a value this endpoint holds into a located value at `Target`,
    /// for use as a choreography argument.
    pub fn local<V>(&self, value: V) -> Located<V, Target> {
        MultiplyLocated::local(value)
    }

    /// Produces the placeholder for a located value owned by some *other*
    /// location, for use as a choreography argument.
    ///
    /// # Panics
    ///
    /// The returned placeholder panics if unwrapped, which can only happen
    /// if `at` is this projector's own target — pass values this endpoint
    /// actually holds through [`Projector::local`] instead.
    pub fn remote<V, L2, Index>(&self, at: L2) -> Located<V, L2>
    where
        L2: ChoreographyLocation + Member<TL, Index>,
    {
        let _ = at;
        MultiplyLocated::remote()
    }

    /// Wraps a value this endpoint holds as its facet of a faceted value,
    /// for use as a choreography argument (e.g. each server's private
    /// state in the paper's Fig. 2).
    pub fn local_faceted<V, S, Index>(&self, value: V) -> crate::Faceted<V, S>
    where
        S: LocationSet,
        Target: Member<S, Index>,
    {
        let mut facets = std::collections::BTreeMap::new();
        facets.insert(Target::NAME.to_string(), value);
        crate::Faceted::from_facets(facets)
    }

    /// Produces the placeholder view of a faceted value owned by other
    /// locations, for use as a choreography argument.
    pub fn remote_faceted<V, S: LocationSet>(&self, at: S) -> crate::Faceted<V, S> {
        let _ = at;
        crate::Faceted::from_facets(std::collections::BTreeMap::new())
    }

    /// Extracts a value this endpoint owns from a choreography result.
    ///
    /// The `Member` bound makes this type-safe: only values `Target`
    /// actually owns can be unwrapped.
    pub fn unwrap<V, S, Index>(&self, data: MultiplyLocated<V, S>) -> V
    where
        S: LocationSet,
        Target: Member<S, Index>,
    {
        data.into_inner_option()
            .expect("located value absent at an owner: value escaped its executor")
    }

    /// Performs endpoint projection of `choreo` to `Target` and runs the
    /// projected program to completion.
    ///
    /// # Panics
    ///
    /// Panics if the transport fails mid-choreography. (Deadlock freedom
    /// holds only under reliable communication; see §4.1.)
    pub fn epp_and_run<V, L, C, LSubsetTL, TargetInL>(&self, choreo: C) -> V
    where
        L: LocationSet + Subset<TL, LSubsetTL>,
        Target: Member<L, TargetInL>,
        C: Choreography<V, L = L>,
    {
        let op: EppOp<'a, L, TL, Target, T> = EppOp {
            transport: self.transport,
            phantom: PhantomData,
        };
        choreo.run(&op)
    }
}

/// The injected operator implementations for endpoint projection.
struct EppOp<'a, ChoreoLS, TL, Target, T>
where
    ChoreoLS: LocationSet,
    TL: LocationSet,
    Target: ChoreographyLocation,
    T: Transport<TL, Target>,
{
    transport: &'a T,
    phantom: PhantomData<fn() -> (ChoreoLS, TL, Target)>,
}

impl<ChoreoLS, TL, Target, T> EppOp<'_, ChoreoLS, TL, Target, T>
where
    ChoreoLS: LocationSet,
    TL: LocationSet,
    Target: ChoreographyLocation,
    T: Transport<TL, Target>,
{
    fn send_to<V: Portable>(&self, to: &str, value: &V) {
        let bytes = chorus_wire::to_bytes(value)
            .unwrap_or_else(|e| panic!("failed to encode message for {to}: {e}"));
        self.transport
            .send(to, &bytes)
            .unwrap_or_else(|e| panic!("failed to send to {to}: {e}"));
    }

    fn receive_from<V: Portable>(&self, from: &str) -> V {
        let bytes = self
            .transport
            .receive(from)
            .unwrap_or_else(|e| panic!("failed to receive from {from}: {e}"));
        chorus_wire::from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("failed to decode message from {from}: {e}"))
    }
}

impl<ChoreoLS, TL, Target, T> ChoreoOp<ChoreoLS> for EppOp<'_, ChoreoLS, TL, Target, T>
where
    ChoreoLS: LocationSet,
    TL: LocationSet,
    Target: ChoreographyLocation,
    T: Transport<TL, Target>,
{
    fn locally<V, L1: ChoreographyLocation, Index>(
        &self,
        _location: L1,
        computation: impl Fn(Unwrapper<L1>) -> V,
    ) -> Located<V, L1>
    where
        L1: Member<ChoreoLS, Index>,
    {
        if L1::NAME == Target::NAME {
            MultiplyLocated::local(computation(Unwrapper::new()))
        } else {
            MultiplyLocated::remote()
        }
    }

    fn multicast<Sender: ChoreographyLocation, V: Portable, D: LocationSet, Index1, Index2>(
        &self,
        _src: Sender,
        _destination: D,
        data: &Located<V, Sender>,
    ) -> MultiplyLocated<V, D>
    where
        Sender: Member<ChoreoLS, Index1>,
        D: Subset<ChoreoLS, Index2>,
    {
        let destinations = D::names();
        if Sender::NAME == Target::NAME {
            let value = data
                .as_inner_option()
                .expect("multicast: sender must hold the value it sends");
            for dest in &destinations {
                if *dest != Sender::NAME {
                    self.send_to(dest, value);
                }
            }
            if destinations.contains(&Sender::NAME) {
                // The sender keeps its copy via an in-memory round trip so
                // that `V` needs no `Clone` bound and serialization bugs
                // surface identically at every owner.
                let bytes = chorus_wire::to_bytes(value)
                    .unwrap_or_else(|e| panic!("failed to encode multicast payload: {e}"));
                MultiplyLocated::local(chorus_wire::from_bytes(&bytes).unwrap_or_else(|e| {
                    panic!("failed to decode multicast payload locally: {e}")
                }))
            } else {
                MultiplyLocated::remote()
            }
        } else if destinations.contains(&Target::NAME) {
            MultiplyLocated::local(self.receive_from(Sender::NAME))
        } else {
            MultiplyLocated::remote()
        }
    }

    fn broadcast<Sender: ChoreographyLocation, V: Portable, Index>(
        &self,
        _src: Sender,
        data: Located<V, Sender>,
    ) -> V
    where
        Sender: Member<ChoreoLS, Index>,
    {
        if Sender::NAME == Target::NAME {
            let value = data
                .into_inner_option()
                .expect("broadcast: sender must hold the value it sends");
            for dest in ChoreoLS::names() {
                if dest != Sender::NAME {
                    self.send_to(dest, &value);
                }
            }
            value
        } else {
            self.receive_from(Sender::NAME)
        }
    }

    fn conclave<R, S: LocationSet, C: Choreography<R, L = S>, Index>(
        &self,
        choreo: C,
    ) -> MultiplyLocated<R, S>
    where
        S: Subset<ChoreoLS, Index>,
    {
        if S::names().contains(&Target::NAME) {
            let sub_op: EppOp<'_, S, TL, Target, T> =
                EppOp { transport: self.transport, phantom: PhantomData };
            MultiplyLocated::local(choreo.run(&sub_op))
        } else {
            MultiplyLocated::remote()
        }
    }

    fn resident(&self, owners: &[&'static str]) -> bool {
        owners.contains(&Target::NAME)
    }
}
