//! The deprecated single-session projection shim.
//!
//! [`Projector`] was the original execution surface: one projector, one
//! transport, one choreography run. It is kept as a thin wrapper over a
//! single-session [`Endpoint`](crate::Endpoint) so existing call sites
//! keep compiling, but new code should build an endpoint once and open
//! a [`Session`](crate::Session) per run:
//!
//! ```ignore
//! // Before:
//! let projector = Projector::new(Alice, &transport);
//! let out = projector.epp_and_run(choreo);
//!
//! // After:
//! let endpoint = Endpoint::builder(Alice).transport(transport).build();
//! let session = endpoint.session();
//! let out = session.epp_and_run(choreo);
//! ```
//!
//! The shim always runs in session [`PROJECTOR_SESSION`]; two projectors
//! running concurrently over the same links therefore still corrupt each
//! other — the exact limitation sessions remove.

use crate::choreography::Choreography;
use crate::endpoint::Endpoint;
use crate::located::{Located, MultiplyLocated};
use crate::location::{ChoreographyLocation, LocationSet};
use crate::member::{Member, Subset};
use crate::transport::{SessionId, SessionTransport};
use std::marker::PhantomData;

/// The fixed session id every [`Projector`] runs in.
///
/// Reserved near the top of the id space (just below
/// [`RAW_SESSION`](crate::RAW_SESSION)) so it can never collide with
/// the ids [`Endpoint::session`](crate::Endpoint::session) allocates
/// sequentially from zero — a projector and session-based code sharing
/// one set of links stay isolated during incremental migration.
pub const PROJECTOR_SESSION: SessionId = SessionId::MAX - 1;

/// Projects choreographies to one endpoint and executes them over a
/// transport, one run at a time.
#[deprecated(
    since = "0.2.0",
    note = "build an `Endpoint` once and open a `Session` per run: \
            `Endpoint::builder(target).transport(t).build().session()`"
)]
pub struct Projector<'a, TL, Target, T, TargetIndex>
where
    TL: LocationSet,
    Target: ChoreographyLocation,
    T: SessionTransport<TL, Target>,
{
    endpoint: Endpoint<TL, Target, &'a T>,
    phantom: PhantomData<fn() -> TargetIndex>,
}

#[allow(deprecated)]
impl<'a, TL, Target, T, TargetIndex> Projector<'a, TL, Target, T, TargetIndex>
where
    TL: LocationSet,
    Target: ChoreographyLocation + Member<TL, TargetIndex>,
    T: SessionTransport<TL, Target>,
{
    /// Creates a projector for `target` over `transport`.
    pub fn new(target: Target, transport: &'a T) -> Self {
        let _ = target;
        Projector { endpoint: Endpoint::new(transport), phantom: PhantomData }
    }

    /// Wraps a value this endpoint holds into a located value at `Target`,
    /// for use as a choreography argument.
    pub fn local<V>(&self, value: V) -> Located<V, Target> {
        MultiplyLocated::local(value)
    }

    /// Produces the placeholder for a located value owned by some *other*
    /// location, for use as a choreography argument.
    ///
    /// # Panics
    ///
    /// The returned placeholder panics if unwrapped, which can only happen
    /// if `at` is this projector's own target — pass values this endpoint
    /// actually holds through [`Projector::local`] instead.
    pub fn remote<V, L2, Index>(&self, at: L2) -> Located<V, L2>
    where
        L2: ChoreographyLocation + Member<TL, Index>,
    {
        let _ = at;
        MultiplyLocated::remote()
    }

    /// Wraps a value this endpoint holds as its facet of a faceted value,
    /// for use as a choreography argument.
    pub fn local_faceted<V, S, Index>(&self, value: V) -> crate::Faceted<V, S>
    where
        S: LocationSet,
        Target: Member<S, Index>,
    {
        let mut facets = std::collections::BTreeMap::new();
        facets.insert(Target::NAME.to_string(), value);
        crate::Faceted::from_facets(facets)
    }

    /// Produces the placeholder view of a faceted value owned by other
    /// locations, for use as a choreography argument.
    pub fn remote_faceted<V, S: LocationSet>(&self, at: S) -> crate::Faceted<V, S> {
        let _ = at;
        crate::Faceted::from_facets(std::collections::BTreeMap::new())
    }

    /// Extracts a value this endpoint owns from a choreography result.
    ///
    /// The `Member` bound makes this type-safe: only values `Target`
    /// actually owns can be unwrapped.
    pub fn unwrap<V, S, Index>(&self, data: MultiplyLocated<V, S>) -> V
    where
        S: LocationSet,
        Target: Member<S, Index>,
    {
        data.into_inner_option()
            .expect("located value absent at an owner: value escaped its executor")
    }

    /// Performs endpoint projection of `choreo` to `Target` and runs the
    /// projected program to completion in session [`PROJECTOR_SESSION`].
    ///
    /// # Panics
    ///
    /// Panics if the transport fails mid-choreography. (Deadlock freedom
    /// holds only under reliable communication; see §4.1.)
    pub fn epp_and_run<V, L, C, LSubsetTL, TargetInL>(&self, choreo: C) -> V
    where
        L: LocationSet + Subset<TL, LSubsetTL>,
        Target: Member<L, TargetInL>,
        C: Choreography<V, L = L>,
    {
        self.endpoint.session_with_id(PROJECTOR_SESSION).epp_and_run(choreo)
    }
}
