//! Faceted values (§3.4).
//!
//! A [`Faceted<V, S>`] is "a choreographic data type annotated with a list
//! of owners. EPP to any of the owners will result in a normal value
//! specific to that party; there is no expectation for the owners to have
//! the same value, or for them to know each other's values."
//!
//! Faceted values are what make census polymorphism useful: they are the
//! argument type of `gather`, the return type of `scatter` and `parallel`,
//! and the result of `fanout`.

use crate::location::LocationSet;
use std::collections::BTreeMap;
use std::marker::PhantomData;

/// A per-location value: each owner in `S` holds its own, possibly
/// different, facet of type `V`.
///
/// At a projected endpoint the map holds exactly the endpoint's own facet;
/// under the centralized [`Runner`](crate::Runner) it holds every facet.
/// Either way, unwrapping through
/// [`Unwrapper::unwrap_faceted`](crate::Unwrapper::unwrap_faceted) yields
/// the facet of the location doing the unwrapping, so user code cannot
/// observe the difference.
///
/// The representation is hidden (§5.5: "the implementation of `Faceted` ...
/// is not [safe to expose]"); facets can only be created by choreographic
/// operators and read through an [`Unwrapper`](crate::Unwrapper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Faceted<V, S> {
    facets: BTreeMap<String, V>,
    owners: PhantomData<S>,
}

impl<V, S: LocationSet> Faceted<V, S> {
    /// Builds a faceted value from the facets present at this endpoint.
    pub(crate) fn from_facets(facets: BTreeMap<String, V>) -> Self {
        Faceted { facets, owners: PhantomData }
    }

    /// Looks up the facet belonging to `name`, if present at this endpoint.
    pub(crate) fn facet(&self, name: &str) -> Option<&V> {
        self.facets.get(name)
    }

    /// Consumes the faceted value, returning whatever facets are present at
    /// this endpoint. Used by the centralized runner's `reveal`-style
    /// helpers and by tests.
    pub(crate) fn into_facets(self) -> BTreeMap<String, V> {
        self.facets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    crate::locations! { Alice, Bob }

    type Duo = crate::LocationSet!(Alice, Bob);

    #[test]
    fn facets_are_per_owner() {
        let mut map = BTreeMap::new();
        map.insert("Alice".to_string(), 1);
        map.insert("Bob".to_string(), 2);
        let faceted: Faceted<i32, Duo> = Faceted::from_facets(map);
        assert_eq!(faceted.facet("Alice"), Some(&1));
        assert_eq!(faceted.facet("Bob"), Some(&2));
        assert_eq!(faceted.facet("Carol"), None);
    }

    #[test]
    fn endpoint_view_may_hold_a_single_facet() {
        let mut map = BTreeMap::new();
        map.insert("Bob".to_string(), 9);
        let faceted: Faceted<i32, Duo> = Faceted::from_facets(map);
        assert_eq!(faceted.facet("Alice"), None);
        assert_eq!(faceted.facet("Bob"), Some(&9));
        assert_eq!(faceted.into_facets().len(), 1);
    }
}
