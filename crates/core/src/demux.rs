//! Lifts any raw [`Transport`] into a [`SessionTransport`].
//!
//! Session-native transports (the in-process and TCP transports in
//! `chorus-transport`) demultiplex frames themselves. [`Demux`] is the
//! portable fallback for transports that only offer raw per-sender byte
//! streams: it wraps sends in [`Envelope`]s and, on the receive side,
//! pumps the raw stream into per-(session, sender) FIFO mailboxes.
//!
//! At most one thread per sender performs the blocking raw receive (the
//! "pump"); other threads waiting on the same sender park on a condvar
//! and are woken whenever a frame is deposited, taking over the pump if
//! their frame has not arrived yet.

use crate::location::{ChoreographyLocation, LocationSet};
use crate::transport::{
    InternedNames, MailboxWaker, SequenceTracker, SessionId, SessionTransport, Transport,
    TransportError,
};
use chorus_wire::{Bytes, Envelope};
use std::collections::{HashMap, VecDeque};
use std::marker::PhantomData;
use std::sync::{Arc, Condvar, Mutex};

/// A [`SessionTransport`] built from a raw [`Transport`].
pub struct Demux<L, Target, T>
where
    L: LocationSet,
    Target: ChoreographyLocation,
    T: Transport<L, Target>,
{
    inner: T,
    /// The census, resolved once so per-message sender lookups use
    /// interned names and allocate nothing.
    names: InternedNames,
    senders: Mutex<HashMap<&'static str, Arc<SenderState>>>,
    phantom: PhantomData<fn() -> (L, Target)>,
}

#[derive(Default)]
struct SenderState {
    inner: Mutex<SenderInner>,
    cv: Condvar,
}

#[derive(Default)]
struct SenderInner {
    mailboxes: HashMap<SessionId, VecDeque<Envelope>>,
    sequences: SequenceTracker,
    pumping: bool,
    dead: Option<String>,
    /// Readiness wakers parked on empty mailboxes, fired when the pump
    /// deposits a frame for their session (or the link dies). The pump
    /// is driven by *blocking* receivers: a purely non-blocking consumer
    /// of a `Demux` needs at least one concurrent blocking receive in
    /// flight on the sender (or a session-native transport, which is
    /// what the pooled runtime is intended to run over).
    wakers: HashMap<SessionId, MailboxWaker>,
}

impl<L, Target, T> Demux<L, Target, T>
where
    L: LocationSet,
    Target: ChoreographyLocation,
    T: Transport<L, Target>,
{
    /// Wraps `inner`.
    pub fn new(inner: T) -> Self {
        Demux {
            inner,
            names: InternedNames::of::<L>(),
            senders: Mutex::new(HashMap::new()),
            phantom: PhantomData,
        }
    }

    /// Unwraps the raw transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    fn sender_state(&self, from: &'static str) -> Arc<SenderState> {
        let mut senders = self.senders.lock().expect("demux sender map poisoned");
        Arc::clone(senders.entry(from).or_default())
    }
}

impl<L, Target, T> SessionTransport<L, Target> for Demux<L, Target, T>
where
    L: LocationSet,
    Target: ChoreographyLocation,
    T: Transport<L, Target>,
{
    fn locations(&self) -> Vec<&'static str> {
        self.inner.locations()
    }

    fn send_frame(&self, to: &str, frame: Envelope) -> Result<(), TransportError> {
        self.inner.send(to, &frame.encode())
    }

    fn receive_frame(&self, session: SessionId, from: &str) -> Result<Envelope, TransportError> {
        // Unknown senders fail fast instead of blocking forever.
        let from = self.names.resolve(from)?;
        let state = self.sender_state(from);
        let mut inner = state.inner.lock().expect("demux sender state poisoned");
        loop {
            if let Some(envelope) = inner.mailboxes.get_mut(&session).and_then(VecDeque::pop_front)
            {
                return Ok(envelope);
            }
            if let Some(reason) = &inner.dead {
                return Err(TransportError::Protocol(format!(
                    "link from {from} is down: {reason}"
                )));
            }
            if inner.pumping {
                // Someone else is doing the blocking receive; wait for a
                // deposit or for the pump to free up.
                inner = state.cv.wait(inner).expect("demux sender state poisoned");
                continue;
            }
            // Become the pump: do one blocking raw receive without
            // holding the lock, then deposit the frame.
            inner.pumping = true;
            drop(inner);
            let received = self.inner.receive(from);
            inner = state.inner.lock().expect("demux sender state poisoned");
            inner.pumping = false;
            // The raw receive hands over an owned buffer; adopting it as
            // shared storage lets the payload be sliced out copy-free.
            let mut fired = None;
            let mut all_fired = Vec::new();
            match received.and_then(|bytes| Ok(Envelope::decode_shared(&Bytes::from(bytes))?)) {
                Ok(envelope) => {
                    if let Err(e) = inner.sequences.check(envelope.session, from, envelope.seq) {
                        inner.dead = Some(e.to_string());
                        all_fired.extend(inner.wakers.drain().map(|(_, w)| w));
                    } else {
                        fired = inner.wakers.remove(&envelope.session);
                        inner.mailboxes.entry(envelope.session).or_default().push_back(envelope);
                    }
                }
                Err(e) => {
                    inner.dead = Some(e.to_string());
                    all_fired.extend(inner.wakers.drain().map(|(_, w)| w));
                }
            }
            state.cv.notify_all();
            // Fire readiness wakers outside the sender lock: a waker
            // re-enqueues its session into a scheduler queue, and
            // holding the mailbox lock across that invites ordering
            // deadlocks.
            drop(inner);
            if let Some(waker) = fired {
                waker();
            }
            for waker in all_fired {
                waker();
            }
            inner = state.inner.lock().expect("demux sender state poisoned");
        }
    }

    fn try_receive_frame(
        &self,
        session: SessionId,
        from: &str,
    ) -> Result<Option<Envelope>, TransportError> {
        let from = self.names.resolve(from)?;
        let state = self.sender_state(from);
        let mut inner = state.inner.lock().expect("demux sender state poisoned");
        if let Some(envelope) = inner.mailboxes.get_mut(&session).and_then(VecDeque::pop_front) {
            return Ok(Some(envelope));
        }
        if let Some(reason) = &inner.dead {
            return Err(TransportError::Protocol(format!("link from {from} is down: {reason}")));
        }
        Ok(None)
    }

    fn register_waker(
        &self,
        session: SessionId,
        from: &str,
        waker: MailboxWaker,
    ) -> Result<bool, TransportError> {
        let from = self.names.resolve(from)?;
        let state = self.sender_state(from);
        let mut inner = state.inner.lock().expect("demux sender state poisoned");
        let ready = inner.dead.is_some()
            || inner.mailboxes.get(&session).is_some_and(|mailbox| !mailbox.is_empty());
        if ready {
            return Ok(true);
        }
        inner.wakers.insert(session, waker);
        Ok(false)
    }
}
