//! Multiply-located values (§3.3).
//!
//! A [`MultiplyLocated<V, S>`] is "a choreographic data type annotated with
//! a list of owners. EPP to any of the owners will result in a normal value.
//! Critically, all of the owners will arrive at the same value. EPP to
//! anyone else will result in a placeholder."
//!
//! At an endpoint, the placeholder is represented by an absent value; the
//! type system guarantees that only owners can unwrap, so the placeholder is
//! never observed by well-typed programs.

use crate::faceted::Faceted;
use crate::location::{ChoreographyLocation, LocationSet};
use crate::member::{Member, Subset};
use std::marker::PhantomData;

/// A value of type `V` owned by every location in the set `S`.
///
/// All owners hold the *same* `V` (the MLV invariant); non-owners hold a
/// placeholder. Values of this type are created by choreographic operators
/// ([`ChoreoOp::locally`], [`ChoreoOp::multicast`], [`ChoreoOp::conclave`],
/// ...) and consumed through [`Unwrapper`] inside `locally`, or through
/// [`ChoreoOp::naked`]/[`ChoreoOp::broadcast`] when ownership spans the
/// census.
///
/// [`ChoreoOp::locally`]: crate::ChoreoOp::locally
/// [`ChoreoOp::multicast`]: crate::ChoreoOp::multicast
/// [`ChoreoOp::conclave`]: crate::ChoreoOp::conclave
/// [`ChoreoOp::naked`]: crate::ChoreoOp::naked
/// [`ChoreoOp::broadcast`]: crate::ChoreoOp::broadcast
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiplyLocated<V, S> {
    value: Option<V>,
    owners: PhantomData<S>,
}

/// A value located at a single location: the paper's `t @ l` (Fig. 1), i.e.
/// an MLV with a singleton ownership set.
pub type Located<V, L> = MultiplyLocated<V, crate::LocationSet!(L)>;

impl<V, S> MultiplyLocated<V, S> {
    /// Creates an MLV holding a value: the projection at one of the owners.
    pub(crate) fn local(value: V) -> Self {
        MultiplyLocated { value: Some(value), owners: PhantomData }
    }

    /// Creates the placeholder: the projection at a non-owner.
    pub(crate) fn remote() -> Self {
        MultiplyLocated { value: None, owners: PhantomData }
    }

    /// Extracts the value, if present at this endpoint.
    pub(crate) fn into_inner_option(self) -> Option<V> {
        self.value
    }

    /// References the value, if present at this endpoint.
    pub(crate) fn as_inner_option(&self) -> Option<&V> {
        self.value.as_ref()
    }
}

impl<V, S2, S> MultiplyLocated<Faceted<V, S2>, S> {
    /// Flattens a conclave-returned faceted value.
    ///
    /// A conclave whose body produces a `Faceted<V, S2>` wraps it in an MLV
    /// owned by the conclave's census; peeling the wrapper yields each
    /// owner's view of the facets. Non-owners get an empty view, which is
    /// sound because they hold no membership proof with which to read it.
    pub fn flatten<Index>(self) -> Faceted<V, S2>
    where
        S2: Subset<S, Index> + LocationSet,
        S: LocationSet,
    {
        match self.value {
            Some(faceted) => faceted,
            None => Faceted::from_facets(std::collections::BTreeMap::new()),
        }
    }
}

impl<V, S2, S> MultiplyLocated<MultiplyLocated<V, S2>, S> {
    /// Flattens a nested MLV, narrowing ownership to the inner set.
    ///
    /// This is MultiChor's `flatten` (§5.1): a value known by `S` whose
    /// content is known by `S2 ⊆ S` is just a value known by `S2`. Used
    /// when a conclave returns a located value, e.g.
    /// `op.conclave(sub_choreo).flatten()` in the paper's Fig. 10.
    pub fn flatten<Index>(self) -> MultiplyLocated<V, S2>
    where
        S2: Subset<S, Index> + LocationSet,
        S: LocationSet,
    {
        match self.value {
            Some(inner) => inner,
            None => MultiplyLocated::remote(),
        }
    }
}

/// The capability to read located values at a specific location.
///
/// A computation passed to [`ChoreoOp::locally`] receives an
/// `Unwrapper<L1>`; because the unwrap methods demand a [`Member`] proof
/// that `L1` owns the value, projections can never touch another
/// endpoint's data (§5.1: "the projection of a choreography to any given
/// party will not use any other party's located values").
///
/// [`ChoreoOp::locally`]: crate::ChoreoOp::locally
#[derive(Debug, Clone, Copy)]
pub struct Unwrapper<L: ChoreographyLocation> {
    location: PhantomData<L>,
}

impl<L1: ChoreographyLocation> Unwrapper<L1> {
    pub(crate) fn new() -> Self {
        Unwrapper { location: PhantomData }
    }

    /// Returns a clone of a located value owned by `L1`.
    ///
    /// # Panics
    ///
    /// Panics if the value was produced by a different executor than the one
    /// running this choreography (impossible through the public API).
    pub fn unwrap<V: Clone, S: LocationSet, Index>(&self, mlv: &MultiplyLocated<V, S>) -> V
    where
        L1: Member<S, Index>,
    {
        self.unwrap_ref(mlv).clone()
    }

    /// Returns a reference to a located value owned by `L1`.
    ///
    /// # Panics
    ///
    /// See [`Unwrapper::unwrap`].
    pub fn unwrap_ref<'a, V, S: LocationSet, Index>(&self, mlv: &'a MultiplyLocated<V, S>) -> &'a V
    where
        L1: Member<S, Index>,
    {
        mlv.value.as_ref().expect("located value absent at an owner: value escaped its executor")
    }

    /// Returns a clone of `L1`'s facet of a faceted value.
    ///
    /// # Panics
    ///
    /// See [`Unwrapper::unwrap`].
    pub fn unwrap_faceted<V: Clone, S: LocationSet, Index>(&self, faceted: &Faceted<V, S>) -> V
    where
        L1: Member<S, Index>,
    {
        self.unwrap_faceted_ref(faceted).clone()
    }

    /// Returns a reference to `L1`'s facet of a faceted value.
    ///
    /// # Panics
    ///
    /// See [`Unwrapper::unwrap`].
    pub fn unwrap_faceted_ref<'a, V, S: LocationSet, Index>(
        &self,
        faceted: &'a Faceted<V, S>,
    ) -> &'a V
    where
        L1: Member<S, Index>,
    {
        faceted.facet(L1::NAME).expect("facet absent at an owner: value escaped its executor")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    crate::locations! { Alice, Bob }

    #[test]
    fn local_values_unwrap_at_owners() {
        let mlv: MultiplyLocated<u32, crate::LocationSet!(Alice, Bob)> = MultiplyLocated::local(7);
        let un: Unwrapper<Alice> = Unwrapper::new();
        assert_eq!(un.unwrap(&mlv), 7);
        assert_eq!(*un.unwrap_ref(&mlv), 7);
    }

    #[test]
    #[should_panic(expected = "located value absent")]
    fn remote_values_panic_on_forced_unwrap() {
        let mlv: Located<u32, Alice> = MultiplyLocated::remote();
        let un: Unwrapper<Alice> = Unwrapper::new();
        let _ = un.unwrap(&mlv);
    }

    #[test]
    fn clone_preserves_presence() {
        let mlv: Located<String, Alice> = MultiplyLocated::local("x".into());
        let copy = mlv.clone();
        assert_eq!(copy.as_inner_option(), Some(&"x".to_string()));
        let empty: Located<String, Alice> = MultiplyLocated::remote();
        assert_eq!(empty.clone().into_inner_option(), None);
    }
}
