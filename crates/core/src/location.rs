//! Locations and type-level location sets.
//!
//! A *location* (the paper says "party" or "role") is an empty struct whose
//! type identifies a participant and whose value is a term-level witness for
//! it (§5.3: "a `ChoreographyLocation` in ChoRus is an empty struct type
//! whose inhabitants can be used as term-level identifiers").
//!
//! A *location set* is a type-level list of locations built from [`HCons`]
//! and [`HNil`]; the census of a choreography (§3.2) is such a set.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;

/// A participant in a choreography.
///
/// Implement this by declaring locations with the [`locations!`] macro
/// rather than by hand; the macro generates the unit struct and this impl.
///
/// [`locations!`]: crate::locations
///
/// # Examples
///
/// ```
/// use chorus_core::ChoreographyLocation;
///
/// chorus_core::locations! { Alice }
/// assert_eq!(Alice::NAME, "Alice");
/// let _witness: Alice = Alice::new();
/// ```
pub trait ChoreographyLocation: Copy + Default + 'static {
    /// The unique, human-readable name of this location. Transports route
    /// messages by this name.
    const NAME: &'static str;

    /// Returns the term-level witness for this location.
    fn new() -> Self {
        Self::default()
    }

    /// Returns [`Self::NAME`]; convenient in generic code.
    fn name() -> &'static str {
        Self::NAME
    }
}

/// Declares one or more choreography locations.
///
/// Each identifier becomes a unit struct implementing
/// [`ChoreographyLocation`] with `NAME` equal to the identifier's text.
///
/// # Examples
///
/// ```
/// chorus_core::locations! { Alice, Bob, Carol }
///
/// use chorus_core::ChoreographyLocation;
/// assert_eq!(Bob::NAME, "Bob");
/// ```
#[macro_export]
macro_rules! locations {
    ($($(#[$meta:meta])* $name:ident),+ $(,)?) => {
        $(
            $(#[$meta])*
            #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
            pub struct $name;

            impl $crate::ChoreographyLocation for $name {
                const NAME: &'static str = stringify!($name);
            }

            impl ::std::fmt::Display for $name {
                fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                    f.write_str(stringify!($name))
                }
            }
        )+
    };
}

/// The empty location set.
pub struct HNil;

/// A location set with head `Head` and tail `Tail`.
///
/// Build these with the `LocationSet!` macro instead of writing the nested
/// type by hand.
pub struct HCons<Head, Tail>(PhantomData<(Head, Tail)>);

/// Builds a location-set type from a comma-separated list of locations.
///
/// # Examples
///
/// ```
/// use chorus_core::{LocationSet, LocationSet as _};
///
/// chorus_core::locations! { Alice, Bob }
/// type Pair = chorus_core::LocationSet!(Alice, Bob);
/// assert_eq!(<Pair as chorus_core::LocationSet>::names(), vec!["Alice", "Bob"]);
/// ```
#[macro_export]
#[allow(non_snake_case)]
macro_rules! LocationSet {
    () => { $crate::HNil };
    ($head:ty $(,)?) => { $crate::HCons<$head, $crate::HNil> };
    ($head:ty, $($tail:tt)*) => { $crate::HCons<$head, $crate::LocationSet!($($tail)*)> };
}

/// A type-level list of locations: the census of a choreography or the
/// ownership set of a multiply-located value.
///
/// This trait is sealed: the only implementors are [`HNil`] and
/// [`HCons`], as produced by the `LocationSet!` macro.
pub trait LocationSet: Copy + Default + sealed::Sealed + 'static {
    /// The number of locations in the set.
    const LENGTH: usize;

    /// Returns the term-level witness for this set.
    fn new() -> Self {
        Self::default()
    }

    /// Returns the names of the locations, in declaration order.
    fn names() -> Vec<&'static str>;
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for super::HNil {}
    impl<Head, Tail> Sealed for super::HCons<Head, Tail> {}
}

impl LocationSet for HNil {
    const LENGTH: usize = 0;

    fn names() -> Vec<&'static str> {
        Vec::new()
    }
}

impl<Head: ChoreographyLocation, Tail: LocationSet> LocationSet for HCons<Head, Tail> {
    const LENGTH: usize = 1 + Tail::LENGTH;

    fn names() -> Vec<&'static str> {
        let mut names = vec![Head::NAME];
        names.extend(Tail::names());
        names
    }
}

// Manual impls so that `HCons<H, T>` is Copy/Default/etc. without requiring
// anything of `H`/`T` (the derive would add spurious bounds).
impl Clone for HNil {
    fn clone(&self) -> Self {
        *self
    }
}
impl Copy for HNil {}
impl Default for HNil {
    fn default() -> Self {
        HNil
    }
}
impl fmt::Debug for HNil {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("HNil")
    }
}
impl PartialEq for HNil {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}
impl Eq for HNil {}
impl Hash for HNil {
    fn hash<H: Hasher>(&self, state: &mut H) {
        0u8.hash(state);
    }
}

impl<Head, Tail> Clone for HCons<Head, Tail> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<Head, Tail> Copy for HCons<Head, Tail> {}
impl<Head, Tail> Default for HCons<Head, Tail> {
    fn default() -> Self {
        HCons(PhantomData)
    }
}
impl<Head: ChoreographyLocation, Tail: LocationSet> fmt::Debug for HCons<Head, Tail> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LocationSet!{:?}", Self::names())
    }
}
impl<Head, Tail> PartialEq for HCons<Head, Tail> {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}
impl<Head, Tail> Eq for HCons<Head, Tail> {}
impl<Head, Tail> Hash for HCons<Head, Tail> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        1u8.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    crate::locations! { Alice, Bob, Carol }

    #[test]
    fn names_are_in_declaration_order() {
        type Trio = crate::LocationSet!(Alice, Bob, Carol);
        assert_eq!(<Trio as LocationSet>::names(), vec!["Alice", "Bob", "Carol"]);
        assert_eq!(<Trio as LocationSet>::LENGTH, 3);
    }

    #[test]
    fn empty_set_has_no_names() {
        assert_eq!(<HNil as LocationSet>::names(), Vec::<&str>::new());
        assert_eq!(<HNil as LocationSet>::LENGTH, 0);
    }

    #[test]
    fn location_name_matches_identifier() {
        assert_eq!(Alice::NAME, "Alice");
        assert_eq!(Alice::name(), "Alice");
        assert_eq!(Alice.to_string(), "Alice");
    }

    #[test]
    fn sets_are_copy_and_comparable() {
        type Duo = crate::LocationSet!(Alice, Bob);
        let a: Duo = LocationSet::new();
        let b = a;
        assert_eq!(a, b);
        assert!(!format!("{a:?}").is_empty());
    }

    #[test]
    fn singleton_set_macro_form() {
        type Solo = crate::LocationSet!(Alice);
        assert_eq!(<Solo as LocationSet>::names(), vec!["Alice"]);
    }
}
