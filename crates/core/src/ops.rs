//! Reusable fan-out/fan-in bodies: `Scatter` and `Gather`.
//!
//! These are the library-provided versions of the paper's Fig. 11 `Gather`
//! (a census-polymorphic fan-in) and its dual. They also serve as worked
//! examples of implementing [`FanOutChoreography`] /
//! [`FanInChoreography`] by hand.

use crate::choreography::{ChoreoOp, FanInChoreography, FanOutChoreography, Portable};
use crate::faceted::Faceted;
use crate::located::{Located, MultiplyLocated};
use crate::location::{ChoreographyLocation, LocationSet};
use crate::member::{Member, Subset};
use crate::quire::Quire;
use std::marker::PhantomData;

/// Fan-out body that distributes the entries of a sender-held [`Quire`] to
/// their respective locations: each iteration sends one entry from `Sender`
/// to the current loop location.
///
/// Used by [`ChoreoOp::scatter`]; public so choreographies can embed or
/// adapt it.
pub struct Scatter<'a, V, Sender, QS: LocationSet, L, SenderMemberL> {
    data: &'a Located<Quire<V, QS>, Sender>,
    phantom: PhantomData<fn() -> (L, SenderMemberL)>,
}

impl<'a, V, Sender, QS: LocationSet, L, SenderMemberL>
    Scatter<'a, V, Sender, QS, L, SenderMemberL>
{
    /// Wraps a sender-held quire for scattering.
    pub fn new(data: &'a Located<Quire<V, QS>, Sender>) -> Self {
        Scatter { data, phantom: PhantomData }
    }
}

impl<V, Sender, QS, L, SenderMemberL> FanOutChoreography<V>
    for Scatter<'_, V, Sender, QS, L, SenderMemberL>
where
    V: Portable + Clone,
    Sender: ChoreographyLocation + Member<L, SenderMemberL>,
    QS: LocationSet,
    L: LocationSet,
{
    type L = L;
    type QS = QS;

    fn run<Q: ChoreographyLocation, QSSubsetL, QMemberL, QMemberQS>(
        &self,
        op: &impl ChoreoOp<Self::L>,
    ) -> Located<V, Q>
    where
        Self::QS: Subset<Self::L, QSSubsetL>,
        Q: Member<Self::L, QMemberL>,
        Q: Member<Self::QS, QMemberQS>,
    {
        let entry: Located<V, Sender> = op.locally(Sender::new(), |un| {
            // The ownership set and index are pinned explicitly: the
            // `Sender: Member<L, _>` bound in scope would otherwise win
            // candidate selection and misdirect inference.
            un.unwrap_ref::<Quire<V, QS>, crate::LocationSet!(Sender), crate::Here>(self.data)
                .get_by_name(Q::NAME)
                .expect("scatter: quire is indexed by the recipient set")
                .clone()
        });
        op.comm(Sender::new(), Q::new(), &entry)
    }
}

/// Fan-in body that sends each loop location's facet to the fixed recipient
/// set `RS` — the paper's Fig. 11 `Gather`, generalized.
///
/// Used by [`ChoreoOp::gather`]; public so choreographies can embed or
/// adapt it.
pub struct Gather<'a, V, QS, RS, L> {
    data: &'a Faceted<V, QS>,
    phantom: PhantomData<fn() -> (RS, L)>,
}

impl<'a, V, QS, RS, L> Gather<'a, V, QS, RS, L> {
    /// Wraps a faceted value for gathering.
    pub fn new(data: &'a Faceted<V, QS>) -> Self {
        Gather { data, phantom: PhantomData }
    }
}

impl<V, QS, RS, L> FanInChoreography<V> for Gather<'_, V, QS, RS, L>
where
    V: Portable + Clone,
    QS: LocationSet,
    RS: LocationSet,
    L: LocationSet,
{
    type L = L;
    type QS = QS;
    type RS = RS;

    fn run<Q: ChoreographyLocation, QSSubsetL, RSSubsetL, QMemberL, QMemberQS>(
        &self,
        op: &impl ChoreoOp<Self::L>,
    ) -> MultiplyLocated<V, Self::RS>
    where
        Self::QS: Subset<Self::L, QSSubsetL>,
        Self::RS: Subset<Self::L, RSSubsetL>,
        Q: Member<Self::L, QMemberL>,
        Q: Member<Self::QS, QMemberQS>,
    {
        let facet: Located<V, Q> = op.locally(Q::new(), |un| un.unwrap_faceted(self.data));
        op.multicast(Q::new(), RS::new(), &facet)
    }
}
