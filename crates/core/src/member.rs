//! Membership and subset constraints, discharged by the type checker.
//!
//! The paper (§5.3) describes ChoRus's strategy for the membership proofs
//! that make conclaves and MLVs safe: `Member` and `Subset` are traits
//! "parameterized by the containing list of locations" plus "a second
//! parameter of each trait that provides a concrete proof (again in the form
//! of indices) of the relation". The index parameter makes trait resolution
//! deterministic, so rustc infers the proofs; user code never names them.

use crate::location::{ChoreographyLocation, HCons, LocationSet};
use std::marker::PhantomData;

/// Type-level index: the head of a location set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Here;

/// Type-level index: one step into the tail of a location set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct There<Index>(PhantomData<Index>);

/// Proof that a location occurs in a location set.
///
/// `Index` is `Here` or `There<...>` pointing at the position of `Self` in
/// `L`; it is always inferred. A location type may implement
/// `Member<L, I>` for several `(L, I)` pairs but for at most one `I` per
/// `L`, which is what makes inference work.
///
/// # Examples
///
/// ```
/// use chorus_core::{Member, LocationSet};
///
/// chorus_core::locations! { Alice, Bob }
///
/// fn requires_member<L1, LS, Index>(_: L1)
/// where
///     LS: LocationSet,
///     L1: Member<LS, Index>,
/// {
/// }
///
/// requires_member::<Alice, chorus_core::LocationSet!(Alice, Bob), _>(Alice);
/// ```
pub trait Member<L: LocationSet, Index> {}

impl<Head: ChoreographyLocation, Tail: LocationSet> Member<HCons<Head, Tail>, Here> for Head {}

impl<Head: ChoreographyLocation, Tail: LocationSet, X, Index>
    Member<HCons<Head, Tail>, There<Index>> for X
where
    X: Member<Tail, Index>,
{
}

/// Type-level index witnessing the empty subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SubsetNil;

/// Type-level index pairing a membership proof for the subset's head with a
/// subset proof for its tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SubsetCons<IHead, ITail>(PhantomData<(IHead, ITail)>);

/// Proof that every location of `Self` occurs in `L`.
///
/// Like [`Member`], the `Index` parameter is a concrete derivation (one
/// membership index per element of the subset) and is always inferred.
/// Reflexivity (`S: Subset<S, _>`) follows from the inductive definition, so
/// censuses can always be narrowed to themselves.
///
/// # Examples
///
/// ```
/// use chorus_core::{Subset, LocationSet};
///
/// chorus_core::locations! { Alice, Bob, Carol }
///
/// fn requires_subset<S, LS, Index>()
/// where
///     S: LocationSet + Subset<LS, Index>,
///     LS: LocationSet,
/// {
/// }
///
/// type Census = chorus_core::LocationSet!(Alice, Bob, Carol);
/// requires_subset::<chorus_core::LocationSet!(Carol, Alice), Census, _>();
/// requires_subset::<Census, Census, _>(); // reflexive
/// ```
pub trait Subset<L: LocationSet, Index> {}

impl<L: LocationSet> Subset<L, SubsetNil> for crate::HNil {}

impl<L: LocationSet, Head: ChoreographyLocation, Tail: LocationSet, IHead, ITail>
    Subset<L, SubsetCons<IHead, ITail>> for HCons<Head, Tail>
where
    Head: Member<L, IHead>,
    Tail: Subset<L, ITail>,
{
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LocationSet;

    crate::locations! { Alice, Bob, Carol }

    type Census = LocationSet!(Alice, Bob, Carol);

    fn member<X, L: LocationSet, I>()
    where
        X: Member<L, I>,
    {
    }

    fn subset<S, L: LocationSet, I>()
    where
        S: Subset<L, I>,
    {
    }

    #[test]
    fn members_are_inferred_at_any_position() {
        member::<Alice, Census, _>();
        member::<Bob, Census, _>();
        member::<Carol, Census, _>();
    }

    #[test]
    fn subsets_are_inferred_in_any_order() {
        subset::<LocationSet!(), Census, _>();
        subset::<LocationSet!(Bob), Census, _>();
        subset::<LocationSet!(Carol, Alice), Census, _>();
        subset::<LocationSet!(Bob, Carol, Alice), Census, _>();
    }

    #[test]
    fn subset_is_reflexive() {
        subset::<Census, Census, _>();
        subset::<LocationSet!(Alice), LocationSet!(Alice), _>();
    }
}
