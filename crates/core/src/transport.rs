//! The transport abstraction.
//!
//! Choreographies are transport-agnostic (§2.1): "a single choreography can
//! be executed as either a protocol in which machines communicate using
//! HTTPS or as a protocol in which threads on a single machine communicate
//! using sockets". A [`Transport`] is one endpoint's connection to the rest
//! of the system; concrete implementations (in-process channels, TCP,
//! instrumented wrappers) live in the `chorus-transport` crate.

use crate::location::{ChoreographyLocation, LocationSet};
use std::fmt;

/// Errors a transport can report.
#[derive(Debug)]
#[non_exhaustive]
pub enum TransportError {
    /// The peer's endpoint hung up or was never reachable.
    ConnectionClosed {
        /// The peer whose connection failed.
        peer: String,
    },
    /// A message named a location the transport does not know.
    UnknownLocation(String),
    /// An I/O failure in a socket-backed transport.
    Io(std::io::Error),
    /// A payload failed to encode or decode.
    Codec(chorus_wire::WireError),
    /// A peer violated the session protocol (e.g. a frame arrived out of
    /// sequence within one session).
    Protocol(String),
    /// A resilient link exhausted its reconnect budget and gave up.
    ///
    /// Unlike [`TransportError::ConnectionClosed`] — one connection
    /// ended — this means the link *supervisor* tried to re-establish
    /// the connection `attempts` times over `elapsed` and the peer never
    /// came back. Sessions see this instead of hanging on a dead edge.
    LinkDown {
        /// The failing edge, as `"sender->receiver"` location names.
        edge: String,
        /// Wall-clock time spent retrying before giving up.
        elapsed: std::time::Duration,
        /// Number of connection attempts made.
        attempts: u32,
    },
    /// A resilient link's retention queue reached its configured
    /// watermark and could not drain.
    ///
    /// The sender parked at the watermark waiting for the peer's acks
    /// to prune the queue, but the link resolved down (or the watchdog
    /// expired) first. Holding more frames for a peer that is not
    /// acknowledging would only hoard memory — this is the bound that
    /// keeps a dead peer from OOMing its senders.
    RetentionExceeded {
        /// The stalled edge, as `"sender->receiver"` location names.
        edge: String,
        /// Bytes retained for the peer when the sender gave up.
        retained_bytes: usize,
        /// The configured watermark (`CHORUS_TCP_RETAIN_MAX` or the
        /// builder override).
        limit: usize,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::ConnectionClosed { peer } => {
                write!(f, "connection to {peer} closed")
            }
            TransportError::UnknownLocation(name) => {
                write!(f, "unknown location {name}")
            }
            TransportError::Io(e) => write!(f, "transport I/O error: {e}"),
            TransportError::Codec(e) => write!(f, "payload codec error: {e}"),
            TransportError::Protocol(msg) => write!(f, "session protocol violation: {msg}"),
            TransportError::LinkDown { edge, elapsed, attempts } => write!(
                f,
                "link {edge} is down: gave up after {attempts} connection attempts over {}ms",
                elapsed.as_millis()
            ),
            TransportError::RetentionExceeded { edge, retained_bytes, limit } => write!(
                f,
                "link {edge} retention watermark exceeded: {retained_bytes} bytes retained \
                 (limit {limit}) with the peer not acknowledging"
            ),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io(e) => Some(e),
            TransportError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

impl From<chorus_wire::WireError> for TransportError {
    fn from(e: chorus_wire::WireError) -> Self {
        TransportError::Codec(e)
    }
}

/// One endpoint's view of the network: `Target`'s mailbox and outgoing
/// links within the system census `L`.
///
/// Implementations must provide reliable, order-preserving, per-sender
/// FIFO delivery — the guarantees the paper's λN model assumes (§4.1
/// "the guarantees of CP only hold in the context of reliable
/// communication").
pub trait Transport<L: LocationSet, Target: ChoreographyLocation> {
    /// The names of every location this transport can reach (including
    /// `Target` itself).
    fn locations(&self) -> Vec<&'static str> {
        L::names()
    }

    /// Sends `data` to the location named `to`.
    ///
    /// # Errors
    ///
    /// Returns an error if `to` is unknown or the link fails.
    fn send(&self, to: &str, data: &[u8]) -> Result<(), TransportError>;

    /// Blocks until a message from the location named `from` arrives.
    ///
    /// # Errors
    ///
    /// Returns an error if `from` is unknown or the link fails before a
    /// message arrives.
    fn receive(&self, from: &str) -> Result<Vec<u8>, TransportError>;
}

/// Identifies one choreography run multiplexed over a shared transport.
pub type SessionId = u64;

/// A readiness callback registered on a per-(session, sender) mailbox.
///
/// The pooled session runtime parks *sessions*, not threads: when a
/// receive would block, the runtime registers one of these on the
/// mailbox and moves on to other runnable sessions. The transport fires
/// the waker — at most once per registration — when the mailbox gains a
/// frame or the link enters an error state (dead, poisoned, peer hung
/// up), re-enqueueing exactly the session that became runnable.
///
/// Wakers must be cheap and non-blocking: transports may invoke them
/// from a sender's thread with no locks held, and a *spurious* wake
/// (the frame was consumed by the time the session runs) must be
/// harmless to the registrant.
///
/// Transports that deliver frames in batches fire each waker once per
/// *drain*, not once per frame: a burst of frames for one mailbox costs
/// one wake, and only mailboxes that actually received a frame (or hit
/// an error) are woken.
pub type MailboxWaker = std::sync::Arc<dyn Fn() + Send + Sync>;

/// The session id the raw [`Transport`] compatibility path uses on
/// session-native transports.
pub const RAW_SESSION: SessionId = SessionId::MAX;

/// A transport that carries many concurrent choreography sessions over
/// one set of links, demultiplexing incoming frames into
/// per-(session, sender) FIFO mailboxes.
///
/// Frames are [`chorus_wire::Envelope`]s: session id, per-edge sequence
/// number, payload. Implementations must preserve per-sender FIFO order
/// *within* each session — the guarantee the λN model assumes (§4.1) —
/// while letting different sessions interleave freely on the wire.
///
/// This is the transport interface [`Endpoint`](crate::Endpoint) is
/// built on; the raw [`Transport`] trait remains for single-stream,
/// unframed byte links, and any raw transport can be lifted into a
/// session transport with [`Demux`](crate::Demux).
pub trait SessionTransport<L: LocationSet, Target: ChoreographyLocation> {
    /// The names of every location this transport can reach (including
    /// `Target` itself).
    fn locations(&self) -> Vec<&'static str> {
        L::names()
    }

    /// Sends one frame to the location named `to`.
    ///
    /// # Errors
    ///
    /// Returns an error if `to` is unknown or the link fails.
    fn send_frame(&self, to: &str, frame: chorus_wire::Envelope) -> Result<(), TransportError>;

    /// Blocks until a frame of `session` from the location named `from`
    /// arrives, and returns it.
    ///
    /// Frames of other sessions arriving meanwhile are queued into their
    /// own mailboxes, never dropped.
    ///
    /// # Errors
    ///
    /// Returns an error if `from` is unknown, the link fails, or the
    /// peer violates per-session frame ordering.
    fn receive_frame(
        &self,
        session: SessionId,
        from: &str,
    ) -> Result<chorus_wire::Envelope, TransportError>;

    /// Pops the next frame of `session` from the location named `from`
    /// if one is already deliverable, **without blocking**.
    ///
    /// Returns `Ok(None)` when the mailbox is merely empty. This is the
    /// receive path the pooled session runtime drives: a session that
    /// sees `None` yields its pool thread (after registering a
    /// [`MailboxWaker`]) instead of parking it.
    ///
    /// # Errors
    ///
    /// Returns an error if `from` is unknown or the link has failed —
    /// exactly the cases in which [`receive_frame`](Self::receive_frame)
    /// would return the same error instead of blocking.
    fn try_receive_frame(
        &self,
        session: SessionId,
        from: &str,
    ) -> Result<Option<chorus_wire::Envelope>, TransportError>;

    /// Registers `waker` to fire when a frame of `session` from `from`
    /// becomes deliverable (or the link fails).
    ///
    /// Returns `Ok(true)` if the mailbox is *already* ready — a frame is
    /// queued, or the link is in an error state — in which case the
    /// waker is **not** stored and the caller should immediately retry
    /// [`try_receive_frame`](Self::try_receive_frame). Returns
    /// `Ok(false)` if the waker was parked on the mailbox. The
    /// ready-check and the registration happen under the mailbox lock,
    /// so a deposit can never slip between them (no lost wakeups).
    ///
    /// At most one waker is held per (session, sender) mailbox; a new
    /// registration replaces the previous one. Registered wakers fire at
    /// most once and are dropped after firing — re-register on every
    /// would-block receive.
    ///
    /// # Errors
    ///
    /// Returns an error if `from` is unknown or the transport cannot
    /// provide readiness notifications.
    fn register_waker(
        &self,
        session: SessionId,
        from: &str,
        waker: MailboxWaker,
    ) -> Result<bool, TransportError>;
}

impl<L, Target, T> SessionTransport<L, Target> for &T
where
    L: LocationSet,
    Target: ChoreographyLocation,
    T: SessionTransport<L, Target> + ?Sized,
{
    fn locations(&self) -> Vec<&'static str> {
        (**self).locations()
    }

    fn send_frame(&self, to: &str, frame: chorus_wire::Envelope) -> Result<(), TransportError> {
        (**self).send_frame(to, frame)
    }

    fn receive_frame(
        &self,
        session: SessionId,
        from: &str,
    ) -> Result<chorus_wire::Envelope, TransportError> {
        (**self).receive_frame(session, from)
    }

    fn try_receive_frame(
        &self,
        session: SessionId,
        from: &str,
    ) -> Result<Option<chorus_wire::Envelope>, TransportError> {
        (**self).try_receive_frame(session, from)
    }

    fn register_waker(
        &self,
        session: SessionId,
        from: &str,
        waker: MailboxWaker,
    ) -> Result<bool, TransportError> {
        (**self).register_waker(session, from, waker)
    }
}

/// A census's names, resolved once so hot paths can validate and
/// intern location names without allocating or re-materializing
/// `L::names()` (a fresh `Vec`) per message.
///
/// Sessions and every transport in the workspace keep one of these;
/// the `&'static str` it hands back is the key used for sequence
/// tracking and mailbox routing.
#[derive(Debug, Clone)]
pub struct InternedNames(Vec<&'static str>);

impl InternedNames {
    /// Resolves the census `L` once.
    pub fn of<L: LocationSet>() -> Self {
        InternedNames(L::names())
    }

    /// Resolves `name` to its interned census entry.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::UnknownLocation`] if `name` is not in
    /// the census.
    pub fn resolve(&self, name: &str) -> Result<&'static str, TransportError> {
        self.0
            .iter()
            .copied()
            .find(|n| *n == name)
            .ok_or_else(|| TransportError::UnknownLocation(name.to_string()))
    }
}

/// Tracks per-(session, sender) expected sequence numbers and rejects
/// regressions.
///
/// A sequence restart (an incoming `seq` of zero) is accepted and resets
/// the expectation: it marks a fresh run reusing the same session id on
/// a long-lived transport, which is how the deprecated
/// single-session [`Projector`](crate::Projector) shim behaves across
/// consecutive `epp_and_run` calls.
#[derive(Debug, Default)]
pub struct SequenceTracker {
    next: std::collections::HashMap<(SessionId, &'static str), u64>,
}

impl SequenceTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Validates `seq` as the next frame of `(session, from)`.
    ///
    /// `from` is the *interned* location name (the `&'static str` a
    /// transport resolved once from its census), so the per-message
    /// bookkeeping allocates nothing.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Protocol`] if `seq` is neither the
    /// expected next sequence number nor a restart at zero.
    pub fn check(
        &mut self,
        session: SessionId,
        from: &'static str,
        seq: u64,
    ) -> Result<(), TransportError> {
        let expected = self.next.entry((session, from)).or_insert(0);
        if seq == *expected || seq == 0 {
            *expected = seq + 1;
            Ok(())
        } else {
            Err(TransportError::Protocol(format!(
                "frame from {from} in session {session} arrived out of order: \
                 expected seq {expected}, got {seq}"
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    crate::locations! { Alpha, Beta }
    type Census = crate::LocationSet!(Alpha, Beta);

    #[test]
    fn tracker_accepts_an_in_order_stream() {
        let mut tracker = SequenceTracker::new();
        for seq in 0..5 {
            tracker.check(1, "Alpha", seq).expect("in-order frames are fine");
        }
    }

    #[test]
    fn tracker_rejects_a_duplicate() {
        let mut tracker = SequenceTracker::new();
        tracker.check(1, "Alpha", 0).unwrap();
        tracker.check(1, "Alpha", 1).unwrap();
        // Replaying seq 1 is neither the expected 2 nor a restart at 0.
        let err = tracker.check(1, "Alpha", 1).unwrap_err();
        assert!(matches!(err, TransportError::Protocol(_)));
        assert!(err.to_string().contains("expected seq 2, got 1"), "got: {err}");
    }

    #[test]
    fn tracker_rejects_a_gap() {
        let mut tracker = SequenceTracker::new();
        tracker.check(7, "Beta", 0).unwrap();
        let err = tracker.check(7, "Beta", 2).unwrap_err();
        assert!(matches!(err, TransportError::Protocol(_)));
        assert!(err.to_string().contains("expected seq 1, got 2"), "got: {err}");
    }

    #[test]
    fn tracker_keeps_interleaved_sessions_independent() {
        let mut tracker = SequenceTracker::new();
        // Two sessions and two senders interleave on one tracker; each
        // (session, sender) stream keeps its own expectation.
        tracker.check(1, "Alpha", 0).unwrap();
        tracker.check(2, "Alpha", 0).unwrap();
        tracker.check(1, "Beta", 0).unwrap();
        tracker.check(1, "Alpha", 1).unwrap();
        tracker.check(2, "Alpha", 1).unwrap();
        tracker.check(1, "Beta", 1).unwrap();
        // A violation in session 2 does not disturb session 1.
        assert!(tracker.check(2, "Alpha", 5).is_err());
        tracker.check(1, "Alpha", 2).unwrap();
    }

    #[test]
    fn tracker_accepts_a_restart_at_zero() {
        let mut tracker = SequenceTracker::new();
        tracker.check(1, "Alpha", 0).unwrap();
        tracker.check(1, "Alpha", 1).unwrap();
        // A fresh run reusing the session id restarts at zero.
        tracker.check(1, "Alpha", 0).unwrap();
        tracker.check(1, "Alpha", 1).unwrap();
    }

    #[test]
    fn link_down_display_names_edge_budget_and_elapsed() {
        let err = TransportError::LinkDown {
            edge: "Alpha->Beta".into(),
            elapsed: std::time::Duration::from_millis(1500),
            attempts: 60,
        };
        let text = err.to_string();
        assert!(text.contains("Alpha->Beta"), "got: {text}");
        assert!(text.contains("60 connection attempts"), "got: {text}");
        assert!(text.contains("1500ms"), "got: {text}");
    }

    #[test]
    fn retention_exceeded_display_names_edge_and_watermark() {
        let err = TransportError::RetentionExceeded {
            edge: "Alpha->Beta".into(),
            retained_bytes: 70_000_000,
            limit: 67_108_864,
        };
        let text = err.to_string();
        assert!(text.contains("Alpha->Beta"), "got: {text}");
        assert!(text.contains("70000000"), "got: {text}");
        assert!(text.contains("67108864"), "got: {text}");
    }

    #[test]
    fn interned_names_resolve_census_members() {
        let names = InternedNames::of::<Census>();
        assert_eq!(names.resolve("Alpha").unwrap(), "Alpha");
        assert_eq!(names.resolve("Beta").unwrap(), "Beta");
    }

    #[test]
    fn interned_names_reject_unknown_names_usefully() {
        let names = InternedNames::of::<Census>();
        let err = names.resolve("Mallory").unwrap_err();
        match &err {
            TransportError::UnknownLocation(name) => assert_eq!(name, "Mallory"),
            other => panic!("expected UnknownLocation, got {other:?}"),
        }
        // The display names the offending census name, so a typo in a
        // choreography points straight at itself.
        assert!(err.to_string().contains("unknown location Mallory"), "got: {err}");
    }
}
