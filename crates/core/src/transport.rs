//! The transport abstraction.
//!
//! Choreographies are transport-agnostic (§2.1): "a single choreography can
//! be executed as either a protocol in which machines communicate using
//! HTTPS or as a protocol in which threads on a single machine communicate
//! using sockets". A [`Transport`] is one endpoint's connection to the rest
//! of the system; concrete implementations (in-process channels, TCP,
//! instrumented wrappers) live in the `chorus-transport` crate.

use crate::location::{ChoreographyLocation, LocationSet};
use std::fmt;

/// Errors a transport can report.
#[derive(Debug)]
#[non_exhaustive]
pub enum TransportError {
    /// The peer's endpoint hung up or was never reachable.
    ConnectionClosed {
        /// The peer whose connection failed.
        peer: String,
    },
    /// A message named a location the transport does not know.
    UnknownLocation(String),
    /// An I/O failure in a socket-backed transport.
    Io(std::io::Error),
    /// A payload failed to encode or decode.
    Codec(chorus_wire::WireError),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::ConnectionClosed { peer } => {
                write!(f, "connection to {peer} closed")
            }
            TransportError::UnknownLocation(name) => {
                write!(f, "unknown location {name}")
            }
            TransportError::Io(e) => write!(f, "transport I/O error: {e}"),
            TransportError::Codec(e) => write!(f, "payload codec error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io(e) => Some(e),
            TransportError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

impl From<chorus_wire::WireError> for TransportError {
    fn from(e: chorus_wire::WireError) -> Self {
        TransportError::Codec(e)
    }
}

/// One endpoint's view of the network: `Target`'s mailbox and outgoing
/// links within the system census `L`.
///
/// Implementations must provide reliable, order-preserving, per-sender
/// FIFO delivery — the guarantees the paper's λN model assumes (§4.1
/// "the guarantees of CP only hold in the context of reliable
/// communication").
pub trait Transport<L: LocationSet, Target: ChoreographyLocation> {
    /// The names of every location this transport can reach (including
    /// `Target` itself).
    fn locations(&self) -> Vec<&'static str> {
        L::names()
    }

    /// Sends `data` to the location named `to`.
    ///
    /// # Errors
    ///
    /// Returns an error if `to` is unknown or the link fails.
    fn send(&self, to: &str, data: &[u8]) -> Result<(), TransportError>;

    /// Blocks until a message from the location named `from` arrives.
    ///
    /// # Errors
    ///
    /// Returns an error if `from` is unknown or the link fails before a
    /// message arrives.
    fn receive(&self, from: &str) -> Result<Vec<u8>, TransportError>;
}
