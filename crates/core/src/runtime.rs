//! The pooled session runtime: many in-flight choreography sessions
//! driven by a fixed worker pool.
//!
//! The blocking execution model ([`Session::epp_and_run`]) parks one OS
//! thread per role per session on a
//! [`WaitQueue`](crate::park::WaitQueue) whenever a receive would
//! block. That is the right shape for a handful of long-lived runs and
//! the wrong shape for ten thousand concurrent ones: tens of thousands
//! of parked threads exhaust memory and scheduler capacity long before
//! the network does. This module keeps the thread count **O(pool
//! size)** instead of O(sessions): each role runs as a *resumable*
//! [`RoleProgram`] that yields on a would-block receive, and a
//! [`SessionRuntime`] — a FIFO run queue drained by a fixed pool of
//! workers — re-enqueues exactly the sessions whose mailboxes became
//! ready, via the [`MailboxWaker`] hook every session-native transport
//! implements.
//!
//! # The yield point
//!
//! A [`RoleProgram`] is the explicit-state-machine rendering of one
//! role's projected choreography (the resumable form rumpsteak-style
//! FSM projection produces, and the form a future projection macro
//! would emit). Its [`resume`](RoleProgram::resume) method drives the
//! role as far as it can: sends always complete (transports buffer),
//! and a receive is attempted with
//! [`SessionCx::try_receive_value`], which either delivers or records
//! the awaited edge and makes the program return [`Step::Pending`].
//! The runtime then registers a one-shot waker on the awaited
//! per-(session, sender) mailbox and the pool thread moves on to the
//! next runnable session — **runnable work never waits behind a parked
//! pool thread**.
//!
//! The registration protocol has no lost-wakeup window: a transport's
//! [`register_waker`](crate::SessionTransport::register_waker) checks
//! readiness and parks the waker under the same mailbox lock a sender
//! deposits under, and reports `true` ("already ready — do not park")
//! if a frame slipped in between the failed receive and the
//! registration.
//!
//! # Fairness and the watchdog
//!
//! Woken sessions go to the *back* of the FIFO run queue, so a chatty
//! session cannot starve its neighbors. A watchdog thread sweeps parked
//! sessions and resolves any that has waited longer than the runtime's
//! deadline (default [`park::default_watchdog`], env-overridable via
//! `CHORUS_WATCHDOG_MS`) with a [`TransportError::Protocol`] — the
//! same surface-the-stall-instead-of-hanging contract the sim
//! transport's receive watchdog established.
//!
//! ```ignore
//! let runtime = SessionRuntime::new(4);
//! let server = runtime.spawn(&server_endpoint, 7, PooledKvsServer::new(store));
//! let client = runtime.spawn(&client_endpoint, 7, PooledKvsClient::get("k"));
//! assert_eq!(client.join()?, Response::Found("v".into()));
//! server.join()?;
//! ```

use crate::choreography::Portable;
use crate::endpoint::{Endpoint, MessageCtx};
use crate::location::{ChoreographyLocation, LocationSet};
use crate::park::{self, WaitQueue};
use crate::transport::{InternedNames, MailboxWaker, SessionId, SessionTransport, TransportError};
use chorus_wire::{Bytes, Envelope};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What one [`RoleProgram::resume`] call produced.
#[derive(Debug)]
pub enum Step<V> {
    /// The role ran to completion with this output.
    Done(V),
    /// The role is blocked on a receive recorded in the [`SessionCx`];
    /// the runtime parks the session and resumes it when the awaited
    /// mailbox becomes ready.
    Pending,
}

/// One role of one session, as a resumable state machine.
///
/// The contract: `resume` is called repeatedly by pool workers (never
/// concurrently). Each call must make all progress it can — send
/// whatever is sendable, receive whatever is receivable — and return
/// [`Step::Pending`] only after a [`SessionCx::try_receive_value`] came
/// up empty. State that must survive across yields (what has been sent,
/// what is still awaited) lives in the implementor. Because a resume
/// can be retried after any `Pending`, the program must not repeat
/// side effects: guard sends with "already sent" state, exactly as a
/// hand-rolled protocol FSM would.
pub trait RoleProgram: Send + 'static {
    /// The role's result, surfaced through [`SessionHandle::join`].
    type Output: Send + 'static;

    /// Drives the role until it completes or would block.
    ///
    /// # Errors
    ///
    /// Returns an error if the transport fails or a peer violates the
    /// protocol; the error resolves the session's handle.
    fn resume(&mut self, cx: &mut SessionCx<'_>) -> Result<Step<Self::Output>, TransportError>;
}

/// The operations a [`RoleProgram`] performs against its session,
/// handed to every [`resume`](RoleProgram::resume) call.
///
/// A `SessionCx` is the pooled counterpart of a blocking
/// [`Session`](crate::Session): sends stamp per-edge sequence numbers
/// and pass the layer stack exactly like [`Session::send_value`]
/// (one serialization into a reusable per-session scratch buffer, one
/// shared payload allocation), and receives are **non-blocking** — a
/// miss records the awaited edge so the runtime knows which mailbox to
/// park the session on.
pub struct SessionCx<'a> {
    ops: &'a mut dyn CxOps,
    scratch: &'a mut Vec<u8>,
    /// The edge the program is blocked on, set by a failed receive.
    waiting: Option<&'static str>,
}

impl SessionCx<'_> {
    /// This session's id.
    pub fn session_id(&self) -> SessionId {
        self.ops.session_id()
    }

    /// The location this endpoint plays.
    pub fn target_name(&self) -> &'static str {
        self.ops.target_name()
    }

    /// Serializes `value` and sends it to the location named `to`
    /// within this session. Sends never block: transports buffer.
    ///
    /// # Errors
    ///
    /// Returns an error if `to` is unknown, the value fails to encode,
    /// or the link fails.
    pub fn send_value<V: Portable>(&mut self, to: &str, value: &V) -> Result<(), TransportError> {
        self.scratch.clear();
        chorus_wire::to_bytes_into(value, self.scratch)?;
        self.ops.send_scratch(to, self.scratch)
    }

    /// Attempts to receive and decode a value from the location named
    /// `from`, without blocking.
    ///
    /// On `Ok(None)` the awaited edge is recorded: the program should
    /// return [`Step::Pending`] (after finishing any other progress it
    /// can make) and will be resumed when the mailbox becomes ready.
    /// Only the *most recent* miss is parked on, so a program that
    /// polls several edges in one resume should yield on the first
    /// miss.
    ///
    /// # Errors
    ///
    /// Returns an error if `from` is unknown, the link has failed, or
    /// the payload fails to decode.
    pub fn try_receive_value<V: Portable>(
        &mut self,
        from: &str,
    ) -> Result<Option<V>, TransportError> {
        match self.ops.try_receive_payload(from)? {
            Some(payload) => Ok(Some(chorus_wire::from_bytes(&payload)?)),
            None => {
                self.waiting = Some(self.ops.intern(from)?);
                Ok(None)
            }
        }
    }

    /// Like [`try_receive_value`](Self::try_receive_value) but returns
    /// the raw payload bytes.
    ///
    /// # Errors
    ///
    /// Returns an error if `from` is unknown or the link has failed.
    pub fn try_receive_payload(&mut self, from: &str) -> Result<Option<Bytes>, TransportError> {
        match self.ops.try_receive_payload(from)? {
            Some(payload) => Ok(Some(payload)),
            None => {
                self.waiting = Some(self.ops.intern(from)?);
                Ok(None)
            }
        }
    }
}

/// Object-safe bridge between the untyped scheduler and one session's
/// typed endpoint. Implemented by [`TypedOps`], which owns the per-task
/// sequence counters — tasks are polled by one worker at a time, so no
/// locking is needed around them.
trait CxOps: Send {
    fn session_id(&self) -> SessionId;
    fn target_name(&self) -> &'static str;
    fn intern(&self, name: &str) -> Result<&'static str, TransportError>;
    fn send_scratch(&mut self, to: &str, payload: &[u8]) -> Result<(), TransportError>;
    fn try_receive_payload(&mut self, from: &str) -> Result<Option<Bytes>, TransportError>;
    fn register_waker(
        &mut self,
        from: &'static str,
        waker: &MailboxWaker,
    ) -> Result<bool, TransportError>;
}

struct TypedOps<TL, Target, T>
where
    TL: LocationSet,
    Target: ChoreographyLocation,
    T: SessionTransport<TL, Target>,
{
    endpoint: Arc<Endpoint<TL, Target, T>>,
    id: SessionId,
    names: InternedNames,
    seqs: HashMap<&'static str, u64>,
}

impl<TL, Target, T> CxOps for TypedOps<TL, Target, T>
where
    TL: LocationSet + 'static,
    Target: ChoreographyLocation + 'static,
    T: SessionTransport<TL, Target> + Send + Sync + 'static,
{
    fn session_id(&self) -> SessionId {
        self.id
    }

    fn target_name(&self) -> &'static str {
        Target::NAME
    }

    fn intern(&self, name: &str) -> Result<&'static str, TransportError> {
        self.names.resolve(name)
    }

    fn send_scratch(&mut self, to: &str, payload: &[u8]) -> Result<(), TransportError> {
        let to = self.names.resolve(to)?;
        let payload = Bytes::copy_from_slice(payload);
        let counter = self.seqs.entry(to).or_insert(0);
        let seq = *counter;
        *counter += 1;
        let ctx = MessageCtx { session: self.id, seq, from: Target::NAME, to };
        self.endpoint.notify_send(&ctx, &payload);
        self.endpoint.transport().send_frame(to, Envelope::new(self.id, seq, payload))
    }

    fn try_receive_payload(&mut self, from: &str) -> Result<Option<Bytes>, TransportError> {
        let Some(envelope) = self.endpoint.transport().try_receive_frame(self.id, from)? else {
            return Ok(None);
        };
        let ctx = MessageCtx { session: self.id, seq: envelope.seq, from, to: Target::NAME };
        self.endpoint.notify_receive(&ctx, &envelope.payload);
        Ok(Some(envelope.payload))
    }

    fn register_waker(
        &mut self,
        from: &'static str,
        waker: &MailboxWaker,
    ) -> Result<bool, TransportError> {
        self.endpoint.transport().register_waker(self.id, from, Arc::clone(waker))
    }
}

/// Handle to one spawned session role; resolves when the role
/// completes, fails, panics, or trips the stall watchdog.
pub struct SessionHandle<V> {
    cell: Arc<WaitQueue<Option<Result<V, TransportError>>>>,
    id: SessionId,
}

impl<V> SessionHandle<V> {
    /// The session id this handle belongs to.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Whether the session has already resolved (without consuming the
    /// result).
    pub fn is_finished(&self) -> bool {
        self.cell.lock().is_some()
    }

    /// Blocks the *calling* thread until the session resolves.
    ///
    /// Join from outside the pool (the spawner's thread); joining from
    /// inside a [`RoleProgram`] would park a pool worker, which is
    /// exactly what the runtime exists to avoid.
    ///
    /// # Errors
    ///
    /// Returns the transport/protocol error that failed the session, a
    /// `Protocol` error naming the awaited edge if the stall watchdog
    /// fired, or a `Protocol` error if the program panicked.
    pub fn join(self) -> Result<V, TransportError> {
        let mut guard = self.cell.lock();
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            guard = self.cell.wait(guard);
        }
    }
}

/// Task lifecycle states (see `wake_task` / the worker loop).
///
/// The invariant the little state machine maintains: a task is in the
/// run queue **at most once**, and is polled by **at most one** worker
/// at a time. A wake during a poll does not re-enter the queue — it
/// flips RUNNING to NOTIFIED and the polling worker re-enqueues on the
/// way out.
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const NOTIFIED: u8 = 3;
const DONE: u8 = 4;

/// What one poll of a task produced, as seen by the worker loop.
enum PollOutcome {
    /// The task resolved (completed, failed, panicked, or timed out).
    /// The worker frees the slab slot first and *then* runs the carried
    /// completion thunk, so by the time `SessionHandle::join` returns
    /// the session no longer counts as live.
    Done(Option<Box<dyn FnOnce() + Send>>),
    /// The task yielded but its mailbox was already ready at
    /// registration time: re-enqueue immediately (to the back — FIFO
    /// fairness).
    Ready,
    /// The task parked on `edge`; a transport waker will re-enqueue it.
    Parked(&'static str),
}

type PollFn = Box<dyn FnMut(&TaskEntry) -> PollOutcome + Send>;

struct TaskEntry {
    /// Lifecycle state; see the constants above.
    state: AtomicU8,
    /// The type-erased resumable role. The mutex is uncontended (the
    /// state machine admits one poller), it only makes the entry `Sync`.
    poll: Mutex<PollFn>,
    /// The one waker this task ever allocates, created at spawn and
    /// re-registered (by cheap `Arc` clone) on every park — steady-state
    /// scheduling never boxes anything per wakeup.
    waker: MailboxWaker,
    /// Set by the watchdog sweep; the next poll resolves the session
    /// with a stall error instead of resuming the program (unless the
    /// program can in fact complete on that final resume).
    timed_out: AtomicBool,
    /// While parked: when the park began and on which edge, for the
    /// watchdog sweep.
    parked: Mutex<Option<(Instant, &'static str)>>,
    /// This task's slot in the slab, freed on completion.
    index: usize,
}

#[derive(Default)]
struct RunQueue {
    ready: VecDeque<Arc<TaskEntry>>,
    shutdown: bool,
}

#[derive(Default)]
struct TaskSlab {
    slots: Vec<Option<Arc<TaskEntry>>>,
    free: Vec<usize>,
}

impl TaskSlab {
    fn insert(&mut self, make: impl FnOnce(usize) -> Arc<TaskEntry>) -> Arc<TaskEntry> {
        let index = self.free.pop().unwrap_or_else(|| {
            self.slots.push(None);
            self.slots.len() - 1
        });
        let entry = make(index);
        self.slots[index] = Some(Arc::clone(&entry));
        entry
    }

    fn remove(&mut self, index: usize) {
        if self.slots[index].take().is_some() {
            self.free.push(index);
        }
    }

    fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }
}

struct RuntimeShared {
    queue: WaitQueue<RunQueue>,
    tasks: Mutex<TaskSlab>,
    /// Stall deadline for parked sessions.
    watchdog: Duration,
    /// Park/wake for the watchdog thread's sweep cadence.
    watchdog_gate: WaitQueue<bool>,
}

/// Re-enqueues a task if (and only if) it is idle; coalesces duplicate
/// wakes; defers wakes that land mid-poll to the polling worker.
fn wake_task(shared: &RuntimeShared, entry: &Arc<TaskEntry>) {
    loop {
        match entry.state.load(Ordering::Acquire) {
            IDLE => {
                if entry
                    .state
                    .compare_exchange(IDLE, QUEUED, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    let mut queue = shared.queue.lock();
                    queue.ready.push_back(Arc::clone(entry));
                    drop(queue);
                    // One task became runnable; wake one worker, not the
                    // whole pool (they all wait on the same pop-or-stop
                    // predicate, so any worker can take it).
                    shared.queue.notify_one();
                    return;
                }
            }
            RUNNING => {
                if entry
                    .state
                    .compare_exchange(RUNNING, NOTIFIED, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    return;
                }
            }
            // Already queued, already notified, or done: nothing to do.
            _ => return,
        }
    }
}

fn worker_loop(shared: Arc<RuntimeShared>) {
    loop {
        let entry = {
            let mut queue = shared.queue.lock();
            loop {
                if let Some(entry) = queue.ready.pop_front() {
                    break entry;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared.queue.wait(queue);
            }
        };
        entry.state.store(RUNNING, Ordering::Release);
        *entry.parked.lock().expect("task park info poisoned") = None;
        let outcome = {
            let mut poll = entry.poll.lock().expect("task poll closure poisoned");
            (poll)(&entry)
        };
        match outcome {
            PollOutcome::Done(finish) => {
                entry.state.store(DONE, Ordering::Release);
                shared.tasks.lock().expect("task slab poisoned").remove(entry.index);
                // Resolve the handle only after the slot is reclaimed
                // (and outside the poll lock).
                if let Some(finish) = finish {
                    finish();
                }
            }
            PollOutcome::Ready => {
                entry.state.store(QUEUED, Ordering::Release);
                let mut queue = shared.queue.lock();
                queue.ready.push_back(Arc::clone(&entry));
                drop(queue);
                shared.queue.notify_one();
            }
            PollOutcome::Parked(edge) => {
                *entry.parked.lock().expect("task park info poisoned") =
                    Some((Instant::now(), edge));
                if entry
                    .state
                    .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    // A waker fired mid-poll (state became NOTIFIED):
                    // the deposit already happened, so re-enqueue now.
                    entry.state.store(QUEUED, Ordering::Release);
                    let mut queue = shared.queue.lock();
                    queue.ready.push_back(Arc::clone(&entry));
                    drop(queue);
                    shared.queue.notify_one();
                }
            }
        }
    }
}

fn watchdog_loop(shared: Arc<RuntimeShared>) {
    // Sweep often enough that a stall surfaces within ~1.25 deadlines,
    // but never busier than every 10ms.
    let interval = (shared.watchdog / 4).clamp(Duration::from_millis(10), Duration::from_secs(1));
    loop {
        {
            let guard = shared.watchdog_gate.lock();
            if *guard {
                return;
            }
            let (guard, _timed_out) =
                shared.watchdog_gate.wait_deadline(guard, Instant::now() + interval);
            if *guard {
                return;
            }
        }
        let stalled: Vec<Arc<TaskEntry>> = {
            let slab = shared.tasks.lock().expect("task slab poisoned");
            slab.slots
                .iter()
                .flatten()
                .filter(|entry| {
                    entry
                        .parked
                        .lock()
                        .expect("task park info poisoned")
                        .is_some_and(|(since, _)| since.elapsed() >= shared.watchdog)
                })
                .cloned()
                .collect()
        };
        for entry in stalled {
            entry.timed_out.store(true, Ordering::Release);
            wake_task(&shared, &entry);
        }
    }
}

/// A fixed pool of worker threads driving any number of concurrent
/// sessions — across any number of endpoints — as resumable
/// [`RoleProgram`]s.
///
/// Total OS threads: `pool_size` workers plus one watchdog, independent
/// of how many sessions are in flight.
pub struct SessionRuntime {
    shared: Arc<RuntimeShared>,
    workers: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl SessionRuntime {
    /// Creates a runtime with `pool_size` workers (clamped to ≥ 1) and
    /// the workspace default stall deadline
    /// ([`park::default_watchdog`]).
    pub fn new(pool_size: usize) -> Self {
        Self::with_watchdog(pool_size, park::default_watchdog())
    }

    /// Creates a runtime with an explicit stall deadline.
    pub fn with_watchdog(pool_size: usize, watchdog: Duration) -> Self {
        let pool_size = pool_size.max(1);
        let shared = Arc::new(RuntimeShared {
            queue: WaitQueue::new(RunQueue::default()),
            tasks: Mutex::new(TaskSlab::default()),
            watchdog,
            watchdog_gate: WaitQueue::new(false),
        });
        let workers = (0..pool_size)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("chorus-pool-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn pool worker")
            })
            .collect();
        let watchdog_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("chorus-watchdog".into())
                .spawn(move || watchdog_loop(shared))
                .expect("spawn watchdog")
        };
        SessionRuntime { shared, workers, watchdog: Some(watchdog_thread) }
    }

    /// The process-wide default runtime, sized to
    /// `available_parallelism` and created on first use. This is what
    /// [`Endpoint::spawn_session`] schedules on.
    pub fn global() -> &'static SessionRuntime {
        static GLOBAL: OnceLock<SessionRuntime> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            SessionRuntime::new(std::thread::available_parallelism().map_or(1, |n| n.get()))
        })
    }

    /// The number of pool workers.
    pub fn pool_size(&self) -> usize {
        self.workers.len()
    }

    /// Total OS threads this runtime owns: workers plus the watchdog.
    /// Constant for the lifetime of the runtime, however many sessions
    /// are spawned.
    pub fn thread_count(&self) -> usize {
        self.workers.len() + usize::from(self.watchdog.is_some())
    }

    /// Sessions spawned and not yet resolved.
    pub fn live_sessions(&self) -> usize {
        self.shared.tasks.lock().expect("task slab poisoned").live()
    }

    /// Spawns one role of session `id` over `endpoint` onto the pool.
    ///
    /// All participants of the session must agree on `id`, exactly as
    /// with [`Endpoint::session_with_id`]; pooled and blocking roles of
    /// one session may be mixed freely (a pooled server can serve a
    /// blocking client). The returned handle resolves when the program
    /// completes, errors, panics, or stalls past the watchdog deadline.
    pub fn spawn<TL, Target, T, P>(
        &self,
        endpoint: &Arc<Endpoint<TL, Target, T>>,
        id: SessionId,
        program: P,
    ) -> SessionHandle<P::Output>
    where
        TL: LocationSet + 'static,
        Target: ChoreographyLocation + 'static,
        T: SessionTransport<TL, Target> + Send + Sync + 'static,
        P: RoleProgram,
    {
        let cell: Arc<WaitQueue<Option<Result<P::Output, TransportError>>>> =
            Arc::new(WaitQueue::new(None));
        let mut ops = TypedOps {
            endpoint: Arc::clone(endpoint),
            id,
            names: InternedNames::of::<TL>(),
            seqs: HashMap::new(),
        };
        let mut program = program;
        let mut scratch: Vec<u8> = Vec::new();
        let result_cell = Arc::clone(&cell);
        let complete = move |result: Result<P::Output, TransportError>| {
            *result_cell.lock() = Some(result);
            result_cell.notify_all();
        };
        let mut complete = Some(complete);
        let mut parked_edge: Option<&'static str> = None;
        // When this program first parked on the edge it is still waiting
        // on, so a stall error can report how long the session actually
        // waited (the slab's own park stamp is cleared before each poll).
        let mut parked_since: Option<Instant> = None;
        let watchdog = self.shared.watchdog;

        // Packages the one-shot completion as a deferred thunk; the
        // worker runs it after reclaiming the task's slab slot.
        fn deferred<V, F>(
            complete: &mut Option<F>,
            result: Result<V, TransportError>,
        ) -> Option<Box<dyn FnOnce() + Send>>
        where
            V: Send + 'static,
            F: FnOnce(Result<V, TransportError>) + Send + 'static,
        {
            complete.take().map(|c| Box::new(move || c(result)) as Box<dyn FnOnce() + Send>)
        }

        let poll: PollFn = Box::new(move |entry: &TaskEntry| {
            let mut cx = SessionCx { ops: &mut ops, scratch: &mut scratch, waiting: None };
            let resumed = catch_unwind(AssertUnwindSafe(|| program.resume(&mut cx)));
            let waiting = cx.waiting;
            match resumed {
                Ok(Ok(Step::Done(value))) => PollOutcome::Done(deferred(&mut complete, Ok(value))),
                Ok(Err(e)) => PollOutcome::Done(deferred(&mut complete, Err(e))),
                Err(panic) => {
                    let message = panic
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    PollOutcome::Done(deferred(
                        &mut complete,
                        Err(TransportError::Protocol(format!(
                            "session {id} role program panicked: {message}"
                        ))),
                    ))
                }
                Ok(Ok(Step::Pending)) => {
                    // The program could not finish. If the watchdog has
                    // already flagged the stall, this resume was its
                    // grace attempt — resolve with the stall error.
                    if entry.timed_out.load(Ordering::Acquire) {
                        let edge = parked_edge.or(waiting).unwrap_or("<unknown>");
                        let waited = parked_since.map_or(watchdog, |since| since.elapsed());
                        return PollOutcome::Done(deferred(
                            &mut complete,
                            Err(TransportError::Protocol(format!(
                                "pooled runtime watchdog: session {id} stalled waiting on \
                                 {edge}: no frame arrived in {}ms (configured deadline \
                                 {}ms)",
                                waited.as_millis(),
                                watchdog.as_millis()
                            ))),
                        ));
                    }
                    let Some(edge) = waiting else {
                        // Pending without a recorded receive would park
                        // forever: surface the bug instead of hanging.
                        return PollOutcome::Done(deferred(
                            &mut complete,
                            Err(TransportError::Protocol(format!(
                                "session {id} yielded without a pending receive \
                                 (RoleProgram returned Step::Pending but no \
                                 try_receive_* came up empty)"
                            ))),
                        ));
                    };
                    if parked_edge != Some(edge) {
                        parked_since = None;
                    }
                    parked_edge = Some(edge);
                    match cxops_register(&mut ops, edge, &entry.waker) {
                        Ok(true) => {
                            parked_since = None;
                            PollOutcome::Ready
                        }
                        Ok(false) => {
                            parked_since.get_or_insert_with(Instant::now);
                            PollOutcome::Parked(edge)
                        }
                        Err(e) => PollOutcome::Done(deferred(&mut complete, Err(e))),
                    }
                }
            }
        });

        let entry = {
            let mut slab = self.shared.tasks.lock().expect("task slab poisoned");
            let shared = Arc::downgrade(&self.shared);
            slab.insert(|index| {
                Arc::new_cyclic(|weak_entry: &Weak<TaskEntry>| {
                    let weak_entry = weak_entry.clone();
                    let shared = shared.clone();
                    TaskEntry {
                        state: AtomicU8::new(QUEUED),
                        poll: Mutex::new(poll),
                        waker: Arc::new(move || {
                            if let (Some(shared), Some(entry)) =
                                (shared.upgrade(), weak_entry.upgrade())
                            {
                                wake_task(&shared, &entry);
                            }
                        }),
                        timed_out: AtomicBool::new(false),
                        parked: Mutex::new(None),
                        index,
                    }
                })
            })
        };
        let mut queue = self.shared.queue.lock();
        queue.ready.push_back(entry);
        drop(queue);
        self.shared.queue.notify_one();
        SessionHandle { cell, id }
    }
}

/// Free-function shim so the poll closure can re-register through the
/// `dyn CxOps` without naming the concrete type.
fn cxops_register(
    ops: &mut dyn CxOps,
    edge: &'static str,
    waker: &MailboxWaker,
) -> Result<bool, TransportError> {
    ops.register_waker(edge, waker)
}

impl Drop for SessionRuntime {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock();
            queue.shutdown = true;
        }
        self.shared.queue.notify_all();
        {
            let mut gate = self.shared.watchdog_gate.lock();
            *gate = true;
        }
        self.shared.watchdog_gate.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(watchdog) = self.watchdog.take() {
            let _ = watchdog.join();
        }
    }
}
