//! Long-lived, session-multiplexed execution endpoints.
//!
//! An [`Endpoint`] is built **once per process** over a
//! [`SessionTransport`] and then hands out cheap [`Session`]s, each of
//! which runs one choreography. Sessions share the endpoint's links and
//! interleave freely on the wire; the transport demultiplexes incoming
//! frames into per-(session, sender) FIFO mailboxes, so concurrent runs
//! never corrupt each other (the failure mode of binding one raw
//! transport per run).
//!
//! Cross-cutting concerns — metrics, tracing — are [`Layer`]s installed
//! at build time and invoked on every send and receive:
//!
//! ```ignore
//! let metrics = Arc::new(TransportMetrics::new());
//! let endpoint = Endpoint::builder(Alice)
//!     .transport(tcp)
//!     .layer(Arc::clone(&metrics))
//!     .build();
//! let session = endpoint.session();
//! let result = session.epp_and_run(MyChoreography { .. });
//! ```

use crate::location::{ChoreographyLocation, LocationSet};
use crate::session::Session;
use crate::transport::{SessionId, SessionTransport};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// Metadata describing one message as it passes through the [`Layer`]
/// stack.
#[derive(Debug, Clone, Copy)]
pub struct MessageCtx<'a> {
    /// The session the message belongs to.
    pub session: SessionId,
    /// The message's per-(session, sender → receiver) sequence number.
    pub seq: u64,
    /// Name of the sending location.
    pub from: &'a str,
    /// Name of the receiving location.
    pub to: &'a str,
}

/// Composable middleware observing every message an endpoint sends or
/// receives.
///
/// Layers replace the old `InstrumentedTransport` wrapper: instead of
/// wrapping a transport per concern, any number of layers are installed
/// at [`Endpoint`] build time and see every session's traffic with full
/// context (session id, sequence number, edge). `TransportMetrics` in
/// `chorus-transport` is the canonical example.
///
/// Both hooks default to no-ops, so a layer only implements the side it
/// cares about. Hooks run on the thread performing the send/receive and
/// should be cheap; `on_send` runs before the frame reaches the
/// transport, `on_receive` after a frame has been delivered from the
/// mailbox.
pub trait Layer: Send + Sync {
    /// Observes one outgoing payload.
    fn on_send(&self, ctx: &MessageCtx<'_>, payload: &[u8]) {
        let _ = (ctx, payload);
    }

    /// Observes one incoming payload.
    fn on_receive(&self, ctx: &MessageCtx<'_>, payload: &[u8]) {
        let _ = (ctx, payload);
    }
}

impl<L: Layer + ?Sized> Layer for std::sync::Arc<L> {
    fn on_send(&self, ctx: &MessageCtx<'_>, payload: &[u8]) {
        (**self).on_send(ctx, payload);
    }

    fn on_receive(&self, ctx: &MessageCtx<'_>, payload: &[u8]) {
        (**self).on_receive(ctx, payload);
    }
}

/// One process's long-lived execution endpoint: a transport plus a layer
/// stack, multiplexing any number of concurrent [`Session`]s.
///
/// `TL` is the census the transport can reach and `Target` the location
/// this process plays. The endpoint is `Sync` whenever its transport is:
/// share it by reference across threads and give each concurrent
/// choreography its own session.
pub struct Endpoint<TL, Target, T> {
    transport: T,
    layers: Vec<Box<dyn Layer>>,
    next_session: AtomicU64,
    phantom: PhantomData<fn() -> (TL, Target)>,
}

impl<Target: ChoreographyLocation> Endpoint<crate::HNil, Target, ()> {
    /// Starts building an endpoint for `target`.
    ///
    /// The census and transport type are fixed by the later
    /// [`transport`](EndpointBuilder::transport) call:
    ///
    /// ```ignore
    /// let endpoint = Endpoint::builder(Alice)
    ///     .transport(transport)
    ///     .layer(metrics)
    ///     .build();
    /// ```
    pub fn builder(target: Target) -> EndpointBuilder<Target> {
        let _ = target;
        EndpointBuilder { layers: Vec::new(), target: PhantomData }
    }
}

impl<TL, Target, T> Endpoint<TL, Target, T>
where
    TL: LocationSet,
    Target: ChoreographyLocation,
    T: SessionTransport<TL, Target>,
{
    /// Builds an endpoint over `transport` with no layers — the common
    /// case for tests and examples that do not need instrumentation.
    pub fn new(transport: T) -> Self {
        Endpoint {
            transport,
            layers: Vec::new(),
            next_session: AtomicU64::new(0),
            phantom: PhantomData,
        }
    }

    /// Opens a session with a fresh id.
    ///
    /// Ids are allocated sequentially from zero, so endpoints that open
    /// their sessions in the same order agree on ids without
    /// coordination. When the orders can differ (e.g. sessions spawned
    /// from a thread pool), assign ids explicitly with
    /// [`session_with_id`](Endpoint::session_with_id).
    pub fn session(&self) -> Session<'_, TL, Target, T> {
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        Session::new(self, id)
    }

    /// Opens a session with an explicit id.
    ///
    /// All participants of one choreography run must use the same id.
    /// Running two simultaneous sessions with the same id over one
    /// endpoint corrupts both; sequential reuse is fine.
    pub fn session_with_id(&self, id: SessionId) -> Session<'_, TL, Target, T> {
        Session::new(self, id)
    }

    /// The underlying transport.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    pub(crate) fn notify_send(&self, ctx: &MessageCtx<'_>, payload: &[u8]) {
        for layer in &self.layers {
            layer.on_send(ctx, payload);
        }
    }

    pub(crate) fn notify_receive(&self, ctx: &MessageCtx<'_>, payload: &[u8]) {
        for layer in &self.layers {
            layer.on_receive(ctx, payload);
        }
    }
}

impl<TL, Target, T> Endpoint<TL, Target, T>
where
    TL: LocationSet + 'static,
    Target: ChoreographyLocation + 'static,
    T: SessionTransport<TL, Target> + Send + Sync + 'static,
{
    /// Spawns one role of session `id` onto the process-wide pooled
    /// [`SessionRuntime`](crate::SessionRuntime) (sized to
    /// `available_parallelism`, created on first use).
    ///
    /// This is the high-concurrency counterpart of
    /// [`session_with_id`](Endpoint::session_with_id) +
    /// [`Session::epp_and_run`]: instead of occupying an OS thread for
    /// the lifetime of the run, the role is a resumable
    /// [`RoleProgram`](crate::RoleProgram) that shares a fixed worker
    /// pool with every other in-flight session. The blocking `Session`
    /// API is untouched, and pooled and blocking roles of one session
    /// interoperate freely.
    ///
    /// The endpoint is taken by `&Arc` because the pool outlives any
    /// particular stack frame; tests that need their own pool size or
    /// watchdog construct a [`SessionRuntime`](crate::SessionRuntime)
    /// explicitly and call its `spawn` instead.
    pub fn spawn_session<P: crate::RoleProgram>(
        self: &std::sync::Arc<Self>,
        id: SessionId,
        program: P,
    ) -> crate::SessionHandle<P::Output> {
        crate::SessionRuntime::global().spawn(self, id, program)
    }
}

/// First stage of the endpoint builder: layers may be installed, the
/// transport is still missing.
pub struct EndpointBuilder<Target: ChoreographyLocation> {
    layers: Vec<Box<dyn Layer>>,
    target: PhantomData<Target>,
}

impl<Target: ChoreographyLocation> EndpointBuilder<Target> {
    /// Installs a layer. Layers run in installation order on sends and
    /// receives alike.
    pub fn layer(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Supplies the transport, fixing the census `TL`.
    pub fn transport<TL, T>(self, transport: T) -> EndpointBuilderWithTransport<TL, Target, T>
    where
        TL: LocationSet,
        T: SessionTransport<TL, Target>,
    {
        EndpointBuilderWithTransport { transport, layers: self.layers, phantom: PhantomData }
    }
}

/// Second stage of the endpoint builder: transport fixed, more layers
/// may be installed.
pub struct EndpointBuilderWithTransport<TL, Target, T>
where
    TL: LocationSet,
    Target: ChoreographyLocation,
    T: SessionTransport<TL, Target>,
{
    transport: T,
    layers: Vec<Box<dyn Layer>>,
    phantom: PhantomData<fn() -> (TL, Target)>,
}

impl<TL, Target, T> EndpointBuilderWithTransport<TL, Target, T>
where
    TL: LocationSet,
    Target: ChoreographyLocation,
    T: SessionTransport<TL, Target>,
{
    /// Installs a layer. Layers run in installation order on sends and
    /// receives alike.
    pub fn layer(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Finishes the endpoint.
    pub fn build(self) -> Endpoint<TL, Target, T> {
        Endpoint {
            transport: self.transport,
            layers: self.layers,
            next_session: AtomicU64::new(0),
            phantom: PhantomData,
        }
    }
}
