//! The choreography traits: the paper's Fig. 6 API.
//!
//! A [`Choreography`] is a struct whose `run` method describes the behavior
//! of *all* participants; it receives its choreographic operators through
//! the [`ChoreoOp`] trait. Endpoint projection as dependency injection
//! (§5.2) means "EPP is done by executing the choreography function with
//! concrete implementations of the operators": the
//! [`Projector`](crate::Projector) injects per-endpoint operator
//! implementations, while the [`Runner`](crate::Runner) injects the
//! centralized semantics.

use crate::faceted::Faceted;
use crate::fold::{LocationSetFoldable, LocationSetFolder};
use crate::located::{Located, MultiplyLocated, Unwrapper};
use crate::location::{ChoreographyLocation, LocationSet};
use crate::member::{Member, Subset, SubsetCons, SubsetNil};
use crate::quire::Quire;
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::marker::PhantomData;

/// A value that can cross the network: serializable on the way out,
/// deserializable on the way in.
///
/// Blanket-implemented for every type that implements the serde traits; the
/// wire format is [`chorus_wire`].
pub trait Portable: Serialize + DeserializeOwned {}

impl<T: Serialize + DeserializeOwned> Portable for T {}

/// Why a fallible communication failed, as observed by one endpoint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommFailureKind {
    /// The transport could not deliver or produce a frame (link dead,
    /// poisoned, silenced, or the receive watchdog fired).
    Transport(String),
    /// A frame arrived but its payload did not decode as the expected
    /// type — a corrupted or forged message.
    Decode(String),
}

/// A failed communication attributed to the peer it involved.
///
/// Returned by [`ChoreoOp::try_multicast`] so robust choreographies
/// (the `chorus_patterns` crate) can convert transport-level trouble
/// into typed, culprit-naming protocol errors instead of panicking the
/// endpoint. `peer` is the remote side of the failed exchange: the
/// sender when receiving failed, the destination when sending failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommFailure {
    /// The remote location the failure involves.
    pub peer: String,
    /// What went wrong.
    pub kind: CommFailureKind,
}

impl std::fmt::Display for CommFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            CommFailureKind::Transport(msg) => {
                write!(f, "communication with {} failed: {msg}", self.peer)
            }
            CommFailureKind::Decode(msg) => {
                write!(f, "message from {} did not decode: {msg}", self.peer)
            }
        }
    }
}

impl std::error::Error for CommFailure {}

/// A choreography: one global program describing every participant's
/// behavior (§2).
///
/// `L` is the census — the set of locations eligible to participate
/// (§3.2). `R` is the type the choreography evaluates to at every endpoint
/// (typically containing located values so each party keeps only its own
/// view).
pub trait Choreography<R = ()> {
    /// The census of this choreography.
    type L: LocationSet;

    /// Runs the choreography against an injected set of operators.
    fn run(self, op: &impl ChoreoOp<Self::L>) -> R;
}

/// A loop body for [`ChoreoOp::fanout`] (§3.4, §5.5).
///
/// Rust closures cannot be generic, so the body of a census-polymorphic
/// loop is a struct whose `run` method is generic over the current location
/// `Q`, with membership proofs relating `Q` to the census `L` and the
/// looped-over set `QS`.
pub trait FanOutChoreography<V> {
    /// The census in scope for the loop body.
    type L: LocationSet;
    /// The locations being looped over.
    type QS: LocationSet;

    /// One iteration of the loop, producing a value located at `Q`.
    fn run<Q: ChoreographyLocation, QSSubsetL, QMemberL, QMemberQS>(
        &self,
        op: &impl ChoreoOp<Self::L>,
    ) -> Located<V, Q>
    where
        Self::QS: Subset<Self::L, QSSubsetL>,
        Q: Member<Self::L, QMemberL>,
        Q: Member<Self::QS, QMemberQS>;
}

/// A loop body for [`ChoreoOp::fanin`] (§3.4, §5.5).
///
/// Like [`FanOutChoreography`], but every iteration produces a value at the
/// fixed recipient set `RS`; the results are aggregated into a
/// multiply-located [`Quire`].
pub trait FanInChoreography<V> {
    /// The census in scope for the loop body.
    type L: LocationSet;
    /// The locations being looped over (the senders).
    type QS: LocationSet;
    /// The recipients that end up owning every iteration's value.
    type RS: LocationSet;

    /// One iteration of the loop, producing a value owned by `RS`.
    fn run<Q: ChoreographyLocation, QSSubsetL, RSSubsetL, QMemberL, QMemberQS>(
        &self,
        op: &impl ChoreoOp<Self::L>,
    ) -> MultiplyLocated<V, Self::RS>
    where
        Self::QS: Subset<Self::L, QSSubsetL>,
        Self::RS: Subset<Self::L, RSSubsetL>,
        Q: Member<Self::L, QMemberL>,
        Q: Member<Self::QS, QMemberQS>;
}

/// The choreographic operators available inside a choreography with census
/// `ChoreoLS` (paper Fig. 6).
///
/// The required methods are the primitives ([`locally`], [`multicast`],
/// [`broadcast`], [`conclave`]); the rest are derived, mirroring §5.5's
/// observation that `scatter`, `gather`, and `parallel` are definable from
/// `fanout`/`fanin`.
///
/// [`locally`]: ChoreoOp::locally
/// [`multicast`]: ChoreoOp::multicast
/// [`broadcast`]: ChoreoOp::broadcast
/// [`conclave`]: ChoreoOp::conclave
pub trait ChoreoOp<ChoreoLS: LocationSet> {
    /// Performs a local computation at `location`.
    ///
    /// The computation receives an [`Unwrapper`] scoped to `location`, with
    /// which it can read located and faceted values owned by `location`.
    /// All other participants skip the computation. Returns the result as a
    /// value located at `location`.
    fn locally<V, L1: ChoreographyLocation, Index>(
        &self,
        location: L1,
        computation: impl Fn(Unwrapper<L1>) -> V,
    ) -> Located<V, L1>
    where
        L1: Member<ChoreoLS, Index>;

    /// Sends a value from `src` to every location in `destination`,
    /// returning a multiply-located value owned by `destination` (§3.3).
    ///
    /// If `src` is itself in `destination` it keeps its copy without a
    /// network round trip.
    ///
    /// # Panics
    ///
    /// Panics if the underlying transport fails.
    fn multicast<Sender: ChoreographyLocation, V: Portable, D: LocationSet, Index1, Index2>(
        &self,
        src: Sender,
        destination: D,
        data: &Located<V, Sender>,
    ) -> MultiplyLocated<V, D>
    where
        Sender: Member<ChoreoLS, Index1>,
        D: Subset<ChoreoLS, Index2>;

    /// Fallible [`multicast`](ChoreoOp::multicast): communication
    /// trouble surfaces as a [`CommFailure`] naming the peer instead of
    /// panicking the endpoint.
    ///
    /// At the sender, `Err` means some destination could not be reached
    /// (`peer` is that destination). At a receiver, `Err` means the
    /// frame from `src` never arrived or did not decode (`peer` is
    /// `src`). Endpoints outside `destination` (other than `src`)
    /// always observe `Ok` of a remote value. The default
    /// implementation delegates to the panicking `multicast` —
    /// centralized runners have no transport to fail — and session
    /// endpoints override it.
    fn try_multicast<Sender: ChoreographyLocation, V: Portable, D: LocationSet, Index1, Index2>(
        &self,
        src: Sender,
        destination: D,
        data: &Located<V, Sender>,
    ) -> Result<MultiplyLocated<V, D>, CommFailure>
    where
        Sender: Member<ChoreoLS, Index1>,
        D: Subset<ChoreoLS, Index2>,
    {
        Ok(self.multicast(src, destination, data))
    }

    /// Sends a value from `src` to the *entire census* and returns it bare:
    /// after a broadcast everyone knows the value, so everyone may branch on
    /// it. Broadcasting inside a [`conclave`](ChoreoOp::conclave) is the
    /// paper's efficient knowledge-of-choice mechanism (§3.2): the message
    /// only goes to the conclave's census, not the whole system.
    ///
    /// # Panics
    ///
    /// Panics if the underlying transport fails.
    fn broadcast<Sender: ChoreographyLocation, V: Portable, Index>(
        &self,
        src: Sender,
        data: Located<V, Sender>,
    ) -> V
    where
        Sender: Member<ChoreoLS, Index>;

    /// Unwraps a multiply-located value owned by a superset of the census.
    ///
    /// Everyone present is an owner, so the value may be used bare;
    /// subsequent computation on it is actively replicated (§5.2).
    fn naked<S: LocationSet, V, Index>(&self, data: MultiplyLocated<V, S>) -> V
    where
        ChoreoLS: Subset<S, Index>,
    {
        let _ = self;
        data.into_inner_option().expect("naked: census-owned value must be present at every member")
    }

    /// Collapses a faceted value into a bare one under the caller's
    /// assertion that every owner holds an *equal* facet — knowledge of
    /// choice for failure handling.
    ///
    /// The robust patterns end their verdict-exchange rounds with every
    /// participant holding the same resolution (honest majorities outvote
    /// a culprit's counter-accusations); `agree` is how a protocol then
    /// branches on that resolution — e.g. skipping an inner protocol whose
    /// links are known-bad — without a trusted broadcaster.
    ///
    /// Returns `Some` of the facet at owners and `None` at census members
    /// outside `S`. The centralized [`Runner`](crate::Runner) sees every
    /// facet and *checks* the assertion, panicking on divergence; a
    /// projected endpoint sees only its own facet and must trust the
    /// protocol. A protocol that calls `agree` on facets that can diverge
    /// gets diverging control flow — which transport watchdogs turn into
    /// an error at the stranded endpoints, never a silent wrong result.
    fn agree<V, S: LocationSet, Index>(&self, locations: S, data: &Faceted<V, S>) -> Option<V>
    where
        V: Clone + PartialEq,
        S: Subset<ChoreoLS, Index>;

    /// Runs a sub-choreography among the sub-census `S` (§3.2).
    ///
    /// Endpoints outside `S` skip the body entirely — no communication, no
    /// computation — and the result comes back as a value owned by `S`, so
    /// knowledge-of-choice decisions made inside the conclave can be reused
    /// afterwards (§3.3).
    fn conclave<R, S: LocationSet, C: Choreography<R, L = S>, Index>(
        &self,
        choreo: C,
    ) -> MultiplyLocated<R, S>
    where
        S: Subset<ChoreoLS, Index>;

    /// Reports whether this endpoint is one of `owners`.
    ///
    /// This is an implementation hook used by the derived operators; user
    /// code has no reason to call it.
    #[doc(hidden)]
    fn resident(&self, owners: &[&'static str]) -> bool;

    /// Point-to-point communication: the `~>` operator of Fig. 1.
    ///
    /// # Panics
    ///
    /// Panics if the underlying transport fails.
    fn comm<
        Sender: ChoreographyLocation,
        Receiver: ChoreographyLocation,
        V: Portable,
        Index1,
        Index2,
    >(
        &self,
        from: Sender,
        to: Receiver,
        data: &Located<V, Sender>,
    ) -> Located<V, Receiver>
    where
        Sender: Member<ChoreoLS, Index1>,
        Receiver: Member<ChoreoLS, Index2>,
        Self: Sized,
    {
        let _ = to;
        self.multicast::<Sender, V, crate::LocationSet!(Receiver), Index1, SubsetCons<Index2, SubsetNil>>(
            from,
            LocationSet::new(),
            data,
        )
    }

    /// Runs `c` once for every location in `locations`, collecting each
    /// iteration's located result into a [`Faceted`] value (§3.4).
    ///
    /// The loop does **not** conclave its body: the entire census may
    /// participate in every iteration. Call
    /// [`conclave`](ChoreoOp::conclave) inside the body if that is not
    /// desired.
    fn fanout<V, QS, FOC, QSSubsetL, QSFoldable>(&self, locations: QS, c: FOC) -> Faceted<V, QS>
    where
        QS: LocationSet + Subset<ChoreoLS, QSSubsetL>,
        FOC: FanOutChoreography<V, L = ChoreoLS, QS = QS>,
        QS: LocationSetFoldable<ChoreoLS, QS, QSFoldable>,
        Self: Sized,
    {
        let _ = locations;
        let folder: FanOutFolder<'_, Self, FOC, V, ChoreoLS, QS, QSSubsetL> =
            FanOutFolder { op: self, choreo: &c, phantom: PhantomData };
        Faceted::from_facets(QS::foldr(&folder, BTreeMap::new()))
    }

    /// Runs `c` once for every location in `locations`, aggregating the
    /// iterations' results — each owned by the fixed recipient set `RS` —
    /// into a [`Quire`] owned by `RS` (§3.4).
    fn fanin<V, QS, RS, FIC, QSSubsetL, RSSubsetL, QSFoldable>(
        &self,
        locations: QS,
        c: FIC,
    ) -> MultiplyLocated<Quire<V, QS>, RS>
    where
        QS: LocationSet + Subset<ChoreoLS, QSSubsetL>,
        RS: LocationSet + Subset<ChoreoLS, RSSubsetL>,
        FIC: FanInChoreography<V, L = ChoreoLS, QS = QS, RS = RS>,
        QS: LocationSetFoldable<ChoreoLS, QS, QSFoldable>,
        Self: Sized,
    {
        let _ = locations;
        let folder: FanInFolder<'_, Self, FIC, V, ChoreoLS, QS, RS, QSSubsetL, RSSubsetL> =
            FanInFolder { op: self, choreo: &c, phantom: PhantomData };
        let entries = QS::foldr(&folder, BTreeMap::new());
        if self.resident(&RS::names()) {
            let quire = Quire::from_map(entries)
                .unwrap_or_else(|_| panic!("fanin: missing iteration results at a recipient"));
            MultiplyLocated::local(quire)
        } else {
            MultiplyLocated::remote()
        }
    }

    /// Divergent, actively-parallel local computation (§3.4): every
    /// location in `locations` evaluates `computation` independently, and
    /// each keeps its own result as its facet.
    fn parallel<V, S, F, Index, SFoldable>(&self, locations: S, computation: F) -> Faceted<V, S>
    where
        S: LocationSet + Subset<ChoreoLS, Index>,
        S: LocationSetFoldable<ChoreoLS, S, SFoldable>,
        F: Fn() -> V,
        Self: Sized,
    {
        self.parallel_named(locations, |_| computation())
    }

    /// Like [`parallel`](ChoreoOp::parallel), but the computation also
    /// receives the name of the location executing it.
    fn parallel_named<V, S, F, Index, SFoldable>(
        &self,
        locations: S,
        computation: F,
    ) -> Faceted<V, S>
    where
        S: LocationSet + Subset<ChoreoLS, Index>,
        S: LocationSetFoldable<ChoreoLS, S, SFoldable>,
        F: Fn(&'static str) -> V,
        Self: Sized,
    {
        self.fanout(
            locations,
            ParallelBody::<'_, F, V, ChoreoLS, S> {
                computation: &computation,
                phantom: PhantomData,
            },
        )
    }

    /// Divergent local computation over an existing [`Faceted`] value:
    /// every owner applies `f` to its own facet, producing a new faceted
    /// value. No communication happens.
    fn map_facets<W, V, S, F, Index, SFoldable>(
        &self,
        locations: S,
        data: &Faceted<W, S>,
        f: F,
    ) -> Faceted<V, S>
    where
        S: LocationSet + Subset<ChoreoLS, Index>,
        S: LocationSetFoldable<ChoreoLS, S, SFoldable>,
        F: Fn(&W) -> V,
        Self: Sized,
    {
        self.fanout(
            locations,
            MapFacetsBody::<'_, F, W, V, ChoreoLS, S> { data, f: &f, phantom: PhantomData },
        )
    }

    /// Like [`map_facets`](ChoreoOp::map_facets) but over two faceted
    /// values with the same owners: each owner combines its two facets.
    fn map_facets2<W1, W2, V, S, F, Index, SFoldable>(
        &self,
        locations: S,
        left: &Faceted<W1, S>,
        right: &Faceted<W2, S>,
        f: F,
    ) -> Faceted<V, S>
    where
        S: LocationSet + Subset<ChoreoLS, Index>,
        S: LocationSetFoldable<ChoreoLS, S, SFoldable>,
        F: Fn(&W1, &W2) -> V,
        Self: Sized,
    {
        self.fanout(
            locations,
            MapFacets2Body::<'_, F, W1, W2, V, ChoreoLS, S> {
                left,
                right,
                f: &f,
                phantom: PhantomData,
            },
        )
    }

    /// Distributes the entries of a sender-held [`Quire`] so that each
    /// location in `to` receives its own entry, as a [`Faceted`] value.
    ///
    /// Derived from [`fanout`](ChoreoOp::fanout), as §5.5 prescribes.
    ///
    /// # Panics
    ///
    /// Panics if the underlying transport fails.
    fn scatter<Sender, V, QS, SenderIndex, QSSubset, QSFoldable>(
        &self,
        from: Sender,
        to: QS,
        data: &Located<Quire<V, QS>, Sender>,
    ) -> Faceted<V, QS>
    where
        Sender: ChoreographyLocation + Member<ChoreoLS, SenderIndex>,
        V: Portable + Clone,
        QS: LocationSet + Subset<ChoreoLS, QSSubset>,
        QS: LocationSetFoldable<ChoreoLS, QS, QSFoldable>,
        Self: Sized,
    {
        let _ = from;
        self.fanout(to, crate::ops::Scatter::<'_, V, Sender, QS, ChoreoLS, SenderIndex>::new(data))
    }

    /// Collects every sender's facet of a [`Faceted`] value into a
    /// [`Quire`] owned by the recipient set `to`.
    ///
    /// Derived from [`fanin`](ChoreoOp::fanin), as §5.5 prescribes.
    ///
    /// # Panics
    ///
    /// Panics if the underlying transport fails.
    fn gather<V, QS, RS, QSSubset, RSSubset, QSFoldable>(
        &self,
        from: QS,
        to: RS,
        data: &Faceted<V, QS>,
    ) -> MultiplyLocated<Quire<V, QS>, RS>
    where
        V: Portable + Clone,
        QS: LocationSet + Subset<ChoreoLS, QSSubset>,
        RS: LocationSet + Subset<ChoreoLS, RSSubset>,
        QS: LocationSetFoldable<ChoreoLS, QS, QSFoldable>,
        Self: Sized,
    {
        let _ = from;
        let _ = to;
        self.fanin(QS::new(), crate::ops::Gather::<'_, V, QS, RS, ChoreoLS>::new(data))
    }
}

struct FanOutFolder<'a, Op, FOC, V, L, QS, QSSubsetL> {
    op: &'a Op,
    choreo: &'a FOC,
    phantom: PhantomData<fn() -> (V, L, QS, QSSubsetL)>,
}

impl<Op, FOC, V, L, QS, QSSubsetL> LocationSetFolder<BTreeMap<String, V>>
    for FanOutFolder<'_, Op, FOC, V, L, QS, QSSubsetL>
where
    Op: ChoreoOp<L>,
    L: LocationSet,
    QS: LocationSet + Subset<L, QSSubsetL>,
    FOC: FanOutChoreography<V, L = L, QS = QS>,
{
    type L = L;
    type QS = QS;

    fn f<Q: ChoreographyLocation, QMemberL, QMemberQS>(
        &self,
        mut acc: BTreeMap<String, V>,
    ) -> BTreeMap<String, V>
    where
        Q: Member<Self::L, QMemberL>,
        Q: Member<Self::QS, QMemberQS>,
    {
        let result = self.choreo.run::<Q, QSSubsetL, QMemberL, QMemberQS>(self.op);
        if let Some(v) = result.into_inner_option() {
            acc.insert(Q::NAME.to_string(), v);
        }
        acc
    }
}

struct FanInFolder<'a, Op, FIC, V, L, QS, RS, QSSubsetL, RSSubsetL> {
    op: &'a Op,
    choreo: &'a FIC,
    phantom: PhantomData<fn() -> (V, L, QS, RS, QSSubsetL, RSSubsetL)>,
}

impl<Op, FIC, V, L, QS, RS, QSSubsetL, RSSubsetL> LocationSetFolder<BTreeMap<String, V>>
    for FanInFolder<'_, Op, FIC, V, L, QS, RS, QSSubsetL, RSSubsetL>
where
    Op: ChoreoOp<L>,
    L: LocationSet,
    QS: LocationSet + Subset<L, QSSubsetL>,
    RS: LocationSet + Subset<L, RSSubsetL>,
    FIC: FanInChoreography<V, L = L, QS = QS, RS = RS>,
{
    type L = L;
    type QS = QS;

    fn f<Q: ChoreographyLocation, QMemberL, QMemberQS>(
        &self,
        mut acc: BTreeMap<String, V>,
    ) -> BTreeMap<String, V>
    where
        Q: Member<Self::L, QMemberL>,
        Q: Member<Self::QS, QMemberQS>,
    {
        let result = self.choreo.run::<Q, QSSubsetL, RSSubsetL, QMemberL, QMemberQS>(self.op);
        if let Some(v) = result.into_inner_option() {
            acc.insert(Q::NAME.to_string(), v);
        }
        acc
    }
}

struct MapFacetsBody<'a, F, W, V, L, QS> {
    data: &'a Faceted<W, QS>,
    f: &'a F,
    phantom: PhantomData<fn() -> (V, L)>,
}

impl<F, W, V, L, QS> FanOutChoreography<V> for MapFacetsBody<'_, F, W, V, L, QS>
where
    F: Fn(&W) -> V,
    L: LocationSet,
    QS: LocationSet,
{
    type L = L;
    type QS = QS;

    fn run<Q: ChoreographyLocation, QSSubsetL, QMemberL, QMemberQS>(
        &self,
        op: &impl ChoreoOp<Self::L>,
    ) -> Located<V, Q>
    where
        Self::QS: Subset<Self::L, QSSubsetL>,
        Q: Member<Self::L, QMemberL>,
        Q: Member<Self::QS, QMemberQS>,
    {
        op.locally(Q::new(), |un| (self.f)(un.unwrap_faceted_ref::<W, QS, QMemberQS>(self.data)))
    }
}

struct MapFacets2Body<'a, F, W1, W2, V, L, QS> {
    left: &'a Faceted<W1, QS>,
    right: &'a Faceted<W2, QS>,
    f: &'a F,
    phantom: PhantomData<fn() -> (V, L)>,
}

impl<F, W1, W2, V, L, QS> FanOutChoreography<V> for MapFacets2Body<'_, F, W1, W2, V, L, QS>
where
    F: Fn(&W1, &W2) -> V,
    L: LocationSet,
    QS: LocationSet,
{
    type L = L;
    type QS = QS;

    fn run<Q: ChoreographyLocation, QSSubsetL, QMemberL, QMemberQS>(
        &self,
        op: &impl ChoreoOp<Self::L>,
    ) -> Located<V, Q>
    where
        Self::QS: Subset<Self::L, QSSubsetL>,
        Q: Member<Self::L, QMemberL>,
        Q: Member<Self::QS, QMemberQS>,
    {
        op.locally(Q::new(), |un| {
            (self.f)(
                un.unwrap_faceted_ref::<W1, QS, QMemberQS>(self.left),
                un.unwrap_faceted_ref::<W2, QS, QMemberQS>(self.right),
            )
        })
    }
}

struct ParallelBody<'a, F, V, L, QS> {
    computation: &'a F,
    phantom: PhantomData<fn() -> (V, L, QS)>,
}

impl<F, V, L, QS> FanOutChoreography<V> for ParallelBody<'_, F, V, L, QS>
where
    F: Fn(&'static str) -> V,
    L: LocationSet,
    QS: LocationSet,
{
    type L = L;
    type QS = QS;

    fn run<Q: ChoreographyLocation, QSSubsetL, QMemberL, QMemberQS>(
        &self,
        op: &impl ChoreoOp<Self::L>,
    ) -> Located<V, Q>
    where
        Self::QS: Subset<Self::L, QSSubsetL>,
        Q: Member<Self::L, QMemberL>,
        Q: Member<Self::QS, QMemberQS>,
    {
        op.locally(Q::new(), |_| (self.computation)(Q::NAME))
    }
}
