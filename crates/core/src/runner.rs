//! The centralized runner.
//!
//! Running a choreography directly — without projection — gives the
//! paper's centralized semantics (§4.1, Fig. 18): every located value is
//! present, `conclave` "doesn't do anything at all besides run the
//! sub-choreography", and communication is the identity (modulo a codec
//! round trip, kept so that serialization bugs surface in tests).
//!
//! The runner is the workhorse for unit-testing choreographies: the
//! soundness/completeness theorems (§4, Theorems 4–5) guarantee that what
//! it computes agrees with what the projected endpoints jointly compute.

use crate::choreography::{ChoreoOp, Choreography, Portable};
use crate::faceted::Faceted;
use crate::located::{Located, MultiplyLocated, Unwrapper};
use crate::location::{ChoreographyLocation, LocationSet};
use crate::member::{Member, Subset};
use std::marker::PhantomData;

/// Executes choreographies under the centralized semantics.
///
/// # Examples
///
/// ```
/// use chorus_core::{ChoreoOp, Choreography, Located, Runner};
///
/// chorus_core::locations! { Alice, Bob }
///
/// struct AddOne {
///     input: Located<u32, Alice>,
/// }
///
/// impl Choreography<Located<u32, Bob>> for AddOne {
///     type L = chorus_core::LocationSet!(Alice, Bob);
///     fn run(self, op: &impl ChoreoOp<Self::L>) -> Located<u32, Bob> {
///         let at_bob = op.comm(Alice, Bob, &self.input);
///         op.locally(Bob, |un| un.unwrap(&at_bob) + 1)
///     }
/// }
///
/// let runner = Runner::new();
/// let out = runner.run(AddOne { input: runner.local(41) });
/// assert_eq!(runner.unwrap_located(out), 42);
/// ```
pub struct Runner<L: LocationSet> {
    census: PhantomData<L>,
}

impl<L: LocationSet> Runner<L> {
    /// Creates a runner for choreographies with census `L`.
    pub fn new() -> Self {
        Runner { census: PhantomData }
    }

    /// Wraps a value as a located value at any location — the centralized
    /// semantics holds everyone's data.
    pub fn local<V, L1: ChoreographyLocation>(&self, value: V) -> Located<V, L1> {
        MultiplyLocated::local(value)
    }

    /// Wraps a value as a multiply-located value at any ownership set.
    pub fn local_multiple<V, S: LocationSet>(&self, value: V) -> MultiplyLocated<V, S> {
        MultiplyLocated::local(value)
    }

    /// Extracts the value from a located result. Only the runner can do
    /// this: at projected endpoints located values are opaque.
    pub fn unwrap_located<V, S: LocationSet>(&self, data: MultiplyLocated<V, S>) -> V {
        data.into_inner_option().expect("centralized runner always holds located values")
    }

    /// Builds a faceted value from every owner's facet, keyed by location
    /// name — the centralized semantics holds everyone's data.
    ///
    /// # Panics
    ///
    /// Panics if the key set is not exactly the names of `S`.
    pub fn faceted<V, S: LocationSet>(
        &self,
        facets: std::collections::BTreeMap<String, V>,
    ) -> crate::Faceted<V, S> {
        let expected = S::names();
        assert!(
            facets.len() == expected.len() && expected.iter().all(|n| facets.contains_key(*n)),
            "faceted keys {:?} must be exactly {:?}",
            facets.keys().collect::<Vec<_>>(),
            expected,
        );
        crate::Faceted::from_facets(facets)
    }

    /// Extracts all facets from a faceted result, keyed by location name.
    pub fn unwrap_faceted<V, S: LocationSet>(
        &self,
        data: crate::Faceted<V, S>,
    ) -> std::collections::BTreeMap<String, V> {
        data.into_facets()
    }

    /// Runs a choreography to completion under the centralized semantics.
    pub fn run<V, C: Choreography<V, L = L>>(&self, choreo: C) -> V {
        let op: RunOp<L> = RunOp(PhantomData);
        choreo.run(&op)
    }
}

impl<L: LocationSet> Default for Runner<L> {
    fn default() -> Self {
        Self::new()
    }
}

struct RunOp<L: LocationSet>(PhantomData<L>);

fn codec_round_trip<V: Portable>(value: &V) -> V {
    let bytes =
        chorus_wire::to_bytes(value).unwrap_or_else(|e| panic!("failed to encode message: {e}"));
    chorus_wire::from_bytes(&bytes).unwrap_or_else(|e| panic!("failed to decode message: {e}"))
}

impl<ChoreoLS: LocationSet> ChoreoOp<ChoreoLS> for RunOp<ChoreoLS> {
    fn locally<V, L1: ChoreographyLocation, Index>(
        &self,
        _location: L1,
        computation: impl Fn(Unwrapper<L1>) -> V,
    ) -> Located<V, L1>
    where
        L1: Member<ChoreoLS, Index>,
    {
        MultiplyLocated::local(computation(Unwrapper::new()))
    }

    fn multicast<Sender: ChoreographyLocation, V: Portable, D: LocationSet, Index1, Index2>(
        &self,
        _src: Sender,
        _destination: D,
        data: &Located<V, Sender>,
    ) -> MultiplyLocated<V, D>
    where
        Sender: Member<ChoreoLS, Index1>,
        D: Subset<ChoreoLS, Index2>,
    {
        let value = data.as_inner_option().expect("multicast: sender must hold the value it sends");
        MultiplyLocated::local(codec_round_trip(value))
    }

    fn broadcast<Sender: ChoreographyLocation, V: Portable, Index>(
        &self,
        _src: Sender,
        data: Located<V, Sender>,
    ) -> V
    where
        Sender: Member<ChoreoLS, Index>,
    {
        data.into_inner_option().expect("broadcast: sender must hold the value it sends")
    }

    fn agree<V, S: LocationSet, Index>(&self, _locations: S, data: &Faceted<V, S>) -> Option<V>
    where
        V: Clone + PartialEq,
        S: Subset<ChoreoLS, Index>,
    {
        // The centralized runner holds every facet, so the caller's
        // equality assertion is actually checkable here.
        let mut facets = S::names().into_iter().filter_map(|name| data.facet(name));
        let first = facets.next()?;
        for facet in facets {
            assert!(
                facet == first,
                "agree: facets diverge across owners — the protocol branched on unagreed state"
            );
        }
        Some(first.clone())
    }

    fn conclave<R, S: LocationSet, C: Choreography<R, L = S>, Index>(
        &self,
        choreo: C,
    ) -> MultiplyLocated<R, S>
    where
        S: Subset<ChoreoLS, Index>,
    {
        let sub_op: RunOp<S> = RunOp(PhantomData);
        MultiplyLocated::local(choreo.run(&sub_op))
    }

    fn resident(&self, _owners: &[&'static str]) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    crate::locations! { Alice, Bob }
    type Duo = crate::LocationSet!(Alice, Bob);

    struct Agreeing {
        values: std::collections::BTreeMap<String, u32>,
    }

    impl Choreography<Option<u32>> for Agreeing {
        type L = Duo;
        fn run(self, op: &impl ChoreoOp<Duo>) -> Option<u32> {
            let faceted: Faceted<u32, Duo> = op.parallel_named(Duo::new(), |name| {
                *self.values.get(name).expect("facet for every location")
            });
            op.agree(Duo::new(), &faceted)
        }
    }

    fn values(alice: u32, bob: u32) -> std::collections::BTreeMap<String, u32> {
        [("Alice".to_string(), alice), ("Bob".to_string(), bob)].into_iter().collect()
    }

    #[test]
    fn agree_collapses_equal_facets() {
        let runner: Runner<Duo> = Runner::new();
        assert_eq!(runner.run(Agreeing { values: values(7, 7) }), Some(7));
    }

    #[test]
    #[should_panic(expected = "facets diverge")]
    fn agree_checks_the_equality_assertion() {
        let runner: Runner<Duo> = Runner::new();
        let _ = runner.run(Agreeing { values: values(7, 8) });
    }
}
