//! Quires (§3.4).
//!
//! A *quire* is "a vector of values, all of the same type, indexed by the
//! type-level party with which each value is associated". Unlike located or
//! faceted values, "a quire is not a choreographic data type; EPP has no
//! effect on it" — it is ordinary data that can be stored, mapped over, and
//! sent. Quires appear as the return type of `gather`/`fanin` and the
//! argument of `scatter`.

use crate::location::LocationSet;
use serde::de::{self, MapAccess, Visitor};
use serde::ser::SerializeMap;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::collections::BTreeMap;
use std::fmt;
use std::marker::PhantomData;

use crate::member::Member;
use crate::ChoreographyLocation;

/// A complete, party-indexed vector: one `V` for every location in `S`.
///
/// # Examples
///
/// ```
/// use chorus_core::Quire;
///
/// chorus_core::locations! { Alice, Bob }
/// type Duo = chorus_core::LocationSet!(Alice, Bob);
///
/// let quire: Quire<u32, Duo> = Quire::build(|name| name.len() as u32);
/// assert_eq!(*quire.get(Alice), 5);
/// assert_eq!(quire.values().sum::<u32>(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quire<V, S> {
    entries: BTreeMap<String, V>,
    index: PhantomData<S>,
}

impl<V, S: LocationSet> Quire<V, S> {
    /// Builds a quire by invoking `f` once per location name in `S`.
    pub fn build(mut f: impl FnMut(&'static str) -> V) -> Self {
        let entries = S::names().into_iter().map(|name| (name.to_string(), f(name))).collect();
        Quire { entries, index: PhantomData }
    }

    /// Builds a quire from a name-keyed map.
    ///
    /// # Errors
    ///
    /// Returns the map unchanged if its key set is not exactly the names of
    /// `S`.
    pub fn from_map(map: BTreeMap<String, V>) -> Result<Self, BTreeMap<String, V>> {
        let expected: Vec<&str> = S::names();
        if map.len() == expected.len() && expected.iter().all(|name| map.contains_key(*name)) {
            Ok(Quire { entries: map, index: PhantomData })
        } else {
            Err(map)
        }
    }

    /// Returns the value associated with a member location.
    pub fn get<L: ChoreographyLocation, Index>(&self, _location: L) -> &V
    where
        L: Member<S, Index>,
    {
        &self.entries[L::NAME]
    }

    /// Returns the value associated with a location name, if the name is in
    /// the index set.
    pub fn get_by_name(&self, name: &str) -> Option<&V> {
        self.entries.get(name)
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &V)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates over the values in name order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.values()
    }

    /// Consumes the quire, returning the underlying name-keyed map.
    pub fn into_map(self) -> BTreeMap<String, V> {
        self.entries
    }

    /// Maps a function over every entry, preserving the index set.
    pub fn map<W>(self, mut f: impl FnMut(V) -> W) -> Quire<W, S> {
        Quire {
            entries: self.entries.into_iter().map(|(k, v)| (k, f(v))).collect(),
            index: PhantomData,
        }
    }

    /// The number of entries (equal to `S::LENGTH`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the quire is empty (true only for the empty location set).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<V: Serialize, S: LocationSet> Serialize for Quire<V, S> {
    fn serialize<Ser: Serializer>(&self, serializer: Ser) -> Result<Ser::Ok, Ser::Error> {
        let mut map = serializer.serialize_map(Some(self.entries.len()))?;
        for (k, v) in &self.entries {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<'de, V: Deserialize<'de>, S: LocationSet> Deserialize<'de> for Quire<V, S> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct QuireVisitor<V, S>(PhantomData<(V, S)>);

        impl<'de, V: Deserialize<'de>, S: LocationSet> Visitor<'de> for QuireVisitor<V, S> {
            type Value = Quire<V, S>;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "a map keyed by the location names {:?}", S::names())
            }

            fn visit_map<A: MapAccess<'de>>(self, mut access: A) -> Result<Self::Value, A::Error> {
                let mut entries = BTreeMap::new();
                while let Some((key, value)) = access.next_entry::<String, V>()? {
                    entries.insert(key, value);
                }
                Quire::from_map(entries).map_err(|bad| {
                    de::Error::custom(format!(
                        "quire keys {:?} do not match location set {:?}",
                        bad.keys().collect::<Vec<_>>(),
                        S::names()
                    ))
                })
            }
        }

        deserializer.deserialize_map(QuireVisitor(PhantomData))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    crate::locations! { Alice, Bob, Carol }

    type Trio = crate::LocationSet!(Alice, Bob, Carol);

    #[test]
    fn build_visits_every_location() {
        let quire: Quire<String, Trio> = Quire::build(|name| name.to_lowercase());
        assert_eq!(quire.len(), 3);
        assert_eq!(*quire.get(Alice), "alice");
        assert_eq!(*quire.get(Carol), "carol");
    }

    #[test]
    fn from_map_validates_keys() {
        let mut good = BTreeMap::new();
        good.insert("Alice".into(), 1);
        good.insert("Bob".into(), 2);
        good.insert("Carol".into(), 3);
        assert!(Quire::<i32, Trio>::from_map(good).is_ok());

        let mut missing = BTreeMap::new();
        missing.insert("Alice".into(), 1);
        assert!(Quire::<i32, Trio>::from_map(missing).is_err());

        let mut wrong = BTreeMap::new();
        wrong.insert("Alice".into(), 1);
        wrong.insert("Bob".into(), 2);
        wrong.insert("Dave".into(), 3);
        assert!(Quire::<i32, Trio>::from_map(wrong).is_err());
    }

    #[test]
    fn map_preserves_index() {
        let quire: Quire<u32, Trio> = Quire::build(|name| name.len() as u32);
        let doubled = quire.map(|v| v * 2);
        assert_eq!(*doubled.get(Alice), 10);
    }

    #[test]
    fn serde_round_trip() {
        let quire: Quire<u32, Trio> = Quire::build(|name| name.len() as u32);
        let bytes = chorus_wire::to_bytes(&quire).unwrap();
        let back: Quire<u32, Trio> = chorus_wire::from_bytes(&bytes).unwrap();
        assert_eq!(quire, back);
    }

    #[test]
    fn serde_rejects_wrong_keys() {
        crate::locations! { Dave }
        let _ = Dave;
        let mut map = BTreeMap::new();
        map.insert("Dave".to_string(), 1u32);
        let bytes = chorus_wire::to_bytes(&map).unwrap();
        assert!(chorus_wire::from_bytes::<Quire<u32, Trio>>(&bytes).is_err());
    }

    #[test]
    fn iteration_is_in_name_order() {
        let quire: Quire<u32, Trio> = Quire::build(|_| 0);
        let names: Vec<&str> = quire.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["Alice", "Bob", "Carol"]);
    }
}
