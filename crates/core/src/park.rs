//! The park/wake shim transports block on.
//!
//! Every blocking receive in the workspace reduces to the same shape:
//! take a lock, check a predicate over the guarded state, and if it does
//! not hold yet, park until a producer changes the state and wakes the
//! sleepers. [`WaitQueue`] packages that shape — a mutex fused with its
//! condvar — so transports cannot accidentally wait on a condvar that
//! guards different state, and so the simulation transport can bound
//! every park with a watchdog deadline instead of hanging a test run
//! forever.
//!
//! Determinism note: a `WaitQueue` adds no scheduling decisions of its
//! own. Wakes are broadcast (`notify_all`) and every woken receiver
//! re-checks its predicate under the single lock, so *which* receiver
//! proceeds is decided by the guarded state, never by wake order. That
//! is what lets `SimTransport` promise bit-for-bit reproducible delivery
//! schedules while its receivers are ordinary blocked threads.

use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// The workspace-wide default watchdog timeout for bounded parks.
///
/// Every watchdog in the workspace — the sim transport's receive
/// watchdog, the pooled session runtime's stall detector — derives its
/// default deadline from this one place instead of hard-coding an ad
/// hoc per-call-site constant. Override it with the `CHORUS_WATCHDOG_MS`
/// environment variable (milliseconds, read once per process); the
/// built-in default is 30 000 ms.
///
/// A CI job that wants hangs to surface fast sets `CHORUS_WATCHDOG_MS`
/// low; a debugging session that wants to poke around under a debugger
/// sets it high. Code that needs a *specific* deadline (e.g. a test
/// pinning watchdog behavior) still passes one explicitly.
pub fn default_watchdog() -> Duration {
    static MILLIS: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    let millis = *MILLIS.get_or_init(|| {
        std::env::var("CHORUS_WATCHDOG_MS")
            .ok()
            .and_then(|raw| raw.trim().parse::<u64>().ok())
            .unwrap_or(30_000)
    });
    Duration::from_millis(millis)
}

/// A mutex fused with the condvar that announces changes to its state.
///
/// ```
/// use chorus_core::park::WaitQueue;
///
/// let queue = WaitQueue::new(Vec::<u32>::new());
/// let mut guard = queue.lock();
/// guard.push(7);
/// drop(guard);
/// queue.notify_all();
/// assert_eq!(queue.lock().pop(), Some(7));
/// ```
#[derive(Debug, Default)]
pub struct WaitQueue<T> {
    state: Mutex<T>,
    cv: Condvar,
}

impl<T> WaitQueue<T> {
    /// Wraps `state` in a queue.
    pub fn new(state: T) -> Self {
        WaitQueue { state: Mutex::new(state), cv: Condvar::new() }
    }

    /// Locks the guarded state.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the lock panicked (the state may
    /// be torn; transports treat this as unrecoverable).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.state.lock().expect("wait queue poisoned")
    }

    /// Parks until another thread calls [`notify_all`](Self::notify_all)
    /// (or a spurious wake occurs — callers re-check their predicate in
    /// a loop).
    ///
    /// # Panics
    ///
    /// Panics if the lock is poisoned.
    pub fn wait<'a>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.cv.wait(guard).expect("wait queue poisoned")
    }

    /// Parks like [`wait`](Self::wait), but never past `deadline`.
    ///
    /// Returns the re-acquired guard and whether the deadline elapsed
    /// while parked. Callers use the flag as a *watchdog*: a `true`
    /// result after the predicate re-check still fails means the system
    /// has stalled, and the caller should surface an error instead of
    /// parking again.
    ///
    /// # Panics
    ///
    /// Panics if the lock is poisoned.
    pub fn wait_deadline<'a>(
        &self,
        guard: MutexGuard<'a, T>,
        deadline: Instant,
    ) -> (MutexGuard<'a, T>, bool) {
        let now = Instant::now();
        if now >= deadline {
            return (guard, true);
        }
        let (guard, result) =
            self.cv.wait_timeout(guard, deadline - now).expect("wait queue poisoned");
        (guard, result.timed_out())
    }

    /// Wakes every parked thread; each re-checks its predicate under the
    /// lock.
    pub fn notify_all(&self) {
        self.cv.notify_all();
    }

    /// Wakes at most one parked thread.
    ///
    /// Only correct when every parked thread waits on the *same*
    /// predicate and any one of them can consume the state change — the
    /// work-queue shape, where one pushed item needs one worker. A
    /// queue whose sleepers wait on different predicates must use
    /// [`notify_all`](Self::notify_all), or a wake can land on a thread
    /// whose predicate still fails while the right one stays parked.
    pub fn notify_one(&self) {
        self.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn producer_wakes_parked_consumer() {
        let queue = Arc::new(WaitQueue::new(Option::<u32>::None));
        let consumer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                let mut guard = queue.lock();
                loop {
                    if let Some(v) = guard.take() {
                        return v;
                    }
                    guard = queue.wait(guard);
                }
            })
        };
        *queue.lock() = Some(99);
        queue.notify_all();
        assert_eq!(consumer.join().unwrap(), 99);
    }

    #[test]
    fn wait_deadline_reports_timeout() {
        let queue = WaitQueue::new(());
        let guard = queue.lock();
        let (_guard, timed_out) =
            queue.wait_deadline(guard, Instant::now() + Duration::from_millis(10));
        assert!(timed_out, "nobody notifies, so the watchdog must fire");
    }

    #[test]
    fn default_watchdog_is_a_usable_deadline() {
        // The env override is read once per process, so this test only
        // pins the invariants every caller relies on: the default is
        // finite, nonzero, and stable across calls.
        let first = default_watchdog();
        assert!(first > Duration::ZERO);
        assert_eq!(first, default_watchdog());
    }

    #[test]
    fn expired_deadline_returns_immediately() {
        let queue = WaitQueue::new(());
        let guard = queue.lock();
        let (_guard, timed_out) = queue.wait_deadline(guard, Instant::now());
        assert!(timed_out);
    }
}
