//! Census-polymorphic choreographic programming with conclaves and
//! multiply-located values.
//!
//! This crate is a from-scratch Rust implementation of the design presented
//! in *Efficient, Portable, Census-Polymorphic Choreographic Programming*
//! (PLDI 2025): library-level choreographic programming in which
//!
//! * endpoint projection happens at run time via **dependency injection**
//!   (§5.2) — a [`Choreography`] is a struct whose `run` method receives
//!   its operators through the [`ChoreoOp`] trait, and a [`Projector`]
//!   injects endpoint-specific implementations of those operators;
//! * knowledge of choice is managed with **conclaves** and
//!   **multiply-located values** (§3.2–3.3) — [`ChoreoOp::conclave`] runs a
//!   sub-choreography among a sub-census (everyone else skips it), and a
//!   [`ChoreoOp::broadcast`] inside the conclave reaches only the conclave,
//!   so no redundant knowledge-of-choice messages are ever sent;
//! * choreographies are **census-polymorphic** (§3.4) — generic over the
//!   number (not just the identity) of participants, via type-level
//!   location sets, [`ChoreoOp::fanout`] / [`ChoreoOp::fanin`] loops,
//!   [`Faceted`] values, and [`Quire`]s;
//! * membership constraints are **indexed traits** (§5.3) — [`Member`] and
//!   [`Subset`] carry a type-level index that makes the proofs inferable.
//!
//! # Quickstart
//!
//! ```
//! use chorus_core::{ChoreoOp, Choreography, Located, Runner};
//!
//! chorus_core::locations! { Client, Server }
//! type Census = chorus_core::LocationSet!(Client, Server);
//!
//! struct Greet {
//!     name: Located<String, Client>,
//! }
//!
//! impl Choreography<Located<String, Client>> for Greet {
//!     type L = Census;
//!     fn run(self, op: &impl ChoreoOp<Self::L>) -> Located<String, Client> {
//!         // client ~> server
//!         let name = op.comm(Client, Server, &self.name);
//!         // the server computes a reply
//!         let reply = op.locally(Server, |un| format!("hello, {}", un.unwrap_ref(&name)));
//!         // server ~> client
//!         op.comm(Server, Client, &reply)
//!     }
//! }
//!
//! let runner = Runner::new();
//! let result = runner.run(Greet { name: runner.local("world".to_string()) });
//! assert_eq!(runner.unwrap_located(result), "hello, world");
//! ```
//!
//! To execute the same choreography as a real distributed system, give
//! each process an [`Endpoint`] over a transport from the
//! `chorus-transport` crate, open a [`Session`], and call
//! [`Session::epp_and_run`]. One endpoint multiplexes any number of
//! concurrent sessions over shared links, and [`Layer`] middleware
//! (metrics, tracing) installed at build time observes every message.

mod choreography;
mod demux;
mod endpoint;
mod faceted;
mod fold;
mod located;
mod location;
mod member;
pub mod ops;
pub mod park;
mod projector;
mod quire;
mod runner;
mod runtime;
mod session;
mod transport;

pub use choreography::{
    ChoreoOp, Choreography, CommFailure, CommFailureKind, FanInChoreography, FanOutChoreography,
    Portable,
};
pub use demux::Demux;
pub use endpoint::{Endpoint, EndpointBuilder, EndpointBuilderWithTransport, Layer, MessageCtx};
pub use faceted::Faceted;
pub use fold::{FoldNil, FoldStep, LocationSetFoldable, LocationSetFolder};
pub use located::{Located, MultiplyLocated, Unwrapper};
pub use location::{ChoreographyLocation, HCons, HNil, LocationSet};
pub use member::{Here, Member, Subset, SubsetCons, SubsetNil, There};
#[allow(deprecated)]
pub use projector::Projector;
pub use projector::PROJECTOR_SESSION;
pub use quire::Quire;
pub use runner::Runner;
pub use runtime::{RoleProgram, SessionCx, SessionHandle, SessionRuntime, Step};
pub use session::Session;
pub use transport::{
    InternedNames, MailboxWaker, SequenceTracker, SessionId, SessionTransport, Transport,
    TransportError, RAW_SESSION,
};
