//! Sessions: one choreography run over a shared [`Endpoint`].
//!
//! A [`Session`] is a cheap handle carrying a session id and per-peer
//! sequence counters. `session.epp_and_run(choreo)` performs endpoint
//! projection as dependency injection (§5.2) exactly like the old
//! `Projector`, but every message travels in a
//! [`chorus_wire::Envelope`] tagged with the session id, so any number
//! of sessions can run concurrently over one transport.

use crate::choreography::{ChoreoOp, Choreography, CommFailure, CommFailureKind, Portable};
use crate::endpoint::{Endpoint, MessageCtx};
use crate::faceted::Faceted;
use crate::located::{Located, MultiplyLocated, Unwrapper};
use crate::location::{ChoreographyLocation, LocationSet};
use crate::member::{Member, Subset};
use crate::transport::{InternedNames, SessionId, SessionTransport, TransportError};
use chorus_wire::{Bytes, Envelope};
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::Mutex;

/// One choreography run multiplexed over an [`Endpoint`].
///
/// Obtained from [`Endpoint::session`] or
/// [`Endpoint::session_with_id`]; all participants of a run must agree
/// on the session id. A session is not `Sync` in spirit — it represents
/// one sequential run — but creating many sessions from one endpoint
/// and running them on separate threads is the intended concurrency
/// model.
pub struct Session<'e, TL, Target, T>
where
    TL: LocationSet,
    Target: ChoreographyLocation,
    T: SessionTransport<TL, Target>,
{
    endpoint: &'e Endpoint<TL, Target, T>,
    id: SessionId,
    seqs: Mutex<HashMap<&'static str, u64>>,
    /// The census names, resolved once at session creation so the send
    /// path validates destinations without allocating per message.
    names: InternedNames,
    /// Reusable per-session encode buffer: values serialize into this
    /// scratch space, then the bytes are copied once into the shared
    /// payload buffer that travels in the frame.
    scratch: Mutex<Vec<u8>>,
}

impl<'e, TL, Target, T> Session<'e, TL, Target, T>
where
    TL: LocationSet,
    Target: ChoreographyLocation,
    T: SessionTransport<TL, Target>,
{
    pub(crate) fn new(endpoint: &'e Endpoint<TL, Target, T>, id: SessionId) -> Self {
        Session {
            endpoint,
            id,
            seqs: Mutex::new(HashMap::new()),
            names: InternedNames::of::<TL>(),
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// Serializes `value` once into the reusable scratch buffer and
    /// returns it as a shared, cheaply-cloneable payload.
    fn encode_payload<V: Portable>(&self, value: &V) -> Result<Bytes, TransportError> {
        let mut scratch = self.scratch.lock().expect("session scratch buffer poisoned");
        scratch.clear();
        chorus_wire::to_bytes_into(value, &mut scratch)?;
        Ok(Bytes::copy_from_slice(&scratch))
    }

    /// Stamps the next sequence number for `to` and puts `payload` on
    /// the wire, passing it through the layer stack.
    fn send_payload(&self, to: &'static str, payload: Bytes) -> Result<(), TransportError> {
        // Hold the counter lock across the transport send: a session is
        // one sequential run, but `Session` is `Sync`, and a session
        // shared across threads must still put frames on the wire in
        // sequence order or the receiver's tracker poisons the link for
        // every session behind that sender.
        let mut seqs = self.seqs.lock().expect("session sequence counters poisoned");
        let counter = seqs.entry(to).or_insert(0);
        let seq = *counter;
        *counter += 1;
        let ctx = MessageCtx { session: self.id, seq, from: Target::NAME, to };
        self.endpoint.notify_send(&ctx, &payload);
        self.endpoint.transport().send_frame(to, Envelope::new(self.id, seq, payload))
    }

    /// This session's id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// The endpoint this session runs over.
    pub fn endpoint(&self) -> &'e Endpoint<TL, Target, T> {
        self.endpoint
    }

    /// Wraps a value this endpoint holds into a located value at
    /// `Target`, for use as a choreography argument.
    pub fn local<V>(&self, value: V) -> Located<V, Target> {
        MultiplyLocated::local(value)
    }

    /// Produces the placeholder for a located value owned by some
    /// *other* location, for use as a choreography argument.
    ///
    /// # Panics
    ///
    /// The returned placeholder panics if unwrapped, which can only
    /// happen if `at` is this session's own target — pass values this
    /// endpoint actually holds through [`Session::local`] instead.
    pub fn remote<V, L2, Index>(&self, at: L2) -> Located<V, L2>
    where
        L2: ChoreographyLocation + Member<TL, Index>,
    {
        let _ = at;
        MultiplyLocated::remote()
    }

    /// Wraps a value this endpoint holds as its facet of a faceted
    /// value, for use as a choreography argument.
    pub fn local_faceted<V, S, Index>(&self, value: V) -> crate::Faceted<V, S>
    where
        S: LocationSet,
        Target: Member<S, Index>,
    {
        let mut facets = std::collections::BTreeMap::new();
        facets.insert(Target::NAME.to_string(), value);
        crate::Faceted::from_facets(facets)
    }

    /// Produces the placeholder view of a faceted value owned by other
    /// locations, for use as a choreography argument.
    pub fn remote_faceted<V, S: LocationSet>(&self, at: S) -> crate::Faceted<V, S> {
        let _ = at;
        crate::Faceted::from_facets(std::collections::BTreeMap::new())
    }

    /// Extracts a value this endpoint owns from a choreography result.
    ///
    /// The `Member` bound makes this type-safe: only values `Target`
    /// actually owns can be unwrapped.
    pub fn unwrap<V, S, Index>(&self, data: MultiplyLocated<V, S>) -> V
    where
        S: LocationSet,
        Target: Member<S, Index>,
    {
        data.into_inner_option()
            .expect("located value absent at an owner: value escaped its executor")
    }

    /// Extracts this endpoint's facet from a faceted choreography result.
    ///
    /// The counterpart of [`unwrap`](Self::unwrap) for [`Faceted`]
    /// outcomes (e.g. the per-participant verdicts of the robust
    /// patterns): only a member of `S` can extract, and it gets exactly
    /// its own facet.
    ///
    /// [`Faceted`]: crate::Faceted
    pub fn unwrap_faceted<V, S, Index>(&self, data: crate::Faceted<V, S>) -> V
    where
        S: LocationSet,
        Target: Member<S, Index>,
    {
        data.into_facets()
            .remove(Target::NAME)
            .expect("facet absent at its owner: value escaped its executor")
    }

    /// Performs endpoint projection of `choreo` to `Target` and runs the
    /// projected program to completion within this session.
    ///
    /// # Panics
    ///
    /// Panics if the transport fails mid-choreography. (Deadlock freedom
    /// holds only under reliable communication; see §4.1.)
    pub fn epp_and_run<V, L, C, LSubsetTL, TargetInL>(&self, choreo: C) -> V
    where
        L: LocationSet + Subset<TL, LSubsetTL>,
        Target: Member<L, TargetInL>,
        C: Choreography<V, L = L>,
    {
        let op: SessionEppOp<'_, 'e, L, TL, Target, T> =
            SessionEppOp { session: self, phantom: PhantomData };
        choreo.run(&op)
    }

    /// Sends raw payload bytes to the location named `to` within this
    /// session, passing them through the endpoint's layer stack.
    ///
    /// This is the low-level hook alternative projection engines (e.g.
    /// `chorus-baseline`) build on; `epp_and_run` is the normal entry.
    ///
    /// # Errors
    ///
    /// Returns an error if `to` is unknown or the link fails.
    pub fn send_bytes(&self, to: &str, payload: &[u8]) -> Result<(), TransportError> {
        let to = self.names.resolve(to)?;
        self.send_payload(to, Bytes::copy_from_slice(payload))
    }

    /// Serializes `value` and sends it to the location named `to`
    /// within this session — the allocation-lean path `epp_and_run`'s
    /// communication operators use: one serialization into the
    /// session's reusable scratch buffer, one shared payload buffer,
    /// no further copies on in-process transports.
    ///
    /// # Errors
    ///
    /// Returns an error if `to` is unknown, the value fails to encode,
    /// or the link fails.
    pub fn send_value<V: Portable>(&self, to: &str, value: &V) -> Result<(), TransportError> {
        let to = self.names.resolve(to)?;
        let payload = self.encode_payload(value)?;
        self.send_payload(to, payload)
    }

    /// Serializes `value` **exactly once** and sends cheap clones of
    /// the same shared payload buffer to every destination in `dests`,
    /// in order. Returns the encoded payload so a sender that is also a
    /// recipient can decode its keep-copy from the very same bytes —
    /// a fan-out over N parties costs one serialization total,
    /// regardless of N.
    ///
    /// Each destination still gets its own sequence number and its own
    /// pass through the layer stack (layers observe payload-only bytes,
    /// once per destination, exactly as if the sends were separate).
    ///
    /// # Errors
    ///
    /// Returns an error if any destination is unknown, the value fails
    /// to encode, or a link fails. Destinations before the failing one
    /// will already have been sent to.
    pub fn multicast_value<'n, V: Portable>(
        &self,
        dests: impl IntoIterator<Item = &'n str>,
        value: &V,
    ) -> Result<Bytes, TransportError> {
        let payload = self.encode_payload(value)?;
        for dest in dests {
            let to = self.names.resolve(dest)?;
            self.send_payload(to, payload.clone())?;
        }
        Ok(payload)
    }

    /// Blocks until payload bytes from the location named `from` arrive
    /// in this session's mailbox, passing them through the endpoint's
    /// layer stack.
    ///
    /// The returned [`Bytes`] shares the frame's payload buffer — on
    /// in-process transports these are the very bytes the sender
    /// serialized, never copied in between.
    ///
    /// # Errors
    ///
    /// Returns an error if `from` is unknown or the link fails before a
    /// frame arrives.
    pub fn receive_payload(&self, from: &str) -> Result<Bytes, TransportError> {
        let envelope = self.endpoint.transport().receive_frame(self.id, from)?;
        let ctx = MessageCtx { session: self.id, seq: envelope.seq, from, to: Target::NAME };
        self.endpoint.notify_receive(&ctx, &envelope.payload);
        Ok(envelope.payload)
    }

    /// Non-blocking variant of
    /// [`receive_payload`](Session::receive_payload): pops the next
    /// payload from `from`'s mailbox if one is already deliverable,
    /// passing it through the layer stack, and returns `Ok(None)` when
    /// the mailbox is merely empty.
    ///
    /// This is the receive shape the pooled session runtime is built
    /// on: a would-block receive yields the session instead of parking
    /// an OS thread.
    ///
    /// # Errors
    ///
    /// Returns an error if `from` is unknown or the link has failed.
    pub fn try_receive_payload(&self, from: &str) -> Result<Option<Bytes>, TransportError> {
        let Some(envelope) = self.endpoint.transport().try_receive_frame(self.id, from)? else {
            return Ok(None);
        };
        let ctx = MessageCtx { session: self.id, seq: envelope.seq, from, to: Target::NAME };
        self.endpoint.notify_receive(&ctx, &envelope.payload);
        Ok(Some(envelope.payload))
    }

    /// Like [`receive_payload`](Session::receive_payload), but copies
    /// the payload into an owned `Vec<u8>`. Kept for callers that need
    /// ownership of plain bytes; hot paths should prefer the shared
    /// buffer.
    ///
    /// # Errors
    ///
    /// Returns an error if `from` is unknown or the link fails before a
    /// frame arrives.
    pub fn receive_bytes(&self, from: &str) -> Result<Vec<u8>, TransportError> {
        self.receive_payload(from).map(|payload| payload.to_vec())
    }
}

/// The injected operator implementations for session-scoped endpoint
/// projection.
struct SessionEppOp<'a, 'e, ChoreoLS, TL, Target, T>
where
    ChoreoLS: LocationSet,
    TL: LocationSet,
    Target: ChoreographyLocation,
    T: SessionTransport<TL, Target>,
{
    session: &'a Session<'e, TL, Target, T>,
    phantom: PhantomData<fn() -> ChoreoLS>,
}

impl<ChoreoLS, TL, Target, T> SessionEppOp<'_, '_, ChoreoLS, TL, Target, T>
where
    ChoreoLS: LocationSet,
    TL: LocationSet,
    Target: ChoreographyLocation,
    T: SessionTransport<TL, Target>,
{
    fn receive_from<V: Portable>(&self, from: &str) -> V {
        let bytes = self
            .session
            .receive_payload(from)
            .unwrap_or_else(|e| panic!("failed to receive from {from}: {e}"));
        chorus_wire::from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("failed to decode message from {from}: {e}"))
    }

    fn try_receive_from<V: Portable>(&self, from: &str) -> Result<V, CommFailure> {
        let bytes = self.session.receive_payload(from).map_err(|e| CommFailure {
            peer: from.to_string(),
            kind: match &e {
                TransportError::Codec(_) => CommFailureKind::Decode(e.to_string()),
                _ => CommFailureKind::Transport(e.to_string()),
            },
        })?;
        chorus_wire::from_bytes(&bytes).map_err(|e| CommFailure {
            peer: from.to_string(),
            kind: CommFailureKind::Decode(e.to_string()),
        })
    }
}

impl<ChoreoLS, TL, Target, T> ChoreoOp<ChoreoLS> for SessionEppOp<'_, '_, ChoreoLS, TL, Target, T>
where
    ChoreoLS: LocationSet,
    TL: LocationSet,
    Target: ChoreographyLocation,
    T: SessionTransport<TL, Target>,
{
    fn locally<V, L1: ChoreographyLocation, Index>(
        &self,
        _location: L1,
        computation: impl Fn(Unwrapper<L1>) -> V,
    ) -> Located<V, L1>
    where
        L1: Member<ChoreoLS, Index>,
    {
        if L1::NAME == Target::NAME {
            MultiplyLocated::local(computation(Unwrapper::new()))
        } else {
            MultiplyLocated::remote()
        }
    }

    fn multicast<Sender: ChoreographyLocation, V: Portable, D: LocationSet, Index1, Index2>(
        &self,
        _src: Sender,
        _destination: D,
        data: &Located<V, Sender>,
    ) -> MultiplyLocated<V, D>
    where
        Sender: Member<ChoreoLS, Index1>,
        D: Subset<ChoreoLS, Index2>,
    {
        let destinations = D::names();
        if Sender::NAME == Target::NAME {
            let value =
                data.as_inner_option().expect("multicast: sender must hold the value it sends");
            // One serialization, however many destinations: every remote
            // recipient gets a cheap clone of the same payload buffer.
            let payload = self
                .session
                .multicast_value(
                    destinations.iter().copied().filter(|dest| *dest != Sender::NAME),
                    value,
                )
                .unwrap_or_else(|e| panic!("failed to multicast: {e}"));
            if destinations.contains(&Sender::NAME) {
                // The sender keeps its copy via an in-memory round trip
                // over the *same* encoded bytes the recipients got, so
                // that `V` needs no `Clone` bound and serialization bugs
                // surface identically at every owner.
                MultiplyLocated::local(
                    chorus_wire::from_bytes(&payload).unwrap_or_else(|e| {
                        panic!("failed to decode multicast payload locally: {e}")
                    }),
                )
            } else {
                MultiplyLocated::remote()
            }
        } else if destinations.contains(&Target::NAME) {
            MultiplyLocated::local(self.receive_from(Sender::NAME))
        } else {
            MultiplyLocated::remote()
        }
    }

    fn try_multicast<Sender: ChoreographyLocation, V: Portable, D: LocationSet, Index1, Index2>(
        &self,
        _src: Sender,
        _destination: D,
        data: &Located<V, Sender>,
    ) -> Result<MultiplyLocated<V, D>, CommFailure>
    where
        Sender: Member<ChoreoLS, Index1>,
        D: Subset<ChoreoLS, Index2>,
    {
        let destinations = D::names();
        if Sender::NAME == Target::NAME {
            let value =
                data.as_inner_option().expect("try_multicast: sender must hold the value it sends");
            // Destinations are sent to one by one (not through the
            // encode-once `multicast_value` fast path) so a failing
            // link attributes the failure to the exact peer involved —
            // the robust path trades a little copying for attribution.
            for dest in destinations.iter().copied().filter(|dest| *dest != Sender::NAME) {
                self.session.send_value(dest, value).map_err(|e| CommFailure {
                    peer: dest.to_string(),
                    kind: match &e {
                        TransportError::Codec(_) => CommFailureKind::Decode(e.to_string()),
                        _ => CommFailureKind::Transport(e.to_string()),
                    },
                })?;
            }
            if destinations.contains(&Sender::NAME) {
                // Same in-memory round trip as `multicast`, with decode
                // trouble surfaced instead of panicking.
                let bytes = chorus_wire::to_bytes(value).map_err(|e| CommFailure {
                    peer: Sender::NAME.to_string(),
                    kind: CommFailureKind::Decode(e.to_string()),
                })?;
                let back = chorus_wire::from_bytes(&bytes).map_err(|e| CommFailure {
                    peer: Sender::NAME.to_string(),
                    kind: CommFailureKind::Decode(e.to_string()),
                })?;
                Ok(MultiplyLocated::local(back))
            } else {
                Ok(MultiplyLocated::remote())
            }
        } else if destinations.contains(&Target::NAME) {
            self.try_receive_from(Sender::NAME).map(MultiplyLocated::local)
        } else {
            Ok(MultiplyLocated::remote())
        }
    }

    fn broadcast<Sender: ChoreographyLocation, V: Portable, Index>(
        &self,
        _src: Sender,
        data: Located<V, Sender>,
    ) -> V
    where
        Sender: Member<ChoreoLS, Index>,
    {
        if Sender::NAME == Target::NAME {
            let value =
                data.into_inner_option().expect("broadcast: sender must hold the value it sends");
            // Encode once; every other location receives a clone of the
            // same payload buffer.
            self.session
                .multicast_value(
                    ChoreoLS::names().into_iter().filter(|dest| *dest != Sender::NAME),
                    &value,
                )
                .unwrap_or_else(|e| panic!("failed to broadcast: {e}"));
            value
        } else {
            self.receive_from(Sender::NAME)
        }
    }

    fn agree<V, S: LocationSet, Index>(&self, _locations: S, data: &Faceted<V, S>) -> Option<V>
    where
        V: Clone + PartialEq,
        S: Subset<ChoreoLS, Index>,
    {
        // An endpoint holds only its own facet (absent entirely when the
        // endpoint is outside `S`); the equality assertion is the
        // protocol's to uphold — see the trait docs.
        data.facet(Target::NAME).cloned()
    }

    fn conclave<R, S: LocationSet, C: Choreography<R, L = S>, Index>(
        &self,
        choreo: C,
    ) -> MultiplyLocated<R, S>
    where
        S: Subset<ChoreoLS, Index>,
    {
        if S::names().contains(&Target::NAME) {
            let sub_op: SessionEppOp<'_, '_, S, TL, Target, T> =
                SessionEppOp { session: self.session, phantom: PhantomData };
            MultiplyLocated::local(choreo.run(&sub_op))
        } else {
            MultiplyLocated::remote()
        }
    }

    fn resident(&self, owners: &[&'static str]) -> bool {
        owners.contains(&Target::NAME)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::MailboxWaker;
    use std::collections::VecDeque;

    crate::locations! { Alice, Bob }
    type System = crate::LocationSet!(Alice, Bob);

    /// A transport whose `try_receive_frame` answers are scripted, so
    /// every branch of `Session::try_receive_payload` is reachable
    /// without a real peer.
    struct ScriptedTransport {
        script: Mutex<VecDeque<Result<Option<Envelope>, TransportError>>>,
    }

    impl ScriptedTransport {
        fn new(script: impl IntoIterator<Item = Result<Option<Envelope>, TransportError>>) -> Self {
            ScriptedTransport { script: Mutex::new(script.into_iter().collect()) }
        }
    }

    impl SessionTransport<System, Bob> for ScriptedTransport {
        fn send_frame(&self, _to: &str, _frame: Envelope) -> Result<(), TransportError> {
            Ok(())
        }

        fn receive_frame(
            &self,
            _session: SessionId,
            _from: &str,
        ) -> Result<Envelope, TransportError> {
            unimplemented!("blocking receive is not under test")
        }

        fn try_receive_frame(
            &self,
            _session: SessionId,
            _from: &str,
        ) -> Result<Option<Envelope>, TransportError> {
            self.script
                .lock()
                .expect("script poisoned")
                .pop_front()
                .expect("script exhausted: unexpected extra try_receive_frame call")
        }

        fn register_waker(
            &self,
            _session: SessionId,
            _from: &str,
            _waker: MailboxWaker,
        ) -> Result<bool, TransportError> {
            Ok(false)
        }
    }

    fn session_over(
        script: impl IntoIterator<Item = Result<Option<Envelope>, TransportError>>,
    ) -> Endpoint<System, Bob, ScriptedTransport> {
        Endpoint::new(ScriptedTransport::new(script))
    }

    #[test]
    fn try_receive_payload_misses_on_empty_mailbox() {
        let endpoint = session_over([Ok(None)]);
        let session = endpoint.session_with_id(7);
        assert!(session.try_receive_payload("Alice").unwrap().is_none());
    }

    #[test]
    fn try_receive_payload_returns_a_ready_payload() {
        let endpoint = session_over([Ok(Some(Envelope::new(7, 0, b"ready-frame".to_vec())))]);
        let session = endpoint.session_with_id(7);
        let payload = session.try_receive_payload("Alice").unwrap().expect("frame was ready");
        assert_eq!(payload.as_ref(), b"ready-frame");
    }

    #[test]
    fn try_receive_payload_surfaces_decode_failures() {
        let endpoint = session_over([Err(TransportError::Codec(
            chorus_wire::from_bytes::<String>(&[0xFF; 2]).unwrap_err(),
        ))]);
        let session = endpoint.session_with_id(7);
        let err = session.try_receive_payload("Alice").unwrap_err();
        assert!(matches!(err, TransportError::Codec(_)), "got: {err}");
    }

    #[test]
    fn try_receive_payload_surfaces_poisoned_links() {
        let endpoint = session_over([Err(TransportError::Protocol(
            "link from Alice poisoned at frame 2: subsequent frames withheld".into(),
        ))]);
        let session = endpoint.session_with_id(7);
        let err = session.try_receive_payload("Alice").unwrap_err();
        assert!(err.to_string().contains("poisoned"), "got: {err}");
    }
}
