//! Centralized-semantics tests exercising the full operator surface:
//! locally/comm/multicast/broadcast, conclaves, MLVs, fanout/fanin,
//! parallel, scatter/gather, and census polymorphism.

use chorus_core::{
    ChoreoOp, Choreography, Faceted, FanInChoreography, FanOutChoreography, Located, LocationSet,
    LocationSetFoldable, Member, MultiplyLocated, Quire, Runner, Subset,
};
use std::marker::PhantomData;

chorus_core::locations! { Client, Primary, Backup1, Backup2 }

type Census = chorus_core::LocationSet!(Client, Primary, Backup1, Backup2);
type Servers = chorus_core::LocationSet!(Primary, Backup1, Backup2);

#[test]
fn comm_moves_a_value_between_locations() {
    struct Comm {
        input: Located<String, Client>,
    }
    impl Choreography<Located<String, Primary>> for Comm {
        type L = Census;
        fn run(self, op: &impl ChoreoOp<Self::L>) -> Located<String, Primary> {
            op.comm(Client, Primary, &self.input)
        }
    }
    let runner: Runner<Census> = Runner::new();
    let out = runner.run(Comm { input: runner.local("payload".to_string()) });
    assert_eq!(runner.unwrap_located(out), "payload");
}

#[test]
fn multicast_produces_a_multiply_located_value() {
    struct Cast {
        input: Located<u64, Client>,
    }
    impl Choreography<MultiplyLocated<u64, Servers>> for Cast {
        type L = Census;
        fn run(self, op: &impl ChoreoOp<Self::L>) -> MultiplyLocated<u64, Servers> {
            op.multicast(Client, Servers::new(), &self.input)
        }
    }
    let runner: Runner<Census> = Runner::new();
    let out = runner.run(Cast { input: runner.local(99) });
    assert_eq!(runner.unwrap_located(out), 99);
}

#[test]
fn broadcast_returns_a_naked_value_everywhere() {
    struct Cast {
        input: Located<i32, Primary>,
    }
    impl Choreography<i32> for Cast {
        type L = Census;
        fn run(self, op: &impl ChoreoOp<Self::L>) -> i32 {
            op.broadcast(Primary, self.input) * 2
        }
    }
    let runner: Runner<Census> = Runner::new();
    assert_eq!(runner.run(Cast { input: runner.local(21) }), 42);
}

#[test]
fn conclave_runs_a_sub_choreography_and_returns_an_mlv() {
    struct Inner;
    impl Choreography<u8> for Inner {
        type L = Servers;
        fn run(self, _op: &impl ChoreoOp<Self::L>) -> u8 {
            7
        }
    }
    struct Outer;
    impl Choreography<MultiplyLocated<u8, Servers>> for Outer {
        type L = Census;
        fn run(self, op: &impl ChoreoOp<Self::L>) -> MultiplyLocated<u8, Servers> {
            op.conclave(Inner)
        }
    }
    let runner: Runner<Census> = Runner::new();
    let out = runner.run(Outer);
    assert_eq!(runner.unwrap_located(out), 7);
}

#[test]
fn conclave_broadcast_reuses_knowledge_of_choice() {
    // The §3.3 pattern: a value broadcast inside a conclave of the servers
    // is branched on in two *sequential* conclaves with no additional
    // communication, and the decision is returned as an MLV.
    #[derive(serde::Serialize, serde::Deserialize, Clone, PartialEq, Debug)]
    enum Req {
        Put,
        Get,
    }

    struct Outer {
        request: Located<Req, Client>,
    }
    impl Choreography<String> for Outer {
        type L = Census;
        fn run(self, op: &impl ChoreoOp<Self::L>) -> String {
            let at_primary = op.comm(Client, Primary, &self.request);
            // First conclave: servers decide how to handle the request.
            let decision: MultiplyLocated<bool, Servers> =
                op.conclave(Decide { request: at_primary }).flatten();
            // Second conclave: servers *reuse* the decision without any new
            // communication.
            let outcome: Located<String, Primary> =
                op.conclave(Act { was_put: decision }).flatten().flatten();
            let label = op.comm(Primary, Client, &outcome);
            op.broadcast(Client, label)
        }
    }

    struct Decide {
        request: Located<Req, Primary>,
    }
    impl Choreography<MultiplyLocated<bool, Servers>> for Decide {
        type L = Servers;
        fn run(self, op: &impl ChoreoOp<Self::L>) -> MultiplyLocated<bool, Servers> {
            let shared = op.multicast(Primary, Servers::new(), &self.request);
            let req = op.naked(shared);
            let was_put = matches!(req, Req::Put);
            // All servers replicate the decision as an MLV.
            let at_primary = op.locally(Primary, |_| was_put);
            op.multicast(Primary, Servers::new(), &at_primary)
        }
    }

    struct Act {
        was_put: MultiplyLocated<bool, Servers>,
    }
    impl Choreography<MultiplyLocated<Located<String, Primary>, Servers>> for Act {
        type L = Servers;
        fn run(
            self,
            op: &impl ChoreoOp<Self::L>,
        ) -> MultiplyLocated<Located<String, Primary>, Servers> {
            // Branch on the reused MLV: no communication happens here.
            let was_put = op.naked(self.was_put);
            let label = if was_put { "handled-put" } else { "handled-get" };
            op.conclave(Finish(label))
        }
    }
    struct Finish(&'static str);
    impl Choreography<Located<String, Primary>> for Finish {
        type L = Servers;
        fn run(self, op: &impl ChoreoOp<Self::L>) -> Located<String, Primary> {
            op.locally(Primary, |_| self.0.to_string())
        }
    }

    let runner: Runner<Census> = Runner::new();
    let out = runner.run(Outer { request: runner.local(Req::Put) });
    assert_eq!(out, "handled-put");
    let out = runner.run(Outer { request: runner.local(Req::Get) });
    assert_eq!(out, "handled-get");
}

#[test]
fn parallel_computes_divergent_facets() {
    struct Par;
    impl Choreography<Faceted<String, Servers>> for Par {
        type L = Census;
        fn run(self, op: &impl ChoreoOp<Self::L>) -> Faceted<String, Servers> {
            op.parallel_named(Servers::new(), |name| format!("facet-of-{name}"))
        }
    }
    let runner: Runner<Census> = Runner::new();
    let facets = runner.unwrap_faceted(runner.run(Par));
    assert_eq!(facets.len(), 3);
    assert_eq!(facets["Primary"], "facet-of-Primary");
    assert_eq!(facets["Backup1"], "facet-of-Backup1");
    assert_eq!(facets["Backup2"], "facet-of-Backup2");
}

#[test]
fn scatter_then_gather_round_trips_a_quire() {
    struct Round;
    impl Choreography<MultiplyLocated<Quire<u32, Servers>, chorus_core::LocationSet!(Client)>>
        for Round
    {
        type L = Census;
        fn run(
            self,
            op: &impl ChoreoOp<Self::L>,
        ) -> MultiplyLocated<Quire<u32, Servers>, chorus_core::LocationSet!(Client)> {
            let quire: Located<Quire<u32, Servers>, Client> =
                op.locally(Client, |_| Quire::build(|name| name.len() as u32));
            let shares: Faceted<u32, Servers> = op.scatter(Client, Servers::new(), &quire);
            op.gather(Servers::new(), <chorus_core::LocationSet!(Client)>::new(), &shares)
        }
    }
    let runner: Runner<Census> = Runner::new();
    let quire = runner.unwrap_located(runner.run(Round));
    assert_eq!(*quire.get(Primary), "Primary".len() as u32);
    assert_eq!(*quire.get(Backup1), "Backup1".len() as u32);
    assert_eq!(*quire.get(Backup2), "Backup2".len() as u32);
}

#[test]
fn fanout_and_fanin_support_custom_bodies() {
    // fanout: every server announces its name-length; fanin: all servers
    // send their facet to the primary.
    struct Announce<L, QS>(PhantomData<(L, QS)>);
    impl<L: LocationSet, QS: LocationSet> FanOutChoreography<u32> for Announce<L, QS> {
        type L = L;
        type QS = QS;
        fn run<Q: chorus_core::ChoreographyLocation, QSSubsetL, QMemberL, QMemberQS>(
            &self,
            op: &impl ChoreoOp<Self::L>,
        ) -> Located<u32, Q>
        where
            Self::QS: Subset<Self::L, QSSubsetL>,
            Q: Member<Self::L, QMemberL>,
            Q: Member<Self::QS, QMemberQS>,
        {
            op.locally(Q::new(), |_| Q::NAME.len() as u32)
        }
    }

    struct FanOutDemo;
    impl Choreography<Faceted<u32, Servers>> for FanOutDemo {
        type L = Census;
        fn run(self, op: &impl ChoreoOp<Self::L>) -> Faceted<u32, Servers> {
            op.fanout(Servers::new(), Announce::<Census, Servers>(PhantomData))
        }
    }

    let runner: Runner<Census> = Runner::new();
    let facets = runner.unwrap_faceted(runner.run(FanOutDemo));
    assert_eq!(facets["Primary"], 7);
    assert_eq!(facets["Backup1"], 7);

    struct SendAll<'a, L, QS, RS> {
        data: &'a Faceted<u32, QS>,
        phantom: PhantomData<(L, RS)>,
    }
    impl<L: LocationSet, QS: LocationSet, RS: LocationSet> FanInChoreography<u32>
        for SendAll<'_, L, QS, RS>
    {
        type L = L;
        type QS = QS;
        type RS = RS;
        fn run<Q: chorus_core::ChoreographyLocation, QSSubsetL, RSSubsetL, QMemberL, QMemberQS>(
            &self,
            op: &impl ChoreoOp<Self::L>,
        ) -> MultiplyLocated<u32, Self::RS>
        where
            Self::QS: Subset<Self::L, QSSubsetL>,
            Self::RS: Subset<Self::L, RSSubsetL>,
            Q: Member<Self::L, QMemberL>,
            Q: Member<Self::QS, QMemberQS>,
        {
            let facet = op.locally(Q::new(), |un| un.unwrap_faceted(self.data));
            op.multicast(Q::new(), RS::new(), &facet)
        }
    }

    struct FanInDemo;
    impl Choreography<MultiplyLocated<Quire<u32, Servers>, chorus_core::LocationSet!(Primary)>>
        for FanInDemo
    {
        type L = Census;
        fn run(
            self,
            op: &impl ChoreoOp<Self::L>,
        ) -> MultiplyLocated<Quire<u32, Servers>, chorus_core::LocationSet!(Primary)> {
            let facets = op.parallel_named(Servers::new(), |name| name.len() as u32);
            op.fanin(
                Servers::new(),
                SendAll::<Census, Servers, chorus_core::LocationSet!(Primary)> {
                    data: &facets,
                    phantom: PhantomData,
                },
            )
        }
    }

    let quire = runner.unwrap_located(runner.run(FanInDemo));
    assert_eq!(quire.values().copied().collect::<Vec<_>>(), vec![7, 7, 7]);
}

#[test]
fn census_polymorphic_choreography_instantiates_at_different_sizes() {
    // A choreography generic over the set of workers: each worker computes
    // its name length; the results are gathered at the client.
    struct Sum<Workers, WSubset, WFold, ClientIdx> {
        phantom: PhantomData<(Workers, WSubset, WFold, ClientIdx)>,
    }

    impl<Workers, WSubset, WFold, ClientIdx> Choreography<Located<u32, Client>>
        for Sum<Workers, WSubset, WFold, ClientIdx>
    where
        Workers:
            LocationSet + Subset<Census, WSubset> + LocationSetFoldable<Census, Workers, WFold>,
        Client: Member<Census, ClientIdx>,
    {
        type L = Census;
        fn run(self, op: &impl ChoreoOp<Self::L>) -> Located<u32, Client> {
            let facets = op.parallel_named(Workers::new(), |name| name.len() as u32);
            let gathered: MultiplyLocated<Quire<u32, Workers>, chorus_core::LocationSet!(Client)> =
                op.gather(Workers::new(), <chorus_core::LocationSet!(Client)>::new(), &facets);
            op.locally(Client, |un| {
                // Explicit turbofish, exactly as the paper's Fig. 10 needs
                // `un.unwrap::<Quire<Response, Backups>, _, _>(&gathered)`:
                // in census-polymorphic contexts the membership proof for
                // the unwrap must be pinned.
                un.unwrap_ref::<Quire<u32, Workers>, chorus_core::LocationSet!(Client), chorus_core::Here>(
                    &gathered,
                )
                .values()
                .sum()
            })
        }
    }

    let runner: Runner<Census> = Runner::new();

    let one =
        runner.run(Sum::<chorus_core::LocationSet!(Primary), _, _, _> { phantom: PhantomData });
    assert_eq!(runner.unwrap_located(one), 7);

    let three = runner.run(Sum::<Servers, _, _, _> { phantom: PhantomData });
    assert_eq!(runner.unwrap_located(three), 21);
}

#[test]
fn flatten_narrows_nested_ownership() {
    struct Nest;
    impl Choreography<Located<u8, Primary>> for Nest {
        type L = Census;
        fn run(self, op: &impl ChoreoOp<Self::L>) -> Located<u8, Primary> {
            let nested: MultiplyLocated<Located<u8, Primary>, Servers> = op.conclave(Inner);
            nested.flatten()
        }
    }
    struct Inner;
    impl Choreography<Located<u8, Primary>> for Inner {
        type L = Servers;
        fn run(self, op: &impl ChoreoOp<Self::L>) -> Located<u8, Primary> {
            op.locally(Primary, |_| 5)
        }
    }
    let runner: Runner<Census> = Runner::new();
    assert_eq!(runner.unwrap_located(runner.run(Nest)), 5);
}
