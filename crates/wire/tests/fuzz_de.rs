//! Mutation fuzzing for the deserializer half of the wire format.
//!
//! The property under test: for *any* byte mutation of a valid
//! encoding, `chorus_wire::de` either returns `Err` or returns a value
//! that re-encodes canonically — it never panics, and the
//! length-prefix paths (`get_len` in `de.rs`, the envelope header in
//! `envelope.rs`) never turn a corrupted length into an unbounded
//! allocation.

use proptest::collection::vec;
use proptest::prelude::*;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Message {
    Ping,
    Text(String),
    Batch(Vec<u64>),
    Pairs(Vec<(String, u32)>),
    Tagged { id: u32, body: Option<Box<Message>> },
}

fn arb_message() -> impl Strategy<Value = Message> {
    let leaf = prop_oneof![
        Just(Message::Ping),
        ".{0,24}".prop_map(Message::Text),
        vec(any::<u64>(), 0..8).prop_map(Message::Batch),
        vec((".{0,6}", any::<u32>()), 0..6).prop_map(Message::Pairs),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        (any::<u32>(), proptest::option::of(inner))
            .prop_map(|(id, body)| Message::Tagged { id, body: body.map(Box::new) })
    })
}

/// If a mutated buffer still decodes, the decoded value must be a
/// first-class citizen: it re-encodes, and its encoding round-trips to
/// an equal value. Anything else — short of a panic — is a decoder bug
/// laundering garbage into the type system.
fn assert_canonical_or_err<T>(bytes: &[u8])
where
    T: serde::de::DeserializeOwned + Serialize + PartialEq + std::fmt::Debug,
{
    if let Ok(value) = chorus_wire::from_bytes::<T>(bytes) {
        let reencoded = chorus_wire::to_bytes(&value).expect("decoded values must re-encode");
        let again: T = chorus_wire::from_bytes(&reencoded)
            .expect("the re-encoding of a decoded value must decode");
        assert_eq!(again, value, "re-encoding must be canonical");
    }
}

proptest! {
    /// Single-byte corruption anywhere in a valid encoding.
    #[test]
    fn mutated_encodings_err_or_reencode_canonically(
        msg in arb_message(),
        index: usize,
        flip in 1u8..=255,
    ) {
        let mut bytes = chorus_wire::to_bytes(&msg).unwrap();
        if bytes.is_empty() {
            return Ok(());
        }
        let i = index % bytes.len();
        bytes[i] ^= flip; // flip != 0, so the buffer genuinely changed
        assert_canonical_or_err::<Message>(&bytes);
        assert_canonical_or_err::<Vec<u64>>(&bytes);
        assert_canonical_or_err::<(String, Vec<u8>)>(&bytes);
    }

    /// Multi-byte corruption: splice a random window over the encoding.
    #[test]
    fn spliced_encodings_err_or_reencode_canonically(
        msg in arb_message(),
        start: usize,
        splice in vec(any::<u8>(), 1..16),
    ) {
        let mut bytes = chorus_wire::to_bytes(&msg).unwrap();
        if bytes.is_empty() {
            return Ok(());
        }
        let start = start % bytes.len();
        for (offset, b) in splice.iter().enumerate() {
            if let Some(slot) = bytes.get_mut(start + offset) {
                *slot = *b;
            }
        }
        assert_canonical_or_err::<Message>(&bytes);
    }

    /// Every strict prefix of a valid encoding is rejected, not
    /// misread: truncation hits the length-prefix / fixed-width read
    /// paths in `de.rs`.
    #[test]
    fn truncated_encodings_are_rejected(msg in arb_message(), cut: usize) {
        let bytes = chorus_wire::to_bytes(&msg).unwrap();
        if bytes.is_empty() {
            return Ok(());
        }
        let cut = cut % bytes.len(); // strict prefix
        prop_assert!(
            chorus_wire::from_bytes::<Message>(&bytes[..cut]).is_err(),
            "a strict prefix must not decode"
        );
    }

    /// Mutating envelope frames: the frame header's length prefix is
    /// validated against the buffer, so corruption yields `Err`, never
    /// a panic or a bogus slice.
    #[test]
    fn mutated_envelopes_err_or_reencode_identically(
        session: u64,
        seq: u64,
        payload in vec(any::<u8>(), 0..64),
        index: usize,
        flip in 1u8..=255,
    ) {
        let envelope = chorus_wire::Envelope::new(session, seq, payload);
        let mut bytes = envelope.encode();
        let i = index % bytes.len(); // never empty: the header alone is 20 bytes
        bytes[i] ^= flip;
        if let Ok(decoded) = chorus_wire::Envelope::decode(&bytes) {
            let reencoded = decoded.encode();
            let again = chorus_wire::Envelope::decode(&reencoded).expect("canonical re-encoding");
            prop_assert_eq!(again, decoded);
        }
    }

    /// Every strict prefix of an envelope frame is rejected.
    #[test]
    fn truncated_envelopes_are_rejected(
        session: u64,
        seq: u64,
        payload in vec(any::<u8>(), 0..64),
        cut: usize,
    ) {
        let bytes = chorus_wire::Envelope::new(session, seq, payload).encode();
        let cut = cut % bytes.len();
        prop_assert!(chorus_wire::Envelope::decode(&bytes[..cut]).is_err());
    }
}

/// The length-prefix allocation-bomb guard, pinned deterministically: a
/// corrupted length far beyond the buffer must be rejected up front
/// (`LengthOverflow` / `UnexpectedEof`), not trusted by an allocator.
#[test]
fn corrupted_length_prefixes_cannot_demand_unbounded_memory() {
    // A bare u32::MAX length with no elements behind it.
    let huge = u32::MAX.to_le_bytes();
    assert!(chorus_wire::from_bytes::<Vec<u64>>(&huge).is_err());
    assert!(chorus_wire::from_bytes::<String>(&huge).is_err());
    assert!(chorus_wire::from_bytes::<Vec<u8>>(&huge).is_err());

    // A plausible-but-false length (beyond the guard threshold) ahead
    // of a tiny body.
    let mut sneaky = (2_000_000u32).to_le_bytes().to_vec();
    sneaky.extend_from_slice(&[0u8; 16]);
    assert!(chorus_wire::from_bytes::<Vec<u64>>(&sneaky).is_err());
    assert!(chorus_wire::from_bytes::<String>(&sneaky).is_err());

    // An envelope whose header promises a payload the buffer lacks.
    let envelope = chorus_wire::Envelope::new(1, 2, vec![0xAB; 8]);
    let mut frame = envelope.encode();
    frame[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        chorus_wire::Envelope::decode(&frame),
        Err(chorus_wire::WireError::UnexpectedEof)
    ));
}
