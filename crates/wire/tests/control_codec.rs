//! Property tests for the link-layer frame codec: arbitrary frames
//! round-trip bit-exactly, truncation always reports `UnexpectedEof`,
//! excess always reports `TrailingBytes`, and the decoder never panics
//! on garbage.

use chorus_wire::{ControlFrame, Envelope, LinkFrame, WireError, DATA_HEADER_LEN};
use proptest::collection::vec;
use proptest::prelude::*;

fn arb_control() -> impl Strategy<Value = ControlFrame> {
    prop_oneof![
        any::<u64>().prop_map(|next| ControlFrame::Ack { next }),
        any::<u64>().prop_map(|nonce| ControlFrame::Ping { nonce }),
        (any::<u64>(), any::<u64>()).prop_map(|(nonce, next)| ControlFrame::Pong { nonce, next }),
        any::<u64>().prop_map(|next| ControlFrame::Resume { next }),
    ]
}

fn arb_frame() -> impl Strategy<Value = LinkFrame> {
    prop_oneof![
        arb_control().prop_map(LinkFrame::Control),
        (any::<u64>(), any::<u64>(), any::<u64>(), vec(any::<u8>(), 0..128)).prop_map(
            |(link_seq, session, seq, payload)| LinkFrame::Data {
                link_seq,
                envelope: Envelope::new(session, seq, payload),
            }
        ),
    ]
}

proptest! {
    #[test]
    fn frames_round_trip(frame in arb_frame()) {
        let bytes = frame.encode();
        prop_assert_eq!(LinkFrame::decode(&bytes).unwrap(), frame);
    }

    #[test]
    fn encoding_is_deterministic(frame in arb_frame()) {
        prop_assert_eq!(frame.encode(), frame.encode());
    }

    #[test]
    fn data_header_is_the_encoded_prefix(frame in arb_frame()) {
        if let LinkFrame::Data { link_seq, .. } = frame {
            let bytes = frame.encode();
            prop_assert_eq!(&bytes[..DATA_HEADER_LEN], &chorus_wire::data_header(link_seq));
        }
    }

    #[test]
    fn every_truncation_is_unexpected_eof(frame in arb_frame(), cut in any::<u64>()) {
        let bytes = frame.encode();
        let len = (cut as usize) % bytes.len(); // in 0..bytes.len(), always a strict prefix
        let err = LinkFrame::decode(&bytes[..len]).unwrap_err();
        prop_assert!(
            matches!(err, WireError::UnexpectedEof),
            "prefix of {} / {} bytes gave {:?}", len, bytes.len(), err
        );
    }

    #[test]
    fn every_extension_is_trailing_bytes(frame in arb_frame(), extra in vec(any::<u8>(), 1..16)) {
        let mut bytes = frame.encode();
        bytes.extend_from_slice(&extra);
        let err = LinkFrame::decode(&bytes).unwrap_err();
        prop_assert!(
            matches!(err, WireError::TrailingBytes(n) if n == extra.len()),
            "{} extra bytes gave {:?}", extra.len(), err
        );
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in vec(any::<u8>(), 0..256)) {
        // Any verdict is fine except a panic.
        let _ = LinkFrame::decode(&bytes);
    }

    #[test]
    fn unknown_tags_are_loud(tag in 5u8..=255u8, body in vec(any::<u8>(), 0..32)) {
        let mut bytes = vec![tag];
        bytes.extend_from_slice(&body);
        prop_assert!(matches!(LinkFrame::decode(&bytes), Err(WireError::Message(_))));
    }
}
