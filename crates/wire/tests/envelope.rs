//! Satellite coverage for the session envelope: round trips (session
//! id, sequence, payload) including the edge cases the frame format
//! must get right — zero-length payloads, `u32::MAX`-and-beyond session
//! ids — and rejection of truncated or padded frames.

use chorus_wire::{Bytes, BytesMut, Envelope, WireError, ENVELOPE_HEADER_LEN};
use proptest::collection::vec;
use proptest::prelude::*;

#[test]
fn round_trips_session_seq_and_payload() {
    for (session, seq, payload) in [
        (0u64, 0u64, b"".to_vec()),
        (1, 2, b"hello".to_vec()),
        (42, u64::MAX, vec![0u8; 1024]),
        (u32::MAX as u64, 7, b"max-u32 session id".to_vec()),
        (u64::MAX, u64::MAX, b"max everything".to_vec()),
    ] {
        let envelope = Envelope::new(session, seq, payload.clone());
        let bytes = envelope.encode();
        assert_eq!(bytes.len(), ENVELOPE_HEADER_LEN + payload.len());
        let back = Envelope::decode(&bytes).unwrap();
        assert_eq!(back.session, session);
        assert_eq!(back.seq, seq);
        assert_eq!(back.payload, payload);
    }
}

#[test]
fn zero_length_payloads_round_trip() {
    let envelope = Envelope::new(9, 3, Vec::new());
    let bytes = envelope.encode();
    assert_eq!(bytes.len(), ENVELOPE_HEADER_LEN);
    assert_eq!(Envelope::decode(&bytes).unwrap(), envelope);
}

#[test]
fn truncated_frames_are_rejected() {
    let bytes = Envelope::new(5, 6, b"payload".to_vec()).encode();
    // Every strict prefix must fail to decode — header or payload cut.
    for cut in 0..bytes.len() {
        assert!(
            matches!(Envelope::decode(&bytes[..cut]), Err(WireError::UnexpectedEof)),
            "prefix of length {cut} must be rejected"
        );
    }
}

#[test]
fn padded_frames_are_rejected() {
    let mut bytes = Envelope::new(5, 6, b"payload".to_vec()).encode();
    bytes.push(0xFF);
    assert!(matches!(Envelope::decode(&bytes), Err(WireError::TrailingBytes(1))));
}

#[test]
fn header_is_little_endian_and_fixed_width() {
    let bytes = Envelope::new(0x0102_0304_0506_0708, 0x1112_1314_1516_1718, vec![0xAB]).encode();
    assert_eq!(&bytes[..8], &0x0102_0304_0506_0708u64.to_le_bytes());
    assert_eq!(&bytes[8..16], &0x1112_1314_1516_1718u64.to_le_bytes());
    assert_eq!(&bytes[16..20], &1u32.to_le_bytes());
}

proptest! {
    #[test]
    fn arbitrary_envelopes_round_trip(
        session: u64,
        seq: u64,
        payload in vec(any::<u8>(), 0..512),
    ) {
        let envelope = Envelope::new(session, seq, payload);
        prop_assert_eq!(Envelope::decode(&envelope.encode()).unwrap(), envelope);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in vec(any::<u8>(), 0..64)) {
        // Any outcome but a panic.
        let _ = Envelope::decode(&bytes);
    }

    // The zero-copy surface (`encode_into` / `decode_shared`) must be
    // byte- and error-identical to the allocating one (`encode` /
    // `decode`): same frames out, same envelopes (or errors) back.

    #[test]
    fn encode_into_matches_encode(
        session: u64,
        seq: u64,
        payload in vec(any::<u8>(), 0..512),
        prefix in vec(any::<u8>(), 0..16),
    ) {
        let envelope = Envelope::new(session, seq, payload);
        // `encode_into` appends after existing content and reuses the
        // buffer's capacity; the appended bytes must equal `encode`.
        let mut buf = BytesMut::with_capacity(1024);
        buf.extend_from_slice(&prefix);
        envelope.encode_into(&mut buf);
        prop_assert_eq!(&buf[..prefix.len()], prefix.as_slice());
        let reference = envelope.encode();
        prop_assert_eq!(&buf[prefix.len()..], reference.as_slice());
        prop_assert_eq!(buf.len() - prefix.len(), envelope.encoded_len());
    }

    #[test]
    fn decode_shared_round_trips_and_shares_storage(
        session: u64,
        seq: u64,
        payload in vec(any::<u8>(), 0..512),
    ) {
        let envelope = Envelope::new(session, seq, payload);
        let frame = Bytes::from(envelope.encode());
        let back = Envelope::decode_shared(&frame).unwrap();
        prop_assert_eq!(&back, &envelope);
        // Zero-copy: the payload is literally a slice of the frame.
        prop_assert_eq!(&back.payload, &frame.slice(ENVELOPE_HEADER_LEN..));
    }

    #[test]
    fn decode_shared_rejects_truncation_like_decode(
        session: u64,
        seq: u64,
        payload in vec(any::<u8>(), 1..128),
        cut_back in 1usize..64,
    ) {
        let bytes = Envelope::new(session, seq, payload).encode();
        let cut = bytes.len() - cut_back.min(bytes.len());
        let truncated = &bytes[..cut];
        let via_slice = Envelope::decode(truncated);
        let via_shared = Envelope::decode_shared(&Bytes::copy_from_slice(truncated));
        prop_assert!(matches!(via_slice, Err(WireError::UnexpectedEof)));
        prop_assert!(matches!(via_shared, Err(WireError::UnexpectedEof)));
    }

    #[test]
    fn decode_shared_rejects_trailing_bytes_like_decode(
        session: u64,
        seq: u64,
        payload in vec(any::<u8>(), 0..128),
        extra in vec(any::<u8>(), 1..32),
    ) {
        let mut bytes = Envelope::new(session, seq, payload).encode();
        bytes.extend_from_slice(&extra);
        let n = extra.len();
        let via_slice = Envelope::decode(&bytes);
        let via_shared = Envelope::decode_shared(&Bytes::from(bytes));
        prop_assert!(matches!(via_slice, Err(WireError::TrailingBytes(m)) if m == n));
        prop_assert!(matches!(via_shared, Err(WireError::TrailingBytes(m)) if m == n));
    }

    #[test]
    fn decode_shared_never_panics_on_garbage(bytes in vec(any::<u8>(), 0..64)) {
        // Same layout validation as `decode`: identical verdicts on
        // arbitrary input, and never a panic.
        let via_slice = Envelope::decode(&bytes);
        let via_shared = Envelope::decode_shared(&Bytes::from(bytes));
        match (via_slice, via_shared) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "verdicts diverge: {a:?} vs {b:?}"),
        }
    }
}
