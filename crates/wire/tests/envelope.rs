//! Satellite coverage for the session envelope: round trips (session
//! id, sequence, payload) including the edge cases the frame format
//! must get right — zero-length payloads, `u32::MAX`-and-beyond session
//! ids — and rejection of truncated or padded frames.

use chorus_wire::{Envelope, WireError, ENVELOPE_HEADER_LEN};
use proptest::collection::vec;
use proptest::prelude::*;

#[test]
fn round_trips_session_seq_and_payload() {
    for (session, seq, payload) in [
        (0u64, 0u64, b"".to_vec()),
        (1, 2, b"hello".to_vec()),
        (42, u64::MAX, vec![0u8; 1024]),
        (u32::MAX as u64, 7, b"max-u32 session id".to_vec()),
        (u64::MAX, u64::MAX, b"max everything".to_vec()),
    ] {
        let envelope = Envelope::new(session, seq, payload.clone());
        let bytes = envelope.encode();
        assert_eq!(bytes.len(), ENVELOPE_HEADER_LEN + payload.len());
        let back = Envelope::decode(&bytes).unwrap();
        assert_eq!(back.session, session);
        assert_eq!(back.seq, seq);
        assert_eq!(back.payload, payload);
    }
}

#[test]
fn zero_length_payloads_round_trip() {
    let envelope = Envelope::new(9, 3, Vec::new());
    let bytes = envelope.encode();
    assert_eq!(bytes.len(), ENVELOPE_HEADER_LEN);
    assert_eq!(Envelope::decode(&bytes).unwrap(), envelope);
}

#[test]
fn truncated_frames_are_rejected() {
    let bytes = Envelope::new(5, 6, b"payload".to_vec()).encode();
    // Every strict prefix must fail to decode — header or payload cut.
    for cut in 0..bytes.len() {
        assert!(
            matches!(Envelope::decode(&bytes[..cut]), Err(WireError::UnexpectedEof)),
            "prefix of length {cut} must be rejected"
        );
    }
}

#[test]
fn padded_frames_are_rejected() {
    let mut bytes = Envelope::new(5, 6, b"payload".to_vec()).encode();
    bytes.push(0xFF);
    assert!(matches!(Envelope::decode(&bytes), Err(WireError::TrailingBytes(1))));
}

#[test]
fn header_is_little_endian_and_fixed_width() {
    let bytes = Envelope::new(0x0102_0304_0506_0708, 0x1112_1314_1516_1718, vec![0xAB]).encode();
    assert_eq!(&bytes[..8], &0x0102_0304_0506_0708u64.to_le_bytes());
    assert_eq!(&bytes[8..16], &0x1112_1314_1516_1718u64.to_le_bytes());
    assert_eq!(&bytes[16..20], &1u32.to_le_bytes());
}

proptest! {
    #[test]
    fn arbitrary_envelopes_round_trip(
        session: u64,
        seq: u64,
        payload in vec(any::<u8>(), 0..512),
    ) {
        let envelope = Envelope::new(session, seq, payload);
        prop_assert_eq!(Envelope::decode(&envelope.encode()).unwrap(), envelope);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in vec(any::<u8>(), 0..64)) {
        // Any outcome but a panic.
        let _ = Envelope::decode(&bytes);
    }
}
