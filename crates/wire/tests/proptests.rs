//! Property tests for the wire format: arbitrary values round-trip, and
//! the decoder never panics on arbitrary bytes (it may reject them).

use proptest::collection::{btree_map, vec};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Message {
    Ping,
    Text(String),
    Batch(Vec<u64>),
    Tagged { id: u32, body: Option<Box<Message>> },
}

fn arb_message() -> impl Strategy<Value = Message> {
    let leaf = prop_oneof![
        Just(Message::Ping),
        ".{0,32}".prop_map(Message::Text),
        vec(any::<u64>(), 0..8).prop_map(Message::Batch),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        (any::<u32>(), proptest::option::of(inner))
            .prop_map(|(id, body)| Message::Tagged { id, body: body.map(Box::new) })
    })
}

proptest! {
    #[test]
    fn primitives_round_trip(v: (u8, i16, u32, i64, u128, bool, char)) {
        let bytes = chorus_wire::to_bytes(&v).unwrap();
        prop_assert_eq!(chorus_wire::from_bytes::<(u8, i16, u32, i64, u128, bool, char)>(&bytes).unwrap(), v);
    }

    #[test]
    fn strings_round_trip(s in ".{0,256}") {
        let bytes = chorus_wire::to_bytes(&s).unwrap();
        prop_assert_eq!(chorus_wire::from_bytes::<String>(&bytes).unwrap(), s);
    }

    #[test]
    fn collections_round_trip(
        v in vec(any::<i32>(), 0..64),
        m in btree_map(".{0,8}", any::<u64>(), 0..16),
    ) {
        let bytes = chorus_wire::to_bytes(&(v.clone(), m.clone())).unwrap();
        let (v2, m2): (Vec<i32>, BTreeMap<String, u64>) =
            chorus_wire::from_bytes(&bytes).unwrap();
        prop_assert_eq!(v, v2);
        prop_assert_eq!(m, m2);
    }

    #[test]
    fn recursive_enums_round_trip(msg in arb_message()) {
        let bytes = chorus_wire::to_bytes(&msg).unwrap();
        prop_assert_eq!(chorus_wire::from_bytes::<Message>(&bytes).unwrap(), msg);
    }

    #[test]
    fn floats_round_trip_bitwise(a: f32, b: f64) {
        let bytes = chorus_wire::to_bytes(&(a, b)).unwrap();
        let (a2, b2): (f32, f64) = chorus_wire::from_bytes(&bytes).unwrap();
        prop_assert_eq!(a.to_bits(), a2.to_bits());
        prop_assert_eq!(b.to_bits(), b2.to_bits());
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in vec(any::<u8>(), 0..256)) {
        // Any outcome is fine except a panic.
        let _ = chorus_wire::from_bytes::<Message>(&bytes);
        let _ = chorus_wire::from_bytes::<String>(&bytes);
        let _ = chorus_wire::from_bytes::<Vec<u64>>(&bytes);
        let _ = chorus_wire::from_bytes::<(bool, u32)>(&bytes);
    }

    #[test]
    fn encoding_is_deterministic(msg in arb_message()) {
        let a = chorus_wire::to_bytes(&msg).unwrap();
        let b = chorus_wire::to_bytes(&msg).unwrap();
        prop_assert_eq!(a, b);
    }
}
