//! Serializer half of the wire format.

use crate::{Result, WireError};
use bytes::BufMut;
use serde::ser::{self, Serialize};

/// Serializes `value` into a freshly allocated byte vector.
///
/// # Errors
///
/// Returns [`WireError::Message`] if the value's `Serialize` impl reports a
/// custom error, or [`WireError::Unsupported`] for values the format cannot
/// represent (sequences of unknown length are buffered, so they *are*
/// supported).
///
/// # Examples
///
/// ```
/// # fn main() -> chorus_wire::Result<()> {
/// let bytes = chorus_wire::to_bytes(&(1u16, true))?;
/// assert_eq!(bytes, vec![1, 0, 1]);
/// # Ok(())
/// # }
/// ```
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    let mut serializer = Serializer { out: Vec::new() };
    value.serialize(&mut serializer)?;
    Ok(serializer.out)
}

/// Serializes `value` by *appending* to `out`, reusing its capacity.
///
/// This is the hot-path twin of [`to_bytes`]: a session serializing
/// many messages keeps one scratch buffer and clears it between
/// messages, so steady-state encoding performs no allocations at all.
///
/// On error, `out` may contain a partially written value; callers that
/// reuse the buffer should treat its contents as garbage after a
/// failure (clearing before the next use, as the append semantics
/// require anyway).
///
/// # Errors
///
/// Same conditions as [`to_bytes`].
pub fn to_bytes_into<T: Serialize + ?Sized>(value: &T, out: &mut Vec<u8>) -> Result<()> {
    let mut serializer = Serializer { out: std::mem::take(out) };
    let result = value.serialize(&mut serializer);
    *out = serializer.out;
    result
}

/// A streaming serializer writing the wire format into a `Vec<u8>`.
///
/// Most users want [`to_bytes`]; the type is public so callers can reuse a
/// buffer across many messages.
#[derive(Debug, Default)]
pub struct Serializer {
    out: Vec<u8>,
}

impl Serializer {
    /// Creates a serializer with an empty output buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the serializer and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.out
    }

    fn put_len(&mut self, len: usize) -> Result<()> {
        let len32 = u32::try_from(len)
            .map_err(|_| WireError::Message(format!("length {len} exceeds u32::MAX")))?;
        self.out.put_u32_le(len32);
        Ok(())
    }
}

/// Serializer for sequences whose length is not known up front: elements are
/// buffered and the length prefix is patched in when the sequence ends.
#[derive(Debug)]
pub struct SeqSerializer<'a> {
    parent: &'a mut Serializer,
    len_pos: usize,
    count: u32,
}

impl<'a> SeqSerializer<'a> {
    fn begin(parent: &'a mut Serializer, known_len: Option<usize>) -> Result<Self> {
        let len_pos = parent.out.len();
        match known_len {
            Some(len) => parent.put_len(len)?,
            None => parent.out.put_u32_le(0),
        }
        Ok(SeqSerializer { parent, len_pos, count: 0 })
    }

    fn element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        self.count = self
            .count
            .checked_add(1)
            .ok_or_else(|| WireError::Message("sequence too long".into()))?;
        value.serialize(&mut *self.parent)
    }

    fn finish(self) -> Result<()> {
        // Patch the length for unknown-length sequences. For known lengths
        // this rewrites the same value, which is harmless and catches
        // impls that lie about their length.
        let bytes = self.count.to_le_bytes();
        self.parent.out[self.len_pos..self.len_pos + 4].copy_from_slice(&bytes);
        Ok(())
    }
}

impl<'a> ser::Serializer for &'a mut Serializer {
    type Ok = ();
    type Error = WireError;

    type SerializeSeq = SeqSerializer<'a>;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = SeqSerializer<'a>;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<()> {
        self.out.put_u8(v as u8);
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> Result<()> {
        self.out.put_i8(v);
        Ok(())
    }

    fn serialize_i16(self, v: i16) -> Result<()> {
        self.out.put_i16_le(v);
        Ok(())
    }

    fn serialize_i32(self, v: i32) -> Result<()> {
        self.out.put_i32_le(v);
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<()> {
        self.out.put_i64_le(v);
        Ok(())
    }

    fn serialize_i128(self, v: i128) -> Result<()> {
        self.out.put_i128_le(v);
        Ok(())
    }

    fn serialize_u8(self, v: u8) -> Result<()> {
        self.out.put_u8(v);
        Ok(())
    }

    fn serialize_u16(self, v: u16) -> Result<()> {
        self.out.put_u16_le(v);
        Ok(())
    }

    fn serialize_u32(self, v: u32) -> Result<()> {
        self.out.put_u32_le(v);
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<()> {
        self.out.put_u64_le(v);
        Ok(())
    }

    fn serialize_u128(self, v: u128) -> Result<()> {
        self.out.put_u128_le(v);
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<()> {
        self.out.put_f32_le(v);
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<()> {
        self.out.put_f64_le(v);
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<()> {
        self.out.put_u32_le(v as u32);
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<()> {
        self.put_len(v.len())?;
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<()> {
        self.put_len(v.len())?;
        self.out.extend_from_slice(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<()> {
        self.out.put_u8(0);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<()> {
        self.out.put_u8(1);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<()> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<()> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<()> {
        self.out.put_u32_le(variant_index);
        Ok(())
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<()> {
        self.out.put_u32_le(variant_index);
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq> {
        SeqSerializer::begin(self, len)
    }

    fn serialize_tuple(self, _len: usize) -> Result<Self::SerializeTuple> {
        Ok(self)
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleStruct> {
        Ok(self)
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant> {
        self.out.put_u32_le(variant_index);
        Ok(self)
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap> {
        SeqSerializer::begin(self, len)
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self::SerializeStruct> {
        Ok(self)
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant> {
        self.out.put_u32_le(variant_index);
        Ok(self)
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

impl ser::SerializeSeq for SeqSerializer<'_> {
    type Ok = ();
    type Error = WireError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        self.element(value)
    }

    fn end(self) -> Result<()> {
        self.finish()
    }
}

impl ser::SerializeMap for SeqSerializer<'_> {
    type Ok = ();
    type Error = WireError;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<()> {
        self.element(key)
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        // Keys and values alternate; only keys bump the entry count, so
        // divide the count bump between them: count keys only.
        self.count -= 1; // undo the bump done for the key ...
        self.element(value) // ... and redo it for the pair as a whole
    }

    fn end(self) -> Result<()> {
        self.finish()
    }
}

macro_rules! forward_compound {
    ($trait:path, $method:ident) => {
        impl $trait for &mut Serializer {
            type Ok = ();
            type Error = WireError;

            fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
                value.serialize(&mut **self)
            }

            fn end(self) -> Result<()> {
                Ok(())
            }
        }
    };
}

forward_compound!(ser::SerializeTuple, serialize_element);
forward_compound!(ser::SerializeTupleStruct, serialize_field);
forward_compound!(ser::SerializeTupleVariant, serialize_field);

impl ser::SerializeStruct for &mut Serializer {
    type Ok = ();
    type Error = WireError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for &mut Serializer {
    type Ok = ();
    type Error = WireError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<()> {
        Ok(())
    }
}
