//! A compact binary wire format for choreographic transports.
//!
//! The paper's three libraries put values on the network with whatever the
//! host ecosystem offers (Haskell `Show`/`Read`, JSON in TypeScript and
//! Rust). This crate is the equivalent substrate built from scratch: a
//! little-endian, length-prefixed binary format exposed through [`serde`]'s
//! `Serializer`/`Deserializer` traits, so any `serde`-enabled type can cross
//! a choreography's `comm`/`multicast`/`broadcast` operators.
//!
//! The format is *not* self-describing: both endpoints of a communication in
//! a choreography statically agree on the type being sent (that is the whole
//! point of located values), so tags are only written where the data demands
//! them (enum variants, `Option`, sequence lengths).
//!
//! # Examples
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! let point = (42u32, String::from("hello"), vec![1u8, 2, 3]);
//! let bytes = chorus_wire::to_bytes(&point)?;
//! let back: (u32, String, Vec<u8>) = chorus_wire::from_bytes(&bytes)?;
//! assert_eq!(point, back);
//! # Ok(())
//! # }
//! ```

mod control;
mod de;
mod envelope;
mod error;
mod ser;

pub use control::{
    data_frame_wire_len, data_header, ControlFrame, LinkFrame, DATA_FRAME_OVERHEAD,
    DATA_HEADER_LEN, LINK_ACK, LINK_DATA, LINK_PING, LINK_PONG, LINK_RESUME,
};
pub use de::{from_bytes, Deserializer};
pub use envelope::{Envelope, ENVELOPE_HEADER_LEN};
pub use error::WireError;
pub use ser::{to_bytes, to_bytes_into, Serializer};

// Re-exported so every crate in the workspace shares one buffer type
// for payloads without depending on the `bytes` shim directly.
pub use bytes::{BufMut, Bytes, BytesMut};

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, WireError>;

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::{BTreeMap, HashMap};

    fn round_trip<T>(value: &T) -> T
    where
        T: Serialize + serde::de::DeserializeOwned,
    {
        let bytes = to_bytes(value).expect("serialize");
        from_bytes(&bytes).expect("deserialize")
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Request {
        Put(String, String),
        Get(String),
        Stop,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Nested {
        id: u64,
        tags: Vec<String>,
        inner: Option<Box<Nested>>,
        table: BTreeMap<String, i32>,
    }

    #[test]
    fn primitives_round_trip() {
        assert!(round_trip(&true));
        assert!(!round_trip(&false));
        assert_eq!(round_trip(&0u8), 0u8);
        assert_eq!(round_trip(&255u8), 255u8);
        assert_eq!(round_trip(&-1i8), -1i8);
        assert_eq!(round_trip(&i16::MIN), i16::MIN);
        assert_eq!(round_trip(&u16::MAX), u16::MAX);
        assert_eq!(round_trip(&i32::MIN), i32::MIN);
        assert_eq!(round_trip(&u32::MAX), u32::MAX);
        assert_eq!(round_trip(&i64::MIN), i64::MIN);
        assert_eq!(round_trip(&u64::MAX), u64::MAX);
        assert_eq!(round_trip(&i128::MIN), i128::MIN);
        assert_eq!(round_trip(&u128::MAX), u128::MAX);
        assert_eq!(round_trip(&'q'), 'q');
        assert_eq!(round_trip(&'🦀'), '🦀');
    }

    #[test]
    fn floats_round_trip() {
        assert_eq!(round_trip(&1.5f32), 1.5f32);
        assert_eq!(round_trip(&-2.25f64), -2.25f64);
        assert!(round_trip(&f64::NAN).is_nan());
        assert_eq!(round_trip(&f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn strings_round_trip() {
        assert_eq!(round_trip(&String::new()), String::new());
        assert_eq!(round_trip(&String::from("héllo wörld")), "héllo wörld");
        let long = "x".repeat(10_000);
        assert_eq!(round_trip(&long), long);
    }

    #[test]
    fn options_round_trip() {
        assert_eq!(round_trip(&Option::<u32>::None), None);
        assert_eq!(round_trip(&Some(7u32)), Some(7u32));
        assert_eq!(round_trip(&Some(Some(7u32))), Some(Some(7u32)));
        assert_eq!(round_trip(&Some(Option::<u32>::None)), Some(None));
    }

    #[test]
    fn unit_and_tuples_round_trip() {
        round_trip(&());
        assert_eq!(round_trip(&(1u8,)), (1u8,));
        assert_eq!(round_trip(&(1u8, 2u16, 3u32)), (1u8, 2u16, 3u32));
    }

    #[test]
    fn sequences_round_trip() {
        assert_eq!(round_trip(&Vec::<u32>::new()), Vec::<u32>::new());
        assert_eq!(round_trip(&vec![1u32, 2, 3]), vec![1u32, 2, 3]);
        let nested = vec![vec![1u8], vec![], vec![2, 3]];
        assert_eq!(round_trip(&nested), nested);
    }

    #[test]
    fn maps_round_trip() {
        let mut m = HashMap::new();
        m.insert("a".to_string(), 1u32);
        m.insert("b".to_string(), 2u32);
        assert_eq!(round_trip(&m), m);
        let mut bt = BTreeMap::new();
        bt.insert(5u64, vec![true, false]);
        assert_eq!(round_trip(&bt), bt);
    }

    #[test]
    fn enums_round_trip() {
        assert_eq!(
            round_trip(&Request::Put("k".into(), "v".into())),
            Request::Put("k".into(), "v".into())
        );
        assert_eq!(round_trip(&Request::Get("k".into())), Request::Get("k".into()));
        assert_eq!(round_trip(&Request::Stop), Request::Stop);
    }

    #[test]
    fn structs_round_trip() {
        let value = Nested {
            id: 9,
            tags: vec!["one".into(), "two".into()],
            inner: Some(Box::new(Nested {
                id: 10,
                tags: vec![],
                inner: None,
                table: BTreeMap::new(),
            })),
            table: {
                let mut t = BTreeMap::new();
                t.insert("x".into(), -4);
                t
            },
        };
        assert_eq!(round_trip(&value), value);
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut bytes = to_bytes(&3u32).unwrap();
        bytes.push(0xFF);
        let err = from_bytes::<u32>(&bytes).unwrap_err();
        assert!(matches!(err, WireError::TrailingBytes(_)));
    }

    #[test]
    fn truncated_input_is_an_error() {
        let bytes = to_bytes(&0xDEADBEEFu32).unwrap();
        let err = from_bytes::<u32>(&bytes[..2]).unwrap_err();
        assert!(matches!(err, WireError::UnexpectedEof));
    }

    #[test]
    fn invalid_bool_is_an_error() {
        let err = from_bytes::<bool>(&[7]).unwrap_err();
        assert!(matches!(err, WireError::InvalidBool(7)));
    }

    #[test]
    fn invalid_utf8_is_an_error() {
        // length 2, bytes [0xFF, 0xFF]
        let bytes = vec![2, 0, 0, 0, 0xFF, 0xFF];
        assert!(from_bytes::<String>(&bytes).is_err());
    }

    #[test]
    fn invalid_char_is_an_error() {
        let bytes = 0xD800u32.to_le_bytes().to_vec(); // lone surrogate
        assert!(from_bytes::<char>(&bytes).is_err());
    }

    #[test]
    fn oversized_length_is_an_error() {
        // A sequence claiming u32::MAX elements with no payload.
        let bytes = vec![0xFF, 0xFF, 0xFF, 0xFF];
        assert!(from_bytes::<Vec<u64>>(&bytes).is_err());
    }

    #[test]
    fn error_display_is_nonempty() {
        let err = from_bytes::<bool>(&[]).unwrap_err();
        assert!(!err.to_string().is_empty());
    }
}
