//! The session envelope: the frame format that lets one transport carry
//! many concurrent choreography sessions.
//!
//! Every message a choreography session sends is wrapped in an envelope
//! before it reaches the wire:
//!
//! ```text
//! +---------------+---------------+---------------+=============+
//! | session (u64) |   seq (u64)   | len (u32, LE) |   payload   |
//! +---------------+---------------+---------------+=============+
//! ```
//!
//! * `session` identifies the choreography run the message belongs to,
//!   so concurrent sessions can interleave freely on a shared link and
//!   be demultiplexed at the receiver;
//! * `seq` is the per-(session, sender → receiver) sequence number,
//!   starting at zero, preserving the per-sender FIFO guarantee the λN
//!   model assumes (§4.1) *within* each session;
//! * `payload` is the chorus-wire encoding of the value being sent.
//!
//! All integers are little-endian, matching the rest of the wire format.

use crate::WireError;

/// Byte length of the fixed envelope header.
pub const ENVELOPE_HEADER_LEN: usize = 8 + 8 + 4;

/// One framed message: session id, per-edge sequence number, payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// The session this message belongs to.
    pub session: u64,
    /// Position of this message in its (session, sender) stream.
    pub seq: u64,
    /// The encoded value being carried.
    pub payload: Vec<u8>,
}

impl Envelope {
    /// Wraps a payload in an envelope.
    pub fn new(session: u64, seq: u64, payload: Vec<u8>) -> Self {
        Envelope { session, seq, payload }
    }

    /// Encodes the envelope into a fresh byte vector.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds `u32::MAX` bytes (no transport in
    /// this workspace produces frames that large).
    pub fn encode(&self) -> Vec<u8> {
        let len =
            u32::try_from(self.payload.len()).expect("envelope payload exceeds u32::MAX bytes");
        let mut out = Vec::with_capacity(ENVELOPE_HEADER_LEN + self.payload.len());
        out.extend_from_slice(&self.session.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decodes an envelope from `bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] if the header or payload is
    /// truncated, and [`WireError::TrailingBytes`] if bytes remain after
    /// the declared payload length — an envelope is always exactly one
    /// frame.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.len() < ENVELOPE_HEADER_LEN {
            return Err(WireError::UnexpectedEof);
        }
        let session = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"));
        let seq = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes")) as usize;
        let body = &bytes[ENVELOPE_HEADER_LEN..];
        match body.len() {
            n if n < len => Err(WireError::UnexpectedEof),
            n if n > len => Err(WireError::TrailingBytes(n - len)),
            _ => Ok(Envelope { session, seq, payload: body.to_vec() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_frame() {
        let env = Envelope::new(7, 42, b"hello".to_vec());
        let back = Envelope::decode(&env.encode()).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn header_layout_is_stable() {
        let env = Envelope::new(1, 2, vec![0xAA]);
        let bytes = env.encode();
        assert_eq!(bytes.len(), ENVELOPE_HEADER_LEN + 1);
        assert_eq!(&bytes[0..8], &1u64.to_le_bytes());
        assert_eq!(&bytes[8..16], &2u64.to_le_bytes());
        assert_eq!(&bytes[16..20], &1u32.to_le_bytes());
        assert_eq!(bytes[20], 0xAA);
    }
}
