//! The session envelope: the frame format that lets one transport carry
//! many concurrent choreography sessions.
//!
//! Every message a choreography session sends is wrapped in an envelope
//! before it reaches the wire:
//!
//! ```text
//! +---------------+---------------+---------------+=============+
//! | session (u64) |   seq (u64)   | len (u32, LE) |   payload   |
//! +---------------+---------------+---------------+=============+
//! ```
//!
//! * `session` identifies the choreography run the message belongs to,
//!   so concurrent sessions can interleave freely on a shared link and
//!   be demultiplexed at the receiver;
//! * `seq` is the per-(session, sender → receiver) sequence number,
//!   starting at zero, preserving the per-sender FIFO guarantee the λN
//!   model assumes (§4.1) *within* each session;
//! * `payload` is the chorus-wire encoding of the value being sent,
//!   held as a shared [`Bytes`] so an envelope clone (multicast fan-out,
//!   the sender's keep-copy, in-process delivery) never copies it.
//!
//! All integers are little-endian, matching the rest of the wire format.
//!
//! The encode/decode surface comes in two flavors per direction: the
//! allocating convenience pair ([`encode`](Envelope::encode) /
//! [`decode`](Envelope::decode)) and the buffer-reusing, zero-copy pair
//! ([`encode_into`](Envelope::encode_into) /
//! [`decode_shared`](Envelope::decode_shared)). The convenience pair is
//! defined in terms of the other, so the two can never disagree on the
//! format.

use crate::WireError;
use bytes::{BufMut, Bytes, BytesMut};

/// Byte length of the fixed envelope header.
pub const ENVELOPE_HEADER_LEN: usize = 8 + 8 + 4;

/// One framed message: session id, per-edge sequence number, payload.
///
/// Cloning an envelope is cheap: the payload is a shared [`Bytes`], so
/// clones reference the same buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// The session this message belongs to.
    pub session: u64,
    /// Position of this message in its (session, sender) stream.
    pub seq: u64,
    /// The encoded value being carried, shared and immutable.
    pub payload: Bytes,
}

impl Envelope {
    /// Wraps a payload in an envelope.
    pub fn new(session: u64, seq: u64, payload: impl Into<Bytes>) -> Self {
        Envelope { session, seq, payload: payload.into() }
    }

    /// Total encoded size of this envelope: header plus payload.
    pub fn encoded_len(&self) -> usize {
        ENVELOPE_HEADER_LEN + self.payload.len()
    }

    /// Writes the fixed-size header (session, seq, payload length) into
    /// a stack array, so transports can put header and payload on the
    /// wire as two slices without assembling a contiguous frame.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds `u32::MAX` bytes (no transport in
    /// this workspace produces frames that large).
    pub fn header(&self) -> [u8; ENVELOPE_HEADER_LEN] {
        let len =
            u32::try_from(self.payload.len()).expect("envelope payload exceeds u32::MAX bytes");
        let mut header = [0u8; ENVELOPE_HEADER_LEN];
        header[0..8].copy_from_slice(&self.session.to_le_bytes());
        header[8..16].copy_from_slice(&self.seq.to_le_bytes());
        header[16..20].copy_from_slice(&len.to_le_bytes());
        header
    }

    /// Appends the encoded envelope to `out`, reusing its capacity.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds `u32::MAX` bytes.
    pub fn encode_into(&self, out: &mut BytesMut) {
        out.reserve(self.encoded_len());
        out.put_slice(&self.header());
        out.put_slice(&self.payload);
    }

    /// Encodes the envelope into a fresh byte vector.
    ///
    /// Convenience wrapper over [`encode_into`](Envelope::encode_into);
    /// hot paths should reuse a buffer instead.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds `u32::MAX` bytes (no transport in
    /// this workspace produces frames that large).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = BytesMut::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out.into_vec()
    }

    /// Validates the frame layout of `bytes` and returns the payload
    /// range, without touching the payload itself.
    fn parse_header(bytes: &[u8]) -> Result<(u64, u64, usize), WireError> {
        if bytes.len() < ENVELOPE_HEADER_LEN {
            return Err(WireError::UnexpectedEof);
        }
        let session = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"));
        let seq = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes")) as usize;
        let body = bytes.len() - ENVELOPE_HEADER_LEN;
        match body {
            n if n < len => Err(WireError::UnexpectedEof),
            n if n > len => Err(WireError::TrailingBytes(n - len)),
            _ => Ok((session, seq, len)),
        }
    }

    /// Decodes an envelope by *slicing* the payload out of a shared
    /// buffer: the returned envelope references `bytes`' storage and no
    /// payload bytes are copied.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] if the header or payload is
    /// truncated, and [`WireError::TrailingBytes`] if bytes remain after
    /// the declared payload length — an envelope is always exactly one
    /// frame.
    pub fn decode_shared(bytes: &Bytes) -> Result<Self, WireError> {
        let (session, seq, len) = Self::parse_header(bytes)?;
        Ok(Envelope {
            session,
            seq,
            payload: bytes.slice(ENVELOPE_HEADER_LEN..ENVELOPE_HEADER_LEN + len),
        })
    }

    /// Decodes an envelope from a plain byte slice, copying the payload
    /// into fresh shared storage.
    ///
    /// Layout validation is identical to
    /// [`decode_shared`](Envelope::decode_shared); use that when the
    /// input is already a [`Bytes`] to skip the copy.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] if the header or payload is
    /// truncated, and [`WireError::TrailingBytes`] if bytes remain after
    /// the declared payload length.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let (session, seq, len) = Self::parse_header(bytes)?;
        Ok(Envelope {
            session,
            seq,
            payload: Bytes::copy_from_slice(&bytes[ENVELOPE_HEADER_LEN..ENVELOPE_HEADER_LEN + len]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_frame() {
        let env = Envelope::new(7, 42, b"hello".to_vec());
        let back = Envelope::decode(&env.encode()).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn header_layout_is_stable() {
        let env = Envelope::new(1, 2, vec![0xAA]);
        let bytes = env.encode();
        assert_eq!(bytes.len(), ENVELOPE_HEADER_LEN + 1);
        assert_eq!(&bytes[0..8], &1u64.to_le_bytes());
        assert_eq!(&bytes[8..16], &2u64.to_le_bytes());
        assert_eq!(&bytes[16..20], &1u32.to_le_bytes());
        assert_eq!(bytes[20], 0xAA);
    }

    #[test]
    fn encode_into_appends_and_reuses_capacity() {
        let env = Envelope::new(3, 4, b"abc".to_vec());
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(0xEE); // pre-existing content survives
        env.encode_into(&mut buf);
        assert_eq!(buf[0], 0xEE);
        assert_eq!(&buf[1..], env.encode().as_slice());
    }

    #[test]
    fn decode_shared_slices_without_copying() {
        let env = Envelope::new(9, 1, b"shared-payload".to_vec());
        let frame = Bytes::from(env.encode());
        let back = Envelope::decode_shared(&frame).unwrap();
        assert_eq!(back, env);
        // The payload is a view into the frame buffer.
        assert_eq!(back.payload, frame.slice(ENVELOPE_HEADER_LEN..));
    }

    #[test]
    fn header_matches_encoding_prefix() {
        let env = Envelope::new(11, 12, b"xyz".to_vec());
        assert_eq!(env.header(), env.encode()[..ENVELOPE_HEADER_LEN]);
        assert_eq!(env.encoded_len(), env.encode().len());
    }
}
