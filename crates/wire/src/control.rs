//! Link-layer frames: the control vocabulary that makes a stream
//! transport resilient to connection loss.
//!
//! A resilient link (see `TcpTransport`) retains every data frame it
//! sends until the peer acknowledges it, so a broken connection can be
//! re-established and the unacknowledged tail replayed. That protocol
//! needs a second vocabulary *under* the session [`Envelope`]: a
//! per-link sequence number stamped on every data frame (the
//! retransmission index), cumulative acknowledgements flowing the other
//! way, heartbeat probes to detect half-dead connections, and a resume
//! marker exchanged on reconnect. This module is that vocabulary's wire
//! format:
//!
//! ```text
//! +-----+================================+
//! | tag |        tag-specific body       |
//! +-----+================================+
//!
//! tag 0  DATA    link_seq (u64 LE), then one Envelope
//! tag 1  ACK     next (u64 LE)  — every link_seq < next was received
//! tag 2  PING    nonce (u64 LE)
//! tag 3  PONG    nonce (u64 LE), next (u64 LE)
//! tag 4  RESUME  next (u64 LE)  — receiver's cursor, sent on (re)connect
//! ```
//!
//! Like the envelope itself, every integer is little-endian and a frame
//! is always exactly one of these bodies: decoding reports
//! [`WireError::UnexpectedEof`] on truncation and
//! [`WireError::TrailingBytes`] on excess, so a framing bug can never
//! be silently absorbed.

use crate::{Envelope, WireError};

/// Frame tag: a data frame (link sequence number + envelope).
pub const LINK_DATA: u8 = 0;
/// Frame tag: a cumulative acknowledgement.
pub const LINK_ACK: u8 = 1;
/// Frame tag: a heartbeat probe.
pub const LINK_PING: u8 = 2;
/// Frame tag: a heartbeat reply, with a piggybacked acknowledgement.
pub const LINK_PONG: u8 = 3;
/// Frame tag: the receiver's resume cursor, sent after the handshake.
pub const LINK_RESUME: u8 = 4;

/// Byte length of the fixed data-frame prefix (tag + link sequence).
pub const DATA_HEADER_LEN: usize = 1 + 8;

/// Bytes a data frame adds around its payload when it travels
/// `u32`-length-prefixed on a stream: the outer length, the data
/// header, and the envelope header. A *batch* of data frames is plain
/// concatenation of such frames — there is no batch-level framing, so
/// batched senders stay wire-compatible with frame-at-a-time receivers
/// (and vice versa) in both plain and resilient modes.
pub const DATA_FRAME_OVERHEAD: usize = 4 + DATA_HEADER_LEN + crate::ENVELOPE_HEADER_LEN;

/// Total wire footprint of one length-prefixed data frame carrying
/// `envelope` — the unit batched senders account retention watermarks
/// and flush decisions in.
pub fn data_frame_wire_len(envelope: &Envelope) -> usize {
    DATA_FRAME_OVERHEAD + envelope.payload.len()
}

/// The fixed prefix of a data frame: tag byte plus link sequence
/// number, for senders that assemble frames in a reused buffer and put
/// the envelope on the wire without an intermediate allocation.
pub fn data_header(link_seq: u64) -> [u8; DATA_HEADER_LEN] {
    let mut header = [0u8; DATA_HEADER_LEN];
    header[0] = LINK_DATA;
    header[1..9].copy_from_slice(&link_seq.to_le_bytes());
    header
}

/// A non-data link frame: acknowledgement, heartbeat, or resume marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlFrame {
    /// Every data frame with `link_seq < next` has been received.
    Ack {
        /// The receiver's cursor: the next link sequence it expects.
        next: u64,
    },
    /// A liveness probe; the peer answers with a [`ControlFrame::Pong`]
    /// carrying the same nonce.
    Ping {
        /// Correlates the probe with its reply.
        nonce: u64,
    },
    /// The reply to a [`ControlFrame::Ping`], with the receive cursor
    /// piggybacked so an idle link still drains its peer's retention
    /// queue.
    Pong {
        /// The nonce of the probe being answered.
        nonce: u64,
        /// The receiver's cursor, exactly as in [`ControlFrame::Ack`].
        next: u64,
    },
    /// Sent by the accepting side right after the handshake: the link
    /// sequence it expects next, so a reconnecting sender replays
    /// exactly the unacknowledged tail.
    Resume {
        /// The receiver's cursor.
        next: u64,
    },
}

/// Any frame a resilient link puts on the wire: a data frame carrying
/// one session [`Envelope`], or a [`ControlFrame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkFrame {
    /// One session envelope, stamped with its per-link retransmission
    /// index.
    Data {
        /// Position of this frame in the link's transmit stream.
        link_seq: u64,
        /// The session frame being carried.
        envelope: Envelope,
    },
    /// An acknowledgement, heartbeat, or resume marker.
    Control(ControlFrame),
}

fn read_u64(bytes: &[u8], at: usize) -> Result<u64, WireError> {
    let end = at + 8;
    if bytes.len() < end {
        return Err(WireError::UnexpectedEof);
    }
    Ok(u64::from_le_bytes(bytes[at..end].try_into().expect("8 bytes")))
}

/// Rejects bodies longer than `expected` — a link frame is always
/// exactly one body.
fn exact_len(bytes: &[u8], expected: usize) -> Result<(), WireError> {
    match bytes.len() {
        n if n < expected => Err(WireError::UnexpectedEof),
        n if n > expected => Err(WireError::TrailingBytes(n - expected)),
        _ => Ok(()),
    }
}

impl ControlFrame {
    /// Encodes the control frame into a fresh byte vector.
    pub fn encode(&self) -> Vec<u8> {
        match *self {
            ControlFrame::Ack { next } => {
                let mut out = vec![LINK_ACK];
                out.extend_from_slice(&next.to_le_bytes());
                out
            }
            ControlFrame::Ping { nonce } => {
                let mut out = vec![LINK_PING];
                out.extend_from_slice(&nonce.to_le_bytes());
                out
            }
            ControlFrame::Pong { nonce, next } => {
                let mut out = vec![LINK_PONG];
                out.extend_from_slice(&nonce.to_le_bytes());
                out.extend_from_slice(&next.to_le_bytes());
                out
            }
            ControlFrame::Resume { next } => {
                let mut out = vec![LINK_RESUME];
                out.extend_from_slice(&next.to_le_bytes());
                out
            }
        }
    }
}

impl LinkFrame {
    /// Encodes the frame into a fresh byte vector.
    ///
    /// Hot paths write the [`data_header`] prefix and the envelope into
    /// a reused buffer instead; this allocating form exists for control
    /// frames, tests, and the format pin between the two.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            LinkFrame::Data { link_seq, envelope } => {
                let mut out = Vec::with_capacity(DATA_HEADER_LEN + envelope.encoded_len());
                out.extend_from_slice(&data_header(*link_seq));
                out.extend_from_slice(&envelope.encode());
                out
            }
            LinkFrame::Control(control) => control.encode(),
        }
    }

    /// Decodes one link frame from exactly one frame body.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] if the body is truncated,
    /// [`WireError::TrailingBytes`] if bytes remain after the frame, and
    /// [`WireError::Message`] for an unknown tag.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let Some((&tag, body)) = bytes.split_first() else {
            return Err(WireError::UnexpectedEof);
        };
        match tag {
            LINK_DATA => {
                let link_seq = read_u64(body, 0)?;
                let envelope = Envelope::decode(&body[8..])?;
                Ok(LinkFrame::Data { link_seq, envelope })
            }
            LINK_ACK => {
                exact_len(body, 8)?;
                Ok(LinkFrame::Control(ControlFrame::Ack { next: read_u64(body, 0)? }))
            }
            LINK_PING => {
                exact_len(body, 8)?;
                Ok(LinkFrame::Control(ControlFrame::Ping { nonce: read_u64(body, 0)? }))
            }
            LINK_PONG => {
                exact_len(body, 16)?;
                Ok(LinkFrame::Control(ControlFrame::Pong {
                    nonce: read_u64(body, 0)?,
                    next: read_u64(body, 8)?,
                }))
            }
            LINK_RESUME => {
                exact_len(body, 8)?;
                Ok(LinkFrame::Control(ControlFrame::Resume { next: read_u64(body, 0)? }))
            }
            other => Err(WireError::Message(format!("unknown link frame tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_header_matches_the_encoded_prefix() {
        let frame =
            LinkFrame::Data { link_seq: 0x0102_0304, envelope: Envelope::new(7, 3, b"x".to_vec()) };
        let bytes = frame.encode();
        assert_eq!(&bytes[..DATA_HEADER_LEN], &data_header(0x0102_0304));
        assert_eq!(LinkFrame::decode(&bytes).unwrap(), frame);
    }

    #[test]
    fn data_frame_wire_len_matches_the_length_prefixed_encoding() {
        for payload in [&b""[..], b"x", &[7u8; 4096]] {
            let envelope = Envelope::new(3, 9, payload.to_vec());
            let encoded = LinkFrame::Data { link_seq: 5, envelope: envelope.clone() }.encode();
            assert_eq!(data_frame_wire_len(&envelope), 4 + encoded.len());
        }
    }

    #[test]
    fn control_frames_round_trip() {
        for frame in [
            ControlFrame::Ack { next: 0 },
            ControlFrame::Ack { next: u64::MAX },
            ControlFrame::Ping { nonce: 9 },
            ControlFrame::Pong { nonce: 9, next: 17 },
            ControlFrame::Resume { next: 42 },
        ] {
            let decoded = LinkFrame::decode(&frame.encode()).unwrap();
            assert_eq!(decoded, LinkFrame::Control(frame));
        }
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let err = LinkFrame::decode(&[200, 0, 0]).unwrap_err();
        assert!(matches!(err, WireError::Message(_)), "got {err:?}");
    }

    #[test]
    fn empty_input_is_truncation() {
        assert!(matches!(LinkFrame::decode(&[]), Err(WireError::UnexpectedEof)));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = ControlFrame::Ack { next: 1 }.encode();
        bytes.push(0);
        assert!(matches!(LinkFrame::decode(&bytes), Err(WireError::TrailingBytes(1))));
    }
}
