//! Deserializer half of the wire format.

use crate::{Result, WireError};
use serde::de::{self, DeserializeSeed, IntoDeserializer, Visitor};

/// Deserializes a value of type `T` from `bytes`.
///
/// # Errors
///
/// Returns an error if the input is truncated ([`WireError::UnexpectedEof`]),
/// malformed (e.g. [`WireError::InvalidBool`], [`WireError::InvalidUtf8`]),
/// or if bytes remain after the value ([`WireError::TrailingBytes`]).
///
/// # Examples
///
/// ```
/// # fn main() -> chorus_wire::Result<()> {
/// let decoded: (u16, bool) = chorus_wire::from_bytes(&[1, 0, 1])?;
/// assert_eq!(decoded, (1, true));
/// # Ok(())
/// # }
/// ```
pub fn from_bytes<T: de::DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let mut deserializer = Deserializer::new(bytes);
    let value = T::deserialize(&mut deserializer)?;
    if deserializer.input.is_empty() {
        Ok(value)
    } else {
        Err(WireError::TrailingBytes(deserializer.input.len()))
    }
}

/// A streaming deserializer reading the wire format from a byte slice.
#[derive(Debug)]
pub struct Deserializer<'de> {
    input: &'de [u8],
}

impl<'de> Deserializer<'de> {
    /// Creates a deserializer over `input`.
    pub fn new(input: &'de [u8]) -> Self {
        Deserializer { input }
    }

    fn take(&mut self, n: usize) -> Result<&'de [u8]> {
        if self.input.len() < n {
            return Err(WireError::UnexpectedEof);
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn get_len(&mut self) -> Result<usize> {
        let len = self.get_u32()? as usize;
        // A length can never legitimately exceed the remaining input: every
        // element is at least one byte on the wire except zero-sized types,
        // for which serde produces no bytes anyway but also can't appear in
        // unbounded collections of interest. Guard against allocation bombs.
        if len > self.input.len() && len > 1_000_000 {
            return Err(WireError::LengthOverflow(len as u64));
        }
        Ok(len)
    }

    fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn get_u128(&mut self) -> Result<u128> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }
}

struct SeqAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
    remaining: usize,
}

impl<'de> de::SeqAccess<'de> for SeqAccess<'_, 'de> {
    type Error = WireError;

    fn next_element_seed<T: DeserializeSeed<'de>>(&mut self, seed: T) -> Result<Option<T::Value>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'de> de::MapAccess<'de> for SeqAccess<'_, 'de> {
    type Error = WireError;

    fn next_key_seed<K: DeserializeSeed<'de>>(&mut self, seed: K) -> Result<Option<K::Value>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
}

impl<'de> de::EnumAccess<'de> for EnumAccess<'_, 'de> {
    type Error = WireError;
    type Variant = Self;

    fn variant_seed<V: DeserializeSeed<'de>>(self, seed: V) -> Result<(V::Value, Self)> {
        let index = self.de.get_u32()?;
        let value = seed.deserialize(index.into_deserializer())?;
        Ok((value, self))
    }
}

impl<'de> de::VariantAccess<'de> for EnumAccess<'_, 'de> {
    type Error = WireError;

    fn unit_variant(self) -> Result<()> {
        Ok(())
    }

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value> {
        seed.deserialize(self.de)
    }

    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        de::Deserializer::deserialize_tuple(self.de, len, visitor)
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        de::Deserializer::deserialize_tuple(self.de, fields.len(), visitor)
    }
}

impl<'de> de::Deserializer<'de> for &mut Deserializer<'de> {
    type Error = WireError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(WireError::Unsupported("deserialize_any: the wire format is not self-describing"))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.get_u8()? {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            b => Err(WireError::InvalidBool(b)),
        }
    }

    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_i8(self.get_u8()? as i8)
    }

    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_i16(self.get_u16()? as i16)
    }

    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_i32(self.get_u32()? as i32)
    }

    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_i64(self.get_u64()? as i64)
    }

    fn deserialize_i128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_i128(self.get_u128()? as i128)
    }

    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_u8(self.get_u8()?)
    }

    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_u16(self.get_u16()?)
    }

    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_u32(self.get_u32()?)
    }

    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_u64(self.get_u64()?)
    }

    fn deserialize_u128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_u128(self.get_u128()?)
    }

    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_f32(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_f64(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let raw = self.get_u32()?;
        let c = char::from_u32(raw).ok_or(WireError::InvalidChar(raw))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.get_len()?;
        let bytes = self.take(len)?;
        let s = std::str::from_utf8(bytes).map_err(|_| WireError::InvalidUtf8)?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.get_len()?;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self.get_u8()? {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            b => Err(WireError::InvalidBool(b)),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.get_len()?;
        visitor.visit_seq(SeqAccess { de: self, remaining: len })
    }

    fn deserialize_tuple<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value> {
        visitor.visit_seq(SeqAccess { de: self, remaining: len })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        let len = self.get_len()?;
        visitor.visit_map(SeqAccess { de: self, remaining: len })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(WireError::Unsupported(
            "deserialize_identifier: field names are not written to the wire",
        ))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value> {
        Err(WireError::Unsupported(
            "deserialize_ignored_any: the wire format is not self-describing",
        ))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}
