//! Error type for the wire format.

use std::fmt;

/// Errors produced while encoding or decoding the wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// A custom message produced by a `Serialize`/`Deserialize` impl.
    Message(String),
    /// The input ended before the value was fully decoded.
    UnexpectedEof,
    /// Input remained after the value was fully decoded.
    TrailingBytes(usize),
    /// A boolean byte was neither `0` nor `1`.
    InvalidBool(u8),
    /// A `char` was encoded as an invalid Unicode scalar value.
    InvalidChar(u32),
    /// A string was not valid UTF-8.
    InvalidUtf8,
    /// A length prefix exceeded the remaining input size.
    LengthOverflow(u64),
    /// The value cannot be represented in this format
    /// (currently only produced for `deserialize_any`, which requires a
    /// self-describing format).
    Unsupported(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Message(msg) => write!(f, "{msg}"),
            WireError::UnexpectedEof => write!(f, "unexpected end of input"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            WireError::InvalidBool(b) => write!(f, "invalid boolean byte {b}"),
            WireError::InvalidChar(c) => write!(f, "invalid unicode scalar value {c:#x}"),
            WireError::InvalidUtf8 => write!(f, "invalid UTF-8 sequence"),
            WireError::LengthOverflow(n) => {
                write!(f, "length prefix {n} exceeds remaining input")
            }
            WireError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl serde::ser::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::Message(msg.to_string())
    }
}

impl serde::de::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError::Message(msg.to_string())
    }
}
