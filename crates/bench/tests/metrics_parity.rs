//! The `TransportMetrics` layer must report exactly the per-edge counts
//! the old `InstrumentedTransport` wrapper reported: only choreography
//! payloads are counted (never envelope framing), once per send.
//!
//! The expected numbers below are structural properties of the
//! choreographies — message counts and payload sizes are fully
//! determined by the protocol, not by randomness or scheduling — so
//! they pin both layer/wrapper parity and any accidental change to
//! what "one message" means.

use chorus_bench::{run_gmw, run_lottery};
use chorus_core::Endpoint;
use chorus_protocols::kvs_simple::{SimpleKvs, SimpleKvsCensus};
use chorus_protocols::roles::{Client, Primary, C1, C2, C3, P1, P2, P3, S1, S2};
use chorus_protocols::store::{Request, Response, SharedStore};
use chorus_transport::{EdgeMetrics, LocalTransport, LocalTransportChannel, TransportMetrics};
use std::collections::BTreeMap;
use std::sync::Arc;

fn edge(from: &str, to: &str, messages: u64, bytes: u64) -> ((String, String), EdgeMetrics) {
    ((from.to_string(), to.to_string()), EdgeMetrics { messages, bytes })
}

#[test]
fn kvs_simple_per_edge_counts_are_exact() {
    let channel = LocalTransportChannel::<SimpleKvsCensus>::new();
    let metrics = Arc::new(TransportMetrics::new());
    let store = SharedStore::new();
    store.put("k", "v");

    let ch = channel.clone();
    let m = Arc::clone(&metrics);
    let store_for_server = store.clone();
    let server = std::thread::spawn(move || {
        let endpoint =
            Endpoint::builder(Primary).transport(LocalTransport::new(Primary, ch)).layer(m).build();
        let session = endpoint.session();
        session.epp_and_run(SimpleKvs {
            request: session.remote(Client),
            state: session.local(store_for_server),
        });
    });
    let endpoint = Endpoint::builder(Client)
        .transport(LocalTransport::new(Client, channel))
        .layer(Arc::clone(&metrics))
        .build();
    let session = endpoint.session();
    let request = Request::Get("k".into());
    let out = session.epp_and_run(SimpleKvs {
        request: session.local(request.clone()),
        state: session.remote(Primary),
    });
    server.join().unwrap();
    let response = session.unwrap(out);
    assert_eq!(response, Response::Found("v".into()));

    // Exactly one request and one response, whose byte counts are the
    // chorus-wire encodings of the payloads — no envelope overhead is
    // ever attributed to the choreography.
    let request_bytes = chorus_wire::to_bytes(&request).unwrap().len() as u64;
    let response_bytes = chorus_wire::to_bytes(&response).unwrap().len() as u64;
    let expected: BTreeMap<_, _> =
        [edge("Client", "Primary", 1, request_bytes), edge("Primary", "Client", 1, response_bytes)]
            .into_iter()
            .collect();
    assert_eq!(metrics.snapshot(), expected);
}

#[test]
fn gmw_per_edge_counts_are_exact() {
    let mut inputs = BTreeMap::new();
    inputs.insert("P1".to_string(), vec![true]);
    inputs.insert("P2".to_string(), vec![false]);
    inputs.insert("P3".to_string(), vec![true]);
    let circuit = {
        use chorus_mpc::Circuit;
        let a = || Circuit::input("P1", 0);
        let b = || Circuit::input("P2", 0);
        let c = || Circuit::input("P3", 0);
        // majority(a,b,c) = ab ⊕ ac ⊕ bc
        a().and(b()).xor(a().and(c())).xor(b().and(c()))
    };
    let (result, metrics) = run_gmw!(parties = [P1, P2, P3], circuit = circuit, inputs = inputs);
    assert!(result);

    // The majority circuit is fully symmetric: every ordered pair of
    // parties exchanges the same traffic (shares, OT rounds, opening).
    let expected: BTreeMap<_, _> = [
        edge("P1", "P2", 9, 147),
        edge("P1", "P3", 9, 147),
        edge("P2", "P1", 9, 147),
        edge("P2", "P3", 9, 147),
        edge("P3", "P1", 9, 147),
        edge("P3", "P2", 9, 147),
    ]
    .into_iter()
    .collect();
    assert_eq!(metrics.snapshot(), expected);
}

#[test]
fn lottery_per_edge_counts_are_exact() {
    let mut secrets = BTreeMap::new();
    secrets.insert("C1".to_string(), 11u64);
    secrets.insert("C2".to_string(), 22u64);
    secrets.insert("C3".to_string(), 33u64);
    let (out, metrics) = run_lottery!(
        clients = [C1, C2, C3],
        servers = [S1, S2],
        secrets = secrets,
        tau = 300,
        cheaters = BTreeMap::new()
    );
    assert!(out.is_ok());

    // Clients each share one field element per server; servers run the
    // commit-then-open protocol pairwise and each send the analyst one
    // reconstruction share. The analyst hears exactly 2 messages —
    // nothing about the servers' internal conclave leaks to it.
    let expected: BTreeMap<_, _> = [
        edge("C1", "S1", 1, 8),
        edge("C1", "S2", 1, 8),
        edge("C2", "S1", 1, 8),
        edge("C2", "S2", 1, 8),
        edge("C3", "S1", 1, 8),
        edge("C3", "S2", 1, 8),
        edge("S1", "Analyst", 1, 9),
        edge("S1", "S2", 3, 48),
        edge("S2", "Analyst", 1, 9),
        edge("S2", "S1", 3, 48),
    ]
    .into_iter()
    .collect();
    assert_eq!(metrics.snapshot(), expected);
    assert_eq!(metrics.messages_to("Analyst"), 2);
}
