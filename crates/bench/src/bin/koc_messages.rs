//! Experiment E3/E9: knowledge-of-choice message counts —
//! conclaves-&-MLVs versus HasChor-style broadcast (paper §1, §2.2,
//! §3.2, Fig. 2).
//!
//! For each backup count and request type, runs the replicated KVS as a
//! real multi-threaded system over an instrumented transport and reports
//! total messages and messages delivered to the client. The client needs
//! exactly one message (its response); everything beyond that is KoC
//! waste.
//!
//! Run with: `cargo run -p chorus-bench --bin koc_messages`

use chorus_bench::{run_baseline_kvs, run_replicated_kvs};
use chorus_protocols::roles::{
    Backup1, Backup2, Backup3, Backup4, Backup5, Backup6, Backup7, Backup8,
};
use chorus_protocols::store::Request;

struct Row {
    backups: usize,
    request: &'static str,
    conclave_total: u64,
    conclave_to_client: u64,
    baseline_total: u64,
    baseline_to_client: u64,
}

fn requests() -> Vec<(&'static str, Request, &'static [&'static str])> {
    vec![
        ("Get", Request::Get("k".into()), &[]),
        ("Put", Request::Put("k".into(), "v".into()), &[]),
        ("Put+resynch", Request::Put("k".into(), "v".into()), &["Backup1"]),
    ]
}

macro_rules! measure {
    ($rows:ident, $n:expr, $choreo:ident, [$($backup:ty),*]) => {
        for (label, request, corrupt) in requests() {
            let (_, _, conclave) = run_replicated_kvs!(
                backups = [$($backup),*],
                request = request.clone(),
                corrupt = corrupt
            );
            let (_, baseline) = run_baseline_kvs!(
                choreo = $choreo,
                backups = [$($backup),*],
                request = request,
                corrupt = corrupt
            );
            $rows.push(Row {
                backups: $n,
                request: label,
                conclave_total: conclave.total_messages(),
                conclave_to_client: conclave.messages_to("Client"),
                baseline_total: baseline.total_messages(),
                baseline_to_client: baseline.messages_to("Client"),
            });
        }
    };
}

fn main() {
    let mut rows = Vec::new();
    measure!(rows, 1, BaselineKvs1, [Backup1]);
    measure!(rows, 2, BaselineKvs2, [Backup1, Backup2]);
    measure!(rows, 4, BaselineKvs4, [Backup1, Backup2, Backup3, Backup4]);
    measure!(
        rows,
        8,
        BaselineKvs8,
        [Backup1, Backup2, Backup3, Backup4, Backup5, Backup6, Backup7, Backup8]
    );

    println!("E3/E9 — KoC message counts: conclaves-&-MLVs vs broadcast KoC (Fig. 2 workload)");
    println!();
    println!(
        "{:>8} {:>13} | {:>15} {:>10} | {:>15} {:>10} | {:>8}",
        "backups", "request", "conclave total", "to client", "baseline total", "to client", "saved"
    );
    println!("{}", "-".repeat(98));
    for row in &rows {
        let saved = row.baseline_total as i64 - row.conclave_total as i64;
        println!(
            "{:>8} {:>13} | {:>15} {:>10} | {:>15} {:>10} | {:>8}",
            row.backups,
            row.request,
            row.conclave_total,
            row.conclave_to_client,
            row.baseline_total,
            row.baseline_to_client,
            saved,
        );
    }
    println!();
    println!("Shape checks (the paper's qualitative claims):");
    let client_always_one = rows.iter().all(|r| r.conclave_to_client == 1);
    println!(
        "  [{}] conclave client traffic is exactly 1 message for every workload",
        if client_always_one { "ok" } else { "FAIL" }
    );
    let baseline_wastes = rows.iter().all(|r| r.baseline_to_client > r.conclave_to_client);
    println!(
        "  [{}] broadcast KoC always sends the client extra messages",
        if baseline_wastes { "ok" } else { "FAIL" }
    );
    let mut gap_grows = true;
    for label in ["Get", "Put", "Put+resynch"] {
        let gaps: Vec<i64> = rows
            .iter()
            .filter(|r| r.request == label)
            .map(|r| r.baseline_total as i64 - r.conclave_total as i64)
            .collect();
        gap_grows &= !gaps.is_empty() && gaps.windows(2).all(|w| w[1] >= w[0]);
    }
    println!(
        "  [{}] the absolute message gap grows with the number of backups",
        if gap_grows { "ok" } else { "FAIL" }
    );
    assert!(client_always_one && baseline_wastes && gap_grows, "shape check failed");
}
