//! Bench-trajectory emitter: runs the headline microbenchmarks with a
//! simple calibrated wall-clock loop and writes `BENCH_results.json`
//! (bench name → ns/iter + per-iteration message/byte counts), so the
//! perf trajectory of the wire path is recorded per PR and diffable in
//! CI.
//!
//! Run with: `cargo run --release -p chorus-bench --bin bench_json`
//!
//! Flags:
//! * `--quick`  — 1 warm-up + short measurement; the CI smoke mode that
//!   keeps the bins from rotting without burning minutes.
//! * `--sim`    — also run the simulated-network benches, reporting
//!   wall time *and* virtual-time throughput (messages per virtual
//!   tick) under a seeded hostile schedule.
//! * `--out <path>` — where to write the JSON (default
//!   `BENCH_results.json` in the current directory).

use chorus_core::{Endpoint, RoleProgram, Runner, SessionCx, SessionRuntime, Step, TransportError};
use chorus_kvs::cluster::SimCluster;
use chorus_protocols::kvs_simple::{PooledKvsClient, PooledKvsServer, SimpleKvs, SimpleKvsCensus};
use chorus_protocols::roles::{Client, Primary};
use chorus_protocols::store::{Request, Response, SharedStore};
use chorus_transport::{
    FaultPlan, LocalTransport, LocalTransportChannel, SimNet, SimTransport, TransportMetrics,
};
use chorus_wire::{Bytes, BytesMut, Envelope};
use std::hint::black_box;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One emitted measurement.
struct BenchResult {
    name: &'static str,
    ns_per_iter: u128,
    iters: u64,
    /// Messages one iteration puts on the wire (0 for in-memory-only
    /// benches).
    messages: u64,
    /// Payload bytes one iteration puts on the wire.
    bytes: u64,
    /// Simulated-network benches only: total frames delivered and the
    /// final virtual tick, for a wall-clock-free throughput figure.
    sim: Option<(u64, u64)>,
}

/// Times `f` over a warm-up plus a budgeted measurement loop.
fn measure<F: FnMut()>(quick: bool, mut f: F) -> (u128, u64) {
    let (warmup, budget, min_iters) = if quick {
        (1u32, Duration::from_millis(30), 3u64)
    } else {
        (10, Duration::from_millis(500), 30)
    };
    for _ in 0..warmup {
        f();
    }
    let start = Instant::now();
    let deadline = start + budget;
    let mut iters = 0u64;
    loop {
        f();
        iters += 1;
        if (iters >= min_iters && Instant::now() >= deadline) || iters >= 1_000_000 {
            break;
        }
    }
    (start.elapsed().as_nanos() / iters as u128, iters)
}

/// One kvs get over the session shape with a metrics layer, to count
/// the per-iteration wire traffic.
fn count_kvs_traffic() -> (u64, u64) {
    let channel = LocalTransportChannel::<SimpleKvsCensus>::new();
    let metrics = Arc::new(TransportMetrics::new());
    let ch = channel.clone();
    let m = Arc::clone(&metrics);
    let server = std::thread::spawn(move || {
        let endpoint =
            Endpoint::builder(Primary).transport(LocalTransport::new(Primary, ch)).layer(m).build();
        let session = endpoint.session_with_id(0);
        let store = SharedStore::new();
        store.put("k", "v");
        session.epp_and_run(SimpleKvs {
            request: session.remote(Client),
            state: session.local(store),
        });
    });
    let endpoint = Endpoint::builder(Client)
        .transport(LocalTransport::new(Client, channel))
        .layer(Arc::clone(&metrics))
        .build();
    let session = endpoint.session_with_id(0);
    let out = session.epp_and_run(SimpleKvs {
        request: session.local(Request::Get("k".into())),
        state: session.remote(Primary),
    });
    server.join().unwrap();
    assert_eq!(session.unwrap(out), Response::Found("v".into()));
    (metrics.total_messages(), metrics.total_bytes())
}

/// The headline number: one long-lived endpoint pair, one session per
/// run (mirrors `benches/kvs_simple.rs` `get_round_trip_shared_endpoint`).
fn bench_shared_endpoint(quick: bool) -> BenchResult {
    let (messages, bytes) = count_kvs_traffic();
    let channel = LocalTransportChannel::<SimpleKvsCensus>::new();
    let (id_tx, id_rx) = std::sync::mpsc::channel::<u64>();
    let ch = channel.clone();
    let server = std::thread::spawn(move || {
        let endpoint = Endpoint::new(LocalTransport::new(Primary, ch));
        let store = SharedStore::new();
        store.put("k", "v");
        for id in id_rx {
            let session = endpoint.session_with_id(id);
            session.epp_and_run(SimpleKvs {
                request: session.remote(Client),
                state: session.local(store.clone()),
            });
        }
    });
    let endpoint = Endpoint::new(LocalTransport::new(Client, channel));
    let mut next_id = 0u64;
    let (ns_per_iter, iters) = measure(quick, || {
        let id = next_id;
        next_id += 1;
        id_tx.send(id).expect("server thread alive");
        let session = endpoint.session_with_id(id);
        let out = session.epp_and_run(SimpleKvs {
            request: session.local(Request::Get("k".into())),
            state: session.remote(Primary),
        });
        assert_eq!(session.unwrap(out), Response::Found("v".into()));
    });
    drop(id_tx);
    server.join().unwrap();
    BenchResult {
        name: "kvs_simple/get_round_trip_shared_endpoint",
        ns_per_iter,
        iters,
        messages,
        bytes,
        sim: None,
    }
}

/// The legacy shape: fresh fabric, endpoints, and server thread per run.
fn bench_fresh_endpoint(quick: bool) -> BenchResult {
    let (messages, bytes) = count_kvs_traffic();
    let (ns_per_iter, iters) = measure(quick, || {
        let channel = LocalTransportChannel::<SimpleKvsCensus>::new();
        let ch = channel.clone();
        let server = std::thread::spawn(move || {
            let endpoint = Endpoint::new(LocalTransport::new(Primary, ch));
            let session = endpoint.session();
            let store = SharedStore::new();
            store.put("k", "v");
            session.epp_and_run(SimpleKvs {
                request: session.remote(Client),
                state: session.local(store),
            });
        });
        let endpoint = Endpoint::new(LocalTransport::new(Client, channel));
        let session = endpoint.session();
        let out = session.epp_and_run(SimpleKvs {
            request: session.local(Request::Get("k".into())),
            state: session.remote(Primary),
        });
        server.join().unwrap();
        assert_eq!(session.unwrap(out), Response::Found("v".into()));
    });
    BenchResult {
        name: "kvs_simple/get_round_trip_fresh_endpoint",
        ns_per_iter,
        iters,
        messages,
        bytes,
        sim: None,
    }
}

/// Centralized (no transport) baseline.
fn bench_centralized(quick: bool) -> BenchResult {
    let runner: Runner<SimpleKvsCensus> = Runner::new();
    let store = SharedStore::new();
    store.put("k", "v");
    let (ns_per_iter, iters) = measure(quick, || {
        let out = runner.run(SimpleKvs {
            request: runner.local(Request::Get("k".into())),
            state: runner.local(store.clone()),
        });
        black_box(runner.unwrap_located(out));
    });
    BenchResult {
        name: "kvs_simple/centralized_get",
        ns_per_iter,
        iters,
        messages: 0,
        bytes: 0,
        sim: None,
    }
}

/// Encode-once fan-out: one multicast of a 1 KiB value from A to three
/// peers over one fabric, all endpoints on this thread (receives are
/// drained inside the iteration so mailboxes stay bounded).
fn bench_multicast_fanout(quick: bool) -> BenchResult {
    chorus_core::locations! { A, B, C, D }
    type Census = chorus_core::LocationSet!(A, B, C, D);

    let channel = LocalTransportChannel::<Census>::new();
    let a = Endpoint::new(LocalTransport::new(A, channel.clone()));
    let b = Endpoint::new(LocalTransport::new(B, channel.clone()));
    let c = Endpoint::new(LocalTransport::new(C, channel.clone()));
    let d = Endpoint::new(LocalTransport::new(D, channel));
    let sa = a.session_with_id(1);
    let sb = b.session_with_id(1);
    let sc = c.session_with_id(1);
    let sd = d.session_with_id(1);
    let value = "x".repeat(1024);
    let payload_len = chorus_wire::to_bytes(&value).unwrap().len() as u64;
    let (ns_per_iter, iters) = measure(quick, || {
        sa.multicast_value(["B", "C", "D"], &value).unwrap();
        black_box(sb.receive_payload("A").unwrap());
        black_box(sc.receive_payload("A").unwrap());
        black_box(sd.receive_payload("A").unwrap());
    });
    BenchResult {
        name: "fanout/multicast_1k_to_3",
        ns_per_iter,
        iters,
        messages: 3,
        bytes: 3 * payload_len,
        sim: None,
    }
}

/// Frame codec micro: encode into a reused buffer and decode by
/// slicing shared storage, for a 1 KiB payload.
fn bench_envelope_codec(quick: bool) -> BenchResult {
    let payload = Bytes::copy_from_slice(&vec![0xA5u8; 1024]);
    let envelope = Envelope::new(7, 42, payload);
    let frame = Bytes::from(envelope.encode());
    let mut buf = BytesMut::with_capacity(envelope.encoded_len());
    let (ns_per_iter, iters) = measure(quick, || {
        buf.clear();
        envelope.encode_into(&mut buf);
        black_box(buf.len());
        black_box(Envelope::decode_shared(&frame).unwrap());
    });
    BenchResult {
        name: "wire/envelope_encode_into_plus_decode_shared_1k",
        ns_per_iter,
        iters,
        messages: 1,
        bytes: 1024,
        sim: None,
    }
}

/// Simulated-network mode: the kvs round trip over [`SimTransport`]
/// under a seeded hostile schedule (jitter, drops with retransmission,
/// duplicates). Wall time measures simulator overhead; the virtual
/// figure — messages per virtual tick — measures protocol efficiency
/// against the modeled network, independent of the host's clock, so it
/// is comparable across machines and CI runners.
fn bench_sim_chaos_kvs(quick: bool) -> BenchResult {
    let (messages, bytes) = count_kvs_traffic();
    let plan = FaultPlan::ideal().with_seed(7).with_jitter(8).with_drop(0.15).with_duplicate(0.1);
    let net = SimNet::<SimpleKvsCensus>::new(plan);
    let (id_tx, id_rx) = std::sync::mpsc::channel::<u64>();
    let server_net = net.clone();
    let server = std::thread::spawn(move || {
        let endpoint = Endpoint::new(SimTransport::new(Primary, server_net));
        let store = SharedStore::new();
        store.put("k", "v");
        for id in id_rx {
            let session = endpoint.session_with_id(id);
            session.epp_and_run(SimpleKvs {
                request: session.remote(Client),
                state: session.local(store.clone()),
            });
        }
    });
    let endpoint = Endpoint::new(SimTransport::new(Client, net.clone()));
    let mut next_id = 0u64;
    let (ns_per_iter, iters) = measure(quick, || {
        let id = next_id;
        next_id += 1;
        id_tx.send(id).expect("server thread alive");
        let session = endpoint.session_with_id(id);
        let out = session.epp_and_run(SimpleKvs {
            request: session.local(Request::Get("k".into())),
            state: session.remote(Primary),
        });
        assert_eq!(session.unwrap(out), Response::Found("v".into()));
    });
    drop(id_tx);
    server.join().unwrap();
    BenchResult {
        name: "sim/kvs_simple_chaos_round_trip",
        ns_per_iter,
        iters,
        messages,
        bytes,
        sim: Some((net.messages_received(), net.virtual_now())),
    }
}

/// The hardened-vs-plain overhead record for the `patterns` section:
/// one full distributed DPrio lottery (3 clients, 3 servers, analyst,
/// all honest) per iteration, plain and then hardened with the
/// Byzantine-robust building blocks (preflight heartbeat, commit-reveal
/// verdict exchange) layered on.
struct PatternsResult {
    plain_ns: u128,
    plain_iters: u64,
    plain_messages: u64,
    hardened_ns: u128,
    hardened_iters: u64,
    hardened_messages: u64,
}

impl PatternsResult {
    /// The pinned headline: wall-clock cost of the hardening, as a
    /// ratio over the plain protocol on the same census and fabric.
    fn ratio(&self) -> f64 {
        self.hardened_ns as f64 / self.plain_ns.max(1) as f64
    }
}

/// One full distributed run of the hardened lottery (3 clients, 3
/// servers, analyst, all honest) over an in-process fabric, one thread
/// per participant; returns whether the analyst reconstructed a client
/// secret plus the total frames on the wire.
fn run_hardened_lottery_once(epoch: u64) -> (bool, u64) {
    use chorus_core::{ChoreographyLocation as _, LocationSet as _};
    use chorus_mpc::field::FLOTTERY;
    use chorus_protocols::hardened::HardenedLottery;
    use chorus_protocols::roles::{Analyst, C1, C2, C3, S1, S2, S3};
    use chorus_transport::{LocalTransport, LocalTransportChannel};
    use std::marker::PhantomData;

    type Clients = chorus_core::LocationSet!(C1, C2, C3);
    type Servers = chorus_core::LocationSet!(S1, S2, S3);
    type Census = chorus_core::LocationSet!(Analyst, C1, C2, C3, S1, S2, S3);

    let channel = LocalTransportChannel::<Census>::new();
    let metrics = Arc::new(TransportMetrics::new());
    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();

    macro_rules! node {
        ($role:ty, $secrets:expr, $cheaters:expr) => {{
            let c = channel.clone();
            let m = Arc::clone(&metrics);
            handles.push(std::thread::spawn(move || {
                let endpoint = Endpoint::builder(<$role>::new())
                    .transport(LocalTransport::new(<$role>::new(), c))
                    .layer(m)
                    .build();
                let session = endpoint.session();
                let _ = session.epp_and_run(HardenedLottery::<
                    Clients,
                    Servers,
                    Census,
                    _,
                    _,
                    _,
                    _,
                    _,
                    _,
                    _,
                > {
                    secrets: &$secrets(&session),
                    tau: 300,
                    epoch,
                    cheaters: &$cheaters(&session),
                    phantom: PhantomData,
                });
            }));
        }};
    }
    macro_rules! client {
        ($role:ty, $secret:expr) => {
            node!(
                $role,
                |s: &chorus_core::Session<_, $role, _>| s.local_faceted(FLOTTERY::new($secret)),
                |s: &chorus_core::Session<_, $role, _>| s.remote_faceted(Servers::new())
            )
        };
    }
    macro_rules! server {
        ($role:ty) => {
            node!(
                $role,
                |s: &chorus_core::Session<_, $role, _>| s.remote_faceted(Clients::new()),
                |s: &chorus_core::Session<_, $role, _>| s.local_faceted(false)
            )
        };
    }

    client!(C1, 111);
    client!(C2, 222);
    client!(C3, 333);
    server!(S1);
    server!(S2);
    server!(S3);

    let analyst = {
        let c = channel.clone();
        let m = Arc::clone(&metrics);
        std::thread::spawn(move || {
            let endpoint = Endpoint::builder(Analyst)
                .transport(LocalTransport::new(Analyst, c))
                .layer(m)
                .build();
            let session = endpoint.session();
            let out = session.epp_and_run(HardenedLottery::<
                Clients,
                Servers,
                Census,
                _,
                _,
                _,
                _,
                _,
                _,
                _,
            > {
                secrets: &session.remote_faceted(Clients::new()),
                tau: 300,
                epoch,
                cheaters: &session.remote_faceted(Servers::new()),
                phantom: PhantomData,
            });
            session.unwrap(out)
        })
    };

    for h in handles {
        h.join().expect("hardened lottery endpoint");
    }
    let result = analyst.join().expect("analyst endpoint");
    (matches!(result, Ok(v) if [111, 222, 333].contains(&v)), metrics.total_messages())
}

/// Measures the hardened-vs-plain lottery overhead on identical
/// censuses and fabrics. Every iteration is a complete multi-threaded
/// system run, so the ratio prices the extra protocol rounds (and their
/// frames), not just local compute.
fn bench_patterns_lottery(quick: bool) -> PatternsResult {
    use chorus_protocols::roles::{C1, C2, C3, S1, S2, S3};
    let secrets = || -> std::collections::BTreeMap<String, u64> {
        [("C1", 111u64), ("C2", 222), ("C3", 333)]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect()
    };
    let honest = || -> std::collections::BTreeMap<String, bool> {
        ["S1", "S2", "S3"].into_iter().map(|s| (s.to_string(), false)).collect()
    };

    let run_plain = || {
        let (result, metrics) = chorus_bench::run_lottery!(
            clients = [C1, C2, C3],
            servers = [S1, S2, S3],
            secrets = secrets(),
            tau = 300,
            cheaters = honest()
        );
        assert!(matches!(result, Ok(v) if [111, 222, 333].contains(&v)));
        metrics.total_messages()
    };
    let run_hardened = |epoch: u64| {
        let (ok, messages) = run_hardened_lottery_once(epoch);
        assert!(ok, "honest hardened lottery must pay out a client secret");
        messages
    };

    let plain_messages = run_plain();
    let hardened_messages = run_hardened(0);
    let (plain_ns, plain_iters) = measure(quick, || {
        black_box(run_plain());
    });
    let mut epoch = 0u64;
    let (hardened_ns, hardened_iters) = measure(quick, || {
        epoch += 1;
        black_box(run_hardened(epoch));
    });
    PatternsResult {
        plain_ns,
        plain_iters,
        plain_messages,
        hardened_ns,
        hardened_iters,
        hardened_messages,
    }
}

/// One concurrency-scenario measurement: `n_sessions` complete KVS
/// round trips driven to completion, with per-session latency from
/// spawn to the client observing the response.
struct ConcurrencyResult {
    name: &'static str,
    n_sessions: u64,
    /// OS threads dedicated to session execution: the worker-pool size
    /// for the pooled runtime, `2 × n_sessions` for thread-per-role.
    pool_size: usize,
    host_cores: usize,
    elapsed_ms: f64,
    sessions_per_sec: f64,
    msgs_per_sec: f64,
    p50_us: u128,
    p99_us: u128,
}

/// Messages per KVS session: one request, one response.
const MSGS_PER_SESSION: u64 = 2;

fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn percentile_us(sorted: &[Duration], p: f64) -> u128 {
    match sorted.len() {
        0 => 0,
        len => sorted[(((len - 1) as f64) * p).round() as usize].as_micros(),
    }
}

/// Wraps a role program to stamp elapsed-since-spawn when it resolves,
/// giving per-session completion latency without touching the handles.
struct Timed<P: RoleProgram> {
    inner: P,
    started: Instant,
    latency: Arc<OnceLock<Duration>>,
}

impl<P: RoleProgram> RoleProgram for Timed<P> {
    type Output = P::Output;

    fn resume(&mut self, cx: &mut SessionCx<'_>) -> Result<Step<Self::Output>, TransportError> {
        match self.inner.resume(cx)? {
            Step::Done(value) => {
                let _ = self.latency.set(self.started.elapsed());
                Ok(Step::Done(value))
            }
            Step::Pending => Ok(Step::Pending),
        }
    }
}

/// `n` concurrent KVS sessions (client and server roles both pooled) on
/// a worker pool sized to the host.
fn bench_pooled_sessions(n: u64) -> ConcurrencyResult {
    let pool = host_cores();
    let runtime = SessionRuntime::new(pool);
    let channel = LocalTransportChannel::<SimpleKvsCensus>::new();
    let client = Arc::new(Endpoint::new(LocalTransport::new(Client, channel.clone())));
    let server = Arc::new(Endpoint::new(LocalTransport::new(Primary, channel)));
    let store = SharedStore::new();
    store.put("k", "v");

    let mut latencies = Vec::with_capacity(n as usize);
    let mut servers = Vec::with_capacity(n as usize);
    let mut clients = Vec::with_capacity(n as usize);
    let start = Instant::now();
    for id in 0..n {
        let latency = Arc::new(OnceLock::new());
        latencies.push(Arc::clone(&latency));
        servers.push(runtime.spawn(&server, id, PooledKvsServer::new(store.clone())));
        let timed = Timed {
            inner: PooledKvsClient::new(Request::Get("k".into())),
            started: Instant::now(),
            latency,
        };
        clients.push(runtime.spawn(&client, id, timed));
    }
    for handle in clients {
        assert_eq!(handle.join().unwrap(), Response::Found("v".into()));
    }
    for handle in servers {
        handle.join().unwrap();
    }
    let elapsed = start.elapsed();

    let mut sorted: Vec<Duration> =
        latencies.iter().map(|slot| *slot.get().expect("client resolved")).collect();
    sorted.sort_unstable();
    let secs = elapsed.as_secs_f64().max(f64::EPSILON);
    ConcurrencyResult {
        name: "concurrency/pooled_kvs",
        n_sessions: n,
        pool_size: pool,
        host_cores: host_cores(),
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        sessions_per_sec: n as f64 / secs,
        msgs_per_sec: (n * MSGS_PER_SESSION) as f64 / secs,
        p50_us: percentile_us(&sorted, 0.50),
        p99_us: percentile_us(&sorted, 0.99),
    }
}

/// The pre-pool execution model at the same session count: one OS
/// thread per role (2n threads), each running the blocking
/// `Session::epp_and_run` path.
fn bench_thread_per_role_sessions(n: u64) -> ConcurrencyResult {
    let channel = LocalTransportChannel::<SimpleKvsCensus>::new();
    let client = Arc::new(Endpoint::new(LocalTransport::new(Client, channel.clone())));
    let server = Arc::new(Endpoint::new(LocalTransport::new(Primary, channel)));
    let store = SharedStore::new();
    store.put("k", "v");

    let latencies = Arc::new(Mutex::new(Vec::with_capacity(n as usize)));
    let mut threads = Vec::with_capacity(2 * n as usize);
    let start = Instant::now();
    for id in 0..n {
        let server = Arc::clone(&server);
        let store = store.clone();
        threads.push(std::thread::spawn(move || {
            let session = server.session_with_id(id);
            session.epp_and_run(SimpleKvs {
                request: session.remote(Client),
                state: session.local(store),
            });
        }));
        let client = Arc::clone(&client);
        let latencies = Arc::clone(&latencies);
        threads.push(std::thread::spawn(move || {
            let started = Instant::now();
            let session = client.session_with_id(id);
            let out = session.epp_and_run(SimpleKvs {
                request: session.local(Request::Get("k".into())),
                state: session.remote(Primary),
            });
            assert_eq!(session.unwrap(out), Response::Found("v".into()));
            latencies.lock().unwrap().push(started.elapsed());
        }));
    }
    for thread in threads {
        thread.join().unwrap();
    }
    let elapsed = start.elapsed();

    let mut sorted = std::mem::take(&mut *latencies.lock().unwrap());
    sorted.sort_unstable();
    let secs = elapsed.as_secs_f64().max(f64::EPSILON);
    ConcurrencyResult {
        name: "concurrency/thread_per_role_kvs",
        n_sessions: n,
        pool_size: 2 * n as usize,
        host_cores: host_cores(),
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        sessions_per_sec: n as f64 / secs,
        msgs_per_sec: (n * MSGS_PER_SESSION) as f64 / secs,
        p50_us: percentile_us(&sorted, 0.50),
        p99_us: percentile_us(&sorted, 0.99),
    }
}

/// The sharded-KVS live-reshard record: client op throughput in steady
/// state vs *during* a live shard split, plus the freeze window's cost.
/// The driver is sequential, so throughput is measured over the summed
/// wall time of the client operations themselves — migration work
/// (pre-copy chunks, final deltas, the commit round) runs interleaved
/// between them, and the claim under test is that it never imposes a
/// full-cluster stop-the-world on the data path.
struct KvsClusterResult {
    steady_ops_per_sec: f64,
    migrating_ops_per_sec: f64,
    after_ops_per_sec: f64,
    freeze_frames: u64,
    freeze_wall_ms: f64,
}

impl KvsClusterResult {
    /// How much slower an op is mid-reshard (1.0 = no slowdown).
    fn slowdown(&self) -> f64 {
        self.steady_ops_per_sec / self.migrating_ops_per_sec.max(1e-9)
    }
}

fn bench_kvs_cluster(quick: bool) -> KvsClusterResult {
    let per_round: u64 = if quick { 16 } else { 64 };
    let mut cluster = SimCluster::new(FaultPlan::ideal(), &["N1", "N2", "N3", "N4"], 4);
    cluster.set_chunk(16);
    for i in 0..per_round {
        cluster.put(&format!("key-{i}"), "seed").expect("seed put");
    }

    // Summed per-op wall time of one mixed round (the probe used for
    // both phases).
    let timed_round = |cluster: &mut SimCluster, tag: &str| -> (u64, Duration) {
        let mut ops = 0u64;
        let mut spent = Duration::ZERO;
        for i in 0..per_round {
            let key = format!("key-{i}");
            let t = Instant::now();
            cluster.put(&key, tag).expect("put commits");
            spent += t.elapsed();
            ops += 1;
            let t = Instant::now();
            black_box(cluster.get(&key).expect("get succeeds"));
            spent += t.elapsed();
            ops += 1;
        }
        (ops, spent)
    };

    // Steady state.
    let (steady_ops, steady_spent) = timed_round(&mut cluster, "steady");

    // During a live reshard: the same probe interleaved with the
    // pre-copy and finalized under the moving range's freeze. Pick the
    // first split that actually moves a replica (rendezvous can keep a
    // fresh shard on its parent's set); fall back to an explicit
    // migration, which always moves one.
    let split = cluster
        .config()
        .shards
        .iter()
        .map(|s| s.id)
        .map(|id| cluster.config().with_split(id))
        .map(|next| {
            let transfers = cluster.plan_transfers(&next);
            (next, transfers)
        })
        .find(|(_, transfers)| !transfers.is_empty());
    let (next, transfers) = split.unwrap_or_else(|| {
        let shard = &cluster.config().shards[0];
        let spare = cluster
            .config()
            .census
            .iter()
            .find(|m| !shard.replicas.contains(m))
            .expect("a non-replica member exists at RF 3 of 4");
        let mut replicas: Vec<&str> = shard.replicas.iter().skip(1).map(|s| s.as_str()).collect();
        replicas.push(spare);
        let next = cluster.config().with_migrate(shard.id, &replicas);
        let transfers = cluster.plan_transfers(&next);
        (next, transfers)
    });
    let mut migrating_ops = 0u64;
    let mut migrating_spent = Duration::ZERO;
    for transfer in &transfers {
        cluster.precopy(transfer);
        let (ops, spent) = timed_round(&mut cluster, "migrating");
        migrating_ops += ops;
        migrating_spent += spent;
    }
    assert!(cluster.finalize(&next, &transfers), "split commits");
    let window = cluster.last_freeze_window().expect("freeze window recorded");
    let (after_ops, after_spent) = timed_round(&mut cluster, "after");

    KvsClusterResult {
        steady_ops_per_sec: steady_ops as f64 / steady_spent.as_secs_f64().max(1e-9),
        migrating_ops_per_sec: migrating_ops as f64 / migrating_spent.as_secs_f64().max(1e-9),
        after_ops_per_sec: after_ops as f64 / after_spent.as_secs_f64().max(1e-9),
        freeze_frames: window.frames,
        freeze_wall_ms: window.wall.as_secs_f64() * 1e3,
    }
}

/// The resilient-link price tag and recovery figure for the
/// `tcp_resilience` section: steady-state round-trip cost over real
/// loopback sockets with the ack/retention path on vs the plain wire,
/// plus throughput while every established connection is repeatedly
/// hard-killed mid-stream (the reconnect storm).
struct TcpResilienceResult {
    plain_ns: u128,
    plain_iters: u64,
    resilient_ns: u128,
    resilient_iters: u64,
    storm_msgs: u64,
    storm_msgs_per_sec: f64,
    storm_kills: u64,
    storm_reconnects: u64,
}

impl TcpResilienceResult {
    /// Steady-state ack-path overhead (1.0 = free). The roadmap pins
    /// this at ≤ 1.2×.
    fn ratio(&self) -> f64 {
        self.resilient_ns as f64 / self.plain_ns.max(1) as f64
    }
}

/// One bidirectional round trip per iteration over real loopback
/// sockets, with the resilient link layer on or off.
fn tcp_round_trip_ns(quick: bool, resilient: bool) -> (u128, u64) {
    use chorus_core::Transport as _;
    chorus_core::locations! { RA, RB }
    type Duo = chorus_core::LocationSet!(RA, RB);

    let addrs = chorus_transport::free_local_addrs(2).expect("loopback addrs");
    let config = chorus_transport::TcpConfigBuilder::new()
        .location(RA, addrs[0])
        .location(RB, addrs[1])
        .resilience(resilient)
        .build::<Duo>()
        .expect("complete census");
    let a = chorus_transport::TcpTransport::bind(RA, config.clone()).expect("bind RA");
    let b = chorus_transport::TcpTransport::bind(RB, config).expect("bind RB");
    let payload = [0xC3u8; 64];
    measure(quick, || {
        a.send("RB", &payload).expect("send");
        black_box(b.receive("RA").expect("receive"));
        b.send("RA", &payload).expect("send");
        black_box(a.receive("RB").expect("receive"));
    })
}

fn bench_tcp_resilience(quick: bool) -> TcpResilienceResult {
    use chorus_core::Transport as _;
    chorus_core::locations! { SA, SB }
    type Duo = chorus_core::LocationSet!(SA, SB);

    let (plain_ns, plain_iters) = tcp_round_trip_ns(quick, false);
    let (resilient_ns, resilient_iters) = tcp_round_trip_ns(quick, true);

    // The reconnect storm: a one-way stream with every established
    // connection hard-killed at a fixed cadence; throughput includes
    // the reconnect + replay stalls, and every message must still
    // arrive in order.
    let (storm_msgs, kill_every) = if quick { (400u64, 40u64) } else { (4000, 50) };
    let addrs = chorus_transport::free_local_addrs(2).expect("loopback addrs");
    let config = chorus_transport::TcpConfigBuilder::new()
        .location(SA, addrs[0])
        .location(SB, addrs[1])
        .heartbeat(Duration::from_millis(50))
        .retry_base(Duration::from_millis(2))
        .build::<Duo>()
        .expect("complete census");
    let a = chorus_transport::TcpTransport::bind(SA, config.clone()).expect("bind SA");
    let b = chorus_transport::TcpTransport::bind(SB, config).expect("bind SB");
    let payload = [0x5Au8; 64];
    let mut kills = 0u64;
    let start = Instant::now();
    for i in 0..storm_msgs {
        if i > 0 && i % kill_every == 0 {
            kills += a.break_established_links() as u64;
        }
        a.send("SB", &payload).expect("storm send");
    }
    for _ in 0..storm_msgs {
        black_box(b.receive("SA").expect("storm receive"));
    }
    let elapsed = start.elapsed().as_secs_f64().max(f64::EPSILON);
    let reconnects = a.link_stats().reconnects;

    TcpResilienceResult {
        plain_ns,
        plain_iters,
        resilient_ns,
        resilient_iters,
        storm_msgs,
        storm_msgs_per_sec: storm_msgs as f64 / elapsed,
        storm_kills: kills,
        storm_reconnects: reconnects,
    }
}

/// Throughput on a saturated loopback link for the `saturated_link`
/// section: several sessions pump small frames one way as fast as they
/// can offer them, through the same resilient link with coalesced
/// vectored batches (swept over flush windows) vs frame-at-a-time (a
/// zero flush window: every frame is its own vectored write, acked and
/// retained individually). Plain mode (no retention, one plain `write`
/// per frame) rides along as context.
struct SaturatedLinkResult {
    msgs: u64,
    sessions: u64,
    payload_bytes: usize,
    plain_msgs_per_sec: f64,
    unbatched_msgs_per_sec: f64,
    /// `(flush window in µs, msgs/sec)` for every swept window,
    /// including the frame-at-a-time `0` point.
    sweep: Vec<(u64, f64)>,
    batched_flush_us: u64,
    batched_msgs_per_sec: f64,
    batches: u64,
    batched_frames: u64,
    batch_histogram: [u64; 7],
}

impl SaturatedLinkResult {
    /// Batched speedup over the frame-at-a-time data plane (the
    /// regression floor in CI guards this ratio).
    fn ratio(&self) -> f64 {
        self.batched_msgs_per_sec / self.unbatched_msgs_per_sec.max(f64::EPSILON)
    }
}

/// One saturated one-way run: `sessions` sender threads each pump
/// `msgs / sessions` 32-byte frames on their own session. The timed
/// region is the *data plane*: it ends when the receiving transport
/// has deposited every frame into its mailboxes
/// ([`deposited_frames`]), not when application threads have popped
/// them — mailbox pops cost the same in every mode and would otherwise
/// mask the wire-side difference. The mailboxes are drained (and FIFO
/// asserted) outside the timed window. Returns msgs/sec and the
/// sender's link stats (batch counters).
///
/// [`deposited_frames`]: chorus_transport::TcpLinkStats::deposited_frames
fn saturated_link_run(
    msgs: u64,
    sessions: u64,
    resilient: bool,
    flush: Duration,
) -> (f64, chorus_transport::TcpLinkStats) {
    use chorus_core::SessionTransport as _;
    chorus_core::locations! { LA, LB }
    type Duo = chorus_core::LocationSet!(LA, LB);

    let addrs = chorus_transport::free_local_addrs(2).expect("loopback addrs");
    let config = chorus_transport::TcpConfigBuilder::new()
        .location(LA, addrs[0])
        .location(LB, addrs[1])
        .resilience(resilient)
        .flush_delay(flush)
        .build::<Duo>()
        .expect("complete census");
    let a = Arc::new(chorus_transport::TcpTransport::bind(LA, config.clone()).expect("bind LA"));
    let b = Arc::new(chorus_transport::TcpTransport::bind(LB, config).expect("bind LB"));
    let per_session = msgs / sessions;
    let start = Instant::now();
    let senders: Vec<_> = (0..sessions)
        .map(|session| {
            let a = Arc::clone(&a);
            std::thread::spawn(move || {
                for seq in 0..per_session {
                    let envelope = Envelope::new(session + 1, seq, vec![0xB7u8; 32]);
                    a.send_frame("LB", envelope).expect("saturated send");
                }
            })
        })
        .collect();
    for t in senders {
        t.join().expect("sender thread");
    }
    // Senders are done offering; the clock stops when the last frame
    // lands in a mailbox on the receiving side.
    let deadline = Instant::now() + Duration::from_secs(120);
    while b.link_stats().deposited_frames < msgs {
        assert!(Instant::now() < deadline, "saturated link never finished depositing");
        std::thread::yield_now();
    }
    let elapsed = start.elapsed().as_secs_f64().max(f64::EPSILON);
    // Untimed correctness sweep: everything arrived, in order.
    for session in 0..sessions {
        for seq in 0..per_session {
            let got = b.receive_frame(session + 1, "LA").expect("saturated receive");
            assert_eq!(got.seq, seq, "FIFO broke on the saturated link");
        }
    }
    (msgs as f64 / elapsed, a.link_stats())
}

fn bench_saturated_link(quick: bool) -> SaturatedLinkResult {
    let msgs: u64 = if quick { 40_000 } else { 120_000 };
    let sessions: u64 = 4;
    // Every point is peak-of-3: throughput noise on a shared box is
    // one-sided (scheduling stalls only ever slow a run down), so the
    // max is the low-variance estimator — applied to baseline and
    // batched points alike.
    const REPS: u32 = 3;
    let peak_of = |resilient: bool, flush: Duration| {
        let mut peak: Option<(f64, chorus_transport::TcpLinkStats)> = None;
        for _ in 0..REPS {
            let (rate, stats) = saturated_link_run(msgs, sessions, resilient, flush);
            if peak.as_ref().is_none_or(|(r, _)| rate > *r) {
                peak = Some((rate, stats));
            }
        }
        peak.expect("at least one rep")
    };
    let (plain_rate, _) = peak_of(false, Duration::ZERO);
    // The frame-at-a-time baseline: the identical resilient data plane
    // with no coalescing window, so every offered frame is flushed (and
    // retained, and acked) on its own.
    let (unbatched_rate, _) = peak_of(true, Duration::ZERO);
    let mut sweep = vec![(0u64, unbatched_rate)];
    let mut best: Option<(u64, f64, chorus_transport::TcpLinkStats)> = None;
    for &us in &[50u64, 200, 500] {
        let (rate, stats) = peak_of(true, Duration::from_micros(us));
        sweep.push((us, rate));
        if best.as_ref().is_none_or(|(_, r, _)| rate > *r) {
            best = Some((us, rate, stats));
        }
    }
    let (batched_flush_us, batched_msgs_per_sec, stats) = best.expect("non-empty sweep");
    SaturatedLinkResult {
        msgs,
        sessions,
        payload_bytes: 32,
        plain_msgs_per_sec: plain_rate,
        unbatched_msgs_per_sec: unbatched_rate,
        sweep,
        batched_flush_us,
        batched_msgs_per_sec,
        batches: stats.batches,
        batched_frames: stats.batched_frames,
        batch_histogram: stats.batch_histogram,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let sim = args.iter().any(|a| a == "--sim");
    let saturated_floor = args.iter().position(|a| a == "--assert-saturated-floor").map(|i| {
        args.get(i + 1)
            .and_then(|v| v.parse::<f64>().ok())
            .expect("--assert-saturated-floor takes a ratio, e.g. 2.0")
    });
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_results.json".to_string());

    let mut results = vec![
        bench_shared_endpoint(quick),
        bench_fresh_endpoint(quick),
        bench_centralized(quick),
        bench_multicast_fanout(quick),
        bench_envelope_codec(quick),
    ];
    if sim {
        results.push(bench_sim_chaos_kvs(quick));
    }

    // The Byzantine-hardening price tag: plain vs hardened lottery on
    // identical censuses, with the overhead ratio pinned in the JSON so
    // a pattern-layer perf regression is diffable per commit.
    let patterns = bench_patterns_lottery(quick);

    // The sharded-KVS live-reshard figures: the data path must not pay
    // a stop-the-world for a shard split.
    let kvs_cluster = bench_kvs_cluster(quick);

    // The resilient-TCP price tag: ack/retention overhead on a real
    // socket round trip, and throughput through a reconnect storm.
    let tcp_resilience = bench_tcp_resilience(quick);

    // The batched-data-plane payoff: msgs/sec on a saturated loopback
    // link, coalesced vectored batches vs one write per frame, with the
    // realized batch-size histogram and the flush-window sweep.
    let saturated = bench_saturated_link(quick);

    // The pooled-runtime concurrency scenarios: N sessions to
    // completion on a fixed pool, against the thread-per-role blocking
    // model at N=1k. Quick mode (the CI scale smoke) trims the 10k
    // point to keep the job inside its time box.
    let pooled_ns: &[u64] = if quick { &[100, 1_000] } else { &[100, 1_000, 10_000] };
    let mut concurrency: Vec<ConcurrencyResult> =
        pooled_ns.iter().map(|&n| bench_pooled_sessions(n)).collect();
    concurrency.push(bench_thread_per_role_sessions(1_000));

    let mut json = String::from("{\n  \"schema\": 1,\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sim_fields = match r.sim {
            Some((delivered, ticks)) => format!(
                ", \"sim_messages\": {delivered}, \"sim_virtual_ticks\": {ticks}, \
                 \"sim_messages_per_tick\": {:.4}",
                delivered as f64 / ticks.max(1) as f64
            ),
            None => String::new(),
        };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_iter\": {}, \"iters\": {}, \
             \"messages\": {}, \"bytes\": {}{}}}{}\n",
            r.name,
            r.ns_per_iter,
            r.iters,
            r.messages,
            r.bytes,
            sim_fields,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"patterns\": {{\"plain_lottery_ns\": {}, \"plain_lottery_iters\": {}, \
         \"plain_lottery_messages\": {}, \"hardened_lottery_ns\": {}, \
         \"hardened_lottery_iters\": {}, \"hardened_lottery_messages\": {}, \
         \"hardened_over_plain_ratio\": {:.3}}},\n",
        patterns.plain_ns,
        patterns.plain_iters,
        patterns.plain_messages,
        patterns.hardened_ns,
        patterns.hardened_iters,
        patterns.hardened_messages,
        patterns.ratio()
    ));
    json.push_str(&format!(
        "  \"kvs_cluster\": {{\"steady_ops_per_sec\": {:.1}, \
         \"migrating_ops_per_sec\": {:.1}, \"after_ops_per_sec\": {:.1}, \
         \"migrating_over_steady_slowdown\": {:.3}, \"freeze_frames\": {}, \
         \"freeze_wall_ms\": {:.3}}},\n",
        kvs_cluster.steady_ops_per_sec,
        kvs_cluster.migrating_ops_per_sec,
        kvs_cluster.after_ops_per_sec,
        kvs_cluster.slowdown(),
        kvs_cluster.freeze_frames,
        kvs_cluster.freeze_wall_ms,
    ));
    json.push_str(&format!(
        "  \"tcp_resilience\": {{\"plain_round_trip_ns\": {}, \"plain_iters\": {}, \
         \"resilient_round_trip_ns\": {}, \"resilient_iters\": {}, \
         \"resilient_over_plain_ratio\": {:.3}, \"storm_msgs\": {}, \
         \"storm_msgs_per_sec\": {:.1}, \"storm_kills\": {}, \"storm_reconnects\": {}}},\n",
        tcp_resilience.plain_ns,
        tcp_resilience.plain_iters,
        tcp_resilience.resilient_ns,
        tcp_resilience.resilient_iters,
        tcp_resilience.ratio(),
        tcp_resilience.storm_msgs,
        tcp_resilience.storm_msgs_per_sec,
        tcp_resilience.storm_kills,
        tcp_resilience.storm_reconnects,
    ));
    let sweep_json = saturated
        .sweep
        .iter()
        .map(|(us, rate)| format!("{{\"flush_us\": {us}, \"msgs_per_sec\": {rate:.1}}}"))
        .collect::<Vec<_>>()
        .join(", ");
    json.push_str(&format!(
        "  \"saturated_link\": {{\"msgs\": {}, \"sessions\": {}, \"payload_bytes\": {}, \
         \"plain_msgs_per_sec\": {:.1}, \"unbatched_msgs_per_sec\": {:.1}, \
         \"batched_msgs_per_sec\": {:.1}, \"batched_over_unbatched_ratio\": {:.3}, \
         \"batched_flush_us\": {}, \"batches\": {}, \"batched_frames\": {}, \
         \"batch_histogram\": {:?}, \"flush_sweep\": [{}]}},\n",
        saturated.msgs,
        saturated.sessions,
        saturated.payload_bytes,
        saturated.plain_msgs_per_sec,
        saturated.unbatched_msgs_per_sec,
        saturated.batched_msgs_per_sec,
        saturated.ratio(),
        saturated.batched_flush_us,
        saturated.batches,
        saturated.batched_frames,
        saturated.batch_histogram,
        sweep_json,
    ));
    json.push_str("  \"concurrency\": [\n");
    for (i, c) in concurrency.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"n_sessions\": {}, \"pool_size\": {}, \
             \"host_cores\": {}, \"elapsed_ms\": {:.3}, \"sessions_per_sec\": {:.1}, \
             \"msgs_per_sec\": {:.1}, \"p50_us\": {}, \"p99_us\": {}}}{}\n",
            c.name,
            c.n_sessions,
            c.pool_size,
            c.host_cores,
            c.elapsed_ms,
            c.sessions_per_sec,
            c.msgs_per_sec,
            c.p50_us,
            c.p99_us,
            if i + 1 < concurrency.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    for r in &results {
        print!(
            "{:<48} {:>10} ns/iter (n = {:>6})  {} msgs  {} bytes",
            r.name, r.ns_per_iter, r.iters, r.messages, r.bytes
        );
        if let Some((delivered, ticks)) = r.sim {
            print!(
                "  [sim: {delivered} frames / {ticks} vticks = {:.4} msgs/vtick]",
                delivered as f64 / ticks.max(1) as f64
            );
        }
        println!();
    }
    println!(
        "{:<48} plain {} ns/iter (n = {}, {} msgs)  hardened {} ns/iter (n = {}, {} msgs)  \
         ratio {:.2}x",
        "patterns/lottery_hardening_overhead",
        patterns.plain_ns,
        patterns.plain_iters,
        patterns.plain_messages,
        patterns.hardened_ns,
        patterns.hardened_iters,
        patterns.hardened_messages,
        patterns.ratio()
    );
    println!(
        "{:<48} steady {:.0} ops/s  migrating {:.0} ops/s  after {:.0} ops/s  \
         slowdown {:.2}x  freeze {} frames / {:.2} ms",
        "kvs_cluster/live_reshard",
        kvs_cluster.steady_ops_per_sec,
        kvs_cluster.migrating_ops_per_sec,
        kvs_cluster.after_ops_per_sec,
        kvs_cluster.slowdown(),
        kvs_cluster.freeze_frames,
        kvs_cluster.freeze_wall_ms,
    );
    println!(
        "{:<48} plain {} ns/iter (n = {})  resilient {} ns/iter (n = {})  ratio {:.2}x  \
         storm {:.0} msgs/s ({} kills, {} reconnects)",
        "tcp_resilience/round_trip_and_storm",
        tcp_resilience.plain_ns,
        tcp_resilience.plain_iters,
        tcp_resilience.resilient_ns,
        tcp_resilience.resilient_iters,
        tcp_resilience.ratio(),
        tcp_resilience.storm_msgs_per_sec,
        tcp_resilience.storm_kills,
        tcp_resilience.storm_reconnects,
    );
    println!(
        "{:<48} plain {:.0} msgs/s  unbatched {:.0} msgs/s  batched {:.0} msgs/s \
         (flush {}us)  ratio {:.2}x  {} batches / {} frames  hist {:?}",
        "saturated_link/batched_vs_frame_at_a_time",
        saturated.plain_msgs_per_sec,
        saturated.unbatched_msgs_per_sec,
        saturated.batched_msgs_per_sec,
        saturated.batched_flush_us,
        saturated.ratio(),
        saturated.batches,
        saturated.batched_frames,
        saturated.batch_histogram,
    );
    for c in &concurrency {
        println!(
            "{:<48} N={:<6} threads={:<5} cores={}  {:>9.1} sessions/s  {:>9.1} msgs/s  \
             p50={}us p99={}us",
            c.name,
            c.n_sessions,
            c.pool_size,
            c.host_cores,
            c.sessions_per_sec,
            c.msgs_per_sec,
            c.p50_us,
            c.p99_us
        );
    }
    std::fs::write(&out_path, &json).expect("write BENCH_results.json");
    println!("\nwrote {out_path}");

    if let Some(floor) = saturated_floor {
        let ratio = saturated.ratio();
        if ratio < floor {
            eprintln!(
                "saturated-link regression: batched/frame-at-a-time ratio {ratio:.2}x \
                 fell below the {floor:.2}x floor"
            );
            std::process::exit(1);
        }
        println!("saturated-link floor ok: {ratio:.2}x >= {floor:.2}x");
    }
}
