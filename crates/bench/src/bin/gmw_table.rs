//! Experiment E4: GMW cost scaling (paper §6, Appendix A, Figs. 8–9).
//!
//! Runs the census-polymorphic GMW choreography as a real
//! multi-threaded system and reports message counts and wall time per
//! circuit and party count, checking the paper-implied shape: AND gates
//! cost Θ(n·(n−1)) oblivious transfers (3 messages each here), XOR gates
//! are free, and correctness matches plaintext evaluation.
//!
//! Run with: `cargo run -p chorus-bench --bin gmw_table --release`

use chorus_bench::run_gmw;
use chorus_mpc::Circuit;
use chorus_protocols::roles::{P1, P2, P3, P4, P5};
use std::collections::BTreeMap;
use std::time::Instant;

fn inputs(parties: &[&str]) -> BTreeMap<String, Vec<bool>> {
    parties.iter().enumerate().map(|(i, p)| (p.to_string(), vec![i % 2 == 0])).collect()
}

fn and_chain(parties: &[&'static str], k: usize) -> Circuit {
    let mut circuit = Circuit::input(parties[0], 0);
    for i in 1..=k {
        let next = Circuit::input(parties[i % parties.len()], 0);
        circuit = circuit.and(next);
    }
    circuit
}

fn xor_chain(parties: &[&'static str], k: usize) -> Circuit {
    let mut circuit = Circuit::input(parties[0], 0);
    for i in 1..=k {
        let next = Circuit::input(parties[i % parties.len()], 0);
        circuit = circuit.xor(next);
    }
    circuit
}

struct Row {
    parties: usize,
    circuit: &'static str,
    and_gates: usize,
    messages: u64,
    micros: u128,
    correct: bool,
}

macro_rules! measure {
    ($rows:ident, $names:expr, [$($party:ty),*]) => {{
        let names: &[&'static str] = $names;
        let cases: Vec<(&'static str, Circuit)> = vec![
            ("xor-chain-4", xor_chain(names, 4)),
            ("and-1", and_chain(names, 1)),
            ("and-chain-4", and_chain(names, 4)),
        ];
        for (label, circuit) in cases {
            let env: BTreeMap<&str, Vec<bool>> = inputs(names)
                .iter()
                .map(|(k, v)| (Box::leak(k.clone().into_boxed_str()) as &str, v.clone()))
                .collect();
            let expected = circuit.eval_plain(&env);
            let counts = circuit.gate_counts();
            let start = Instant::now();
            let (result, metrics) = run_gmw!(
                parties = [$($party),*],
                circuit = circuit,
                inputs = inputs(names)
            );
            let micros = start.elapsed().as_micros();
            $rows.push(Row {
                parties: names.len(),
                circuit: label,
                and_gates: counts.and_gates,
                messages: metrics.total_messages(),
                micros,
                correct: result == expected,
            });
        }
    }};
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();
    measure!(rows, &["P1", "P2"], [P1, P2]);
    measure!(rows, &["P1", "P2", "P3"], [P1, P2, P3]);
    measure!(rows, &["P1", "P2", "P3", "P4"], [P1, P2, P3, P4]);
    measure!(rows, &["P1", "P2", "P3", "P4", "P5"], [P1, P2, P3, P4, P5]);

    println!("E4 — GMW scaling: messages and time vs parties and AND gates");
    println!();
    println!(
        "{:>8} {:>14} {:>10} {:>10} {:>12} {:>9}",
        "parties", "circuit", "AND gates", "messages", "time (µs)", "correct"
    );
    println!("{}", "-".repeat(70));
    for row in &rows {
        println!(
            "{:>8} {:>14} {:>10} {:>10} {:>12} {:>9}",
            row.parties, row.circuit, row.and_gates, row.messages, row.micros, row.correct
        );
    }

    println!();
    println!("Shape checks:");
    let all_correct = rows.iter().all(|r| r.correct);
    println!(
        "  [{}] every distributed evaluation matches plaintext evaluation",
        if all_correct { "ok" } else { "FAIL" }
    );
    // AND messages grow superlinearly in the number of parties (the
    // pairwise-OT n·(n−1) term), XOR chains only pay sharing + reveal.
    let and1: Vec<&Row> = rows.iter().filter(|r| r.circuit == "and-1").collect();
    let growth_ok = and1.windows(2).all(|w| {
        let n0 = w[0].parties as u64;
        let n1 = w[1].parties as u64;
        // messages per AND pair should scale at least with n(n-1)
        (w[1].messages - w[0].messages) >= 3 * (n1 * (n1 - 1) - n0 * (n0 - 1)) / 2
    });
    println!(
        "  [{}] AND-gate messages grow with n(n-1) pairwise OTs",
        if growth_ok { "ok" } else { "FAIL" }
    );
    let xor_cheap = rows
        .iter()
        .filter(|r| r.circuit == "xor-chain-4")
        .zip(rows.iter().filter(|r| r.circuit == "and-chain-4"))
        .all(|(x, a)| x.messages < a.messages);
    println!(
        "  [{}] XOR chains cost strictly fewer messages than AND chains",
        if xor_cheap { "ok" } else { "FAIL" }
    );
    assert!(all_correct && growth_ok && xor_cheap, "shape check failed");
}
