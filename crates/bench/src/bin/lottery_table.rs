//! Experiment E5: the DPrio lottery (paper §6, Appendix C,
//! Figs. 12–13) — message scaling, fairness, and cheater detection.
//!
//! * Message counts as clients × servers grow: sharing costs
//!   #clients·#servers, commitments/openings cost 3·#servers·(#servers−1),
//!   the analyst receives exactly #servers shares.
//! * Fairness: over many centralized runs, every client's secret is
//!   selected at a frequency close to uniform (as long as ≥1 server is
//!   honest).
//! * A cheating server (opening a value it did not commit) is always
//!   detected.
//!
//! Run with: `cargo run -p chorus-bench --bin lottery_table`

use chorus_bench::run_lottery;
use chorus_core::{Faceted, Runner};
use chorus_mpc::field::FLOTTERY;
use chorus_protocols::lottery::{Lottery, LotteryError};
use chorus_protocols::roles::{Analyst, C1, C2, C3, C4, S1, S2, S3, S4};
use std::collections::BTreeMap;
use std::marker::PhantomData;

fn secrets(names: &[&str]) -> BTreeMap<String, u64> {
    names.iter().enumerate().map(|(i, n)| (n.to_string(), 1000 + i as u64)).collect()
}

fn honest(names: &[&str]) -> BTreeMap<String, bool> {
    names.iter().map(|n| (n.to_string(), false)).collect()
}

struct Row {
    clients: usize,
    servers: usize,
    messages: u64,
    to_analyst: u64,
    result_ok: bool,
}

macro_rules! measure {
    ($rows:ident, $cnames:expr, $snames:expr, [$($client:ty),*], [$($server:ty),*]) => {{
        let cnames: &[&str] = $cnames;
        let snames: &[&str] = $snames;
        let secret_map = secrets(cnames);
        let values: Vec<u64> = secret_map.values().copied().collect();
        let (result, metrics) = run_lottery!(
            clients = [$($client),*],
            servers = [$($server),*],
            secrets = secret_map,
            tau = 1000,
            cheaters = honest(snames)
        );
        $rows.push(Row {
            clients: cnames.len(),
            servers: snames.len(),
            messages: metrics.total_messages(),
            to_analyst: metrics.messages_to("Analyst"),
            result_ok: matches!(result, Ok(v) if values.contains(&v)),
        });
    }};
}

fn fairness_histogram(trials: usize) -> BTreeMap<u64, usize> {
    type Clients = chorus_core::LocationSet!(C1, C2, C3);
    type Servers = chorus_core::LocationSet!(S1, S2);
    type Census = chorus_core::LocationSet!(Analyst, C1, C2, C3, S1, S2);
    let runner: Runner<Census> = Runner::new();
    let secret_map: BTreeMap<String, FLOTTERY> =
        secrets(&["C1", "C2", "C3"]).into_iter().map(|(k, v)| (k, FLOTTERY::new(v))).collect();
    let cheat_map: BTreeMap<String, bool> = honest(&["S1", "S2"]);
    let mut histogram = BTreeMap::new();
    for _ in 0..trials {
        let secrets: Faceted<FLOTTERY, Clients> = runner.faceted(secret_map.clone());
        let cheaters: Faceted<bool, Servers> = runner.faceted(cheat_map.clone());
        let out = runner.run(Lottery::<Clients, Servers, Census, _, _, _, _, _, _, _> {
            secrets: &secrets,
            tau: 300,
            cheaters: &cheaters,
            phantom: PhantomData,
        });
        let winner = runner.unwrap_located(out).expect("honest run succeeds");
        *histogram.entry(winner).or_insert(0) += 1;
    }
    histogram
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();
    measure!(rows, &["C1", "C2"], &["S1", "S2"], [C1, C2], [S1, S2]);
    measure!(rows, &["C1", "C2", "C3"], &["S1", "S2"], [C1, C2, C3], [S1, S2]);
    measure!(rows, &["C1", "C2", "C3", "C4"], &["S1", "S2", "S3"], [C1, C2, C3, C4], [S1, S2, S3]);
    measure!(
        rows,
        &["C1", "C2", "C3", "C4"],
        &["S1", "S2", "S3", "S4"],
        [C1, C2, C3, C4],
        [S1, S2, S3, S4]
    );

    println!("E5 — DPrio lottery: message scaling (distributed, instrumented transport)");
    println!();
    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>8}",
        "clients", "servers", "messages", "to analyst", "ok"
    );
    println!("{}", "-".repeat(52));
    for row in &rows {
        println!(
            "{:>8} {:>8} {:>10} {:>12} {:>8}",
            row.clients, row.servers, row.messages, row.to_analyst, row.result_ok
        );
    }

    println!();
    let trials = 600;
    let histogram = fairness_histogram(trials);
    println!("Fairness over {trials} centralized runs (3 clients, secrets 1000–1002):");
    for (winner, count) in &histogram {
        println!("  secret {winner}: {count} wins ({:.1}%)", 100.0 * *count as f64 / trials as f64);
    }

    // Cheater detection.
    let mut cheaters = honest(&["S1", "S2"]);
    cheaters.insert("S2".to_string(), true);
    let (cheated, _) = run_lottery!(
        clients = [C1, C2],
        servers = [S1, S2],
        secrets = secrets(&["C1", "C2"]),
        tau = 1000,
        cheaters = cheaters
    );

    println!();
    println!("Shape checks:");
    let all_ok = rows.iter().all(|r| r.result_ok);
    println!(
        "  [{}] the analyst always reconstructs one of the client secrets",
        if all_ok { "ok" } else { "FAIL" }
    );
    let analyst_exact = rows.iter().all(|r| r.to_analyst == r.servers as u64);
    println!(
        "  [{}] the analyst receives exactly one share per server",
        if analyst_exact { "ok" } else { "FAIL" }
    );
    let fair = histogram.len() == 3
        && histogram.values().all(|c| {
            let frac = *c as f64 / trials as f64;
            (0.2..=0.47).contains(&frac)
        });
    println!("  [{}] every client wins at a near-uniform rate", if fair { "ok" } else { "FAIL" });
    let caught = cheated == Err(LotteryError::CommitmentFailed);
    println!(
        "  [{}] a cheating server is detected by commitment verification",
        if caught { "ok" } else { "FAIL" }
    );
    assert!(all_ok && analyst_exact && fair && caught, "shape check failed");
}
