//! Experiment E1: the paper's Table 1 — feature comparison between
//! HasChor (reproduced here as `chorus-baseline`), the λC formal model
//! (`chorus-lambda`), and the ChoRus-style library (`chorus-core`).
//!
//! Each "✓" is backed by a live probe executed by this binary (or, for
//! the λC column, by the formal model's own test suite); each "✗" is a
//! structural impossibility in the corresponding library (e.g. the
//! baseline has no conclave operator at all).
//!
//! Run with: `cargo run -p chorus-bench --bin table1`

use chorus_core::{ChoreoOp, Choreography, Located, LocationSet, MultiplyLocated, Runner};
use chorus_lambda::network::{Network, Outcome};
use chorus_lambda::parties;
use chorus_lambda::semantics::eval;
use chorus_lambda::syntax::{Expr, Value};
use chorus_lambda::Party;
use std::marker::PhantomData;

chorus_core::locations! { A, B, C }
type Trio = chorus_core::LocationSet!(A, B, C);
type Duo = chorus_core::LocationSet!(B, C);

/// Probe: multiply-located values + multicast work end to end.
fn probe_mlv_multicast() -> bool {
    struct Probe;
    impl Choreography<u32> for Probe {
        type L = Trio;
        fn run(self, op: &impl ChoreoOp<Self::L>) -> u32 {
            let at_a: Located<u32, A> = op.locally(A, |_| 7);
            let shared: MultiplyLocated<u32, Trio> = op.multicast(A, Trio::new(), &at_a);
            op.naked(shared)
        }
    }
    Runner::new().run(Probe) == 7
}

/// Probe: conclaves skip outsiders and return MLVs.
fn probe_conclave() -> bool {
    struct Inner;
    impl Choreography<u32> for Inner {
        type L = Duo;
        fn run(self, _op: &impl ChoreoOp<Self::L>) -> u32 {
            21
        }
    }
    struct Outer;
    impl Choreography<MultiplyLocated<u32, Duo>> for Outer {
        type L = Trio;
        fn run(self, op: &impl ChoreoOp<Self::L>) -> MultiplyLocated<u32, Duo> {
            op.conclave(Inner)
        }
    }
    let runner: Runner<Trio> = Runner::new();
    runner.unwrap_located(runner.run(Outer)) == 21
}

/// Probe: one choreography, two census sizes (census polymorphism).
fn probe_census_polymorphism() -> bool {
    struct Sum<W, WSub, WFold> {
        phantom: PhantomData<(W, WSub, WFold)>,
    }
    impl<W, WSub, WFold> Choreography<u32> for Sum<W, WSub, WFold>
    where
        W: LocationSet
            + chorus_core::Subset<Trio, WSub>
            + chorus_core::LocationSetFoldable<Trio, W, WFold>,
    {
        type L = Trio;
        fn run(self, op: &impl ChoreoOp<Self::L>) -> u32 {
            let facets = op.parallel_named(W::new(), |name| name.len() as u32);
            let q = op.gather(W::new(), Trio::new(), &facets);
            op.naked(q).values().sum()
        }
    }
    let runner: Runner<Trio> = Runner::new();
    let one = runner.run(Sum::<chorus_core::LocationSet!(B), _, _> { phantom: PhantomData });
    let two = runner.run(Sum::<Duo, _, _> { phantom: PhantomData });
    one == 1 && two == 2
}

/// Probe: the λC model supports MLVs + multicast (com to a set) and
/// conclaved cases, end to end through EPP and the network semantics.
fn probe_lambda_model() -> bool {
    let expr = Expr::app(
        Expr::val(Value::Com { from: Party(0), to: parties![1, 2] }),
        Expr::val(Value::Unit(parties![0])),
    );
    let central = eval(&expr, 1000);
    let mut network = Network::project_all(&expr);
    matches!(network.run(1000), Outcome::Finished(_))
        && central == Some(Value::Unit(parties![1, 2]))
}

fn main() {
    let rows: Vec<(&str, &str, bool, bool, bool)> = vec![
        // (feature, notes, baseline, lambda-C, chorus-core)
        (
            "Multiply-located values & multicast",
            "probe: multicast to a set, naked unwrap",
            false,
            probe_lambda_model(),
            probe_mlv_multicast(),
        ),
        (
            "Censuses & conclaves",
            "probe: sub-census choreography returning an MLV",
            false,
            probe_lambda_model(),
            probe_conclave(),
        ),
        (
            "Census polymorphism",
            "probe: one choreography at two census sizes",
            false,
            false, // the formal model is deliberately monomorphic (§4)
            probe_census_polymorphism(),
        ),
        (
            "Efficient conditionals (no broadcast to bystanders)",
            "see `koc_messages` for the measurements",
            false,
            true,
            true,
        ),
    ];

    println!("E1 — Table 1 reproduction: feature comparison");
    println!();
    println!("{:<52} | {:^9} | {:^6} | {:^11}", "feature", "HasChor*", "λC", "chorus-core");
    println!("{}", "-".repeat(90));
    for (feature, _, baseline, lambda, core) in &rows {
        println!(
            "{:<52} | {:^9} | {:^6} | {:^11}",
            feature,
            if *baseline { "✓" } else { "✗" },
            if *lambda { "✓" } else { "✗" },
            if *core { "✓" } else { "✗" },
        );
    }
    println!();
    println!("  Membership constraints:  HasChor*: n/a   λC: custom   chorus-core: indexed traits");
    println!("  EPP strategy:            HasChor*: EPP-as-DI (cond broadcasts)   λC: custom   chorus-core: EPP-as-DI");
    println!();
    println!("  (* `chorus-baseline`, our faithful reimplementation of HasChor's");
    println!("     broadcast-KoC programming model; column matches the paper's HasChor column.)");
    println!("  (λC column: the formal model is monomorphic by design; its ✓s are backed by");
    println!("     the `chorus-lambda` theorem test suite.)");

    for (feature, _, _, _, core) in &rows {
        assert!(core, "probe failed for {feature}");
    }
    println!();
    println!("All chorus-core probes passed.");
}
