//! Shared harness for the benchmark suite: macros that execute the
//! case-study choreographies as real multi-threaded systems over
//! metrics-instrumented endpoints, returning results *and* per-edge
//! message counts. Every table/figure binary and criterion bench builds
//! on these.
//!
//! Each participant builds one [`chorus_core::Endpoint`] with a shared
//! [`TransportMetrics`] layer and runs the choreography in a session;
//! the endpoints share one in-process fabric per run.

pub use chorus_transport::{EdgeMetrics, MetricsSnapshot, TransportMetrics};

/// Runs the census-polymorphic replicated KVS (paper Fig. 2) once over
/// a metrics-instrumented in-process endpoint per location, one thread
/// per location.
///
/// Expands to a block evaluating to
/// `(Response, bool /* resynched */, Arc<TransportMetrics>)`.
#[macro_export]
macro_rules! run_replicated_kvs {
    (backups = [$($backup:ty),* $(,)?], request = $request:expr, corrupt = $corrupt:expr) => {{
        use chorus_core::{ChoreographyLocation as _, Endpoint, LocationSet as _};
        use chorus_protocols::kvs_backup::{KvsCensus, ReplicatedKvs, Servers};
        use chorus_protocols::roles::{Client, Primary};
        use chorus_protocols::store::{Request, SharedStore};
        use chorus_transport::{LocalTransport, LocalTransportChannel, TransportMetrics};
        use std::marker::PhantomData;
        use std::sync::Arc;

        type Backups = chorus_core::LocationSet!($($backup),*);
        type Census = KvsCensus<Backups>;

        let channel = LocalTransportChannel::<Census>::new();
        let metrics = Arc::new(TransportMetrics::new());
        let request: Request = $request;
        let corrupt: &[&str] = $corrupt;

        let mut server_handles: Vec<std::thread::JoinHandle<()>> = Vec::new();

        // The client.
        let client_handle = {
            let c = channel.clone();
            let m = Arc::clone(&metrics);
            let request = request.clone();
            std::thread::spawn(move || {
                let endpoint = Endpoint::builder(Client)
                    .transport(LocalTransport::new(Client, c))
                    .layer(m)
                    .build();
                let session = endpoint.session();
                let outcome = session.epp_and_run(ReplicatedKvs::<Backups, _, _, _> {
                    request: session.local(request),
                    states: session.remote_faceted::<SharedStore, Servers<Backups>>(
                        <Servers<Backups>>::new(),
                    ),
                    phantom: PhantomData,
                });
                session.unwrap(outcome.response)
            })
        };

        // The primary.
        let primary_handle = {
            let c = channel.clone();
            let m = Arc::clone(&metrics);
            let request = request.clone();
            let corrupt_me = corrupt.contains(&Primary::NAME);
            std::thread::spawn(move || {
                let _ = request;
                let endpoint = Endpoint::builder(Primary)
                    .transport(LocalTransport::new(Primary, c))
                    .layer(m)
                    .build();
                let session = endpoint.session();
                let store = SharedStore::new();
                if corrupt_me {
                    store.corrupt_next_put();
                }
                let outcome = session.epp_and_run(ReplicatedKvs::<Backups, _, _, _> {
                    request: session.remote(Client),
                    states: session.local_faceted(store),
                    phantom: PhantomData,
                });
                session.unwrap(outcome.resynched)
            })
        };

        // The backups.
        $(
            {
                let c = channel.clone();
                let m = Arc::clone(&metrics);
                let corrupt_me = corrupt.contains(&<$backup>::NAME);
                server_handles.push(std::thread::spawn(move || {
                    let endpoint = Endpoint::builder(<$backup>::new())
                        .transport(LocalTransport::new(<$backup>::new(), c))
                        .layer(m)
                        .build();
                    let session = endpoint.session();
                    let store = SharedStore::new();
                    if corrupt_me {
                        store.corrupt_next_put();
                    }
                    let outcome = session.epp_and_run(ReplicatedKvs::<Backups, _, _, _> {
                        request: session.remote(Client),
                        states: session.local_faceted(store),
                        phantom: PhantomData,
                    });
                    let _ = outcome;
                }));
            }
        )*

        let response = client_handle.join().expect("client endpoint");
        let resynched = primary_handle.join().expect("primary endpoint");
        for h in server_handles {
            h.join().expect("backup endpoint");
        }
        (response, resynched, metrics)
    }};
}

/// Runs a HasChor-style baseline replicated KVS once over a
/// metrics-instrumented in-process endpoint per location.
///
/// Expands to a block evaluating to `(Response, Arc<TransportMetrics>)`.
#[macro_export]
macro_rules! run_baseline_kvs {
    (
        choreo = $choreo:ident,
        backups = [$($backup:ty),* $(,)?],
        request = $request:expr,
        corrupt = $corrupt:expr
    ) => {{
        use chorus_baseline::BaselineProjector;
        use chorus_core::{ChoreographyLocation as _, Endpoint};
        use chorus_protocols::kvs_baseline::$choreo;
        use chorus_protocols::roles::{Client, Primary};
        use chorus_protocols::store::{Request, SharedStore};
        use chorus_transport::{LocalTransport, LocalTransportChannel, TransportMetrics};
        use std::sync::Arc;

        type Census = <$choreo as chorus_baseline::BaselineChoreography<
            chorus_baseline::Located<chorus_protocols::store::Response, Client>,
        >>::L;

        let channel = LocalTransportChannel::<Census>::new();
        let metrics = Arc::new(TransportMetrics::new());
        let request: Request = $request;
        let corrupt: &[&str] = $corrupt;

        let own_store = |name: &'static str, corrupt: bool| {
            let store = SharedStore::new();
            if corrupt {
                store.corrupt_next_put();
            }
            let mut map = ::std::collections::BTreeMap::new();
            map.insert(name.to_string(), store);
            map
        };

        let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();

        let client_handle = {
            let c = channel.clone();
            let m = Arc::clone(&metrics);
            let request = request.clone();
            std::thread::spawn(move || {
                let endpoint = Endpoint::builder(Client)
                    .transport(LocalTransport::new(Client, c))
                    .layer(m)
                    .build();
                let session = endpoint.session();
                let projector = BaselineProjector::new(Client, &session);
                let out = projector.epp_and_run($choreo {
                    request: projector.local(request),
                    stores: ::std::collections::BTreeMap::new(),
                });
                projector.unwrap(out)
            })
        };

        {
            let c = channel.clone();
            let m = Arc::clone(&metrics);
            let stores = own_store(Primary::NAME, corrupt.contains(&Primary::NAME));
            handles.push(std::thread::spawn(move || {
                let endpoint = Endpoint::builder(Primary)
                    .transport(LocalTransport::new(Primary, c))
                    .layer(m)
                    .build();
                let session = endpoint.session();
                let projector = BaselineProjector::new(Primary, &session);
                let _ = projector.epp_and_run($choreo {
                    request: projector.remote(Client),
                    stores,
                });
            }));
        }

        $(
            {
                let c = channel.clone();
                let m = Arc::clone(&metrics);
                let stores = own_store(<$backup>::NAME, corrupt.contains(&<$backup>::NAME));
                handles.push(std::thread::spawn(move || {
                    let endpoint = Endpoint::builder(<$backup>::new())
                        .transport(LocalTransport::new(<$backup>::new(), c))
                        .layer(m)
                        .build();
                    let session = endpoint.session();
                    let projector = BaselineProjector::new(<$backup>::new(), &session);
                    let _ = projector.epp_and_run($choreo {
                        request: projector.remote(Client),
                        stores,
                    });
                }));
            }
        )*

        let response = client_handle.join().expect("client endpoint");
        for h in handles {
            h.join().expect("server endpoint");
        }
        (response, metrics)
    }};
}

/// Runs the GMW choreography once over a metrics-instrumented
/// in-process endpoint per party, one thread per party.
///
/// Expands to a block evaluating to `(bool, Arc<TransportMetrics>)`.
#[macro_export]
macro_rules! run_gmw {
    (parties = [$($party:ty),* $(,)?], circuit = $circuit:expr, inputs = $inputs:expr) => {{
        use chorus_core::{ChoreographyLocation as _, Endpoint};
        use chorus_protocols::gmw::Gmw;
        use chorus_transport::{LocalTransport, LocalTransportChannel, TransportMetrics};
        use std::marker::PhantomData;
        use std::sync::Arc;

        type Parties = chorus_core::LocationSet!($($party),*);

        let channel = LocalTransportChannel::<Parties>::new();
        let metrics = Arc::new(TransportMetrics::new());
        let circuit: Arc<chorus_mpc::Circuit> = Arc::new($circuit);
        let inputs: ::std::collections::BTreeMap<String, Vec<bool>> = $inputs;

        let mut handles: Vec<std::thread::JoinHandle<bool>> = Vec::new();
        $(
            {
                let c = channel.clone();
                let m = Arc::clone(&metrics);
                let circuit = Arc::clone(&circuit);
                let my_inputs = inputs.get(<$party>::NAME).cloned().unwrap_or_default();
                handles.push(std::thread::spawn(move || {
                    let endpoint = Endpoint::builder(<$party>::new())
                        .transport(LocalTransport::new(<$party>::new(), c))
                        .layer(m)
                        .build();
                    let session = endpoint.session();
                    session.epp_and_run(Gmw::<Parties, _, _> {
                        circuit: &circuit,
                        inputs: &session.local_faceted(my_inputs),
                        phantom: PhantomData,
                    })
                }));
            }
        )*

        let mut results: Vec<bool> = handles.into_iter().map(|h| h.join().expect("party")).collect();
        let first = results.pop().expect("at least one party");
        assert!(results.iter().all(|r| *r == first), "parties disagree on the GMW output");
        (first, metrics)
    }};
}

/// Runs the DPrio lottery once over a metrics-instrumented in-process
/// endpoint per participant, one thread per endpoint.
///
/// Expands to a block evaluating to
/// `(Result<u64, LotteryError>, Arc<TransportMetrics>)`.
#[macro_export]
macro_rules! run_lottery {
    (
        clients = [$($client:ty),* $(,)?],
        servers = [$($server:ty),* $(,)?],
        secrets = $secrets:expr,
        tau = $tau:expr,
        cheaters = $cheaters:expr
    ) => {{
        use chorus_core::{ChoreographyLocation as _, Endpoint, LocationSet as _};
        use chorus_mpc::field::FLOTTERY;
        use chorus_protocols::lottery::Lottery;
        use chorus_protocols::roles::Analyst;
        use chorus_transport::{LocalTransport, LocalTransportChannel, TransportMetrics};
        use std::marker::PhantomData;
        use std::sync::Arc;

        type Clients = chorus_core::LocationSet!($($client),*);
        type Servers = chorus_core::LocationSet!($($server),*);
        type Census = chorus_core::LocationSet!(Analyst, $($client,)* $($server),*);

        let channel = LocalTransportChannel::<Census>::new();
        let metrics = Arc::new(TransportMetrics::new());
        let secrets: ::std::collections::BTreeMap<String, u64> = $secrets;
        let cheaters: ::std::collections::BTreeMap<String, bool> = $cheaters;
        let tau: u64 = $tau;

        let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();

        let analyst_handle = {
            let c = channel.clone();
            let m = Arc::clone(&metrics);
            std::thread::spawn(move || {
                let endpoint = Endpoint::builder(Analyst)
                    .transport(LocalTransport::new(Analyst, c))
                    .layer(m)
                    .build();
                let session = endpoint.session();
                let out = session.epp_and_run(
                    Lottery::<Clients, Servers, Census, _, _, _, _, _, _, _> {
                        secrets: &session.remote_faceted(Clients::new()),
                        tau,
                        cheaters: &session.remote_faceted(Servers::new()),
                        phantom: PhantomData,
                    },
                );
                session.unwrap(out)
            })
        };

        $(
            {
                let c = channel.clone();
                let m = Arc::clone(&metrics);
                let secret = FLOTTERY::new(secrets[<$client>::NAME]);
                handles.push(std::thread::spawn(move || {
                    let endpoint = Endpoint::builder(<$client>::new())
                        .transport(LocalTransport::new(<$client>::new(), c))
                        .layer(m)
                        .build();
                    let session = endpoint.session();
                    let _ = session.epp_and_run(
                        Lottery::<Clients, Servers, Census, _, _, _, _, _, _, _> {
                            secrets: &session.local_faceted(secret),
                            tau,
                            cheaters: &session.remote_faceted(Servers::new()),
                            phantom: PhantomData,
                        },
                    );
                }));
            }
        )*

        $(
            {
                let c = channel.clone();
                let m = Arc::clone(&metrics);
                let cheat = cheaters.get(<$server>::NAME).copied().unwrap_or(false);
                handles.push(std::thread::spawn(move || {
                    let endpoint = Endpoint::builder(<$server>::new())
                        .transport(LocalTransport::new(<$server>::new(), c))
                        .layer(m)
                        .build();
                    let session = endpoint.session();
                    let _ = session.epp_and_run(
                        Lottery::<Clients, Servers, Census, _, _, _, _, _, _, _> {
                            secrets: &session.remote_faceted(Clients::new()),
                            tau,
                            cheaters: &session.local_faceted(cheat),
                            phantom: PhantomData,
                        },
                    );
                }));
            }
        )*

        let result = analyst_handle.join().expect("analyst endpoint");
        for h in handles {
            h.join().expect("lottery endpoint");
        }
        (result, metrics)
    }};
}

/// Formats a metrics snapshot as an aligned per-edge table (used by the
/// table binaries).
pub fn format_edges(metrics: &TransportMetrics) -> String {
    let mut out = String::new();
    for ((from, to), edge) in metrics.snapshot() {
        out.push_str(&format!(
            "    {from:>8} -> {to:<8}  {:>4} msgs  {:>6} bytes\n",
            edge.messages, edge.bytes
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use chorus_protocols::roles::{Backup1, Backup2};
    use chorus_protocols::store::Response;

    #[test]
    fn kvs_harness_runs_and_counts_messages() {
        let (response, resynched, metrics) = run_replicated_kvs!(
            backups = [Backup1, Backup2],
            request = Request::Put("k".into(), "v".into()),
            corrupt = &[]
        );
        assert_eq!(response, Response::NotFound);
        assert!(!resynched);
        // The client hears exactly one message: its response.
        assert_eq!(metrics.messages_to("Client"), 1);
        assert!(metrics.total_messages() > 0);
    }

    #[test]
    fn kvs_harness_detects_corruption() {
        let (_, resynched, _) = run_replicated_kvs!(
            backups = [Backup1, Backup2],
            request = Request::Put("k".into(), "v".into()),
            corrupt = &["Backup2"]
        );
        assert!(resynched);
    }

    #[test]
    fn baseline_harness_runs_and_counts_messages() {
        let (response, metrics) = run_baseline_kvs!(
            choreo = BaselineKvs2,
            backups = [Backup1, Backup2],
            request = Request::Put("k".into(), "v".into()),
            corrupt = &[]
        );
        assert_eq!(response, Response::NotFound);
        // The client hears the response PLUS three broadcasts.
        assert_eq!(metrics.messages_to("Client"), 4);
    }

    #[test]
    fn gmw_harness_evaluates_distributed() {
        use chorus_mpc::Circuit;
        use chorus_protocols::roles::{P1, P2};
        let mut inputs = std::collections::BTreeMap::new();
        inputs.insert("P1".to_string(), vec![true]);
        inputs.insert("P2".to_string(), vec![true]);
        let (result, metrics) = run_gmw!(
            parties = [P1, P2],
            circuit = Circuit::input("P1", 0).and(Circuit::input("P2", 0)),
            inputs = inputs
        );
        assert!(result);
        assert!(metrics.total_messages() > 0);
    }
}
