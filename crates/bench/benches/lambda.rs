//! E7 (paper §4, Appendix D): throughput of the λC toolchain — type
//! checking, centralized evaluation, endpoint projection, and network
//! simulation — as generated program size grows.

use chorus_lambda::gen::{census_of, gen_program, GenConfig};
use chorus_lambda::network::{Network, Outcome};
use chorus_lambda::semantics::eval;
use chorus_lambda::typing::{type_of, Env};
use chorus_lambda::Expr;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn programs(depth: usize, count: usize) -> (GenConfig, Vec<Expr>) {
    let config = GenConfig { census_size: 3, max_depth: depth, max_data_depth: 2 };
    let mut rng = StdRng::seed_from_u64(2024);
    let exprs = (0..count).map(|_| gen_program(&mut rng, &config).0).collect();
    (config, exprs)
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("lambda");
    group.warm_up_time(Duration::from_millis(300)).measurement_time(Duration::from_secs(2));

    for depth in [3usize, 5, 7] {
        let (config, exprs) = programs(depth, 20);
        let census = census_of(&config);

        group.bench_with_input(BenchmarkId::new("typecheck", depth), &depth, |b, _| {
            b.iter(|| {
                for e in &exprs {
                    black_box(type_of(&census, &Env::new(), e).expect("well-typed"));
                }
            })
        });

        group.bench_with_input(BenchmarkId::new("eval_central", depth), &depth, |b, _| {
            b.iter(|| {
                for e in &exprs {
                    black_box(eval(e, 1_000_000).expect("terminates"));
                }
            })
        });

        group.bench_with_input(BenchmarkId::new("project_all", depth), &depth, |b, _| {
            b.iter(|| {
                for e in &exprs {
                    black_box(Network::project_all(e));
                }
            })
        });

        group.bench_with_input(BenchmarkId::new("network_run", depth), &depth, |b, _| {
            b.iter(|| {
                for e in &exprs {
                    let mut net = Network::project_all(e);
                    assert!(matches!(net.run(1_000_000), Outcome::Finished(_)));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
